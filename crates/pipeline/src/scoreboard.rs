use interleave_isa::{FuKind, Instr, Reg, TimingModel};
use interleave_obs::validate::Violation;

const FU_COUNT: usize = 6;

fn fu_slot(fu: FuKind) -> usize {
    match fu {
        FuKind::IntAlu => 0,
        FuKind::IntMulDiv => 1,
        FuKind::Mem => 2,
        FuKind::FpAdd => 3,
        FuKind::FpMul => 4,
        FuKind::FpDiv => 5,
    }
}

#[derive(Debug, Clone, Copy)]
struct FuState {
    free_at: u64,
    owner: usize,
    prev_free_at: u64,
}

/// Register and functional-unit scoreboard.
///
/// Tracks, per hardware context, the cycle at which each architectural
/// register's value becomes available for forwarding to a dependent
/// instruction's EX stage, plus the shared functional units' busy times
/// (the non-pipelined dividers are the only multi-cycle-occupancy units in
/// the default timing model).
///
/// Hazards enforced at issue:
///
/// * **true (RAW)** — sources must be ready at the EX cycle;
/// * **output (WAW)** — a write may not complete before an older write to
///   the same register;
/// * **structural** — the required functional unit must be free.
///
/// Anti-dependences (WAR) cannot be violated because reads happen in order
/// at issue time.
///
/// # Examples
///
/// ```
/// use interleave_isa::{Instr, Reg, TimingModel};
/// use interleave_pipeline::Scoreboard;
///
/// let timing = TimingModel::r4000_like();
/// let mut sb = Scoreboard::new(1);
/// let load = Instr::load(0, Reg::int(4), Reg::int(29), 0x100);
/// sb.issue(0, &load, &timing, 10);
/// // A dependent ALU op must wait for the two load delay slots.
/// let use_it = Instr::alu(4, Some(Reg::int(5)), Some(Reg::int(4)), None);
/// assert_eq!(sb.earliest_issue(0, &use_it, &timing, 11), 13);
/// ```
#[derive(Debug, Clone)]
pub struct Scoreboard {
    contexts: usize,
    /// `contexts * Reg::COUNT` ready cycles. Boxed slices: sized once at
    /// construction (context count is a hardware parameter), no spare
    /// capacity, contiguous per-context index ranges.
    reg_ready: Box<[u64]>,
    /// Whether the pending value comes from an outstanding memory operation
    /// (drives data-stall vs pipeline-stall attribution).
    mem_pending: Box<[bool]>,
    fu: [FuState; FU_COUNT],
}

impl Scoreboard {
    /// Creates a scoreboard for `contexts` hardware contexts with all
    /// registers ready and all units free.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero.
    pub fn new(contexts: usize) -> Scoreboard {
        assert!(contexts > 0, "need at least one context");
        Scoreboard {
            contexts,
            reg_ready: vec![0; contexts * Reg::COUNT].into_boxed_slice(),
            mem_pending: vec![false; contexts * Reg::COUNT].into_boxed_slice(),
            fu: [FuState { free_at: 0, owner: usize::MAX, prev_free_at: 0 }; FU_COUNT],
        }
    }

    fn slot(&self, ctx: usize, reg: Reg) -> usize {
        debug_assert!(ctx < self.contexts);
        ctx * Reg::COUNT + reg.index()
    }

    /// Earliest cycle at or after `candidate` at which `instr` may enter EX.
    pub fn earliest_issue(
        &self,
        ctx: usize,
        instr: &Instr,
        timing: &TimingModel,
        candidate: u64,
    ) -> u64 {
        let mut earliest = candidate;
        for src in instr.sources() {
            earliest = earliest.max(self.reg_ready[self.slot(ctx, src)]);
        }
        let t = timing.timing(instr.op);
        if let Some(dst) = instr.dest() {
            let prior = self.reg_ready[self.slot(ctx, dst)];
            earliest = earliest.max(prior.saturating_sub(u64::from(t.latency)));
        }
        if let Some(fu) = instr.op.fu() {
            earliest = earliest.max(self.fu[fu_slot(fu)].free_at);
        }
        earliest
    }

    /// Whether the constraint delaying `instr` past `now` is a register
    /// pending on an outstanding memory operation (used by the
    /// single-context scheme to charge data-stall rather than
    /// pipeline-stall cycles).
    pub fn blocked_on_memory(&self, ctx: usize, instr: &Instr, now: u64) -> bool {
        instr.sources().chain(instr.dest()).any(|reg| {
            let slot = self.slot(ctx, reg);
            self.mem_pending[slot] && self.reg_ready[slot] > now
        })
    }

    /// Records the effects of `instr` entering EX at `ex`: reserves its
    /// functional unit and schedules its result.
    pub fn issue(&mut self, ctx: usize, instr: &Instr, timing: &TimingModel, ex: u64) {
        let t = timing.timing(instr.op);
        if let Some(fu) = instr.op.fu() {
            let state = &mut self.fu[fu_slot(fu)];
            state.prev_free_at = state.free_at;
            state.free_at = ex + u64::from(t.issue);
            state.owner = ctx;
        }
        if let Some(dst) = instr.dest() {
            let slot = self.slot(ctx, dst);
            self.reg_ready[slot] = ex + u64::from(t.latency);
            self.mem_pending[slot] = false;
        }
    }

    /// Overrides a destination register's ready time (a load whose fill
    /// completes at `ready_at`), marking it memory-pending.
    pub fn set_mem_pending(&mut self, ctx: usize, reg: Reg, ready_at: u64) {
        if reg.is_zero() {
            return;
        }
        let slot = self.slot(ctx, reg);
        self.reg_ready[slot] = ready_at;
        self.mem_pending[slot] = true;
    }

    /// Cycle at which `reg` becomes available for forwarding.
    pub fn ready_at(&self, ctx: usize, reg: Reg) -> u64 {
        self.reg_ready[self.slot(ctx, reg)]
    }

    /// Undoes the effects of a context's squashed instructions: its pending
    /// register writes are cancelled (made ready at `now`) and a functional
    /// unit it reserved is rolled back one reservation.
    ///
    /// Rolling back only the most recent reservation per unit is an
    /// approximation; it is exact for the dominant squash cause (a load
    /// miss with at most one in-flight long operation per context).
    pub fn clear_context(&mut self, ctx: usize, now: u64) {
        let base = ctx * Reg::COUNT;
        for slot in base..base + Reg::COUNT {
            if self.reg_ready[slot] > now {
                self.reg_ready[slot] = now;
            }
            self.mem_pending[slot] = false;
        }
        for state in &mut self.fu {
            if state.owner == ctx && state.free_at > now {
                // prev_free_at <= free_at and now < free_at, so this only
                // ever shortens the reservation.
                state.free_at = state.prev_free_at.max(now);
                state.owner = usize::MAX;
            }
        }
    }

    /// Checks the scoreboard's standing structural invariants at `now`:
    /// every busy functional unit is owned by a real context, reservation
    /// history is ordered (`prev_free_at <= free_at`), and the
    /// hard-wired zero register is never tracked (always ready, never
    /// memory-pending). O(contexts + units).
    pub fn check_invariants(&self, now: u64) -> Result<(), Violation> {
        for (i, state) in self.fu.iter().enumerate() {
            if state.owner != usize::MAX && state.owner >= self.contexts {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "functional unit owned by a nonexistent context",
                    now,
                    format!("unit {i} owned by context {} of {}", state.owner, self.contexts),
                ));
            }
            if state.prev_free_at > state.free_at {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "functional-unit reservation history out of order",
                    now,
                    format!(
                        "unit {i}: prev_free_at {} > free_at {}",
                        state.prev_free_at, state.free_at
                    ),
                )
                .with_context(if state.owner == usize::MAX {
                    0
                } else {
                    state.owner
                }));
            }
        }
        for ctx in 0..self.contexts {
            let slot = self.slot(ctx, Reg::ZERO);
            if self.reg_ready[slot] != 0 || self.mem_pending[slot] {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "hard-wired zero register acquired scoreboard state",
                    now,
                    format!(
                        "ready_at {}, mem_pending {}",
                        self.reg_ready[slot], self.mem_pending[slot]
                    ),
                )
                .with_context(ctx));
            }
        }
        Ok(())
    }

    /// Checks that issuing `instr` into EX at cycle `ex` is hazard-legal:
    /// every forwarding source is ready by `ex` (i.e. comes from a
    /// completed or exactly-forwardable in-flight op), the write does not
    /// complete before an older write to the same register (no
    /// dual-writer WB), and the functional unit is free.
    pub fn check_issue(
        &self,
        ctx: usize,
        instr: &Instr,
        timing: &TimingModel,
        ex: u64,
    ) -> Result<(), Violation> {
        for src in instr.sources() {
            let ready = self.reg_ready[self.slot(ctx, src)];
            if ready > ex {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "issued with a forwarding source that is not live",
                    ex,
                    format!("{:?} source {src:?} not ready until cycle {ready}", instr.op),
                )
                .with_context(ctx));
            }
        }
        let t = timing.timing(instr.op);
        if let Some(dst) = instr.dest() {
            let prior = self.reg_ready[self.slot(ctx, dst)];
            if ex + u64::from(t.latency) < prior {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "write would complete before an older write (dual-writer WB)",
                    ex,
                    format!(
                        "{:?} writes {dst:?} at cycle {} but an older write lands at {prior}",
                        instr.op,
                        ex + u64::from(t.latency)
                    ),
                )
                .with_context(ctx));
            }
        }
        if let Some(fu) = instr.op.fu() {
            let state = &self.fu[fu_slot(fu)];
            if state.free_at > ex {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "issued to a busy functional unit",
                    ex,
                    format!("{:?} unit busy until cycle {}", fu, state.free_at),
                )
                .with_context(ctx));
            }
        }
        Ok(())
    }

    /// Checks that [`Scoreboard::clear_context`] removed exactly the
    /// squashed context's state: none of its registers remains pending
    /// past `now` and no functional unit is still held by it beyond
    /// `now`. Other contexts' slots are untouched by construction
    /// (per-context index ranges), so this completes the "squash removes
    /// exactly the squashed context's slots" invariant.
    pub fn check_cleared(&self, ctx: usize, now: u64) -> Result<(), Violation> {
        let base = ctx * Reg::COUNT;
        for (i, slot) in (base..base + Reg::COUNT).enumerate() {
            if self.reg_ready[slot] > now {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "squashed context still has a pending register write",
                    now,
                    format!("register index {i} ready at cycle {}", self.reg_ready[slot]),
                )
                .with_context(ctx));
            }
            if self.mem_pending[slot] {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "squashed context still has a memory-pending register",
                    now,
                    format!("register index {i}"),
                )
                .with_context(ctx));
            }
        }
        for (i, state) in self.fu.iter().enumerate() {
            if state.owner == ctx && state.free_at > now {
                return Err(Violation::new(
                    "pipeline.scoreboard",
                    "squashed context still holds a functional unit",
                    now,
                    format!("unit {i} busy until cycle {}", state.free_at),
                )
                .with_context(ctx));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave_isa::Op;

    fn timing() -> TimingModel {
        TimingModel::r4000_like()
    }

    #[test]
    fn independent_instr_issues_immediately() {
        let sb = Scoreboard::new(2);
        let i = Instr::alu(0, Some(Reg::int(1)), Some(Reg::int(2)), None);
        assert_eq!(sb.earliest_issue(0, &i, &timing(), 5), 5);
    }

    #[test]
    fn raw_hazard_delays_consumer() {
        let mut sb = Scoreboard::new(1);
        let load = Instr::load(0, Reg::int(4), Reg::int(29), 0x100);
        sb.issue(0, &load, &timing(), 10);
        let consumer = Instr::alu(4, Some(Reg::int(5)), Some(Reg::int(4)), None);
        // Load latency 3: result forwardable to EX at cycle 13.
        assert_eq!(sb.earliest_issue(0, &consumer, &timing(), 11), 13);
    }

    #[test]
    fn forwarding_allows_back_to_back_alu() {
        let mut sb = Scoreboard::new(1);
        let a = Instr::alu(0, Some(Reg::int(1)), None, None);
        sb.issue(0, &a, &timing(), 10);
        let b = Instr::alu(4, Some(Reg::int(2)), Some(Reg::int(1)), None);
        assert_eq!(sb.earliest_issue(0, &b, &timing(), 11), 11);
    }

    #[test]
    fn fp_add_dependent_stalls_four() {
        let mut sb = Scoreboard::new(1);
        let a = Instr::arith(0, Op::FpAdd, Some(Reg::fp(1)), Some(Reg::fp(2)), Some(Reg::fp(3)));
        sb.issue(0, &a, &timing(), 10);
        let b = Instr::arith(4, Op::FpMul, Some(Reg::fp(4)), Some(Reg::fp(1)), None);
        // Would issue at 11; must wait until 15 — a 4-cycle stall, the
        // paper's short/long boundary.
        assert_eq!(sb.earliest_issue(0, &b, &timing(), 11), 15);
    }

    #[test]
    fn contexts_are_independent() {
        let mut sb = Scoreboard::new(2);
        let load = Instr::load(0, Reg::int(4), Reg::int(29), 0x100);
        sb.issue(0, &load, &timing(), 10);
        let other = Instr::alu(4, Some(Reg::int(5)), Some(Reg::int(4)), None);
        // Context 1's r4 is unrelated to context 0's.
        assert_eq!(sb.earliest_issue(1, &other, &timing(), 11), 11);
    }

    #[test]
    fn divider_is_shared_across_contexts() {
        let mut sb = Scoreboard::new(2);
        let div = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), Some(Reg::fp(2)), None);
        sb.issue(0, &div, &timing(), 10);
        let div2 = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), Some(Reg::fp(2)), None);
        // Non-pipelined: busy 61 cycles, even for another context.
        assert_eq!(sb.earliest_issue(1, &div2, &timing(), 11), 71);
    }

    #[test]
    fn waw_hazard_orders_writes() {
        let mut sb = Scoreboard::new(1);
        let div = Instr::arith(0, Op::IntDiv, Some(Reg::int(3)), Some(Reg::int(1)), None);
        sb.issue(0, &div, &timing(), 10); // r3 ready at 45
        let alu = Instr::alu(4, Some(Reg::int(3)), Some(Reg::int(2)), None);
        // ALU write (latency 1) may not complete before cycle 45.
        assert_eq!(sb.earliest_issue(0, &alu, &timing(), 11), 44);
    }

    #[test]
    fn mem_pending_attribution() {
        let mut sb = Scoreboard::new(1);
        sb.set_mem_pending(0, Reg::int(4), 100);
        let consumer = Instr::alu(4, None, Some(Reg::int(4)), None);
        assert!(sb.blocked_on_memory(0, &consumer, 50));
        assert!(!sb.blocked_on_memory(0, &consumer, 100));
        let unrelated = Instr::alu(4, None, Some(Reg::int(5)), None);
        assert!(!sb.blocked_on_memory(0, &unrelated, 50));
    }

    #[test]
    fn clear_context_cancels_pending_writes() {
        let mut sb = Scoreboard::new(2);
        let load = Instr::load(0, Reg::int(4), Reg::int(29), 0x100);
        sb.issue(0, &load, &timing(), 10);
        sb.clear_context(0, 11);
        assert_eq!(sb.ready_at(0, Reg::int(4)), 11);
    }

    #[test]
    fn clear_context_rolls_back_fu() {
        let mut sb = Scoreboard::new(2);
        let div = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), None, None);
        sb.issue(0, &div, &timing(), 10); // FpDiv busy until 71
        sb.clear_context(0, 12);
        let div2 = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), None, None);
        assert_eq!(sb.earliest_issue(1, &div2, &timing(), 12), 12);
    }

    #[test]
    fn clear_context_leaves_other_owners_alone() {
        let mut sb = Scoreboard::new(2);
        let div = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), None, None);
        sb.issue(1, &div, &timing(), 10);
        sb.clear_context(0, 12);
        let div2 = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), None, None);
        assert_eq!(sb.earliest_issue(0, &div2, &timing(), 12), 71);
    }

    #[test]
    fn check_issue_accepts_legal_and_flags_hazards() {
        let mut sb = Scoreboard::new(1);
        let load = Instr::load(0, Reg::int(4), Reg::int(29), 0x100);
        sb.issue(0, &load, &timing(), 10);
        let consumer = Instr::alu(4, Some(Reg::int(5)), Some(Reg::int(4)), None);
        // Result forwardable at cycle 13: issuing then is legal...
        assert!(sb.check_issue(0, &consumer, &timing(), 13).is_ok());
        // ...but issuing at 12 reads a value that is not live yet.
        let v = sb.check_issue(0, &consumer, &timing(), 12).unwrap_err();
        assert_eq!(v.context, Some(0));
        assert!(v.to_string().contains("not ready until"), "{v}");
    }

    #[test]
    fn check_issue_flags_dual_writer_wb() {
        let mut sb = Scoreboard::new(1);
        let div = Instr::arith(0, Op::IntDiv, Some(Reg::int(3)), Some(Reg::int(1)), None);
        sb.issue(0, &div, &timing(), 10); // r3 ready at 45
        let alu = Instr::alu(4, Some(Reg::int(3)), Some(Reg::int(2)), None);
        // An ALU write at EX 20 completes at 21 — before the divide's WB.
        let v = sb.check_issue(0, &alu, &timing(), 20).unwrap_err();
        assert!(v.to_string().contains("older write"), "{v}");
        // At EX 44 the writes are ordered; legal.
        assert!(sb.check_issue(0, &alu, &timing(), 44).is_ok());
    }

    #[test]
    fn check_issue_flags_busy_fu() {
        let mut sb = Scoreboard::new(2);
        let div = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), None, None);
        sb.issue(0, &div, &timing(), 10); // FpDiv busy until 71
        let div2 = Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(2)), None, None);
        let v = sb.check_issue(1, &div2, &timing(), 50).unwrap_err();
        assert!(v.to_string().contains("busy"), "{v}");
    }

    #[test]
    fn check_cleared_after_squash() {
        let mut sb = Scoreboard::new(2);
        let load = Instr::load(0, Reg::int(4), Reg::int(29), 0x100);
        sb.issue(0, &load, &timing(), 10);
        sb.set_mem_pending(0, Reg::int(4), 100);
        let div = Instr::arith(4, Op::FpDivDouble, Some(Reg::fp(1)), None, None);
        sb.issue(0, &div, &timing(), 11);
        // Before the squash, the cleared-state check must fail...
        assert!(sb.check_cleared(0, 12).is_err());
        sb.clear_context(0, 12);
        // ...and pass afterwards, for the squashed context only.
        assert!(sb.check_cleared(0, 12).is_ok());
        assert!(sb.check_invariants(12).is_ok());
    }

    #[test]
    fn standing_invariants_hold_through_traffic() {
        let mut sb = Scoreboard::new(4);
        let t = timing();
        for ctx in 0..4 {
            let load = Instr::load(0, Reg::int(4), Reg::int(29), 0x100);
            let ex = sb.earliest_issue(ctx, &load, &t, 10 + ctx as u64);
            assert!(sb.check_issue(ctx, &load, &t, ex).is_ok());
            sb.issue(ctx, &load, &t, ex);
        }
        assert!(sb.check_invariants(20).is_ok());
    }

    #[test]
    fn zero_register_never_tracked() {
        let mut sb = Scoreboard::new(1);
        let writer = Instr::arith(0, Op::IntDiv, Some(Reg::ZERO), Some(Reg::int(1)), None);
        sb.issue(0, &writer, &timing(), 10);
        let reader = Instr::alu(4, None, Some(Reg::ZERO), None);
        assert_eq!(sb.earliest_issue(0, &reader, &timing(), 11), 11);
        sb.set_mem_pending(0, Reg::ZERO, 100);
        assert_eq!(sb.ready_at(0, Reg::ZERO), 0);
    }
}
