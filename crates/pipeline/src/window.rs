use interleave_isa::Instr;
use interleave_obs::{Counter, Registry};

/// An instruction between issue (entering EX) and retirement (end of WB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// Hardware context it belongs to.
    pub ctx: usize,
    /// Position in the context's instruction stream.
    pub fetch_index: u64,
    /// The instruction.
    pub instr: Instr,
    /// Cycle it entered EX.
    pub issued_at: u64,
    /// Cycle it leaves WB (end of cycle).
    pub retires_at: u64,
}

/// The set of issued-but-not-retired instructions.
///
/// The blocked scheme's cache-miss flush squashes *everything* here plus
/// the front end (≈ pipeline depth, 7 cycles of lost work); the interleaved
/// scheme squashes only the missing context's entries (1–4 cycles with four
/// contexts) — the contrast of paper Figure 2.
///
/// Stored in struct-of-arrays layout: the per-cycle retirement scan reads
/// only the `retires_at` column and the fine-grained scheme's occupancy
/// check reads only `ctx`, so each hot scan touches one small contiguous
/// array instead of striding over whole [`InFlight`] records. The public
/// interface still speaks `InFlight`; rows are gathered on the way out.
///
/// # Examples
///
/// ```
/// use interleave_isa::Instr;
/// use interleave_pipeline::{InFlight, IssueWindow};
///
/// let mut w = IssueWindow::new();
/// w.issue(InFlight { ctx: 0, fetch_index: 0, instr: Instr::nop(0), issued_at: 5, retires_at: 8 });
/// assert_eq!(w.retire_due(7).len(), 0);
/// assert_eq!(w.retire_due(8).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IssueWindow {
    ctx: Vec<usize>,
    fetch_index: Vec<u64>,
    instr: Vec<Instr>,
    issued_at: Vec<u64>,
    retires_at: Vec<u64>,
    stats: WindowStats,
}

/// Squash counters for an [`IssueWindow`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WindowStats {
    /// Squash operations that removed at least one instruction.
    pub squash_events: Counter,
    /// Total in-flight instructions removed by squashes.
    pub squashed_instrs: Counter,
}

impl IssueWindow {
    /// Creates an empty window.
    pub fn new() -> IssueWindow {
        IssueWindow::default()
    }

    /// Gathers row `i` back into an [`InFlight`] record.
    fn row(&self, i: usize) -> InFlight {
        InFlight {
            ctx: self.ctx[i],
            fetch_index: self.fetch_index[i],
            instr: self.instr[i],
            issued_at: self.issued_at[i],
            retires_at: self.retires_at[i],
        }
    }

    /// Copies row `from` over row `to` in every column (compaction step).
    fn copy_row(&mut self, from: usize, to: usize) {
        if from != to {
            self.ctx[to] = self.ctx[from];
            self.fetch_index[to] = self.fetch_index[from];
            self.instr[to] = self.instr[from];
            self.issued_at[to] = self.issued_at[from];
            self.retires_at[to] = self.retires_at[from];
        }
    }

    fn truncate(&mut self, len: usize) {
        self.ctx.truncate(len);
        self.fetch_index.truncate(len);
        self.instr.truncate(len);
        self.issued_at.truncate(len);
        self.retires_at.truncate(len);
    }

    /// Records an issued instruction.
    ///
    /// # Panics
    ///
    /// Panics if `retires_at` precedes `issued_at` (instructions spend at
    /// least one cycle in flight) or if issue order is violated.
    pub fn issue(&mut self, inflight: InFlight) {
        assert!(inflight.retires_at >= inflight.issued_at, "retire before issue");
        if let Some(last) = self.issued_at.last() {
            assert!(*last <= inflight.issued_at, "issue order violated");
        }
        self.ctx.push(inflight.ctx);
        self.fetch_index.push(inflight.fetch_index);
        self.instr.push(inflight.instr);
        self.issued_at.push(inflight.issued_at);
        self.retires_at.push(inflight.retires_at);
    }

    /// Moves the instructions retiring at or before `now` into `out`
    /// (cleared first), in issue order — the allocation-free form of
    /// [`IssueWindow::retire_due`] for the per-cycle hot path.
    ///
    /// Integer and FP instructions leave their pipes independently, so an
    /// integer instruction may retire past an older FP instruction of the
    /// same context (squashes never reach behind the faulting instruction,
    /// so completed work is never re-executed).
    pub fn retire_due_into(&mut self, now: u64, out: &mut Vec<InFlight>) {
        out.clear();
        let mut write = 0;
        for read in 0..self.retires_at.len() {
            if self.retires_at[read] <= now {
                out.push(self.row(read));
            } else {
                self.copy_row(read, write);
                write += 1;
            }
        }
        self.truncate(write);
    }

    /// Removes and returns the instructions retiring at or before `now`.
    pub fn retire_due(&mut self, now: u64) -> Vec<InFlight> {
        let mut retired = Vec::new();
        self.retire_due_into(now, &mut retired);
        retired
    }

    /// Moves every in-flight instruction of `ctx` into `out` (cleared
    /// first) — used when the whole context leaves the machine, e.g. an
    /// OS swap.
    pub fn squash_ctx_into(&mut self, ctx: usize, out: &mut Vec<InFlight>) {
        self.squash_ctx_from_into(ctx, 0, out);
    }

    /// Removes and returns every in-flight instruction of `ctx`.
    pub fn squash_ctx(&mut self, ctx: usize) -> Vec<InFlight> {
        self.squash_ctx_from(ctx, 0)
    }

    /// Moves `ctx`'s in-flight instructions at or after stream position
    /// `from` into `out` (cleared first) — the faulting instruction and
    /// everything younger. Older instructions (e.g. FP operations still
    /// draining) complete normally, exactly as in a machine that squashes
    /// by CID at the detection point.
    pub fn squash_ctx_from_into(&mut self, ctx: usize, from: u64, out: &mut Vec<InFlight>) {
        out.clear();
        let mut write = 0;
        for read in 0..self.ctx.len() {
            if self.ctx[read] == ctx && self.fetch_index[read] >= from {
                out.push(self.row(read));
            } else {
                self.copy_row(read, write);
                write += 1;
            }
        }
        self.truncate(write);
        self.note_squash(out.len());
    }

    /// Removes and returns `ctx`'s in-flight instructions at or after
    /// stream position `from`.
    pub fn squash_ctx_from(&mut self, ctx: usize, from: u64) -> Vec<InFlight> {
        let mut squashed = Vec::new();
        self.squash_ctx_from_into(ctx, from, &mut squashed);
        squashed
    }

    /// Moves every in-flight instruction into `out` (cleared first) —
    /// the blocked scheme's full flush.
    pub fn squash_all_into(&mut self, out: &mut Vec<InFlight>) {
        out.clear();
        for i in 0..self.ctx.len() {
            out.push(self.row(i));
        }
        self.truncate(0);
        self.note_squash(out.len());
    }

    /// Removes and returns every in-flight instruction.
    pub fn squash_all(&mut self) -> Vec<InFlight> {
        let mut squashed = Vec::new();
        self.squash_all_into(&mut squashed);
        squashed
    }

    fn note_squash(&mut self, removed: usize) {
        if removed > 0 {
            self.stats.squash_events.inc();
            self.stats.squashed_instrs.add(removed as u64);
        }
    }

    /// Accumulated squash counters.
    pub fn stats(&self) -> &WindowStats {
        &self.stats
    }

    /// Clears the squash counters (in-flight contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = WindowStats::default();
    }

    /// Registers squash counters under `pipeline.window.*`.
    pub fn collect_metrics(&self, reg: &mut Registry) {
        reg.counter("pipeline.window.squash_events", self.stats.squash_events.get());
        reg.counter("pipeline.window.squashed_instrs", self.stats.squashed_instrs.get());
    }

    /// Number of in-flight instructions belonging to `ctx`.
    pub fn count_ctx(&self, ctx: usize) -> usize {
        self.ctx.iter().filter(|&&c| c == ctx).count()
    }

    /// Total in-flight instructions.
    pub fn len(&self) -> usize {
        self.ctx.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.ctx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inflight(ctx: usize, index: u64, issued: u64, retires: u64) -> InFlight {
        InFlight {
            ctx,
            fetch_index: index,
            instr: Instr::nop(index * 4),
            issued_at: issued,
            retires_at: retires,
        }
    }

    #[test]
    fn retire_in_order() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 1, 4));
        w.issue(inflight(0, 1, 2, 5));
        let r = w.retire_due(4);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].fetch_index, 0);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn younger_int_retires_past_older_fp() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 1, 6)); // FP: retires at issue + 5
        w.issue(inflight(0, 1, 2, 5)); // int: leaves its pipe first
        let r = w.retire_due(5);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].fetch_index, 1);
        let r = w.retire_due(6);
        assert_eq!(r[0].fetch_index, 0);
    }

    #[test]
    fn squash_from_spares_older_instructions() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 5, 1, 8)); // older FP, still draining
        w.issue(inflight(0, 7, 2, 5)); // the faulting load
        w.issue(inflight(0, 8, 3, 6)); // younger
        let squashed = w.squash_ctx_from(0, 7);
        assert_eq!(squashed.len(), 2);
        assert!(squashed.iter().all(|i| i.fetch_index >= 7));
        assert_eq!(w.len(), 1);
        assert_eq!(w.retire_due(8)[0].fetch_index, 5);
    }

    #[test]
    fn squash_ctx_selective() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 1, 4));
        w.issue(inflight(1, 0, 2, 5));
        w.issue(inflight(0, 1, 3, 6));
        let squashed = w.squash_ctx(0);
        assert_eq!(squashed.len(), 2);
        assert_eq!(w.len(), 1);
        assert_eq!(w.count_ctx(1), 1);
    }

    #[test]
    fn squash_all_empties() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 1, 4));
        w.issue(inflight(1, 0, 2, 5));
        assert_eq!(w.squash_all().len(), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn squash_stats_count_events_and_instrs() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 1, 4));
        w.issue(inflight(0, 1, 2, 5));
        w.squash_ctx(0);
        w.squash_ctx(0); // empty squash: no event counted
        assert_eq!(w.stats().squash_events.get(), 1);
        assert_eq!(w.stats().squashed_instrs.get(), 2);

        let mut reg = Registry::new();
        w.collect_metrics(&mut reg);
        assert_eq!(reg.counter_value("pipeline.window.squashed_instrs"), Some(2));

        w.reset_stats();
        assert_eq!(w.stats().squash_events.get(), 0);
    }

    #[test]
    fn into_variants_clear_reused_buffers() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 1, 4));
        w.issue(inflight(1, 1, 2, 9));
        let mut buf = vec![inflight(9, 9, 9, 9)];
        w.retire_due_into(4, &mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].fetch_index, 0);
        w.squash_all_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].ctx, 1);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic]
    fn issue_order_enforced() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 5, 8));
        w.issue(inflight(0, 1, 4, 7));
    }

    #[test]
    #[should_panic]
    fn retire_before_issue_rejected() {
        let mut w = IssueWindow::new();
        w.issue(inflight(0, 0, 5, 4));
    }
}
