use interleave_obs::{Counter, Registry};

/// A direct-mapped branch target buffer (paper Section 4.1: 2048 entries).
///
/// Prediction policy: a branch whose PC hits in the BTB is predicted taken
/// to the stored target; a branch that misses is predicted not-taken
/// (sequential fetch). On resolution the BTB is updated: taken branches
/// install or refresh their entry, not-taken branches evict a matching
/// entry (otherwise they would mispredict forever).
///
/// # Examples
///
/// ```
/// use interleave_pipeline::Btb;
///
/// let mut btb = Btb::new(2048);
/// assert_eq!(btb.predict(0x100), None); // cold: predicted not-taken
/// btb.update(0x100, true, 0x400);
/// assert_eq!(btb.predict(0x100), Some(0x400));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    /// (tag, target) per entry; disabled BTB has no entries.
    entries: Vec<Option<(u64, u64)>>,
    index_mask: u64,
    stats: BtbStats,
}

/// Prediction outcome counters for a [`Btb`], accumulated by
/// [`Btb::check`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BtbStats {
    /// Checked predictions (one per fetched branch).
    pub lookups: Counter,
    /// Predictions that matched the resolved outcome.
    pub hits: Counter,
    /// Predictions that did not (wrong direction or wrong target).
    pub mispredicts: Counter,
}

impl Btb {
    /// Creates a BTB with `entries` slots (a power of two), or a disabled
    /// predictor when `entries == 0` (every taken branch mispredicts).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is neither zero nor a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(
            entries == 0 || entries.is_power_of_two(),
            "BTB entries must be zero or a power of two"
        );
        Btb {
            entries: vec![None; entries],
            index_mask: entries.saturating_sub(1) as u64,
            stats: BtbStats::default(),
        }
    }

    /// Whether the predictor is disabled (zero entries).
    pub fn is_disabled(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the BTB holds no valid entries.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    fn index(&self, pc: u64) -> usize {
        // Instructions are word-aligned; drop the low two bits.
        ((pc >> 2) & self.index_mask) as usize
    }

    fn tag(&self, pc: u64) -> u64 {
        pc >> 2 >> self.index_mask.count_ones()
    }

    /// Predicted target for the branch at `pc`, or `None` for a predicted
    /// not-taken (sequential) outcome.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        if self.entries.is_empty() {
            return None;
        }
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == self.tag(pc) => Some(target),
            _ => None,
        }
    }

    /// Whether the prediction for this branch matches its resolved outcome.
    pub fn predicts_correctly(&self, pc: u64, taken: bool, target: u64) -> bool {
        match self.predict(pc) {
            Some(predicted) => taken && predicted == target,
            None => !taken,
        }
    }

    /// Like [`Btb::predicts_correctly`], but also counts the lookup and
    /// its outcome in [`Btb::stats`]. The fetch stage uses this entry
    /// point; the pure predicate remains for tests and offline queries.
    pub fn check(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        let correct = self.predicts_correctly(pc, taken, target);
        self.stats.lookups.inc();
        if correct {
            self.stats.hits.inc();
        } else {
            self.stats.mispredicts.inc();
        }
        correct
    }

    /// Accumulated prediction counters.
    pub fn stats(&self) -> &BtbStats {
        &self.stats
    }

    /// Clears the prediction counters (entries are kept — warmup resets
    /// discard statistics, not learned state).
    pub fn reset_stats(&mut self) {
        self.stats = BtbStats::default();
    }

    /// Registers prediction counters under `pipeline.btb.*`.
    pub fn collect_metrics(&self, reg: &mut Registry) {
        reg.counter("pipeline.btb.lookups", self.stats.lookups.get());
        reg.counter("pipeline.btb.hits", self.stats.hits.get());
        reg.counter("pipeline.btb.mispredicts", self.stats.mispredicts.get());
    }

    /// Updates the BTB with a resolved branch outcome.
    pub fn update(&mut self, pc: u64, taken: bool, target: u64) {
        if self.entries.is_empty() {
            return;
        }
        let index = self.index(pc);
        if taken {
            self.entries[index] = Some((self.tag(pc), target));
        } else if matches!(self.entries[index], Some((tag, _)) if tag == self.tag(pc)) {
            self.entries[index] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_btb_predicts_not_taken() {
        let btb = Btb::new(16);
        assert_eq!(btb.predict(0x40), None);
        assert!(btb.predicts_correctly(0x40, false, 0));
        assert!(!btb.predicts_correctly(0x40, true, 0x100));
    }

    #[test]
    fn taken_branch_learns() {
        let mut btb = Btb::new(16);
        btb.update(0x40, true, 0x100);
        assert!(btb.predicts_correctly(0x40, true, 0x100));
        // Wrong target is still a mispredict.
        assert!(!btb.predicts_correctly(0x40, true, 0x200));
    }

    #[test]
    fn not_taken_update_evicts() {
        let mut btb = Btb::new(16);
        btb.update(0x40, true, 0x100);
        btb.update(0x40, false, 0);
        assert_eq!(btb.predict(0x40), None);
    }

    #[test]
    fn aliasing_branches_conflict() {
        let mut btb = Btb::new(4);
        btb.update(0x0, true, 0x100);
        // 4 entries * 4 bytes = 16-byte period: 0x10 aliases 0x0.
        btb.update(0x10, true, 0x200);
        // Different tag: 0x0 no longer predicted.
        assert_eq!(btb.predict(0x0), None);
        assert_eq!(btb.predict(0x10), Some(0x200));
    }

    #[test]
    fn not_taken_update_leaves_alias_alone() {
        let mut btb = Btb::new(4);
        btb.update(0x10, true, 0x200);
        // A not-taken branch aliasing the same set must not evict a
        // different branch's entry.
        btb.update(0x0, false, 0);
        assert_eq!(btb.predict(0x10), Some(0x200));
    }

    #[test]
    fn disabled_btb() {
        let mut btb = Btb::new(0);
        assert!(btb.is_disabled());
        btb.update(0x40, true, 0x100);
        assert_eq!(btb.predict(0x40), None);
        // All taken branches mispredict; not-taken predict correctly.
        assert!(!btb.predicts_correctly(0x40, true, 0x100));
        assert!(btb.predicts_correctly(0x40, false, 0));
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_rejected() {
        let _ = Btb::new(3);
    }

    #[test]
    fn check_counts_outcomes() {
        let mut btb = Btb::new(16);
        btb.update(0x40, true, 0x100);
        assert!(btb.check(0x40, true, 0x100)); // hit
        assert!(!btb.check(0x40, true, 0x200)); // wrong target
        assert!(!btb.check(0x80, true, 0x300)); // cold taken branch
        assert_eq!(btb.stats().lookups.get(), 3);
        assert_eq!(btb.stats().hits.get(), 1);
        assert_eq!(btb.stats().mispredicts.get(), 2);

        let mut reg = Registry::new();
        btb.collect_metrics(&mut reg);
        assert_eq!(reg.counter_value("pipeline.btb.mispredicts"), Some(2));

        btb.reset_stats();
        assert_eq!(btb.stats().lookups.get(), 0);
        // Learned entries survive a stats reset.
        assert_eq!(btb.predict(0x40), Some(0x100));
    }
}
