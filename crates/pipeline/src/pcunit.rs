//! Program-counter unit models for paper Section 6 (Figures 10–12).
//!
//! The paper argues that the interleaved scheme's extra implementation
//! cost over the blocked scheme is concentrated in the PC unit: where the
//! blocked design only replicates the EPC register per context, the
//! interleaved design must determine the *next* PC of every context
//! concurrently, holding it in a per-context NPC register until the
//! context is next selected to drive the PC bus. These models capture the
//! architectural state and behaviour of each design (exception save and
//! restore, context restart, NPC holding with mispredict-update marking),
//! plus a gate-level-ish inventory of the storage and multiplexing each
//! needs — the quantities behind the paper's "manageable increase in
//! complexity" conclusion.

use std::fmt;

/// Sources that can drive the PC bus (paper Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcSource {
    /// Old PC plus the instruction size (sequential flow).
    Sequential,
    /// Branch target buffer (predicted-taken branch).
    BtbTarget(u64),
    /// Computed branch target (mis- or unpredicted branch).
    ComputedBranch(u64),
    /// Exception vector.
    ExceptionVector(u64),
    /// EPC register (restore from an exception / context restart).
    Epc,
}

/// Storage and multiplexing inventory of a PC unit design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardwareCost {
    /// Architectural registers in the unit (PC-width each unless noted).
    pub registers: u32,
    /// Total register bits (32-bit PCs plus status bits).
    pub register_bits: u32,
    /// Inputs across the PC-bus and NPC multiplexers.
    pub mux_inputs: u32,
    /// Per-instruction pipeline tag bits added (the interleaved CID).
    pub pipeline_tag_bits: u32,
}

impl fmt::Display for HardwareCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} regs / {} bits / {} mux inputs / {} tag bits",
            self.registers, self.register_bits, self.mux_inputs, self.pipeline_tag_bits
        )
    }
}

const PC_BITS: u32 = 32;

/// The single-context PC unit of Figure 10: one PC, one EPC.
#[derive(Debug, Clone)]
pub struct SingleCtxPcUnit {
    pc: u64,
    epc: u64,
    in_exception: bool,
}

impl SingleCtxPcUnit {
    /// Creates the unit with the reset PC.
    pub fn new(reset_pc: u64) -> SingleCtxPcUnit {
        SingleCtxPcUnit { pc: reset_pc, epc: 0, in_exception: false }
    }

    /// Current PC (the value on the PC bus this cycle).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Advances the PC from the given source. During normal execution the
    /// retiring instruction's address is loaded into the EPC.
    pub fn step(&mut self, source: PcSource) {
        if !self.in_exception {
            self.epc = self.pc;
        }
        self.pc = match source {
            PcSource::Sequential => self.pc + 4,
            PcSource::BtbTarget(t) | PcSource::ComputedBranch(t) => t,
            PcSource::ExceptionVector(v) => {
                self.in_exception = true;
                v
            }
            PcSource::Epc => {
                self.in_exception = false;
                self.epc
            }
        };
    }

    /// Whether the unit is executing an exception handler.
    pub fn in_exception(&self) -> bool {
        self.in_exception
    }

    /// Hardware inventory: PC, EPC, and the pipeline PC chain
    /// (`pipe_depth` stages), with a five-input PC-bus multiplexer.
    pub fn cost(pipe_depth: u32) -> HardwareCost {
        let registers = 2 + pipe_depth;
        HardwareCost {
            registers,
            register_bits: registers * PC_BITS,
            mux_inputs: 5,
            pipeline_tag_bits: 0,
        }
    }
}

/// The blocked PC unit of Figure 11: one PC, one EPC *per context*
/// (doubling as the context-restart register).
#[derive(Debug, Clone)]
pub struct BlockedPcUnit {
    pc: u64,
    epc: Vec<u64>,
    active: usize,
    in_exception: bool,
}

impl BlockedPcUnit {
    /// Creates the unit for `contexts` contexts, each starting at its
    /// entry in `reset_pcs`.
    ///
    /// # Panics
    ///
    /// Panics if `reset_pcs` is empty.
    pub fn new(reset_pcs: &[u64]) -> BlockedPcUnit {
        assert!(!reset_pcs.is_empty(), "need at least one context");
        BlockedPcUnit { pc: reset_pcs[0], epc: reset_pcs.to_vec(), active: 0, in_exception: false }
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// The active context.
    pub fn active(&self) -> usize {
        self.active
    }

    /// Advances the active context's PC (as in the single-context unit;
    /// only the active context's EPC is updated).
    pub fn step(&mut self, source: PcSource) {
        if !self.in_exception {
            self.epc[self.active] = self.pc;
        }
        self.pc = match source {
            PcSource::Sequential => self.pc + 4,
            PcSource::BtbTarget(t) | PcSource::ComputedBranch(t) => t,
            PcSource::ExceptionVector(v) => {
                self.in_exception = true;
                v
            }
            PcSource::Epc => {
                self.in_exception = false;
                self.epc[self.active]
            }
        };
    }

    /// Context switch (at the normal exception point): the blocked
    /// context's EPC stops loading — it holds the address of the
    /// instruction that caused the switch, from which the context later
    /// restarts — and the next context's EPC drives the PC bus.
    pub fn switch_context(&mut self, to: usize, restart_pc: u64) {
        assert!(to < self.epc.len(), "context out of range");
        self.epc[self.active] = restart_pc;
        self.active = to;
        self.pc = self.epc[to];
    }

    /// Saved restart PC of a context.
    pub fn restart_pc(&self, ctx: usize) -> u64 {
        self.epc[ctx]
    }

    /// Hardware inventory: like the single-context unit plus one EPC per
    /// additional context (the only change, per the paper).
    pub fn cost(contexts: u32, pipe_depth: u32) -> HardwareCost {
        let base = SingleCtxPcUnit::cost(pipe_depth);
        let extra_epcs = contexts.saturating_sub(1);
        HardwareCost {
            registers: base.registers + extra_epcs,
            register_bits: base.register_bits + extra_epcs * PC_BITS,
            // The EPC leg of the PC-bus mux widens to `contexts` inputs.
            mux_inputs: base.mux_inputs + extra_epcs,
            pipeline_tag_bits: 0,
        }
    }
}

/// A per-context next-PC holding register of the interleaved unit
/// (Figure 12).
#[derive(Debug, Clone, Copy)]
struct NpcReg {
    value: u64,
    /// Set when the register holds a computed target loaded by a
    /// mispredicted branch: the BTB must be updated when this register
    /// next drives the PC bus.
    update_btb: bool,
}

/// The interleaved PC unit of Figure 12: per-context NPC holding
/// registers (fed by sequential / predicted / computed sources) plus
/// per-context EPCs, with every in-flight instruction tagged by its
/// context identifier (CID).
#[derive(Debug, Clone)]
pub struct InterleavedPcUnit {
    npc: Vec<NpcReg>,
    epc: Vec<u64>,
    epc_valid: Vec<bool>,
}

impl InterleavedPcUnit {
    /// Creates the unit for the given per-context reset PCs.
    ///
    /// # Panics
    ///
    /// Panics if `reset_pcs` is empty.
    pub fn new(reset_pcs: &[u64]) -> InterleavedPcUnit {
        assert!(!reset_pcs.is_empty(), "need at least one context");
        InterleavedPcUnit {
            npc: reset_pcs.iter().map(|&pc| NpcReg { value: pc, update_btb: false }).collect(),
            epc: reset_pcs.to_vec(),
            epc_valid: vec![false; reset_pcs.len()],
        }
    }

    /// Number of contexts.
    pub fn contexts(&self) -> usize {
        self.npc.len()
    }

    /// Issues from `ctx`: drives its NPC onto the PC bus and reports
    /// whether the BTB must be updated (a previously mispredicted branch's
    /// computed target finally issuing).
    ///
    /// If the context is resuming from unavailability, its EPC drives the
    /// bus instead (the re-executed faulting instruction).
    pub fn issue(&mut self, ctx: usize) -> (u64, bool) {
        if self.epc_valid[ctx] {
            self.epc_valid[ctx] = false;
            return (self.epc[ctx], false);
        }
        let reg = &mut self.npc[ctx];
        let update = reg.update_btb;
        reg.update_btb = false;
        (reg.value, update)
    }

    /// Loads `ctx`'s NPC from one of its sources, in the paper's priority
    /// order (computed branch overrides everything; the holding register
    /// otherwise retains its value).
    pub fn load_npc(&mut self, ctx: usize, source: PcSource, current_pc: u64) {
        let reg = &mut self.npc[ctx];
        match source {
            PcSource::ComputedBranch(target) => {
                reg.value = target;
                reg.update_btb = true;
            }
            PcSource::BtbTarget(target) if !reg.update_btb => {
                reg.value = target;
            }
            PcSource::Sequential if !reg.update_btb => {
                reg.value = current_pc + 4;
            }
            // Exception/EPC flows are handled by make_unavailable/resume;
            // a pending computed branch retains priority.
            _ => {}
        }
    }

    /// Marks `ctx` unavailable at the instruction at `fault_pc` (cache
    /// miss): the PC is saved in the context's EPC with its valid bit set,
    /// so the context re-executes from the faulting instruction when it
    /// becomes available again.
    pub fn make_unavailable(&mut self, ctx: usize, fault_pc: u64) {
        self.epc[ctx] = fault_pc;
        self.epc_valid[ctx] = true;
        self.npc[ctx].update_btb = false;
    }

    /// Whether `ctx` will resume from its EPC.
    pub fn resumes_from_epc(&self, ctx: usize) -> bool {
        self.epc_valid[ctx]
    }

    /// Hardware inventory: per-context NPC (PC bits + mispredict bit) and
    /// EPC (PC bits + valid bit), a three-input mux in front of every NPC,
    /// a PC-bus mux with an input per context (NPC) plus EPC/vector legs,
    /// and a CID tag on every pipeline stage.
    pub fn cost(contexts: u32, pipe_depth: u32) -> HardwareCost {
        let cid_bits = 32 - (contexts.max(2) - 1).leading_zeros(); // ceil(log2)
        let registers = 2 * contexts + pipe_depth;
        HardwareCost {
            registers,
            register_bits: contexts * (PC_BITS + 1) * 2 + pipe_depth * PC_BITS,
            mux_inputs: 3 * contexts + contexts + 2,
            pipeline_tag_bits: cid_bits * pipe_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sequential_and_branch_flow() {
        let mut u = SingleCtxPcUnit::new(0x100);
        u.step(PcSource::Sequential);
        assert_eq!(u.pc(), 0x104);
        u.step(PcSource::BtbTarget(0x200));
        assert_eq!(u.pc(), 0x200);
        u.step(PcSource::ComputedBranch(0x300));
        assert_eq!(u.pc(), 0x300);
    }

    #[test]
    fn single_exception_save_restore() {
        let mut u = SingleCtxPcUnit::new(0x100);
        u.step(PcSource::Sequential); // pc 0x104, epc 0x100
        u.step(PcSource::ExceptionVector(0x80)); // guilty instr 0x104 in EPC
        assert!(u.in_exception());
        assert_eq!(u.pc(), 0x80);
        u.step(PcSource::Sequential); // handler runs; EPC frozen
        u.step(PcSource::Epc); // ERET
        assert!(!u.in_exception());
        assert_eq!(u.pc(), 0x104, "execution continues at the guilty instruction");
    }

    #[test]
    fn blocked_switch_and_restart() {
        let mut u = BlockedPcUnit::new(&[0x100, 0x2000]);
        u.step(PcSource::Sequential);
        u.step(PcSource::Sequential); // ctx 0 at 0x108
                                      // Cache miss at 0x108: switch to context 1.
        u.switch_context(1, 0x108);
        assert_eq!(u.active(), 1);
        assert_eq!(u.pc(), 0x2000, "context 1 starts at its saved PC");
        u.step(PcSource::Sequential);
        // Switch back: context 0 restarts at the missing instruction.
        u.switch_context(0, 0x2004);
        assert_eq!(u.pc(), 0x108);
        assert_eq!(u.restart_pc(1), 0x2004);
    }

    #[test]
    fn blocked_exception_uses_active_epc() {
        let mut u = BlockedPcUnit::new(&[0x100, 0x2000]);
        u.step(PcSource::Sequential);
        u.step(PcSource::ExceptionVector(0x80));
        u.step(PcSource::Epc);
        assert_eq!(u.pc(), 0x104);
    }

    #[test]
    fn interleaved_npc_holding() {
        let mut u = InterleavedPcUnit::new(&[0x100, 0x200]);
        // ctx 0 issues; its next PC becomes sequential.
        let (pc0, update) = u.issue(0);
        assert_eq!((pc0, update), (0x100, false));
        u.load_npc(0, PcSource::Sequential, pc0);
        // ctx 1 issues meanwhile.
        let (pc1, _) = u.issue(1);
        assert_eq!(pc1, 0x200);
        u.load_npc(1, PcSource::BtbTarget(0x280), pc1);
        // Back to ctx 0: held sequential value.
        assert_eq!(u.issue(0).0, 0x104);
        // ctx 1 gets its predicted target.
        assert_eq!(u.issue(1).0, 0x280);
    }

    #[test]
    fn interleaved_mispredict_priority_and_btb_update() {
        let mut u = InterleavedPcUnit::new(&[0x100]);
        let (pc, _) = u.issue(0);
        // A branch at `pc` mispredicted: the computed target is loaded and
        // takes priority over later sequential/predicted loads.
        u.load_npc(0, PcSource::ComputedBranch(0x500), pc);
        u.load_npc(0, PcSource::Sequential, pc);
        u.load_npc(0, PcSource::BtbTarget(0x900), pc);
        let (next, update_btb) = u.issue(0);
        assert_eq!(next, 0x500);
        assert!(update_btb, "the BTB is updated when the computed target issues");
        // The flag clears after one issue.
        u.load_npc(0, PcSource::Sequential, next);
        assert_eq!(u.issue(0), (0x504, false));
    }

    #[test]
    fn interleaved_unavailability_resumes_from_epc() {
        let mut u = InterleavedPcUnit::new(&[0x100, 0x200]);
        let (pc, _) = u.issue(0);
        u.load_npc(0, PcSource::Sequential, pc);
        // The instruction at 0x100 missed: save it; resume re-executes it.
        u.make_unavailable(0, 0x100);
        assert!(u.resumes_from_epc(0));
        assert_eq!(u.issue(0), (0x100, false));
        assert!(!u.resumes_from_epc(0));
    }

    #[test]
    fn costs_grow_as_the_paper_describes() {
        let single = SingleCtxPcUnit::cost(7);
        let blocked2 = BlockedPcUnit::cost(2, 7);
        let blocked4 = BlockedPcUnit::cost(4, 7);
        let inter2 = InterleavedPcUnit::cost(2, 7);
        let inter4 = InterleavedPcUnit::cost(4, 7);

        // Blocked adds exactly one EPC per extra context.
        assert_eq!(blocked2.registers, single.registers + 1);
        assert_eq!(blocked4.registers, single.registers + 3);
        assert_eq!(blocked2.pipeline_tag_bits, 0);

        // Interleaved replicates NPC+EPC per context and tags the pipe.
        assert!(inter2.registers > blocked2.registers);
        assert!(inter4.mux_inputs > blocked4.mux_inputs);
        assert!(inter4.pipeline_tag_bits > 0);
        assert_eq!(inter4.pipeline_tag_bits, 2 * 7);

        // But the increase stays modest (the paper's conclusion): the
        // 4-context interleaved unit is within ~2x of blocked storage.
        assert!(inter4.register_bits < 2 * blocked4.register_bits + 16 * 7 * 4);
    }

    #[test]
    #[should_panic]
    fn blocked_switch_out_of_range_panics() {
        let mut u = BlockedPcUnit::new(&[0x100]);
        u.switch_context(3, 0x104);
    }
}
