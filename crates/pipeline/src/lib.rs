//! In-order pipeline machinery: BTB, scoreboard, front-end, issue window.
//!
//! Models the processor pipeline of paper Figure 5: a seven-stage integer
//! pipeline (IF1 IF2 RF EX DF1 DF2 WB — the R4000's tag-check stage folded
//! into DF2) and a nine-stage floating-point pipeline (IF1 IF2 RF EX1–EX5
//! WB), both with full result forwarding. The pieces here are
//! context-agnostic building blocks; the `interleave-core` crate composes
//! them with context state and the blocked/interleaved scheduling schemes:
//!
//! * [`Btb`] — the 2048-entry direct-mapped branch target buffer that
//!   reduces a correctly predicted branch's penalty to zero (mispredicts
//!   cost [`MISPREDICT_PENALTY`] cycles);
//! * [`Scoreboard`] — per-context register ready-times and shared
//!   functional-unit occupancy, tracking true and output dependences
//!   (anti-dependences cannot be violated in this in-order, read-at-issue
//!   model);
//! * [`FrontEnd`] — the three fetch/decode stages (IF1, IF2, RF) as a rigid
//!   shift register of instruction slots and attributed bubbles, with
//!   selective per-context squash (the key interleaved-scheme mechanism);
//! * [`IssueWindow`] — instructions between issue (entering EX) and
//!   retirement (leaving WB), supporting the selective squash that gives
//!   the interleaved scheme its low context-switch cost;
//! * [`pcunit`] — behavioural and cost models of the single-context,
//!   blocked, and interleaved PC-unit designs of paper Section 6
//!   (Figures 10–12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod front;
pub mod pcunit;
mod scoreboard;
mod window;

pub use btb::{Btb, BtbStats};
pub use front::{BubbleCause, FrontEnd, FrontSlot, Slot, SquashedSlots};
pub use scoreboard::Scoreboard;
pub use window::{InFlight, IssueWindow, WindowStats};

/// Depth of the integer pipeline (IF1 IF2 RF EX DF1 DF2 WB).
pub const INT_DEPTH: usize = 7;

/// Depth of the floating-point pipeline (IF1 IF2 RF EX1..EX5 WB).
pub const FP_DEPTH: usize = 9;

/// Number of front-end stages before issue (IF1, IF2, RF).
pub const FRONT_DEPTH: usize = 3;

/// Cycles from issue (entering EX) to retirement (end of WB) for integer
/// instructions: EX, DF1, DF2, WB.
pub const INT_ISSUE_TO_RETIRE: u64 = 3;

/// Cycles from issue to retirement for FP instructions: EX1..EX5, WB.
pub const FP_ISSUE_TO_RETIRE: u64 = 5;

/// Penalty in cycles for a mispredicted branch (resolved in EX; the three
/// wrong-path fetches behind it are squashed).
pub const MISPREDICT_PENALTY: u64 = 3;
