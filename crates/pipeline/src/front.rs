use interleave_isa::Instr;
use interleave_obs::Registry;

use crate::FRONT_DEPTH;

/// Why a front-end slot carries no instruction.
///
/// The cause travels with the bubble so the cycle in which it reaches the
/// issue point can be attributed to the right execution-time category
/// (paper Figures 6–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubbleCause {
    /// Refill after a context squash or pipeline flush: context-switch
    /// overhead.
    Switch,
    /// Squashed wrong-path fetch after a branch misprediction: a control
    /// hazard, charged as a (short) pipeline-dependency stall.
    Mispredict,
    /// Fetch stalled on instruction memory (I-cache or I-TLB miss).
    InstMem,
    /// No context was available to fetch from because all were waiting on
    /// outstanding data references.
    DataWait,
    /// No context available: all waiting on synchronization.
    SyncWait,
    /// No context available: all backing off long instruction latencies.
    BackoffWait,
    /// Nothing left to fetch (streams exhausted); not charged to any
    /// category.
    Drained,
}

impl BubbleCause {
    /// Every cause, in a fixed order matching [`BubbleCause::slot`].
    pub const ALL: [BubbleCause; 7] = [
        BubbleCause::Switch,
        BubbleCause::Mispredict,
        BubbleCause::InstMem,
        BubbleCause::DataWait,
        BubbleCause::SyncWait,
        BubbleCause::BackoffWait,
        BubbleCause::Drained,
    ];

    /// Stable metric-name suffix for this cause.
    pub fn label(self) -> &'static str {
        match self {
            BubbleCause::Switch => "switch",
            BubbleCause::Mispredict => "mispredict",
            BubbleCause::InstMem => "inst_mem",
            BubbleCause::DataWait => "data_wait",
            BubbleCause::SyncWait => "sync_wait",
            BubbleCause::BackoffWait => "backoff_wait",
            BubbleCause::Drained => "drained",
        }
    }

    /// Index into per-cause count arrays.
    fn slot(self) -> usize {
        match self {
            BubbleCause::Switch => 0,
            BubbleCause::Mispredict => 1,
            BubbleCause::InstMem => 2,
            BubbleCause::DataWait => 3,
            BubbleCause::SyncWait => 4,
            BubbleCause::BackoffWait => 5,
            BubbleCause::Drained => 6,
        }
    }
}

/// A fetched instruction travelling down the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Hardware context the instruction was fetched from.
    pub ctx: usize,
    /// Position in the context's instruction stream.
    pub fetch_index: u64,
    /// The instruction itself.
    pub instr: Instr,
    /// Whether this was fetched down a mispredicted path (it will be
    /// squashed when the branch resolves and must never issue).
    pub wrong_path: bool,
    /// For branches: whether the BTB mispredicted this instance *at fetch
    /// time*. The prediction is bound here because the shared BTB may be
    /// updated by other contexts between fetch and issue.
    pub mispredicted: bool,
}

/// One front-end stage: either an instruction or an attributed bubble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrontSlot {
    /// No instruction; carries the cause for attribution.
    Bubble(BubbleCause),
    /// A fetched instruction.
    Instr(Slot),
}

impl FrontSlot {
    /// The instruction slot, if occupied.
    pub fn slot(&self) -> Option<&Slot> {
        match self {
            FrontSlot::Instr(s) => Some(s),
            FrontSlot::Bubble(_) => None,
        }
    }
}

/// Slots removed from the front end by a squash — at most one per stage,
/// held inline so the per-squash path allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct SquashedSlots {
    slots: [Option<Slot>; FRONT_DEPTH],
    len: usize,
}

impl SquashedSlots {
    fn new() -> SquashedSlots {
        SquashedSlots { slots: [None; FRONT_DEPTH], len: 0 }
    }

    fn push(&mut self, slot: Slot) {
        self.slots[self.len] = Some(slot);
        self.len += 1;
    }

    /// Number of removed slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the squash removed nothing.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the removed slots in stage order (IF1 first).
    pub fn iter(&self) -> impl Iterator<Item = &Slot> {
        self.slots[..self.len].iter().map(|s| s.as_ref().expect("slot within len"))
    }
}

/// The three pre-issue pipeline stages (IF1, IF2, RF) as a rigid shift
/// register.
///
/// "Rigid" means bubbles do not compress: when the RF stage stalls the
/// whole front end holds, exactly like the simple in-order pipelines the
/// paper models. The interleaved scheme's key mechanism lives here:
/// [`FrontEnd::squash_ctx`] removes only one context's instructions,
/// leaving other contexts' work in place.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    /// `stages[0]` is IF1 (youngest), `stages[FRONT_DEPTH - 1]` is RF.
    stages: [FrontSlot; FRONT_DEPTH],
    /// Per-cause bubble cycles entering IF1 (via [`FrontEnd::shift`]) or
    /// created in place by a squash, indexed by [`BubbleCause::slot`].
    bubbles: [u64; 7],
}

impl FrontEnd {
    /// Creates an empty front end (drained bubbles).
    pub fn new() -> FrontEnd {
        FrontEnd { stages: [FrontSlot::Bubble(BubbleCause::Drained); FRONT_DEPTH], bubbles: [0; 7] }
    }

    /// The slot currently at the issue point (RF).
    pub fn rf(&self) -> &FrontSlot {
        &self.stages[FRONT_DEPTH - 1]
    }

    /// Advances the pipe one stage, inserting `incoming` at IF1 and
    /// returning what left RF. Call only when the RF occupant issued or
    /// was a bubble.
    pub fn shift(&mut self, incoming: FrontSlot) -> FrontSlot {
        if let FrontSlot::Bubble(cause) = incoming {
            self.bubbles[cause.slot()] += 1;
        }
        let outgoing = self.stages[FRONT_DEPTH - 1];
        for i in (1..FRONT_DEPTH).rev() {
            self.stages[i] = self.stages[i - 1];
        }
        self.stages[0] = incoming;
        outgoing
    }

    /// Squashes all of `ctx`'s instructions (replacing them with
    /// switch-overhead bubbles) and returns the removed slots so the
    /// caller can roll the context's fetch cursor back.
    pub fn squash_ctx(&mut self, ctx: usize) -> SquashedSlots {
        self.squash_where(|s| s.ctx == ctx, BubbleCause::Switch)
    }

    /// Squashes `ctx`'s wrong-path fetches after a branch resolves,
    /// replacing them with mispredict bubbles.
    pub fn squash_wrong_path(&mut self, ctx: usize) -> SquashedSlots {
        self.squash_where(|s| s.ctx == ctx && s.wrong_path, BubbleCause::Mispredict)
    }

    /// Flushes every instruction (the blocked scheme's full-pipe flush on a
    /// cache miss) and returns the removed slots.
    pub fn squash_all(&mut self) -> SquashedSlots {
        self.squash_where(|_| true, BubbleCause::Switch)
    }

    fn squash_where(&mut self, pred: impl Fn(&Slot) -> bool, cause: BubbleCause) -> SquashedSlots {
        interleave_obs::profile::mark("pipeline.squash");
        let mut squashed = SquashedSlots::new();
        for stage in &mut self.stages {
            if let FrontSlot::Instr(s) = stage {
                if pred(s) {
                    squashed.push(*s);
                    *stage = FrontSlot::Bubble(cause);
                    self.bubbles[cause.slot()] += 1;
                }
            }
        }
        squashed
    }

    /// Number of instructions (non-bubbles) currently in the front end.
    pub fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| matches!(s, FrontSlot::Instr(_))).count()
    }

    /// Instructions of `ctx` currently in the front end.
    pub fn count_ctx(&self, ctx: usize) -> usize {
        self.stages.iter().filter_map(FrontSlot::slot).filter(|s| s.ctx == ctx).count()
    }

    /// Iterates over the stages from IF1 (youngest) to RF (oldest).
    pub fn iter(&self) -> impl Iterator<Item = &FrontSlot> {
        self.stages.iter()
    }

    /// If every stage holds a bubble of the same cause, that cause.
    ///
    /// This is the precondition for the idle-skip bulk path: shifting in
    /// another bubble of the same cause leaves the pipe contents unchanged,
    /// so `n` such cycles can be charged with [`FrontEnd::record_bubbles`].
    pub fn uniform_bubble(&self) -> Option<BubbleCause> {
        match self.stages[0] {
            FrontSlot::Bubble(c) if self.stages.iter().all(|s| *s == FrontSlot::Bubble(c)) => {
                Some(c)
            }
            _ => None,
        }
    }

    /// Charges `n` bubble cycles of `cause` without shifting the pipe —
    /// the bulk equivalent of `n` [`FrontEnd::shift`] calls with that
    /// bubble when the pipe is already uniformly filled with it.
    pub fn record_bubbles(&mut self, cause: BubbleCause, n: u64) {
        self.bubbles[cause.slot()] += n;
    }

    /// Bubble cycles accumulated for `cause` (entered at IF1 or created
    /// in place by a squash).
    pub fn bubble_count(&self, cause: BubbleCause) -> u64 {
        self.bubbles[cause.slot()]
    }

    /// Clears the bubble counters (pipe contents are untouched).
    pub fn reset_stats(&mut self) {
        self.bubbles = [0; 7];
    }

    /// Registers bubble counters under `pipeline.front.bubbles.*`.
    pub fn collect_metrics(&self, reg: &mut Registry) {
        for cause in BubbleCause::ALL {
            reg.counter(
                &format!("pipeline.front.bubbles.{}", cause.label()),
                self.bubbles[cause.slot()],
            );
        }
    }
}

impl Default for FrontEnd {
    fn default() -> Self {
        FrontEnd::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave_isa::Instr;

    fn slot(ctx: usize, index: u64) -> FrontSlot {
        FrontSlot::Instr(Slot {
            ctx,
            fetch_index: index,
            instr: Instr::nop(index * 4),
            wrong_path: false,
            mispredicted: false,
        })
    }

    fn wrong(ctx: usize, index: u64) -> FrontSlot {
        FrontSlot::Instr(Slot {
            ctx,
            fetch_index: index,
            instr: Instr::nop(index * 4),
            wrong_path: true,
            mispredicted: false,
        })
    }

    #[test]
    fn instructions_take_three_cycles_to_reach_rf() {
        let mut fe = FrontEnd::new();
        fe.shift(slot(0, 0));
        assert!(fe.rf().slot().is_none());
        fe.shift(slot(0, 1));
        assert!(fe.rf().slot().is_none());
        fe.shift(slot(0, 2));
        assert_eq!(fe.rf().slot().unwrap().fetch_index, 0);
    }

    #[test]
    fn shift_returns_outgoing() {
        let mut fe = FrontEnd::new();
        for i in 0..3 {
            fe.shift(slot(0, i));
        }
        let out = fe.shift(slot(0, 3));
        assert_eq!(out.slot().unwrap().fetch_index, 0);
    }

    #[test]
    fn squash_returns_slots_for_rollback() {
        let mut fe = FrontEnd::new();
        fe.shift(slot(0, 7));
        fe.shift(slot(1, 3));
        let removed = fe.squash_all();
        assert_eq!(removed.len(), 2);
        assert!(removed.iter().any(|s| s.ctx == 0 && s.fetch_index == 7));
        assert!(removed.iter().any(|s| s.ctx == 1 && s.fetch_index == 3));
    }

    #[test]
    fn squash_ctx_is_selective() {
        let mut fe = FrontEnd::new();
        fe.shift(slot(0, 0));
        fe.shift(slot(1, 0));
        fe.shift(slot(0, 1));
        assert_eq!(fe.squash_ctx(0).len(), 2);
        assert_eq!(fe.count_ctx(0), 0);
        assert_eq!(fe.count_ctx(1), 1);
        // Squashed slots became switch bubbles.
        assert_eq!(
            fe.iter().filter(|s| matches!(s, FrontSlot::Bubble(BubbleCause::Switch))).count(),
            2
        );
    }

    #[test]
    fn squash_all_flushes() {
        let mut fe = FrontEnd::new();
        fe.shift(slot(0, 0));
        fe.shift(slot(1, 0));
        fe.shift(slot(2, 0));
        assert_eq!(fe.squash_all().len(), 3);
        assert_eq!(fe.occupancy(), 0);
    }

    #[test]
    fn squash_wrong_path_leaves_real_instrs() {
        let mut fe = FrontEnd::new();
        fe.shift(slot(0, 5));
        fe.shift(wrong(0, 6));
        fe.shift(wrong(1, 9));
        assert_eq!(fe.squash_wrong_path(0).len(), 1);
        assert_eq!(fe.count_ctx(0), 1);
        assert_eq!(fe.count_ctx(1), 1);
        assert_eq!(
            fe.iter().filter(|s| matches!(s, FrontSlot::Bubble(BubbleCause::Mispredict))).count(),
            1
        );
    }

    #[test]
    fn empty_front_has_drained_bubbles() {
        let fe = FrontEnd::new();
        assert_eq!(fe.occupancy(), 0);
        assert!(matches!(fe.rf(), FrontSlot::Bubble(BubbleCause::Drained)));
    }

    #[test]
    fn uniform_bubble_detects_homogeneous_pipe() {
        let mut fe = FrontEnd::new();
        assert_eq!(fe.uniform_bubble(), Some(BubbleCause::Drained));
        fe.shift(FrontSlot::Bubble(BubbleCause::DataWait));
        assert_eq!(fe.uniform_bubble(), None); // mixed DataWait/Drained
        fe.shift(FrontSlot::Bubble(BubbleCause::DataWait));
        fe.shift(FrontSlot::Bubble(BubbleCause::DataWait));
        assert_eq!(fe.uniform_bubble(), Some(BubbleCause::DataWait));
        fe.shift(slot(0, 0));
        assert_eq!(fe.uniform_bubble(), None);
    }

    #[test]
    fn record_bubbles_charges_in_bulk() {
        let mut fe = FrontEnd::new();
        fe.record_bubbles(BubbleCause::SyncWait, 17);
        assert_eq!(fe.bubble_count(BubbleCause::SyncWait), 17);
        assert_eq!(fe.occupancy(), 0);
    }

    #[test]
    fn bubble_counters_track_entry_and_squash() {
        let mut fe = FrontEnd::new();
        fe.shift(FrontSlot::Bubble(BubbleCause::InstMem));
        fe.shift(FrontSlot::Bubble(BubbleCause::InstMem));
        fe.shift(slot(0, 0));
        fe.shift(slot(0, 1));
        fe.squash_ctx(0); // two instrs become switch bubbles
        assert_eq!(fe.bubble_count(BubbleCause::InstMem), 2);
        assert_eq!(fe.bubble_count(BubbleCause::Switch), 2);
        assert_eq!(fe.bubble_count(BubbleCause::Drained), 0);

        let mut reg = interleave_obs::Registry::new();
        fe.collect_metrics(&mut reg);
        assert_eq!(reg.counter_value("pipeline.front.bubbles.inst_mem"), Some(2));
        assert_eq!(reg.counter_value("pipeline.front.bubbles.switch"), Some(2));

        fe.reset_stats();
        assert_eq!(fe.bubble_count(BubbleCause::Switch), 0);
    }
}
