//! Property-based tests for the pipeline building blocks: the scoreboard
//! must never permit a true-dependence violation, and the BTB must agree
//! with a reference predictor model.

use interleave_isa::{Instr, Op, Reg, TimingModel};
use interleave_pipeline::{Btb, Scoreboard};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct OpSpec {
    op_sel: u8,
    dst: u8,
    src: u8,
}

fn op_spec() -> impl Strategy<Value = OpSpec> {
    (0u8..6, 0u8..16, 0u8..16).prop_map(|(op_sel, dst, src)| OpSpec { op_sel, dst, src })
}

fn materialize(spec: OpSpec, pc: u64) -> Instr {
    let dst = Reg::int(8 + spec.dst);
    let src = Reg::int(8 + spec.src);
    match spec.op_sel {
        0 => Instr::alu(pc, Some(dst), Some(src), None),
        1 => Instr::arith(pc, Op::Shift, Some(dst), Some(src), None),
        2 => Instr::arith(pc, Op::IntMul, Some(dst), Some(src), None),
        3 => Instr::arith(pc, Op::IntDiv, Some(dst), Some(src), None),
        4 => Instr::load(pc, dst, Reg::int(29), pc * 8),
        _ => Instr::store(pc, src, Reg::int(29), pc * 8),
    }
}

proptest! {
    /// In-order issue through the scoreboard never reads a register before
    /// its producer's latency has elapsed, never starts before the
    /// candidate cycle, and keeps the functional units exclusive.
    #[test]
    fn scoreboard_never_violates_dependences(
        specs in proptest::collection::vec(op_spec(), 1..80),
    ) {
        let timing = TimingModel::r4000_like();
        let mut sb = Scoreboard::new(1);
        // reference: register -> cycle its value becomes forwardable
        let mut ready: HashMap<usize, u64> = HashMap::new();
        let mut fu_free: HashMap<u8, u64> = HashMap::new();
        let mut now = 0u64;
        for (i, spec) in specs.iter().enumerate() {
            let instr = materialize(*spec, i as u64);
            let earliest = sb.earliest_issue(0, &instr, &timing, now + 1);
            prop_assert!(earliest > now, "issue before candidate");

            // True dependences respected.
            for src in instr.sources() {
                if let Some(&r) = ready.get(&src.index()) {
                    prop_assert!(earliest >= r, "RAW violation on {src}");
                }
            }
            // Structural: the unit must be free.
            if let Some(fu) = instr.op.fu() {
                if let Some(&f) = fu_free.get(&(fu as u8)) {
                    prop_assert!(earliest >= f, "structural violation on {fu:?}");
                }
            }

            sb.issue(0, &instr, &timing, earliest);
            let t = timing.timing(instr.op);
            if let Some(dst) = instr.dest() {
                ready.insert(dst.index(), earliest + u64::from(t.latency));
            }
            if let Some(fu) = instr.op.fu() {
                fu_free.insert(fu as u8, earliest + u64::from(t.issue));
            }
            now = earliest;
        }
    }

    /// Clearing a context releases every pending write it owns.
    #[test]
    fn scoreboard_clear_releases_everything(
        specs in proptest::collection::vec(op_spec(), 1..40),
        clear_at in 0usize..40,
    ) {
        let timing = TimingModel::r4000_like();
        let mut sb = Scoreboard::new(2);
        let mut now = 0u64;
        for (i, spec) in specs.iter().enumerate() {
            let instr = materialize(*spec, i as u64);
            let earliest = sb.earliest_issue(0, &instr, &timing, now + 1);
            sb.issue(0, &instr, &timing, earliest);
            now = earliest;
            if i == clear_at.min(specs.len() - 1) {
                sb.clear_context(0, now);
                for r in 0..32u8 {
                    prop_assert!(
                        sb.ready_at(0, Reg::int(r)) <= now,
                        "register r{r} still pending after clear"
                    );
                }
            }
        }
    }

    /// The BTB behaves exactly like a direct-mapped map of (index ->
    /// (tag, target)) with install-on-taken / evict-on-not-taken.
    #[test]
    fn btb_matches_reference_model(
        branches in proptest::collection::vec((0u64..4096, any::<bool>(), 0u64..1 << 20), 1..200),
    ) {
        let entries = 64u64;
        let mut btb = Btb::new(entries as usize);
        let mut reference: HashMap<u64, (u64, u64)> = HashMap::new(); // index -> (tag, target)
        for (word, taken, target) in branches {
            let pc = word * 4;
            let index = word % entries;
            let tag = word / entries;
            let target = target * 4;

            let model_prediction = match reference.get(&index) {
                Some(&(t, tgt)) if t == tag => Some(tgt),
                _ => None,
            };
            prop_assert_eq!(btb.predict(pc), model_prediction);
            let model_correct = match model_prediction {
                Some(tgt) => taken && tgt == target,
                None => !taken,
            };
            prop_assert_eq!(btb.predicts_correctly(pc, taken, target), model_correct);

            btb.update(pc, taken, target);
            if taken {
                reference.insert(index, (tag, target));
            } else if matches!(reference.get(&index), Some(&(t, _)) if t == tag) {
                reference.remove(&index);
            }
        }
    }
}
