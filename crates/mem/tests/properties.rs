//! Property-based tests for the memory hierarchy: the direct-mapped cache
//! against a reference model, FIFO TLB semantics, and system-level timing
//! invariants under random access sequences.

use interleave_isa::Access;
use interleave_mem::{CacheParams, DirectCache, DirectTlb, MemConfig, Resource, UniMemSystem};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum CacheOp {
    Fill { addr: u32, dirty: bool },
    Invalidate { addr: u32 },
    Probe { addr: u32 },
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        (any::<u32>(), any::<bool>()).prop_map(|(addr, dirty)| CacheOp::Fill { addr, dirty }),
        any::<u32>().prop_map(|addr| CacheOp::Invalidate { addr }),
        any::<u32>().prop_map(|addr| CacheOp::Probe { addr }),
    ]
}

fn small_params() -> CacheParams {
    CacheParams {
        size: 512,
        line: 32,
        fetch_lines: 1,
        read_occupancy: 1,
        write_occupancy: 1,
        invalidate_occupancy: 1,
        fill_occupancy: 1,
    }
}

proptest! {
    /// The direct-mapped cache agrees with a trivial index->tag map.
    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(cache_op(), 1..200)) {
        let mut cache = DirectCache::new(small_params());
        let lines = 512 / 32;
        let mut reference: HashMap<u64, u64> = HashMap::new(); // index -> line addr
        for op in ops {
            match op {
                CacheOp::Fill { addr, dirty } => {
                    let addr = u64::from(addr);
                    let line = addr / 32 * 32;
                    let index = (addr / 32) % lines;
                    let evicted = cache.fill(addr, dirty);
                    let prev = reference.insert(index, line);
                    match (evicted, prev) {
                        (Some(wb), Some(old)) => prop_assert_eq!(wb.addr, old),
                        (Some(_), None) => prop_assert!(false, "evicted from empty set"),
                        (None, Some(old)) => prop_assert_eq!(old, line, "silent eviction"),
                        (None, None) => {}
                    }
                }
                CacheOp::Invalidate { addr } => {
                    let addr = u64::from(addr);
                    let line = addr / 32 * 32;
                    let index = (addr / 32) % lines;
                    let was_present = reference.get(&index) == Some(&line);
                    prop_assert_eq!(cache.invalidate(addr), was_present);
                    if was_present {
                        reference.remove(&index);
                    }
                }
                CacheOp::Probe { addr } => {
                    let addr = u64::from(addr);
                    let line = addr / 32 * 32;
                    let index = (addr / 32) % lines;
                    let expect = reference.get(&index) == Some(&line);
                    prop_assert_eq!(cache.probe(addr), expect);
                }
            }
            prop_assert_eq!(cache.occupancy(), reference.len());
        }
    }

    /// The FIFO TLB holds exactly the most recent `capacity` distinct
    /// pages.
    #[test]
    fn tlb_holds_fifo_window(pages in proptest::collection::vec(0u64..64, 1..150)) {
        let capacity = 8;
        let mut tlb = DirectTlb::new(capacity, 4096);
        let mut fifo: Vec<u64> = Vec::new();
        for page in pages {
            let hit = tlb.access(page * 4096);
            let expect_hit = fifo.contains(&page);
            prop_assert_eq!(hit, expect_hit, "page {}", page);
            if !expect_hit {
                if fifo.len() == capacity {
                    fifo.remove(0);
                }
                fifo.push(page);
            }
        }
        for &page in &fifo {
            prop_assert!(tlb.probe(page * 4096));
        }
    }

    /// Resources serve FIFO and never travel back in time.
    #[test]
    fn resource_is_monotone(reqs in proptest::collection::vec((0u64..1000, 1u64..20), 1..100)) {
        let mut resource = Resource::new();
        let mut now = 0;
        let mut last_end = 0u64;
        for (delay, occupancy) in reqs {
            now += delay;
            let start = resource.acquire(now, occupancy);
            prop_assert!(start >= now, "service before request");
            prop_assert!(start >= last_end, "overlapping service");
            last_end = start + occupancy;
            prop_assert_eq!(resource.free_at(), last_end);
        }
    }

    /// System-level timing: every miss completes after its lookup, no
    /// earlier than the unloaded minimum, and re-accessing a filled line
    /// after completion hits.
    #[test]
    fn system_timing_invariants(
        accesses in proptest::collection::vec((any::<u16>(), any::<bool>(), 1u64..200), 1..120),
    ) {
        let mut cfg = MemConfig::workstation();
        cfg.tlbs_enabled = false;
        let mut mem = UniMemSystem::new(cfg);
        let mut now = 0u64;
        for (addr, write, gap) in accesses {
            now += gap;
            let addr = u64::from(addr) * 8;
            let kind = if write { Access::Write } else { Access::Read };
            match mem.access_data(now, addr, kind, 0) {
                interleave_mem::DataAccess::Hit => {}
                interleave_mem::DataAccess::Miss { ready_at, .. } => {
                    prop_assert!(ready_at >= now + 9, "faster than an L2 hit");
                    // Contention is bounded in this single-requester test.
                    prop_assert!(ready_at <= now + 2000, "implausible queueing");
                    // After completion the line is resident.
                    match mem.access_data(ready_at + 1, addr, Access::Read, 0) {
                        interleave_mem::DataAccess::Hit => {}
                        other => prop_assert!(false, "expected a hit after fill, got {other:?}"),
                    }
                    now = ready_at;
                }
                interleave_mem::DataAccess::TlbMiss { .. } => {
                    prop_assert!(false, "TLBs are disabled");
                }
            }
        }
        let stats = mem.stats();
        prop_assert_eq!(
            stats.l2_hits + stats.l2_misses <= stats.l1d_misses,
            true,
            "every secondary access stems from a primary miss"
        );
    }
}
