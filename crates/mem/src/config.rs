/// Geometry and port occupancies for one cache (paper Table 1).
///
/// All caches in the modeled system are direct-mapped with 32-byte lines.
/// Occupancies are the cycles the cache's port is busy per operation and
/// feed the contention model; they do not by themselves add latency to an
/// unloaded access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Lines brought in per fetch (the I-cache fetches two).
    pub fetch_lines: u64,
    /// Port occupancy of a read lookup, in cycles.
    pub read_occupancy: u64,
    /// Port occupancy of a write, in cycles.
    pub write_occupancy: u64,
    /// Port occupancy of an invalidation, in cycles.
    pub invalidate_occupancy: u64,
    /// Port occupancy of a line fill, in cycles.
    pub fill_occupancy: u64,
}

impl CacheParams {
    /// Number of lines in the cache.
    pub fn lines(&self) -> u64 {
        self.size / self.line
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two, the size is not a
    /// multiple of the line size, or any occupancy is zero.
    pub fn validate(&self) {
        assert!(self.line.is_power_of_two(), "line size must be a power of two");
        assert!(
            self.size.is_multiple_of(self.line) && self.size > 0,
            "size must be a line multiple"
        );
        assert!(self.fetch_lines >= 1);
        assert!(
            self.read_occupancy >= 1
                && self.write_occupancy >= 1
                && self.invalidate_occupancy >= 1
                && self.fill_occupancy >= 1,
            "occupancies must be at least one cycle"
        );
    }

    /// Primary data cache: 64 KB, 32 B lines, lockup-free (Table 1).
    pub fn primary_data() -> CacheParams {
        CacheParams {
            size: 64 * 1024,
            line: 32,
            fetch_lines: 1,
            read_occupancy: 1,
            write_occupancy: 1,
            invalidate_occupancy: 2,
            fill_occupancy: 1,
        }
    }

    /// Primary instruction cache: 64 KB, 32 B lines, blocking, fetches two
    /// lines, fill occupancy 8 (Table 1). Write/invalidate occupancies are
    /// unused (the paper marks them NA) but kept non-zero for validity.
    pub fn primary_inst() -> CacheParams {
        CacheParams {
            size: 64 * 1024,
            line: 32,
            fetch_lines: 2,
            read_occupancy: 1,
            write_occupancy: 1,
            invalidate_occupancy: 1,
            fill_occupancy: 8,
        }
    }

    /// Secondary unified cache: 1 MB, 32 B lines (Table 1).
    pub fn secondary() -> CacheParams {
        CacheParams {
            size: 1024 * 1024,
            line: 32,
            fetch_lines: 1,
            read_occupancy: 2,
            write_occupancy: 2,
            invalidate_occupancy: 4,
            fill_occupancy: 2,
        }
    }
}

/// Fixed path latencies that compose into the paper's Table 2 unloaded
/// totals (measured from the start of the primary-cache lookup):
///
/// * primary hit: data at end of lookup — 1-cycle access folded into the
///   load's two delay slots (Table 3);
/// * secondary hit: `l1_lookup + l2_occupancy + l2_transfer + l1_fill`
///   = 2 + 2 + 4 + 1 = **9 cycles**;
/// * memory reply: `l1_lookup + l2_occupancy + bus_request + bank_access +
///   bus_reply + l1_fill` = 2 + 2 + 1 + 26 + 2 + 1 = **34 cycles**.
///
/// The individual component values are a reconstruction (the paper gives
/// only the totals); contention is layered on top by [`crate::Resource`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathTiming {
    /// Primary-cache lookup: the two DF pipeline stages.
    pub l1_lookup: u64,
    /// Data transfer from the secondary cache back to the primary.
    pub l2_transfer: u64,
    /// Split-transaction bus request slot.
    pub bus_request: u64,
    /// DRAM bank access time.
    pub bank_access: u64,
    /// Reply transfer of a 32 B line over the bus.
    pub bus_reply: u64,
    /// Data-TLB miss service penalty (reconstructed; see DESIGN.md).
    pub dtlb_miss: u64,
    /// Instruction-TLB miss service penalty (reconstructed).
    pub itlb_miss: u64,
}

impl PathTiming {
    /// Default component latencies matching the Table 2 totals.
    pub fn workstation() -> PathTiming {
        PathTiming {
            l1_lookup: 2,
            l2_transfer: 4,
            bus_request: 1,
            bank_access: 26,
            bus_reply: 2,
            dtlb_miss: 25,
            itlb_miss: 25,
        }
    }

    /// Unloaded secondary-hit service time from lookup start.
    pub fn unloaded_l2_hit(&self, l2: &CacheParams) -> u64 {
        self.l1_lookup + l2.read_occupancy + self.l2_transfer + 1
    }

    /// Unloaded memory service time from lookup start.
    pub fn unloaded_memory(&self, l2: &CacheParams) -> u64 {
        self.l1_lookup
            + l2.read_occupancy
            + self.bus_request
            + self.bank_access
            + self.bus_reply
            + 1
    }
}

/// Full memory-system configuration (paper Tables 1–2 defaults via
/// [`MemConfig::workstation`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Primary data cache parameters.
    pub l1d: CacheParams,
    /// Primary instruction cache parameters.
    pub l1i: CacheParams,
    /// Secondary unified cache parameters.
    pub l2: CacheParams,
    /// Path component latencies.
    pub path: PathTiming,
    /// Number of interleaved memory banks.
    pub banks: usize,
    /// Maximum outstanding misses (MSHR entries) in the lockup-free data
    /// cache.
    pub mshrs: usize,
    /// Page size for the TLBs, in bytes.
    pub page_size: u64,
    /// Data-TLB entries (fully associative, FIFO replacement).
    pub dtlb_entries: usize,
    /// Instruction-TLB entries.
    pub itlb_entries: usize,
    /// Whether TLBs are modeled at all (the multiprocessor study disables
    /// them, attributing everything to communication misses).
    pub tlbs_enabled: bool,
    /// Whether the data caches are used at all. Disabling them makes every
    /// data reference a memory access — the fine-grained (HEP-like)
    /// machines of paper Section 2.1 had no data caches.
    pub data_cache_enabled: bool,
}

impl MemConfig {
    /// The paper's high-end workstation memory system.
    pub fn workstation() -> MemConfig {
        MemConfig {
            l1d: CacheParams::primary_data(),
            l1i: CacheParams::primary_inst(),
            l2: CacheParams::secondary(),
            path: PathTiming::workstation(),
            banks: 4,
            mshrs: 9,
            page_size: 4096,
            dtlb_entries: 64,
            itlb_entries: 64,
            tlbs_enabled: true,
            data_cache_enabled: true,
        }
    }

    /// Checks internal consistency of the whole configuration, including
    /// that the composed path latencies reproduce the paper's Table 2
    /// unloaded totals when using the default path timing.
    ///
    /// # Panics
    ///
    /// Panics on any inconsistency.
    pub fn validate(&self) {
        self.l1d.validate();
        self.l1i.validate();
        self.l2.validate();
        assert!(self.banks >= 1, "need at least one memory bank");
        assert!(self.mshrs >= 1, "need at least one MSHR");
        assert!(self.page_size.is_power_of_two(), "page size must be a power of two");
        assert!(self.dtlb_entries >= 1 && self.itlb_entries >= 1);
        assert_eq!(self.l1d.line, self.l2.line, "primary and secondary line sizes must match");
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::workstation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometry() {
        let cfg = MemConfig::workstation();
        assert_eq!(cfg.l1d.size, 64 * 1024);
        assert_eq!(cfg.l1i.size, 64 * 1024);
        assert_eq!(cfg.l2.size, 1024 * 1024);
        assert_eq!(cfg.l1d.line, 32);
        assert_eq!(cfg.l1d.lines(), 2048);
        assert_eq!(cfg.l2.lines(), 32768);
        assert_eq!(cfg.l1i.fetch_lines, 2);
        assert_eq!(cfg.l1i.fill_occupancy, 8);
        assert_eq!(cfg.l2.read_occupancy, 2);
        assert_eq!(cfg.l2.invalidate_occupancy, 4);
    }

    #[test]
    fn table2_unloaded_totals() {
        let cfg = MemConfig::workstation();
        assert_eq!(cfg.path.unloaded_l2_hit(&cfg.l2), 9);
        assert_eq!(cfg.path.unloaded_memory(&cfg.l2), 34);
    }

    #[test]
    fn default_validates() {
        MemConfig::workstation().validate();
    }

    #[test]
    #[should_panic]
    fn bad_line_size_rejected() {
        let mut cfg = MemConfig::workstation();
        cfg.l1d.line = 33;
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn zero_banks_rejected() {
        let mut cfg = MemConfig::workstation();
        cfg.banks = 0;
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn mismatched_line_sizes_rejected() {
        let mut cfg = MemConfig::workstation();
        cfg.l2.line = 64;
        cfg.l2.size = 1024 * 1024;
        cfg.validate();
    }
}
