/// A single-server resource with FIFO queuing, used to model contention on
/// cache ports, the split-transaction bus, and memory banks.
///
/// A request arriving at cycle `now` begins service at
/// `max(now, free_at)` and holds the resource for `occupancy` cycles.
/// The queuing delay (`start - now`) is how contention adds latency on top
/// of the unloaded path times.
///
/// # Examples
///
/// ```
/// use interleave_mem::Resource;
///
/// let mut bank = Resource::new();
/// assert_eq!(bank.acquire(10, 26), 10); // idle: starts immediately
/// assert_eq!(bank.acquire(12, 26), 36); // busy until 36: queued
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Resource {
    free_at: u64,
}

impl Resource {
    /// Creates an idle resource.
    pub fn new() -> Resource {
        Resource::default()
    }

    /// Reserves the resource for `occupancy` cycles starting no earlier
    /// than `now`, and returns the cycle at which service begins.
    ///
    /// # Panics
    ///
    /// Panics if `occupancy` is zero.
    pub fn acquire(&mut self, now: u64, occupancy: u64) -> u64 {
        assert!(occupancy > 0, "occupancy must be at least one cycle");
        let start = self.free_at.max(now);
        self.free_at = start + occupancy;
        start
    }

    /// The cycle at which the resource becomes idle.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Whether the resource is idle at cycle `now`.
    pub fn is_free(&self, now: u64) -> bool {
        self.free_at <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_starts_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.acquire(5, 3), 5);
        assert_eq!(r.free_at(), 8);
    }

    #[test]
    fn queued_requests_serialize() {
        let mut r = Resource::new();
        r.acquire(0, 10);
        assert_eq!(r.acquire(1, 10), 10);
        assert_eq!(r.acquire(2, 10), 20);
    }

    #[test]
    fn gaps_leave_resource_idle() {
        let mut r = Resource::new();
        r.acquire(0, 2);
        assert!(r.is_free(2));
        assert!(!r.is_free(1));
        assert_eq!(r.acquire(100, 1), 100);
    }

    #[test]
    #[should_panic]
    fn zero_occupancy_rejected() {
        let mut r = Resource::new();
        r.acquire(0, 0);
    }
}
