use crate::CacheParams;

/// A direct-mapped cache tag array.
///
/// Stores tags and dirty bits only — the simulator never needs data values.
/// All caches in the paper are direct-mapped (Table 1).
///
/// # Examples
///
/// ```
/// use interleave_mem::{CacheParams, DirectCache};
///
/// let mut c = DirectCache::new(CacheParams::primary_data());
/// assert!(!c.probe(0x1000));
/// c.fill(0x1000, false);
/// assert!(c.probe(0x1000));
/// assert!(c.probe(0x101F)); // same 32-byte line
/// assert!(!c.probe(0x1020)); // next line
/// ```
#[derive(Debug, Clone)]
pub struct DirectCache {
    params: CacheParams,
    line_shift: u32,
    index_mask: u64,
    /// Tag per set, or `None` if the set is empty.
    tags: Vec<Option<u64>>,
    dirty: Vec<bool>,
}

/// A line written back on eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// Address of the evicted line.
    pub addr: u64,
    /// Whether the evicted line was dirty (needs a writeback transaction).
    pub dirty: bool,
}

impl DirectCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`CacheParams::validate`].
    pub fn new(params: CacheParams) -> DirectCache {
        params.validate();
        let lines = params.lines() as usize;
        DirectCache {
            line_shift: params.line.trailing_zeros(),
            index_mask: params.lines() - 1,
            tags: vec![None; lines],
            dirty: vec![false; lines],
            params,
        }
    }

    /// The cache geometry this cache was built with.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Line-aligned address of `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    fn index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.index_mask) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr >> self.line_shift >> self.index_mask.count_ones()
    }

    /// Whether `addr` currently hits.
    pub fn probe(&self, addr: u64) -> bool {
        self.tags[self.index(addr)] == Some(self.tag(addr))
    }

    /// Installs the line containing `addr`, optionally marking it dirty,
    /// and returns the evicted line if one was displaced.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<Writeback> {
        let index = self.index(addr);
        let new_tag = self.tag(addr);
        let evicted = self.tags[index].and_then(|old_tag| {
            if old_tag == new_tag {
                None
            } else {
                let old_addr =
                    (old_tag << self.index_mask.count_ones() | index as u64) << self.line_shift;
                Some(Writeback { addr: old_addr, dirty: self.dirty[index] })
            }
        });
        self.tags[index] = Some(new_tag);
        self.dirty[index] = dirty;
        evicted
    }

    /// Whether the line containing `addr` is present and dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        self.probe(addr) && self.dirty[self.index(addr)]
    }

    /// Marks the line containing `addr` dirty.
    ///
    /// # Panics
    ///
    /// Panics if the line is not present.
    pub fn mark_dirty(&mut self, addr: u64) {
        assert!(self.probe(addr), "cannot dirty a line that is not cached");
        let index = self.index(addr);
        self.dirty[index] = true;
    }

    /// Removes the line containing `addr` if present; returns whether it
    /// was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let index = self.index(addr);
        if self.tags[index] == Some(self.tag(addr)) {
            self.tags[index] = None;
            self.dirty[index] = false;
            true
        } else {
            false
        }
    }

    /// Invalidates the set with the given index (used by the OS-interference
    /// model, which displaces lines without knowing their addresses).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn invalidate_set(&mut self, set: usize) {
        assert!(set < self.tags.len(), "set index out of range");
        self.tags[set] = None;
        self.dirty[set] = false;
    }

    /// Number of sets (== lines for a direct-mapped cache).
    pub fn sets(&self) -> usize {
        self.tags.len()
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|t| t.is_some()).count()
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.tags.fill(None);
        self.dirty.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> DirectCache {
        // 4 lines of 32 bytes.
        DirectCache::new(CacheParams {
            size: 128,
            line: 32,
            fetch_lines: 1,
            read_occupancy: 1,
            write_occupancy: 1,
            invalidate_occupancy: 1,
            fill_occupancy: 1,
        })
    }

    #[test]
    fn fill_then_hit() {
        let mut c = small();
        assert!(!c.probe(0x40));
        assert!(c.fill(0x40, false).is_none());
        assert!(c.probe(0x40));
        assert!(c.probe(0x5F));
        assert!(!c.probe(0x60));
    }

    #[test]
    fn conflicting_lines_evict() {
        let mut c = small();
        c.fill(0x00, false);
        // 0x80 maps to the same set (4 lines * 32 B = 128 B period).
        let wb = c.fill(0x80, false).unwrap();
        assert_eq!(wb.addr, 0x00);
        assert!(!wb.dirty);
        assert!(!c.probe(0x00));
        assert!(c.probe(0x80));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = small();
        c.fill(0x00, true);
        let wb = c.fill(0x80, false).unwrap();
        assert!(wb.dirty);
    }

    #[test]
    fn refill_same_line_is_not_eviction() {
        let mut c = small();
        c.fill(0x00, false);
        assert!(c.fill(0x10, true).is_none()); // same line
                                               // Dirty state updated by the refill.
        let wb = c.fill(0x80, false).unwrap();
        assert!(wb.dirty);
    }

    #[test]
    fn invalidate() {
        let mut c = small();
        c.fill(0x40, false);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn mark_dirty_and_writeback() {
        let mut c = small();
        c.fill(0x20, false);
        c.mark_dirty(0x20);
        let wb = c.fill(0xA0, false).unwrap();
        assert!(wb.dirty);
        assert_eq!(wb.addr, 0x20);
    }

    #[test]
    #[should_panic]
    fn mark_dirty_missing_line_panics() {
        let mut c = small();
        c.mark_dirty(0x20);
    }

    #[test]
    fn is_dirty_tracks_fills_and_marks() {
        let mut c = small();
        assert!(!c.is_dirty(0x20));
        c.fill(0x20, false);
        assert!(!c.is_dirty(0x20));
        c.mark_dirty(0x20);
        assert!(c.is_dirty(0x20));
        // A different line in the same set is not dirty.
        assert!(!c.is_dirty(0xA0));
        c.invalidate(0x20);
        assert!(!c.is_dirty(0x20));
    }

    #[test]
    fn occupancy_and_clear() {
        let mut c = small();
        assert_eq!(c.occupancy(), 0);
        c.fill(0x00, false);
        c.fill(0x20, false);
        assert_eq!(c.occupancy(), 2);
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn invalidate_set_displaces() {
        let mut c = small();
        c.fill(0x20, false);
        c.invalidate_set(1); // 0x20 >> 5 = set 1
        assert!(!c.probe(0x20));
    }

    #[test]
    fn line_addr_alignment() {
        let c = small();
        assert_eq!(c.line_addr(0x47), 0x40);
        assert_eq!(c.line_addr(0x40), 0x40);
    }

    #[test]
    fn full_size_cache_geometry() {
        let c = DirectCache::new(CacheParams::primary_data());
        assert_eq!(c.sets(), 2048);
        // Addresses 64 KB apart conflict.
        let mut c = c;
        c.fill(0x0, false);
        assert!(c.fill(0x10000, false).is_some());
    }
}
