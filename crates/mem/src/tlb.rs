use std::collections::VecDeque;

/// A fully associative translation lookaside buffer with FIFO replacement
/// over virtual page numbers (the MIPS R4000's TLB was fully associative;
/// FIFO approximates its random replacement deterministically).
///
/// The paper folds TLB stalls into the cache-stall categories ("Inst
/// Cache/TLB", "Data Cache/TLB") and includes a workload (DT) constructed
/// to stress the data TLB. The published text does not give TLB
/// parameters, so this is a reconstruction: 64 entries over 4 KB pages
/// with a fixed refill penalty (see `PathTiming::dtlb_miss`).
///
/// # Examples
///
/// ```
/// use interleave_mem::DirectTlb;
///
/// let mut tlb = DirectTlb::new(64, 4096);
/// assert!(!tlb.access(0x1234)); // cold miss (entry refilled)
/// assert!(tlb.access(0x1FFF));  // same page now hits
/// ```
#[derive(Debug, Clone)]
pub struct DirectTlb {
    page_shift: u32,
    capacity: usize,
    /// Resident page numbers in FIFO order (front = oldest).
    entries: VecDeque<u64>,
}

impl DirectTlb {
    /// Creates an empty TLB with `entries` slots over `page_size`-byte
    /// pages.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_size` is not a power of two.
    pub fn new(entries: usize, page_size: u64) -> DirectTlb {
        assert!(entries > 0, "need at least one TLB entry");
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        DirectTlb {
            page_shift: page_size.trailing_zeros(),
            capacity: entries,
            entries: VecDeque::with_capacity(entries),
        }
    }

    fn vpn(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Translates `addr`; returns whether it hit. On a miss the entry is
    /// refilled (the caller charges the miss penalty), evicting the oldest
    /// entry when full.
    pub fn access(&mut self, addr: u64) -> bool {
        let vpn = self.vpn(addr);
        if self.entries.contains(&vpn) {
            return true;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(vpn);
        false
    }

    /// Whether `addr` would hit, without refilling.
    pub fn probe(&self, addr: u64) -> bool {
        self.entries.contains(&self.vpn(addr))
    }

    /// Invalidates the entry at FIFO position `index`, if present (OS
    /// interference model).
    pub fn invalidate_entry(&mut self, index: usize) {
        if index < self.entries.len() {
            self.entries.remove(index);
        }
    }

    /// Number of entry slots.
    pub fn len(&self) -> usize {
        self.capacity
    }

    /// Whether the TLB holds no valid entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Empties the TLB.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = DirectTlb::new(4, 4096);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1FFF));
        assert!(!t.access(0x2000));
    }

    #[test]
    fn full_associativity_avoids_conflicts() {
        let mut t = DirectTlb::new(4, 4096);
        // Pages 0 and 4 would conflict in a 4-entry direct-mapped TLB;
        // here they coexist.
        t.access(0x0000);
        t.access(0x4000);
        assert!(t.probe(0x0000));
        assert!(t.probe(0x4000));
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut t = DirectTlb::new(2, 4096);
        t.access(0x0000); // page 0 (oldest)
        t.access(0x1000); // page 1
        t.access(0x2000); // page 2: evicts page 0
        assert!(!t.probe(0x0000));
        assert!(t.probe(0x1000));
        assert!(t.probe(0x2000));
    }

    #[test]
    fn clear_and_empty() {
        let mut t = DirectTlb::new(4, 4096);
        assert!(t.is_empty());
        t.access(0x1000);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn invalidate_entry() {
        let mut t = DirectTlb::new(4, 4096);
        t.access(0x1000);
        t.invalidate_entry(0);
        assert!(!t.probe(0x1000));
        // Out-of-range invalidation is a no-op.
        t.invalidate_entry(10);
    }

    #[test]
    #[should_panic]
    fn zero_entries_rejected() {
        let _ = DirectTlb::new(0, 4096);
    }
}
