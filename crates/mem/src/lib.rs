//! Workstation memory hierarchy for the interleave simulator.
//!
//! Models the base architecture of Section 4.1 (paper Figure 4, Tables 1–2):
//!
//! * 64 KB direct-mapped primary instruction and data caches (32 B lines);
//!   the data cache is lockup-free (MSHRs), the instruction cache blocking;
//! * a 1 MB direct-mapped unified secondary cache;
//! * four-way interleaved memory banks behind a split-transaction bus;
//! * instruction and data TLBs (the paper lumps TLB stalls with cache
//!   stalls; see DESIGN.md for the reconstruction);
//! * unloaded latencies of 1 / 9 / 34 cycles for primary hit / secondary
//!   hit / memory reply, with cache, bus, and bank *contention modeled* via
//!   busy-until resources that add queuing delay on top of the unloaded
//!   numbers.
//!
//! The hierarchy is request-driven rather than ticked: when the pipeline
//! performs a data or instruction access it receives either a hit or the
//! absolute cycle at which the miss will be satisfied, with all occupancies
//! and queuing folded in. This keeps the simulator fast while preserving the
//! latency and contention behaviour the paper's evaluation depends on.
//!
//! # Examples
//!
//! ```
//! use interleave_isa::Access;
//! use interleave_mem::{DataAccess, MemConfig, UniMemSystem};
//!
//! let mut cfg = MemConfig::workstation();
//! cfg.tlbs_enabled = false; // focus the example on cache latency
//! let mut mem = UniMemSystem::new(cfg);
//! // Cold access goes all the way to memory: ready 34 cycles after lookup.
//! match mem.access_data(100, 0x1_0000, Access::Read, 0) {
//!     DataAccess::Miss { ready_at, .. } => assert_eq!(ready_at, 134),
//!     other => panic!("expected a miss, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod mshr;
mod resource;
mod stats;
mod system;
mod tlb;

pub use cache::DirectCache;
pub use config::{CacheParams, MemConfig, PathTiming};
pub use mshr::MshrFile;
pub use resource::Resource;
pub use stats::MemStats;
pub use system::{DataAccess, InstAccess, MissLevel, UniMemSystem};
pub use tlb::DirectTlb;
