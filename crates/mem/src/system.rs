use interleave_isa::Access;
use interleave_obs::validate::Violation;
use interleave_obs::Registry;

use crate::{DirectCache, DirectTlb, MemConfig, MemStats, MshrFile, Resource};

/// Which level serviced a primary-cache miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissLevel {
    /// Satisfied by the secondary cache (9 cycles unloaded).
    L2Hit,
    /// Satisfied by main memory (34 cycles unloaded).
    Memory,
}

/// Outcome of a data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataAccess {
    /// Primary-cache hit: data available at the normal load latency.
    Hit,
    /// The access was delayed by a data-TLB refill but then hit in the
    /// primary cache; data is available at `ready_at`. Charged like a
    /// data-memory stall (the paper lumps TLB and cache stalls).
    TlbMiss {
        /// Absolute cycle at which the refill completes and data is ready.
        ready_at: u64,
    },
    /// Primary-cache miss: the line fill completes at `ready_at`.
    Miss {
        /// Level that serviced the miss.
        level: MissLevel,
        /// Absolute cycle at which the fill completes.
        ready_at: u64,
    },
}

/// Outcome of an instruction fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstAccess {
    /// Primary I-cache hit.
    Hit,
    /// The fetch was delayed by an instruction-TLB refill; the
    /// instruction is available at `ready_at` (cache outcome folded in).
    TlbMiss {
        /// Absolute cycle at which the fetch completes.
        ready_at: u64,
    },
    /// I-cache miss; fetch stalls until `ready_at` (the I-cache is
    /// blocking — no context switch is taken on instruction misses).
    Miss {
        /// Level that serviced the miss.
        level: MissLevel,
        /// Absolute cycle at which the fill completes.
        ready_at: u64,
    },
}

/// The uniprocessor (workstation) memory hierarchy of paper Figure 4.
///
/// See the crate-level docs for the modeling approach. All methods take the
/// absolute cycle at which the primary-cache lookup begins (for loads and
/// stores this is the DF1 pipeline stage) and return completion cycles with
/// contention folded in.
#[derive(Debug, Clone)]
pub struct UniMemSystem {
    cfg: MemConfig,
    l1d: DirectCache,
    l1i: DirectCache,
    l2: DirectCache,
    dtlb: DirectTlb,
    itlb: DirectTlb,
    mshr: MshrFile,
    l1i_fill_port: Resource,
    l2_port: Resource,
    l2_fill_port: Resource,
    bus_request: Resource,
    bus_reply: Resource,
    banks: Vec<Resource>,
    stats: MemStats,
    /// Completion cycle of the most recent I-cache miss. The I-cache is
    /// blocking, so a second miss whose lookup begins before this cycle
    /// is a structural violation (recorded, surfaced by
    /// [`UniMemSystem::check_invariants`]).
    l1i_outstanding_until: u64,
    pending_violation: Option<Violation>,
}

impl UniMemSystem {
    /// Builds the hierarchy from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MemConfig::validate`].
    pub fn new(cfg: MemConfig) -> UniMemSystem {
        cfg.validate();
        UniMemSystem {
            l1d: DirectCache::new(cfg.l1d),
            l1i: DirectCache::new(cfg.l1i),
            l2: DirectCache::new(cfg.l2),
            dtlb: DirectTlb::new(cfg.dtlb_entries, cfg.page_size),
            itlb: DirectTlb::new(cfg.itlb_entries, cfg.page_size),
            mshr: MshrFile::new(cfg.mshrs),
            l1i_fill_port: Resource::new(),
            l2_port: Resource::new(),
            l2_fill_port: Resource::new(),
            bus_request: Resource::new(),
            bus_reply: Resource::new(),
            banks: vec![Resource::new(); cfg.banks],
            stats: MemStats::default(),
            l1i_outstanding_until: 0,
            pending_violation: None,
            cfg,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Accumulated hit/miss statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics (used after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.mshr.reset_stats();
    }

    /// Registers hierarchy counters under `mem.*`: per-level hits and
    /// misses, TLB misses, writebacks, and MSHR allocation/occupancy
    /// statistics.
    pub fn collect_metrics(&self, reg: &mut Registry) {
        reg.counter("mem.l1d.hits", self.stats.l1d_hits);
        reg.counter("mem.l1d.misses", self.stats.l1d_misses);
        reg.counter("mem.l1i.hits", self.stats.l1i_hits);
        reg.counter("mem.l1i.misses", self.stats.l1i_misses);
        reg.counter("mem.l2.hits", self.stats.l2_hits);
        reg.counter("mem.l2.misses", self.stats.l2_misses);
        reg.counter("mem.dtlb.misses", self.stats.dtlb_misses);
        reg.counter("mem.itlb.misses", self.stats.itlb_misses);
        reg.counter("mem.writebacks", self.stats.writebacks);
        reg.counter("mem.mshr.allocations", self.mshr.allocations());
        reg.counter("mem.mshr.high_water", self.mshr.high_water() as u64);
    }

    /// Performs a data access whose primary lookup starts at `lookup_start`.
    ///
    /// `_ctx` identifies the requesting hardware context (reserved for
    /// per-context statistics).
    pub fn access_data(
        &mut self,
        lookup_start: u64,
        addr: u64,
        kind: Access,
        _ctx: usize,
    ) -> DataAccess {
        self.mshr.expire(lookup_start);

        // A TLB refill delays the access; the cache outcome is resolved in
        // the same call (the refill hardware replays the access) so that
        // the requester's completion time is bound once, atomically.
        let mut lookup_start = lookup_start;
        let mut tlb_missed = false;
        if self.cfg.tlbs_enabled && !self.dtlb.access(addr) {
            self.stats.dtlb_misses += 1;
            lookup_start += self.cfg.path.dtlb_miss;
            tlb_missed = true;
        }

        if !self.cfg.data_cache_enabled {
            // Cacheless machine (HEP-like): every reference goes to memory.
            self.stats.l1d_misses += 1;
            self.stats.l2_misses += 1;
            let path = self.cfg.path;
            let req = self.bus_request.acquire(lookup_start, path.bus_request);
            let bank = self.bank_for(addr);
            let bank_start = self.banks[bank].acquire(req + path.bus_request, path.bank_access);
            let reply = self.bus_reply.acquire(bank_start + path.bank_access, path.bus_reply);
            return DataAccess::Miss { level: MissLevel::Memory, ready_at: reply + path.bus_reply };
        }

        let line = self.l1d.line_addr(addr);
        if let Some(ready_at) = self.mshr.lookup(line) {
            // Merge with the outstanding fill for this line.
            self.stats.l1d_misses += 1;
            let level = if self.l2.probe(addr) { MissLevel::L2Hit } else { MissLevel::Memory };
            return DataAccess::Miss { level, ready_at };
        }

        if self.l1d.probe(addr) {
            self.stats.l1d_hits += 1;
            if kind == Access::Write {
                self.l1d.mark_dirty(addr);
            }
            if tlb_missed {
                // Hit after refill: data ready after the replayed lookup.
                return DataAccess::TlbMiss { ready_at: lookup_start + self.cfg.path.l1_lookup };
            }
            return DataAccess::Hit;
        }

        self.stats.l1d_misses += 1;
        // If every MSHR is busy the new miss waits for the oldest fill.
        let mut start = lookup_start;
        if !self.mshr.has_free_entry() {
            let drain = self.mshr.earliest_ready().expect("full MSHR file has entries");
            start = start.max(drain);
            self.mshr.expire(start);
        }

        let (level, ready_at) = self.miss_path(start, addr);
        let dirty = kind == Access::Write;
        if let Some(wb) = self.l1d.fill(addr, dirty) {
            self.writeback(ready_at, wb.dirty);
        }
        self.mshr.allocate(line, ready_at);
        DataAccess::Miss { level, ready_at }
    }

    /// Performs an instruction fetch whose primary lookup starts at
    /// `lookup_start`.
    pub fn access_inst(&mut self, lookup_start: u64, pc: u64) -> InstAccess {
        let mut lookup_start = lookup_start;
        let mut tlb_missed = false;
        if self.cfg.tlbs_enabled && !self.itlb.access(pc) {
            self.stats.itlb_misses += 1;
            lookup_start += self.cfg.path.itlb_miss;
            tlb_missed = true;
        }

        if self.l1i.probe(pc) {
            self.stats.l1i_hits += 1;
            if tlb_missed {
                return InstAccess::TlbMiss { ready_at: lookup_start + 1 };
            }
            return InstAccess::Hit;
        }

        self.stats.l1i_misses += 1;
        // Blocking I-cache: a new miss may not begin while the previous
        // fill is still in flight (resuming at exactly the completion
        // cycle is legal). Record rather than panic so the simulation
        // driver can attach context and seed to the report.
        if lookup_start < self.l1i_outstanding_until && self.pending_violation.is_none() {
            self.pending_violation = Some(Violation::new(
                "mem.l1i",
                "blocking I-cache has more than one outstanding miss",
                lookup_start,
                format!(
                    "fetch of {pc:#x} missed while a fill was outstanding until cycle {}",
                    self.l1i_outstanding_until
                ),
            ));
        }
        // Fills serialize on the I-cache fill port (fill occupancy 8).
        let start = self.l1i_fill_port.acquire(lookup_start, self.cfg.l1i.fill_occupancy);
        let (level, ready_at) = self.miss_path(start, pc);
        self.l1i_outstanding_until = ready_at;
        // The I-cache fetches two lines per miss (Table 1).
        for extra in 0..self.cfg.l1i.fetch_lines {
            let fill_addr = pc + extra * self.cfg.l1i.line;
            if let Some(wb) = self.l1i.fill(fill_addr, false) {
                debug_assert!(!wb.dirty, "instruction lines are never dirty");
            }
        }
        InstAccess::Miss { level, ready_at }
    }

    /// Service a primary miss through L2 and, if needed, memory. Returns
    /// the level that serviced it and the absolute completion cycle.
    fn miss_path(&mut self, lookup_start: u64, addr: u64) -> (MissLevel, u64) {
        interleave_obs::profile::mark("mem.miss");
        let path = self.cfg.path;
        let l2_params = self.cfg.l2;
        let miss_known = lookup_start + path.l1_lookup;
        let l2_start = self.l2_port.acquire(miss_known, l2_params.read_occupancy);
        let l2_done = l2_start + l2_params.read_occupancy;

        if self.l2.probe(addr) {
            self.stats.l2_hits += 1;
            let ready_at = l2_done + path.l2_transfer + 1;
            (MissLevel::L2Hit, ready_at)
        } else {
            self.stats.l2_misses += 1;
            let req = self.bus_request.acquire(l2_done, path.bus_request);
            let bank = self.bank_for(addr);
            let bank_start = self.banks[bank].acquire(req + path.bus_request, path.bank_access);
            let reply = self.bus_reply.acquire(bank_start + path.bank_access, path.bus_reply);
            let data_at = reply + path.bus_reply;
            // Fill the secondary cache (fills contend with other fills on
            // a dedicated fill port so a reserved future fill slot cannot
            // retroactively delay earlier lookups).
            self.l2_fill_port.acquire(data_at, l2_params.fill_occupancy);
            if let Some(wb) = self.l2.fill(addr, false) {
                self.writeback(data_at, wb.dirty);
            }
            (MissLevel::Memory, data_at + 1)
        }
    }

    /// Models a writeback of an evicted line: consumes bus and bank
    /// occupancy without delaying the triggering access (victim buffers).
    fn writeback(&mut self, now: u64, dirty: bool) {
        if !dirty {
            return;
        }
        self.stats.writebacks += 1;
        let path = self.cfg.path;
        let req = self.bus_request.acquire(now, path.bus_request);
        // Writebacks address-agnostic here; spread across banks round-robin.
        let bank = (self.stats.writebacks as usize) % self.banks.len();
        self.banks[bank].acquire(req + path.bus_request, path.bank_access);
    }

    fn bank_for(&self, addr: u64) -> usize {
        ((addr / self.cfg.l1d.line) % self.banks.len() as u64) as usize
    }

    /// Pre-warms the data hierarchy with the line containing `addr`
    /// (fills both primary and secondary caches and the D-TLB).
    pub fn preload_data(&mut self, addr: u64) {
        self.dtlb.access(addr);
        self.l1d.fill(addr, false);
        self.l2.fill(addr, false);
    }

    /// Pre-warms the instruction hierarchy with the line containing `pc`.
    pub fn preload_inst(&mut self, pc: u64) {
        self.itlb.access(pc);
        self.l1i.fill(pc, false);
        self.l2.fill(pc, false);
    }

    /// Invalidates the data line containing `addr` from the primary cache
    /// only (models external interference).
    pub fn invalidate_data_line(&mut self, addr: u64) -> bool {
        self.l1d.invalidate(addr)
    }

    /// Models operating-system cache interference at a scheduler call
    /// (paper Table 6): displaces `icache_lines` instruction-cache sets,
    /// `dcache_lines` data-cache sets, and a proportional number of TLB
    /// entries, at pseudo-random positions derived from `seed`.
    pub fn os_displace(&mut self, icache_lines: usize, dcache_lines: usize, seed: u64) {
        let _displace = interleave_obs::profile::enter("mem.os_displace");
        let mut state = seed | 1;
        let mut next = || {
            // xorshift64* — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for _ in 0..icache_lines {
            let set = (next() as usize) % self.l1i.sets();
            self.l1i.invalidate_set(set);
        }
        for _ in 0..dcache_lines {
            let set = (next() as usize) % self.l1d.sets();
            self.l1d.invalidate_set(set);
        }
        if self.cfg.tlbs_enabled {
            let dtlb_hit = dcache_lines.min(self.dtlb.len() / 4);
            let itlb_hit = icache_lines.min(self.itlb.len() / 4);
            for _ in 0..dtlb_hit {
                let entry = (next() as usize) % self.dtlb.len();
                self.dtlb.invalidate_entry(entry);
            }
            for _ in 0..itlb_hit {
                let entry = (next() as usize) % self.itlb.len();
                self.itlb.invalidate_entry(entry);
            }
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.cfg.l1d.line
    }

    /// Checks the hierarchy's structural invariants at cycle `now`:
    /// surfaces any recorded blocking-I-cache violation, then checks the
    /// MSHR file (occupancy within capacity, fills target real lines,
    /// lazy expiry not stranded). Cheap — O(outstanding MSHRs).
    pub fn check_invariants(&self, now: u64) -> Result<(), Violation> {
        if let Some(v) = &self.pending_violation {
            return Err(v.clone());
        }
        self.mshr.check_invariants(now, self.cfg.l1d.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> UniMemSystem {
        UniMemSystem::new(MemConfig::workstation())
    }

    /// A system with TLBs disabled, for latency-focused tests.
    fn no_tlb() -> UniMemSystem {
        let mut cfg = MemConfig::workstation();
        cfg.tlbs_enabled = false;
        UniMemSystem::new(cfg)
    }

    #[test]
    fn cold_access_reaches_memory_in_34() {
        let mut m = no_tlb();
        match m.access_data(1000, 0x4_0000, Access::Read, 0) {
            DataAccess::Miss { level, ready_at } => {
                assert_eq!(level, MissLevel::Memory);
                assert_eq!(ready_at, 1034);
            }
            other => panic!("expected memory miss, got {other:?}"),
        }
        assert_eq!(m.stats().l1d_misses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn secondary_hit_takes_9() {
        let mut m = no_tlb();
        // Warm L2 then knock the line out of L1.
        m.access_data(0, 0x4_0000, Access::Read, 0);
        m.invalidate_data_line(0x4_0000);
        match m.access_data(1000, 0x4_0000, Access::Read, 0) {
            DataAccess::Miss { level, ready_at } => {
                assert_eq!(level, MissLevel::L2Hit);
                assert_eq!(ready_at, 1009);
            }
            other => panic!("expected L2 hit, got {other:?}"),
        }
    }

    #[test]
    fn second_access_hits_after_fill() {
        let mut m = no_tlb();
        let ready = match m.access_data(0, 0x4_0000, Access::Read, 0) {
            DataAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        // While the fill is outstanding, a second access merges.
        match m.access_data(ready - 5, 0x4_0010, Access::Read, 0) {
            DataAccess::Miss { ready_at, .. } => assert_eq!(ready_at, ready),
            other => panic!("expected merged miss, got {other:?}"),
        }
        // After the fill completes, it hits.
        assert_eq!(m.access_data(ready + 1, 0x4_0000, Access::Read, 0), DataAccess::Hit);
    }

    #[test]
    fn bank_contention_delays_second_miss() {
        let mut m = no_tlb();
        let first = match m.access_data(0, 0x0, Access::Read, 0) {
            DataAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        // Same bank (4 banks * 32 B = 128 B period), different L1 set.
        let second = match m.access_data(0, 0x8000, Access::Read, 1) {
            DataAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        assert!(second > first, "second miss should queue behind the first at the bank");
    }

    #[test]
    fn different_banks_overlap() {
        let mut m = no_tlb();
        let a = match m.access_data(0, 0x0, Access::Read, 0) {
            DataAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        // Next line: different bank.
        let b = match m.access_data(1, 0x8020, Access::Read, 1) {
            DataAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        // Only serialized on L2 port & bus, not the 26-cycle bank.
        assert!(b < a + 20, "different banks should mostly overlap: {a} vs {b}");
    }

    #[test]
    fn dtlb_miss_composes_with_cache_outcome() {
        let mut m = fresh();
        // Cold: TLB refill (25) + full memory path (34) in one outcome.
        match m.access_data(0, 0x12345, Access::Read, 0) {
            DataAccess::Miss { ready_at, level } => {
                assert_eq!(level, MissLevel::Memory);
                assert_eq!(ready_at, 25 + 34);
            }
            other => panic!("expected composed miss, got {other:?}"),
        }
        assert_eq!(m.stats().dtlb_misses, 1);
        // Warm line, cold page: TLB refill + replayed lookup only.
        let far = 0x12345 + 64 * 4096; // same line impossible; use preload
        m.preload_data(far);
        // Displace `far`'s TLB entry by touching 64 other pages (FIFO).
        for i in 0..m.config().dtlb_entries as u64 {
            m.preload_data(0x100_0000 + i * 4096);
        }
        match m.access_data(1000, far, Access::Read, 0) {
            DataAccess::TlbMiss { ready_at } => assert_eq!(ready_at, 1000 + 25 + 2),
            other => panic!("expected TLB-delayed hit, got {other:?}"),
        }
    }

    #[test]
    fn inst_fetch_hit_after_preload() {
        let mut m = fresh();
        m.preload_inst(0x400);
        assert_eq!(m.access_inst(0, 0x400), InstAccess::Hit);
        assert_eq!(m.stats().l1i_hits, 1);
    }

    #[test]
    fn inst_miss_prefetches_next_line() {
        let mut m = no_tlb();
        match m.access_inst(0, 0x400) {
            InstAccess::Miss { .. } => {}
            other => panic!("{other:?}"),
        }
        // The following line was prefetched.
        assert_eq!(m.access_inst(100, 0x420), InstAccess::Hit);
    }

    #[test]
    fn store_miss_fills_dirty_and_writes_back() {
        let mut m = no_tlb();
        m.access_data(0, 0x0, Access::Write, 0);
        // Conflict: 64 KB away maps to the same L1 set.
        m.access_data(100, 0x1_0000, Access::Read, 0);
        assert_eq!(m.stats().writebacks, 1);
    }

    #[test]
    fn os_displacement_evicts() {
        let mut m = fresh();
        for i in 0..512u64 {
            m.preload_data(i * 32);
            m.preload_inst(0x10_0000 + i * 32);
        }
        let d_before = m.l1d.occupancy();
        let i_before = m.l1i.occupancy();
        m.os_displace(600, 600, 42);
        assert!(m.l1d.occupancy() < d_before);
        assert!(m.l1i.occupancy() < i_before);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut m = no_tlb();
        m.preload_data(0x40);
        assert_eq!(m.access_data(0, 0x40, Access::Write, 0), DataAccess::Hit);
        // Evict it: should cause a writeback.
        m.access_data(10, 0x1_0040, Access::Read, 0);
        assert_eq!(m.stats().writebacks, 1);
    }

    #[test]
    fn mshr_overflow_degrades_gracefully() {
        let mut cfg = MemConfig::workstation();
        cfg.tlbs_enabled = false;
        cfg.mshrs = 1;
        let mut m = UniMemSystem::new(cfg);
        let a = match m.access_data(0, 0x0, Access::Read, 0) {
            DataAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        // Second miss to a different line with a full MSHR file waits.
        let b = match m.access_data(1, 0x2000, Access::Read, 1) {
            DataAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        assert!(b >= a + 9, "stalled request should start after the first fill");
    }

    #[test]
    fn cacheless_machine_always_goes_to_memory() {
        let mut cfg = MemConfig::workstation();
        cfg.tlbs_enabled = false;
        cfg.data_cache_enabled = false;
        let mut m = UniMemSystem::new(cfg);
        for i in 0..4u64 {
            match m.access_data(i * 100, 0x40, Access::Read, 0) {
                DataAccess::Miss { level: MissLevel::Memory, .. } => {}
                other => panic!("expected a memory access every time, got {other:?}"),
            }
        }
        assert_eq!(m.stats().l1d_misses, 4);
    }

    #[test]
    fn os_displacement_causes_re_misses() {
        let mut cfg = MemConfig::workstation();
        cfg.tlbs_enabled = false;
        let mut m = UniMemSystem::new(cfg);
        // Warm a working set, then displace most of the cache.
        for i in 0..256u64 {
            m.preload_data(0x4000 + i * 32);
        }
        m.reset_stats();
        m.os_displace(0, 2048, 7);
        let mut misses = 0;
        for i in 0..256u64 {
            if m.access_data(10_000 + i * 50, 0x4000 + i * 32, Access::Read, 0) != DataAccess::Hit {
                misses += 1;
            }
        }
        assert!(misses > 100, "heavy displacement should force re-misses, got {misses}");
    }

    #[test]
    fn invariants_clean_after_traffic() {
        let mut m = no_tlb();
        for i in 0..32u64 {
            m.access_data(i * 100, i * 0x200, Access::Read, 0);
        }
        assert!(m.check_invariants(32 * 100).is_ok());
    }

    #[test]
    fn overlapping_inst_misses_are_flagged() {
        let mut m = no_tlb();
        let ready = match m.access_inst(0, 0x400) {
            InstAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        // A second I-miss that begins before the first fill completes
        // violates the blocking-I-cache model...
        match m.access_inst(ready - 5, 0x10_0000) {
            InstAccess::Miss { .. } => {}
            other => panic!("{other:?}"),
        }
        let v = m.check_invariants(ready).unwrap_err();
        assert_eq!(v.component, "mem.l1i");
        assert!(v.to_string().contains("outstanding"), "{v}");
    }

    #[test]
    fn back_to_back_inst_misses_are_legal() {
        let mut m = no_tlb();
        let ready = match m.access_inst(0, 0x400) {
            InstAccess::Miss { ready_at, .. } => ready_at,
            other => panic!("{other:?}"),
        };
        // ...but resuming at exactly the completion cycle is fine.
        match m.access_inst(ready, 0x10_0000) {
            InstAccess::Miss { .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(m.check_invariants(ready + 100).is_ok());
    }

    #[test]
    fn reset_stats() {
        let mut m = no_tlb();
        m.access_data(0, 0x0, Access::Read, 0);
        m.reset_stats();
        assert_eq!(*m.stats(), MemStats::default());
    }
}
