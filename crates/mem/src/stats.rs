/// Hit/miss counters for the memory hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Primary data cache hits.
    pub l1d_hits: u64,
    /// Primary data cache misses (including merges with outstanding fills).
    pub l1d_misses: u64,
    /// Primary instruction cache hits.
    pub l1i_hits: u64,
    /// Primary instruction cache misses.
    pub l1i_misses: u64,
    /// Secondary cache hits (on primary misses).
    pub l2_hits: u64,
    /// Secondary cache misses (serviced by memory).
    pub l2_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl MemStats {
    /// Primary data-cache miss rate (0.0 when no accesses).
    pub fn l1d_miss_rate(&self) -> f64 {
        ratio(self.l1d_misses, self.l1d_hits + self.l1d_misses)
    }

    /// Primary instruction-cache miss rate (0.0 when no accesses).
    pub fn l1i_miss_rate(&self) -> f64 {
        ratio(self.l1i_misses, self.l1i_hits + self.l1i_misses)
    }

    /// Fraction of primary misses that hit in the secondary cache.
    pub fn l2_hit_fraction(&self) -> f64 {
        ratio(self.l2_hits, self.l2_hits + self.l2_misses)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = MemStats {
            l1d_hits: 90,
            l1d_misses: 10,
            l2_hits: 8,
            l2_misses: 2,
            ..Default::default()
        };
        assert!((s.l1d_miss_rate() - 0.1).abs() < 1e-12);
        assert!((s.l2_hit_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = MemStats::default();
        assert_eq!(s.l1d_miss_rate(), 0.0);
        assert_eq!(s.l1i_miss_rate(), 0.0);
        assert_eq!(s.l2_hit_fraction(), 0.0);
    }
}
