use std::collections::BTreeMap;

use interleave_obs::validate::Violation;

/// Miss-status holding registers for the lockup-free data cache.
///
/// Tracks outstanding line fills so that a second miss to an in-flight line
/// merges with the existing request instead of issuing a duplicate, as in
/// Kroft's lockup-free cache design cited by the paper.
///
/// Entries expire lazily: callers sweep completed fills with
/// [`MshrFile::expire`] before allocating.
#[derive(Debug, Clone, Default)]
pub struct MshrFile {
    capacity: usize,
    /// line address -> cycle at which the fill completes.
    outstanding: BTreeMap<u64, u64>,
    /// Total fills ever allocated.
    allocations: u64,
    /// Most entries simultaneously outstanding (occupancy high-water).
    high_water: usize,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "need at least one MSHR");
        MshrFile { capacity, outstanding: BTreeMap::new(), allocations: 0, high_water: 0 }
    }

    /// Removes entries whose fills completed at or before `now`.
    pub fn expire(&mut self, now: u64) {
        self.outstanding.retain(|_, &mut ready| ready > now);
    }

    /// If a fill for `line_addr` is outstanding, returns its completion
    /// cycle (the new miss merges with it).
    pub fn lookup(&self, line_addr: u64) -> Option<u64> {
        self.outstanding.get(&line_addr).copied()
    }

    /// Records an outstanding fill completing at `ready_at`.
    ///
    /// # Panics
    ///
    /// Panics if the file is full or the line is already outstanding —
    /// callers must [`MshrFile::lookup`] (and merge) first.
    pub fn allocate(&mut self, line_addr: u64, ready_at: u64) {
        assert!(self.outstanding.len() < self.capacity, "MSHR file is full");
        let prev = self.outstanding.insert(line_addr, ready_at);
        assert!(prev.is_none(), "line {line_addr:#x} already outstanding");
        self.allocations += 1;
        self.high_water = self.high_water.max(self.outstanding.len());
    }

    /// Total fills ever allocated.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Most entries simultaneously outstanding since the last
    /// [`MshrFile::reset_stats`].
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Clears the allocation counters; the high-water restarts at the
    /// current occupancy. Outstanding fills are untouched.
    pub fn reset_stats(&mut self) {
        self.allocations = 0;
        self.high_water = self.outstanding.len();
    }

    /// Number of outstanding fills.
    pub fn len(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.outstanding.is_empty()
    }

    /// Whether the file has room for another fill.
    pub fn has_free_entry(&self) -> bool {
        self.outstanding.len() < self.capacity
    }

    /// Earliest completion cycle among outstanding fills, if any.
    pub fn earliest_ready(&self) -> Option<u64> {
        self.outstanding.values().copied().min()
    }

    /// Number of entries the file was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Checks the MSHR structural invariants at cycle `now`:
    /// occupancy never exceeds capacity, every outstanding line address
    /// is aligned to `line_size` (i.e. the fill targets a real cache
    /// line), and no fill completes in the past without having been
    /// expired by more than a full miss round-trip (`expire` is lazy, so
    /// entries may linger a little after completion; a stale entry whose
    /// completion is far behind `now` means the sweep was skipped).
    ///
    /// Duplicate outstanding lines cannot be represented (the map is
    /// keyed by line address) and are rejected at [`MshrFile::allocate`]
    /// time instead.
    pub fn check_invariants(&self, now: u64, line_size: u64) -> Result<(), Violation> {
        if self.outstanding.len() > self.capacity {
            return Err(Violation::new(
                "mem.mshr",
                "occupancy exceeds capacity",
                now,
                format!("{} outstanding, capacity {}", self.outstanding.len(), self.capacity),
            ));
        }
        for (&line, &ready) in &self.outstanding {
            if line % line_size != 0 {
                return Err(Violation::new(
                    "mem.mshr",
                    "outstanding fill targets an unaligned line",
                    now,
                    format!("line {line:#x} is not {line_size}-byte aligned"),
                ));
            }
            if ready.saturating_add(STALE_FILL_GRACE) < now {
                return Err(Violation::new(
                    "mem.mshr",
                    "completed fill never expired",
                    now,
                    format!("line {line:#x} completed at cycle {ready} and was never swept"),
                ));
            }
        }
        Ok(())
    }
}

/// Cycles a completed fill may linger before [`MshrFile::check_invariants`]
/// treats it as a missed `expire` sweep (expiry is lazy by design).
const STALE_FILL_GRACE: u64 = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_expire() {
        let mut m = MshrFile::new(2);
        m.allocate(0x40, 100);
        assert_eq!(m.lookup(0x40), Some(100));
        assert_eq!(m.lookup(0x80), None);
        m.expire(99);
        assert_eq!(m.len(), 1);
        m.expire(100);
        assert!(m.is_empty());
    }

    #[test]
    fn merge_visibility() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 50);
        // A second miss to the same line sees the outstanding fill.
        assert_eq!(m.lookup(0x40), Some(50));
    }

    #[test]
    #[should_panic]
    fn double_allocate_panics() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 50);
        m.allocate(0x40, 60);
    }

    #[test]
    #[should_panic]
    fn overflow_panics() {
        let mut m = MshrFile::new(1);
        m.allocate(0x40, 50);
        m.allocate(0x80, 60);
    }

    #[test]
    fn high_water_and_allocations() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 50);
        m.allocate(0x80, 60);
        m.expire(55);
        m.allocate(0xc0, 70);
        // Peak was 2 outstanding even though only 2 remain now.
        assert_eq!(m.high_water(), 2);
        assert_eq!(m.allocations(), 3);
        m.reset_stats();
        assert_eq!(m.allocations(), 0);
        // High-water restarts at current occupancy, not zero.
        assert_eq!(m.high_water(), 2);
    }

    #[test]
    fn invariants_hold_on_normal_use() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 50);
        m.allocate(0x80, 60);
        assert!(m.check_invariants(10, 64).is_ok());
        assert_eq!(m.capacity(), 4);
    }

    #[test]
    fn invariants_flag_unaligned_line() {
        let mut m = MshrFile::new(4);
        m.allocate(0x41, 50);
        let v = m.check_invariants(10, 64).unwrap_err();
        assert_eq!(v.component, "mem.mshr");
        assert!(v.to_string().contains("0x41"), "{v}");
        assert!(v.to_string().contains("cycle 10"), "{v}");
    }

    #[test]
    fn invariants_flag_stale_fill() {
        let mut m = MshrFile::new(4);
        m.allocate(0x40, 50);
        // Lazy expiry: a recently completed fill is fine...
        assert!(m.check_invariants(51, 64).is_ok());
        // ...but one stranded far in the past means expire() never ran.
        let v = m.check_invariants(50 + STALE_FILL_GRACE + 1, 64).unwrap_err();
        assert!(v.to_string().contains("never"), "{v}");
    }

    #[test]
    fn earliest_ready() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.earliest_ready(), None);
        m.allocate(0x40, 70);
        m.allocate(0x80, 50);
        assert_eq!(m.earliest_ready(), Some(50));
        assert!(m.has_free_entry());
    }
}
