//! Section 6 (Figures 10-12): implementation cost of the PC unit designs.
//!
//! The paper argues the interleaved scheme's extra complexity over the
//! blocked scheme is concentrated in the instruction-issue logic and is
//! "not overwhelming". This harness prints the storage/mux inventory of
//! each design across context counts.

use interleave_pipeline::pcunit::{BlockedPcUnit, InterleavedPcUnit, SingleCtxPcUnit};
use interleave_stats::Table;

fn main() {
    const PIPE: u32 = 7;
    let mut t = Table::new("Section 6: PC unit implementation cost (7-stage pipeline, 32-bit PCs)");
    t.headers(["Design", "ctx", "registers", "register bits", "mux inputs", "CID tag bits"]);
    let single = SingleCtxPcUnit::cost(PIPE);
    t.row([
        "Single-context".to_string(),
        "1".to_string(),
        single.registers.to_string(),
        single.register_bits.to_string(),
        single.mux_inputs.to_string(),
        single.pipeline_tag_bits.to_string(),
    ]);
    for contexts in [2u32, 4, 8] {
        let b = BlockedPcUnit::cost(contexts, PIPE);
        t.row([
            "Blocked".to_string(),
            contexts.to_string(),
            b.registers.to_string(),
            b.register_bits.to_string(),
            b.mux_inputs.to_string(),
            b.pipeline_tag_bits.to_string(),
        ]);
        let i = InterleavedPcUnit::cost(contexts, PIPE);
        t.row([
            "Interleaved".to_string(),
            contexts.to_string(),
            i.registers.to_string(),
            i.register_bits.to_string(),
            i.mux_inputs.to_string(),
            i.pipeline_tag_bits.to_string(),
        ]);
    }
    println!("{t}");
    println!("Paper's conclusion quantified: the blocked unit only adds an EPC per context;");
    println!("the interleaved unit adds a next-PC holding register per context, wider PC-bus");
    println!("multiplexing, and a CID tag per pipeline stage — a manageable increase,");
    println!("especially next to dynamic superscalar issue logic.");
}
