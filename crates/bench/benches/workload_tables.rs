//! Tables 5 and 9: the workload definitions — the multiprogrammed mixes
//! and the SPLASH-like application models.

use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let mut t5 = Table::new("Table 5: uniprocessor workloads (four applications each)");
    t5.headers(["Workload", "App 1", "App 2", "App 3", "App 4"]);
    for w in mixes::all() {
        let names: Vec<&str> = w.apps.iter().map(|a| a.name).collect();
        t5.row([w.name, names[0], names[1], names[2], names[3]]);
    }
    println!("{t5}");

    let mut t9 = Table::new("Table 9: SPLASH application models");
    t9.headers(["App", "sharing", "shared KB", "locks", "cs len", "barrier period", "fp-div frac"]);
    for app in interleave_mp::splash_suite() {
        t9.row([
            app.name.to_string(),
            format!("{:?}", app.pattern),
            (app.shared_bytes / 1024).to_string(),
            app.lock_period.map(|p| format!("every {p}")).unwrap_or_else(|| "-".into()),
            if app.lock_period.is_some() { app.cs_len.to_string() } else { "-".into() },
            app.barrier_period.map(|p| p.to_string()).unwrap_or_else(|| "-".into()),
            format!("{:.2}", app.compute.fp_div_frac),
        ]);
    }
    println!("{t9}");
}
