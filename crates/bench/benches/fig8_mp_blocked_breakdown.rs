//! Figure 8: multiprocessor execution-time breakdown, blocked scheme,
//! at 1/2/4/8 contexts per processor.

use interleave_bench::{breakdown_cells, mp_grid, Scale};
use interleave_core::Scheme;
use interleave_stats::Table;

fn main() {
    println!(
        "Figure 8: blocked scheme execution-time breakdown ({} nodes)\n",
        Scale::from_env().mp_nodes()
    );
    let mut t = Table::new("columns: busy / instr(short) / instr(long) / memory / sync / switch");
    t.headers(["App", "ctx", "busy", "short", "long", "memory", "sync", "switch"]);
    for app in interleave_mp::splash_suite() {
        let (baseline, grid) = mp_grid(&app);
        let mut cells = vec![app.name.to_string(), "1".to_string()];
        cells.extend(breakdown_cells(&baseline.breakdown, false));
        t.row(cells);
        for (scheme, n, r) in &grid {
            if *scheme != Scheme::Blocked {
                continue;
            }
            let mut cells = vec![String::new(), n.to_string()];
            cells.extend(breakdown_cells(&r.breakdown, false));
            t.row(cells);
        }
    }
    interleave_bench::emit_named(&t, "fig8");
    println!("Paper shape: the blocked scheme converts memory time to busy time but");
    println!("squanders cycles in switch overhead and cannot touch short pipeline stalls.");
}
