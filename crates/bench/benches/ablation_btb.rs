//! Ablation: branch target buffer size (0 = disabled .. 2048) on the
//! branchy IC workload, single-context processor.

use interleave_bench::{ExperimentSpec, Runner, Scale};
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let scale = Scale::from_env();
    let runner = Runner::from_env();
    let mut t = Table::new("Ablation: BTB size vs throughput (IC workload, single context)");
    t.headers(["BTB entries", "IPC", "vs 2048-entry"]);
    let mut results = Vec::new();
    for entries in [0usize, 64, 512, 2048] {
        let spec = ExperimentSpec::new(format!("ablation_btb_{entries}"), scale)
            .uni(mixes::ic())
            .schemes([Scheme::Single])
            .contexts([1])
            .baseline(false)
            .quota(scale.uni_quota() / 2) // sweep point; half quota keeps it quick
            .btb_entries(entries);
        let sweep = runner.run(&spec);
        let result = sweep
            .get("IC", Scheme::Single, 1)
            .and_then(|c| c.as_uni())
            .expect("single sweep cell")
            .clone();
        results.push((entries, result));
    }
    let reference = results.last().expect("non-empty").1.throughput();
    for (entries, r) in &results {
        t.row([
            entries.to_string(),
            format!("{:.3}", r.throughput()),
            format!("{:.2}x", r.throughput() / reference),
        ]);
    }
    println!("{t}");
    println!("Expected shape: throughput grows with BTB size; a disabled BTB pays the");
    println!("full taken-branch penalty (the paper's 2048-entry BTB reduces a correctly");
    println!("predicted branch to zero cost).");
}
