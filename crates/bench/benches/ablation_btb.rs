//! Ablation: branch target buffer size (0 = disabled .. 2048) on the
//! branchy IC workload, single-context processor.

use interleave_bench::uni_sim;
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let mut t = Table::new("Ablation: BTB size vs throughput (IC workload, single context)");
    t.headers(["BTB entries", "IPC", "vs 2048-entry"]);
    let mut results = Vec::new();
    for entries in [0usize, 64, 512, 2048] {
        let mut sim = uni_sim(mixes::ic(), Scheme::Single, 1);
        sim.quota /= 2; // sweep point; half quota keeps the sweep quick
        let mut result = None;
        // Rebuild with a custom processor config via the public fields.
        // MultiprogramSim owns the ProcConfig internally; expose the knob
        // through the btb_entries field.
        sim.btb_entries = entries;
        result.replace(sim.run());
        results.push((entries, result.expect("ran")));
    }
    let reference = results.last().expect("non-empty").1.throughput();
    for (entries, r) in &results {
        t.row([
            entries.to_string(),
            format!("{:.3}", r.throughput()),
            format!("{:.2}x", r.throughput() / reference),
        ]);
    }
    println!("{t}");
    println!("Expected shape: throughput grows with BTB size; a disabled BTB pays the");
    println!("full taken-branch penalty (the paper's 2048-entry BTB reduces a correctly");
    println!("predicted branch to zero cost).");
}
