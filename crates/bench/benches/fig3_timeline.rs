//! Figure 3: execution of four threads (A: 2 instructions; B: 3 with a
//! two-cycle pipeline dependency; C: 4; D: 6 — each ending with a cache
//! miss) under the blocked and interleaved schemes, as an issue-slot
//! timeline.

use interleave_core::{IssueRecord, ProcConfig, Processor, Scheme, VecSource};
use interleave_isa::{Instr, Reg};
use interleave_mem::{MemConfig, UniMemSystem};

fn alu(pc: u64) -> Instr {
    Instr::alu(pc, Some(Reg::int(1)), Some(Reg::int(2)), None)
}

fn threads() -> [Vec<Instr>; 4] {
    let a = vec![alu(0x100), Instr::load(0x104, Reg::int(4), Reg::int(29), 0x8000_0000)];
    let b = vec![
        Instr::load(0x200, Reg::int(4), Reg::int(29), 0x10), // hit: two delay slots
        Instr::alu(0x204, Some(Reg::int(5)), Some(Reg::int(4)), None), // 2-cycle dependency
        Instr::load(0x208, Reg::int(6), Reg::int(29), 0x8000_0040),
    ];
    let c = vec![
        alu(0x300),
        alu(0x304),
        alu(0x308),
        Instr::load(0x30C, Reg::int(4), Reg::int(29), 0x8000_0080),
    ];
    let d = vec![
        alu(0x400),
        alu(0x404),
        alu(0x408),
        alu(0x40C),
        alu(0x410),
        Instr::load(0x414, Reg::int(4), Reg::int(29), 0x8000_00C0),
    ];
    [a, b, c, d]
}

fn run(scheme: Scheme) -> (u64, String) {
    let mut mem_cfg = MemConfig::workstation();
    mem_cfg.tlbs_enabled = false;
    let mut cpu = Processor::new(ProcConfig::new(scheme, 4), UniMemSystem::new(mem_cfg));
    for pc in (0..0x1000u64).step_by(32) {
        cpu.port_mut().preload_inst(pc);
    }
    cpu.port_mut().preload_data(0x10);
    cpu.set_trace(true);
    for (i, t) in threads().into_iter().enumerate() {
        cpu.attach(i, Box::new(VecSource::new(t)));
    }
    let cycles = cpu.run_until_done(10_000);
    assert!(cpu.is_done(), "figure 3 microbenchmark did not complete");
    let timeline: String = cpu
        .trace()
        .iter()
        .map(|r| match r {
            IssueRecord::Issued { ctx, .. } => (b'A' + *ctx as u8) as char,
            IssueRecord::Stalled { .. } => '-',
            IssueRecord::Bubble(Some(_)) => '.',
            IssueRecord::Bubble(None) => ' ',
        })
        .collect();
    (cycles, timeline)
}

fn main() {
    println!("Figure 3: issue-slot timeline for four threads ending in cache misses");
    println!("(letter = context issuing, '-' = dependency stall, '.' = bubble)\n");
    let (blocked_cycles, blocked_tl) = run(Scheme::Blocked);
    let (inter_cycles, inter_tl) = run(Scheme::Interleaved);
    println!("Blocked     ({blocked_cycles:3} cycles): {}", blocked_tl.trim_end());
    println!("Interleaved ({inter_cycles:3} cycles): {}", inter_tl.trim_end());
    println!();
    println!(
        "Interleaved finishes {:.0}% sooner (paper: interleaved completes all four threads well before blocked).",
        (1.0 - inter_cycles as f64 / blocked_cycles as f64) * 100.0
    );
    assert!(inter_cycles < blocked_cycles, "interleaved must finish first");
}
