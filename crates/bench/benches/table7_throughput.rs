//! Table 7: increase in application throughput with multiple contexts
//! (two and four contexts, blocked vs interleaved, geometric mean).

use interleave_bench::{ExperimentSpec, Runner, Scale};
use interleave_core::Scheme;
use interleave_stats::summary::{fmt_ratio, geometric_mean};
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let workloads = mixes::all();
    let mut spec = ExperimentSpec::new("table7", Scale::from_env()).contexts([2, 4]);
    for w in &workloads {
        spec = spec.uni(w.clone());
    }
    let runner = Runner::from_env();
    let sweep = runner.run(&spec);
    sweep.maybe_emit_json();
    eprintln!(
        "table7 sweep: {} cells, {} jobs, {:.2?} wall",
        sweep.cells.len(),
        sweep.jobs,
        sweep.wall
    );

    let mut gains: Vec<Vec<f64>> = vec![Vec::new(); 4]; // [I2, B2, I4, B4]
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Two".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
        vec!["Four".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
    ];

    for w in &workloads {
        let base_tp = sweep
            .baseline(w.name)
            .and_then(|c| c.as_uni())
            .expect("sweep includes the baseline")
            .throughput();
        for (n, scheme, slot) in [
            (2, Scheme::Interleaved, 0),
            (2, Scheme::Blocked, 1),
            (4, Scheme::Interleaved, 2),
            (4, Scheme::Blocked, 3),
        ] {
            let r = sweep
                .get(w.name, scheme, n)
                .and_then(|c| c.as_uni())
                .expect("sweep covers the grid");
            let ratio = r.throughput() / base_tp;
            gains[slot].push(ratio);
            rows[slot].push(fmt_ratio(ratio));
        }
    }
    for (slot, row) in rows.iter_mut().enumerate() {
        let mean = geometric_mean(&gains[slot]).expect("seven workloads");
        row.push(fmt_ratio(mean));
    }

    let mut t = Table::new("Table 7: increase in application throughput with multiple contexts");
    let mut headers = vec!["Contexts".to_string(), "Scheme".to_string()];
    headers.extend(workloads.iter().map(|w| w.name.to_string()));
    headers.push("Mean".to_string());
    t.headers(headers);
    for row in rows {
        t.row(row);
    }
    interleave_bench::emit_named(&t, "table7");
    println!("Paper (geometric means): two interleaved ≈ 1.22, two blocked ≈ 1.03,");
    println!("four interleaved ≈ 1.50, four blocked ≈ 1.11. Expected shape: interleaved");
    println!("well above blocked at both context counts.");
}
