//! Table 7: increase in application throughput with multiple contexts
//! (two and four contexts, blocked vs interleaved, geometric mean).

use interleave_bench::{uni_grid, uni_sim};
use interleave_core::Scheme;
use interleave_stats::summary::{fmt_ratio, geometric_mean};
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let workloads = mixes::all();
    let mut gains: Vec<Vec<f64>> = vec![Vec::new(); 4]; // [I2, B2, I4, B4]
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Two".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
        vec!["Four".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
    ];

    for w in &workloads {
        let (baseline, grid) = uni_grid(w, &[2, 4]);
        let base_tp = baseline.throughput();
        let _ = uni_sim(w.clone(), Scheme::Single, 1); // scale echo
        for (scheme, n, r) in &grid {
            let ratio = r.throughput() / base_tp;
            let slot = match (n, scheme) {
                (2, Scheme::Interleaved) => 0,
                (2, Scheme::Blocked) => 1,
                (4, Scheme::Interleaved) => 2,
                (4, Scheme::Blocked) => 3,
                _ => unreachable!("grid covers 2 and 4 contexts"),
            };
            gains[slot].push(ratio);
            rows[slot].push(fmt_ratio(ratio));
        }
    }
    for (slot, row) in rows.iter_mut().enumerate() {
        let mean = geometric_mean(&gains[slot]).expect("seven workloads");
        row.push(fmt_ratio(mean));
    }

    let mut t = Table::new("Table 7: increase in application throughput with multiple contexts");
    let mut headers = vec!["Contexts".to_string(), "Scheme".to_string()];
    headers.extend(workloads.iter().map(|w| w.name.to_string()));
    headers.push("Mean".to_string());
    t.headers(headers);
    for row in rows {
        t.row(row);
    }
    interleave_bench::emit_named(&t, "table7");
    println!("Paper (geometric means): two interleaved ≈ 1.22, two blocked ≈ 1.03,");
    println!("four interleaved ≈ 1.50, four blocked ≈ 1.11. Expected shape: interleaved");
    println!("well above blocked at both context counts.");
}
