//! Criterion micro-benchmarks of the simulator itself: cycles simulated
//! per second for the core engine and the memory system.

use criterion::{criterion_group, criterion_main, Criterion};
use interleave_core::{PerfectMemory, ProcConfig, Processor, Scheme};
use interleave_isa::Access;
use interleave_mem::{MemConfig, UniMemSystem};
use interleave_workloads::{spec, SyntheticApp};

fn bench_processor(c: &mut Criterion) {
    c.bench_function("interleaved_4ctx_10k_cycles_perfect_mem", |b| {
        b.iter(|| {
            let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 4), PerfectMemory);
            for ctx in 0..4 {
                cpu.attach(ctx, Box::new(SyntheticApp::new(spec::eqntott(), ctx, 7)));
            }
            cpu.run_cycles(10_000);
            cpu.retired(0)
        })
    });
    c.bench_function("single_ctx_10k_cycles_full_memory", |b| {
        b.iter(|| {
            let mut cpu = Processor::new(
                ProcConfig::new(Scheme::Single, 1),
                UniMemSystem::new(MemConfig::workstation()),
            );
            cpu.attach(0, Box::new(SyntheticApp::new(spec::tomcatv(), 0, 7)));
            cpu.run_cycles(10_000);
            cpu.retired(0)
        })
    });
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("uni_mem_10k_accesses", |b| {
        b.iter(|| {
            let mut cfg = MemConfig::workstation();
            cfg.tlbs_enabled = false;
            let mut mem = UniMemSystem::new(cfg);
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                if let interleave_mem::DataAccess::Miss { ready_at, .. } =
                    mem.access_data(i * 4, (i * 2891) % (1 << 22), Access::Read, 0)
                {
                    acc = acc.wrapping_add(ready_at);
                }
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_processor, bench_memory
}
criterion_main!(benches);
