//! Figure 2: context-switch cost of a cache miss — the blocked scheme
//! flushes the whole seven-stage pipeline while the interleaved scheme
//! squashes only the missing context's instructions.

use interleave_core::{ProcConfig, Processor, Scheme, VecSource};
use interleave_isa::{Instr, Reg};
use interleave_mem::{MemConfig, UniMemSystem};
use interleave_stats::{Category, Table};

fn alu(pc: u64) -> Instr {
    Instr::alu(pc, Some(Reg::int(1)), Some(Reg::int(2)), None)
}

/// Runs a 4-context processor where context A takes one cold miss amid
/// plenty of independent work, and reports the cycles charged to switch
/// overhead.
fn switch_cost(scheme: Scheme) -> u64 {
    let mut mem_cfg = MemConfig::workstation();
    mem_cfg.tlbs_enabled = false;
    let mut cpu = Processor::new(ProcConfig::new(scheme, 4), UniMemSystem::new(mem_cfg));
    // Warm every code line and all data except the one missing line.
    for pc in (0..0x4000u64).step_by(32) {
        cpu.port_mut().preload_inst(pc);
        cpu.port_mut().preload_inst(0x1000_0000 + pc);
    }
    let mut prog = vec![alu(0x100), alu(0x104)];
    prog.push(Instr::load(0x108, Reg::int(4), Reg::int(29), 0x8000_0000)); // cold: misses
    prog.extend((0..8).map(|i| alu(0x10C + i * 4)));
    cpu.attach(0, Box::new(VecSource::new(prog)));
    for c in 1..4 {
        let base = 0x1000_0000 + 0x100 * c as u64;
        cpu.attach(c, Box::new(VecSource::new((0..40).map(move |i| alu(base + i * 4)))));
    }
    cpu.run_until_done(100_000);
    assert!(cpu.is_done(), "figure 2 microbenchmark did not complete");
    cpu.breakdown().get(Category::Switch)
}

fn main() {
    let blocked = switch_cost(Scheme::Blocked);
    let interleaved = switch_cost(Scheme::Interleaved);

    let mut t = Table::new(
        "Figure 2: switch cost of one cache miss (4 contexts, cycles of switch overhead)",
    );
    t.headers(["Scheme", "measured", "paper"]);
    t.row(["Blocked", &blocked.to_string(), "7"]);
    t.row(["Interleaved", &interleaved.to_string(), "~2"]);
    println!("{t}");

    assert!(blocked > interleaved, "blocked must pay more switch overhead than interleaved");
}
