//! Figure 7: interleaved-scheme processor utilization breakdown for the
//! seven workstation workloads at 1, 2, and 4 contexts.

use interleave_bench::{breakdown_cells, uni_grid};
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    println!("Figure 7: interleaved scheme processor utilization (fractions of execution time)\n");
    let mut t = Table::new(
        "columns: busy / instruction stall / inst cache+TLB / data cache+TLB / context switch",
    );
    t.headers(["Workload", "ctx", "busy", "instr", "inst-mem", "data-mem", "switch"]);
    for w in mixes::all() {
        let (baseline, rows) = uni_grid(&w, &[2, 4]);
        let mut cells = vec![w.name.to_string(), "1".to_string()];
        cells.extend(breakdown_cells(&baseline.breakdown, true));
        t.row(cells);
        for (scheme, n, r) in &rows {
            if *scheme != interleave_core::Scheme::Interleaved {
                continue;
            }
            let mut cells = vec![String::new(), n.to_string()];
            cells.extend(breakdown_cells(&r.breakdown, true));
            t.row(cells);
        }
    }
    interleave_bench::emit_named(&t, "fig7");
    println!("Paper shape: the lower switch cost lets the interleaved scheme convert both");
    println!("pipeline-dependency and memory stall time into busy time; utilization rises");
    println!("substantially by four contexts.");
}
