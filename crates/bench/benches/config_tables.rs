//! Tables 1, 2, 3, 6, 8: configuration echo — the modeled parameters,
//! including the reconstructions documented in DESIGN.md.

use interleave_isa::{Op, TimingModel};
use interleave_mem::MemConfig;
use interleave_mp::LatencyModel;
use interleave_stats::Table;
use interleave_workloads::InterferenceTable;

fn main() {
    let cfg = MemConfig::workstation();

    let mut t1 = Table::new("Table 1: cache parameters (all caches direct-mapped)");
    t1.headers(["Parameter", "Primary Data", "Primary Inst", "Secondary"]);
    t1.row(["Size", "64 Kbytes", "64 Kbytes", "1 Mbyte"]);
    t1.row([
        "Line size".to_string(),
        format!("{} bytes", cfg.l1d.line),
        format!("{} bytes", cfg.l1i.line),
        format!("{} bytes", cfg.l2.line),
    ]);
    t1.row([
        "Fetch size (lines)".to_string(),
        cfg.l1d.fetch_lines.to_string(),
        cfg.l1i.fetch_lines.to_string(),
        cfg.l2.fetch_lines.to_string(),
    ]);
    t1.row([
        "Read occupancy".to_string(),
        cfg.l1d.read_occupancy.to_string(),
        cfg.l1i.read_occupancy.to_string(),
        cfg.l2.read_occupancy.to_string(),
    ]);
    t1.row([
        "Fill occupancy".to_string(),
        cfg.l1d.fill_occupancy.to_string(),
        cfg.l1i.fill_occupancy.to_string(),
        cfg.l2.fill_occupancy.to_string(),
    ]);
    println!("{t1}");

    let mut t2 = Table::new("Table 2: unloaded memory latencies (cycles)");
    t2.headers(["Access", "cycles"]);
    t2.row(["Hit in primary cache", "1"]);
    t2.row(["Hit in secondary cache".to_string(), cfg.path.unloaded_l2_hit(&cfg.l2).to_string()]);
    t2.row(["Reply from memory".to_string(), cfg.path.unloaded_memory(&cfg.l2).to_string()]);
    println!("{t2}");

    let timing = TimingModel::r4000_like();
    let mut t3 =
        Table::new("Table 3: long-latency operations (issue / latency, * = reconstructed)");
    t3.headers(["Operation", "Issue", "Latency"]);
    for (label, op, reconstructed) in [
        ("Integer divide", Op::IntDiv, true),
        ("Integer multiply", Op::IntMul, true),
        ("Shift", Op::Shift, false),
        ("Load", Op::Load, false),
        ("FP add/sub/conv/mult", Op::FpAdd, false),
        ("FP divide (double)", Op::FpDivDouble, false),
        ("FP divide (single)", Op::FpDivSingle, false),
    ] {
        let t = timing.timing(op);
        t3.row([
            format!("{label}{}", if reconstructed { " *" } else { "" }),
            t.issue.to_string(),
            t.latency.to_string(),
        ]);
    }
    println!("{t3}");

    let mut t6 = Table::new("Table 6: OS scheduler cache interference (reconstructed)");
    t6.headers(["Processes switched", "I-cache lines", "D-cache lines"]);
    for (n, i, d) in InterferenceTable::torrellas_like().rows() {
        t6.row([n.to_string(), i.to_string(), d.to_string()]);
    }
    println!("{t6}");

    let lat = LatencyModel::dash_like();
    let mut t8 =
        Table::new("Table 8: multiprocessor memory latencies (uniform ranges, reconstructed)");
    t8.headers(["Access", "cycles"]);
    t8.row(["Hit in primary cache".to_string(), lat.hit.to_string()]);
    t8.row(["Reply from local memory".to_string(), format!("{}..{}", lat.local.0, lat.local.1)]);
    t8.row(["Reply from remote memory".to_string(), format!("{}..{}", lat.remote.0, lat.remote.1)]);
    t8.row([
        "Reply from remote cache".to_string(),
        format!("{}..{}", lat.remote_cache.0, lat.remote_cache.1),
    ]);
    println!("{t8}");
}
