//! Table 10: application speedup due to multiple contexts on the
//! DASH-like multiprocessor (2/4/8 contexts per processor, both schemes).

use interleave_bench::{mp_grid, mp_nodes};
use interleave_core::Scheme;
use interleave_stats::summary::{fmt_ratio, geometric_mean};
use interleave_stats::Table;

fn main() {
    let apps = interleave_mp::splash_suite();
    println!(
        "Table 10: application speedup due to multiple contexts ({} nodes)\n",
        mp_nodes()
    );
    // rows[contexts][scheme] -> per-app speedups
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Two".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
        vec!["Four".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
        vec!["Eight".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
    ];
    for app in &apps {
        let (baseline, grid) = mp_grid(app);
        for (scheme, n, r) in &grid {
            let speedup = baseline.cycles as f64 / r.cycles as f64;
            let slot = match (n, scheme) {
                (2, Scheme::Interleaved) => 0,
                (2, Scheme::Blocked) => 1,
                (4, Scheme::Interleaved) => 2,
                (4, Scheme::Blocked) => 3,
                (8, Scheme::Interleaved) => 4,
                (8, Scheme::Blocked) => 5,
                _ => unreachable!("grid covers 2/4/8 contexts"),
            };
            speedups[slot].push(speedup);
            rows[slot].push(fmt_ratio(speedup));
        }
    }
    for (slot, row) in rows.iter_mut().enumerate() {
        row.push(fmt_ratio(geometric_mean(&speedups[slot]).expect("seven apps")));
    }

    let mut t = Table::new("speedup over the single-context processor (same machine, same total work)");
    let mut headers = vec!["Contexts".to_string(), "Scheme".to_string()];
    headers.extend(apps.iter().map(|a| a.name.to_string()));
    headers.push("Mean".to_string());
    t.headers(headers);
    for row in rows {
        t.row(row);
    }
    interleave_bench::emit_named(&t, "table10");
    println!("Paper shape: gains are much larger than in the uniprocessor study; Cholesky");
    println!("alone shows no gains (its serializing task queue); the largest scheme gaps");
    println!("appear for the divide-heavy Barnes and Water.");
}
