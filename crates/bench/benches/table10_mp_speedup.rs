//! Table 10: application speedup due to multiple contexts on the
//! DASH-like multiprocessor (2/4/8 contexts per processor, both schemes).

use interleave_bench::{ExperimentSpec, Runner, Scale};
use interleave_core::Scheme;
use interleave_stats::summary::{fmt_ratio, geometric_mean};
use interleave_stats::Table;

fn main() {
    let scale = Scale::from_env();
    let apps = interleave_mp::splash_suite();
    println!(
        "Table 10: application speedup due to multiple contexts ({} nodes)\n",
        scale.mp_nodes()
    );
    let mut spec = ExperimentSpec::new("table10", scale).contexts([2, 4, 8]);
    for app in &apps {
        spec = spec.mp(app.clone());
    }
    let sweep = Runner::from_env().run(&spec);
    sweep.maybe_emit_json();

    // rows[contexts][scheme] -> per-app speedups
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut rows: Vec<Vec<String>> = vec![
        vec!["Two".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
        vec!["Four".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
        vec!["Eight".into(), "Interleaved".into()],
        vec![String::new(), "Blocked".into()],
    ];
    for app in &apps {
        let baseline = sweep.baseline(app.name).expect("sweep includes the baseline").cycles();
        for (n, scheme, slot) in [
            (2, Scheme::Interleaved, 0),
            (2, Scheme::Blocked, 1),
            (4, Scheme::Interleaved, 2),
            (4, Scheme::Blocked, 3),
            (8, Scheme::Interleaved, 4),
            (8, Scheme::Blocked, 5),
        ] {
            let cycles = sweep.get(app.name, scheme, n).expect("sweep covers the grid").cycles();
            let speedup = baseline as f64 / cycles as f64;
            speedups[slot].push(speedup);
            rows[slot].push(fmt_ratio(speedup));
        }
    }
    for (slot, row) in rows.iter_mut().enumerate() {
        row.push(fmt_ratio(geometric_mean(&speedups[slot]).expect("seven apps")));
    }

    let mut t =
        Table::new("speedup over the single-context processor (same machine, same total work)");
    let mut headers = vec!["Contexts".to_string(), "Scheme".to_string()];
    headers.extend(apps.iter().map(|a| a.name.to_string()));
    headers.push("Mean".to_string());
    t.headers(headers);
    for row in rows {
        t.row(row);
    }
    interleave_bench::emit_named(&t, "table10");
    println!("Paper shape: gains are much larger than in the uniprocessor study; Cholesky");
    println!("alone shows no gains (its serializing task queue); the largest scheme gaps");
    println!("appear for the divide-heavy Barnes and Water.");
}
