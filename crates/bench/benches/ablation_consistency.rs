//! Ablation: store handling — sequentially consistent switch-on-store-miss
//! (the paper's default) vs a release-consistent write buffer, one of the
//! alternative latency-tolerance techniques from the introduction.

use interleave_bench::uni_sim;
use interleave_core::{Scheme, StorePolicy};
use interleave_stats::Table;
use interleave_workloads::mixes;

fn run(scheme: Scheme, contexts: usize, policy: StorePolicy) -> f64 {
    let mut sim = uni_sim(mixes::dc(), scheme, contexts);
    sim.quota /= 2;
    sim.store_policy = policy;
    sim.run().throughput()
}

fn main() {
    let mut t = Table::new("Ablation: store-miss policy (DC workload)");
    t.headers(["Configuration", "switch-on-miss IPC", "write-buffer IPC", "gain"]);
    for (label, scheme, contexts) in [
        ("blocked x2", Scheme::Blocked, 2),
        ("interleaved x2", Scheme::Interleaved, 2),
        ("blocked x4", Scheme::Blocked, 4),
        ("interleaved x4", Scheme::Interleaved, 4),
    ] {
        let sc = run(scheme, contexts, StorePolicy::SwitchOnMiss);
        let wb = run(scheme, contexts, StorePolicy::WriteBuffer);
        t.row([
            label.to_string(),
            format!("{sc:.3}"),
            format!("{wb:.3}"),
            format!("{:+.0}%", (wb / sc - 1.0) * 100.0),
        ]);
    }
    println!("{t}");
    println!("Expected shape: buffered stores remove the store-miss switches, helping both");
    println!("schemes; the blocked scheme benefits more because each avoided switch saves");
    println!("its full pipeline flush.");
}
