//! Ablation: store handling — sequentially consistent switch-on-store-miss
//! (the paper's default) vs a release-consistent write buffer, one of the
//! alternative latency-tolerance techniques from the introduction.

use interleave_bench::{ExperimentSpec, Runner, Scale, SweepResult};
use interleave_core::{Scheme, StorePolicy};
use interleave_stats::Table;
use interleave_workloads::mixes;

fn sweep(policy: StorePolicy) -> SweepResult {
    let scale = Scale::from_env();
    let name = match policy {
        StorePolicy::SwitchOnMiss => "ablation_consistency_switch",
        StorePolicy::WriteBuffer => "ablation_consistency_buffer",
    };
    let spec = ExperimentSpec::new(name, scale)
        .uni(mixes::dc())
        .contexts([2, 4])
        .baseline(false)
        .quota(scale.uni_quota() / 2)
        .store_policy(policy);
    Runner::from_env().run(&spec)
}

fn main() {
    let switch = sweep(StorePolicy::SwitchOnMiss);
    let buffer = sweep(StorePolicy::WriteBuffer);
    let ipc = |s: &SweepResult, scheme, contexts| {
        s.get("DC", scheme, contexts)
            .and_then(|c| c.as_uni())
            .expect("sweep covers the cell")
            .throughput()
    };
    let mut t = Table::new("Ablation: store-miss policy (DC workload)");
    t.headers(["Configuration", "switch-on-miss IPC", "write-buffer IPC", "gain"]);
    for (label, scheme, contexts) in [
        ("blocked x2", Scheme::Blocked, 2),
        ("interleaved x2", Scheme::Interleaved, 2),
        ("blocked x4", Scheme::Blocked, 4),
        ("interleaved x4", Scheme::Interleaved, 4),
    ] {
        let sc = ipc(&switch, scheme, contexts);
        let wb = ipc(&buffer, scheme, contexts);
        t.row([
            label.to_string(),
            format!("{sc:.3}"),
            format!("{wb:.3}"),
            format!("{:+.0}%", (wb / sc - 1.0) * 100.0),
        ]);
    }
    println!("{t}");
    println!("Expected shape: buffered stores remove the store-miss switches, helping both");
    println!("schemes; the blocked scheme benefits more because each avoided switch saves");
    println!("its full pipeline flush.");
}
