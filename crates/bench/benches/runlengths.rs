//! Run-length report (paper Section 5.1): the number of instructions a
//! context issues between unavailability events determines how a strict
//! round-robin divides the machine among applications — the motivation
//! for the paper's context-usage feedback to the operating system.

use interleave_bench::{ExperimentSpec, Runner, Scale};
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let scale = Scale::from_env();
    let mut spec = ExperimentSpec::new("runlengths", scale)
        .contexts([4])
        .baseline(false)
        .quota(scale.uni_quota() / 2); // half quota keeps the sweep quick
    for w in mixes::all() {
        spec = spec.uni(w);
    }
    let sweep = Runner::from_env().run(&spec);
    sweep.maybe_emit_json();

    let mut t =
        Table::new("Mean run length (instructions between unavailability events, 4 contexts)");
    t.headers(["Workload", "Blocked", "Interleaved", "min..max (interleaved)"]);
    for w in mixes::all() {
        let mut row = vec![w.name.to_string()];
        let mut detail = String::new();
        for scheme in [Scheme::Blocked, Scheme::Interleaved] {
            let r = sweep
                .get(w.name, scheme, 4)
                .and_then(|c| c.as_uni())
                .expect("sweep covers every workload cell");
            row.push(format!("{:.1}", r.run_lengths.mean()));
            if scheme == Scheme::Interleaved {
                detail = format!("{}..{}", r.run_lengths.min(), r.run_lengths.max());
            }
        }
        row.push(detail);
        t.row(row);
    }
    println!("{t}");
    println!("Lower miss rates mean longer run lengths; under strict round-robin the");
    println!("application with the longest run lengths receives the most cycles, which is");
    println!("why the paper assumes usage feedback (we normalize with fixed work instead).");
}
