//! Ablation: software prefetching vs multiple contexts — the alternative
//! latency-tolerance techniques the paper's introduction compares.
//! Prefetching covers the *predictable* (streaming) misses; multiple
//! contexts are "universal" and cover the rest too.

use interleave_bench::{ExperimentSpec, Runner, Scale, SweepResult};
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn sweep(prefetch: bool) -> SweepResult {
    let scale = Scale::from_env();
    let mut workload = mixes::dc();
    for app in &mut workload.apps {
        app.software_prefetch = prefetch;
    }
    let spec = ExperimentSpec::new(
        if prefetch { "ablation_prefetch_on" } else { "ablation_prefetch_off" },
        scale,
    )
    .uni(workload)
    .schemes([Scheme::Interleaved])
    .contexts([2, 4])
    .quota(scale.uni_quota() / 2);
    Runner::from_env().run(&spec)
}

fn main() {
    let plain = sweep(false);
    let prefetched = sweep(true);
    let ipc = |s: &SweepResult, scheme, contexts| {
        s.get("DC", scheme, contexts)
            .and_then(|c| c.as_uni())
            .expect("sweep covers the cell")
            .throughput()
    };
    let base = ipc(&plain, Scheme::Single, 1);
    let mut t = Table::new("Ablation: software prefetch vs multiple contexts (DC workload)");
    t.headers(["Configuration", "IPC", "vs baseline"]);
    for (label, sweep, scheme, contexts) in [
        ("single", &plain, Scheme::Single, 1),
        ("single + prefetch", &prefetched, Scheme::Single, 1),
        ("interleaved x2", &plain, Scheme::Interleaved, 2),
        ("interleaved x4", &plain, Scheme::Interleaved, 4),
        ("interleaved x4 + prefetch", &prefetched, Scheme::Interleaved, 4),
    ] {
        let ipc = ipc(sweep, scheme, contexts);
        t.row([label.to_string(), format!("{ipc:.3}"), format!("{:.2}x", ipc / base)]);
    }
    println!("{t}");
    println!("Expected shape: prefetching recovers part of the streaming miss latency on a");
    println!("single context; multiple contexts tolerate all miss classes and compose with");
    println!("prefetching (the paper calls multiple contexts a universal mechanism).");
}
