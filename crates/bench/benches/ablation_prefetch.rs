//! Ablation: software prefetching vs multiple contexts — the alternative
//! latency-tolerance techniques the paper's introduction compares.
//! Prefetching covers the *predictable* (streaming) misses; multiple
//! contexts are "universal" and cover the rest too.

use interleave_bench::uni_sim;
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn run(scheme: Scheme, contexts: usize, prefetch: bool) -> f64 {
    let mut workload = mixes::dc();
    for app in &mut workload.apps {
        app.software_prefetch = prefetch;
    }
    let mut sim = uni_sim(workload, scheme, contexts);
    sim.quota /= 2;
    sim.run().throughput()
}

fn main() {
    let base = run(Scheme::Single, 1, false);
    let mut t = Table::new("Ablation: software prefetch vs multiple contexts (DC workload)");
    t.headers(["Configuration", "IPC", "vs baseline"]);
    for (label, scheme, contexts, prefetch) in [
        ("single", Scheme::Single, 1, false),
        ("single + prefetch", Scheme::Single, 1, true),
        ("interleaved x2", Scheme::Interleaved, 2, false),
        ("interleaved x4", Scheme::Interleaved, 4, false),
        ("interleaved x4 + prefetch", Scheme::Interleaved, 4, true),
    ] {
        let ipc = run(scheme, contexts, prefetch);
        t.row([label.to_string(), format!("{ipc:.3}"), format!("{:.2}x", ipc / base)]);
    }
    println!("{t}");
    println!("Expected shape: prefetching recovers part of the streaming miss latency on a");
    println!("single context; multiple contexts tolerate all miss classes and compose with");
    println!("prefetching (the paper calls multiple contexts a universal mechanism).");
}
