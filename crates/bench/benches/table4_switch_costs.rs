//! Table 4: measured context-switch costs for each switch cause.

use interleave_core::{ProcConfig, Processor, Scheme, VecSource};
use interleave_isa::{Instr, Reg};
use interleave_mem::{MemConfig, UniMemSystem};
use interleave_stats::{Category, Table};

fn alu(pc: u64) -> Instr {
    Instr::alu(pc, Some(Reg::int(1)), Some(Reg::int(2)), None)
}

fn machine(scheme: Scheme) -> Processor<UniMemSystem> {
    let mut mem_cfg = MemConfig::workstation();
    mem_cfg.tlbs_enabled = false;
    let mut cpu = Processor::new(ProcConfig::new(scheme, 4), UniMemSystem::new(mem_cfg));
    for pc in (0..0x8000u64).step_by(32) {
        cpu.port_mut().preload_inst(pc);
        cpu.port_mut().preload_inst(0x1000_0000 + pc);
    }
    cpu
}

fn filler(cpu: &mut Processor<UniMemSystem>) {
    for c in 1..4 {
        let base = 0x1000_0000 + 0x400 * c as u64;
        cpu.attach(c, Box::new(VecSource::new((0..60).map(move |i| alu(base + i * 4)))));
    }
}

/// Switch overhead when context 0 takes one cache miss.
fn miss_cost(scheme: Scheme) -> u64 {
    let mut cpu = machine(scheme);
    let mut prog = vec![alu(0x100), alu(0x104)];
    prog.push(Instr::load(0x108, Reg::int(4), Reg::int(29), 0x8000_0000));
    prog.extend((0..8).map(|i| alu(0x10C + i * 4)));
    cpu.attach(0, Box::new(VecSource::new(prog)));
    filler(&mut cpu);
    cpu.run_until_done(100_000);
    cpu.breakdown().get(Category::Switch)
}

/// Switch overhead when context 0 executes one backoff / explicit-switch
/// instruction.
fn hint_cost(scheme: Scheme) -> u64 {
    let mut cpu = machine(scheme);
    let prog = vec![alu(0x100), Instr::backoff(0x104, 40), alu(0x108)];
    cpu.attach(0, Box::new(VecSource::new(prog)));
    filler(&mut cpu);
    cpu.run_until_done(100_000);
    cpu.breakdown().get(Category::Switch)
}

fn main() {
    let mut t = Table::new("Table 4: context switch costs (cycles, 4 contexts)");
    t.headers(["Switch cause", "Blocked", "Interleaved", "paper (B)", "paper (I)"]);
    t.row([
        "Cache miss".to_string(),
        miss_cost(Scheme::Blocked).to_string(),
        miss_cost(Scheme::Interleaved).to_string(),
        "7".to_string(),
        "1..4".to_string(),
    ]);
    t.row([
        "Explicit switch / backoff".to_string(),
        hint_cost(Scheme::Blocked).to_string(),
        hint_cost(Scheme::Interleaved).to_string(),
        "3".to_string(),
        "1".to_string(),
    ]);
    println!("{t}");
}
