//! Figure 6: blocked-scheme processor utilization breakdown for the seven
//! workstation workloads at 1, 2, and 4 contexts.

use interleave_bench::{breakdown_cells, uni_grid};
use interleave_stats::{Category, Table};
use interleave_workloads::mixes;

fn main() {
    println!("Figure 6: blocked scheme processor utilization (fractions of execution time)\n");
    let mut t = Table::new(
        "columns: busy / instruction stall / inst cache+TLB / data cache+TLB / context switch",
    );
    t.headers(["Workload", "ctx", "busy", "instr", "inst-mem", "data-mem", "switch"]);
    for w in mixes::all() {
        let (baseline, rows) = uni_grid(&w, &[2, 4]);
        let mut cells = vec![w.name.to_string(), "1".to_string()];
        cells.extend(breakdown_cells(&baseline.breakdown, true));
        t.row(cells);
        for (scheme, n, r) in &rows {
            if *scheme != interleave_core::Scheme::Blocked {
                continue;
            }
            let mut cells = vec![String::new(), n.to_string()];
            cells.extend(breakdown_cells(&r.breakdown, true));
            t.row(cells);
            assert!(r.breakdown.get(Category::Busy) > 0);
        }
    }
    interleave_bench::emit_named(&t, "fig6");
    println!("Paper shape: utilization increases little with added contexts; switch overhead");
    println!("consumes much of the tolerated latency (especially DC/DT, whose misses are");
    println!("mostly secondary-cache hits of ~9 cycles vs the ~7-cycle blocked switch).");
}
