//! Ablation: multiprocessor memory latency sensitivity — scale the
//! Table 8 ranges and watch the multiple-context gains shift.

use interleave_bench::{mp_nodes, mp_sim};
use interleave_core::Scheme;
use interleave_mp::LatencyModel;
use interleave_stats::Table;

fn scaled(model: LatencyModel, factor: f64) -> LatencyModel {
    let s = |x: u64| ((x as f64 * factor) as u64).max(2);
    LatencyModel {
        hit: model.hit,
        local: (s(model.local.0), s(model.local.1)),
        remote: (s(model.remote.0), s(model.remote.1)),
        remote_cache: (s(model.remote_cache.0), s(model.remote_cache.1)),
    }
}

fn main() {
    let app = interleave_mp::splash_suite()[0].clone(); // MP3D
    println!(
        "Ablation: memory latency sensitivity (MP3D, {} nodes, 4 contexts)\n",
        mp_nodes()
    );
    let mut t = Table::new("speedup of 4-context interleaved over single-context, per latency scale");
    t.headers(["Latency scale", "single cycles", "interleaved-4 cycles", "speedup"]);
    for factor in [0.5, 1.0, 2.0] {
        let latency = scaled(LatencyModel::dash_like(), factor);
        let mut single = mp_sim(app.clone(), Scheme::Single, 1);
        single.latency = latency;
        single.total_work /= 2;
        let s = single.run();
        let mut inter = mp_sim(app.clone(), Scheme::Interleaved, 4);
        inter.latency = latency;
        inter.total_work /= 2;
        let i = inter.run();
        t.row([
            format!("{factor}x"),
            s.cycles.to_string(),
            i.cycles.to_string(),
            format!("{:.2}", s.cycles as f64 / i.cycles as f64),
        ]);
    }
    println!("{t}");
    println!("Expected shape: the longer the latency, the more there is to tolerate and");
    println!("the larger the multiple-context speedup (the paper's motivation for");
    println!("multiprocessors as the natural first home of multithreading).");
}
