//! Ablation: multiprocessor memory latency sensitivity — scale the
//! Table 8 ranges and watch the multiple-context gains shift.

use interleave_bench::{ExperimentSpec, Runner, Scale};
use interleave_core::Scheme;
use interleave_mp::LatencyModel;
use interleave_stats::Table;

fn scaled(model: LatencyModel, factor: f64) -> LatencyModel {
    let s = |x: u64| ((x as f64 * factor) as u64).max(2);
    LatencyModel {
        hit: model.hit,
        local: (s(model.local.0), s(model.local.1)),
        remote: (s(model.remote.0), s(model.remote.1)),
        remote_cache: (s(model.remote_cache.0), s(model.remote_cache.1)),
    }
}

fn main() {
    let scale = Scale::from_env();
    let runner = Runner::from_env();
    let app = interleave_mp::splash_suite()[0].clone(); // MP3D
    println!(
        "Ablation: memory latency sensitivity (MP3D, {} nodes, 4 contexts)\n",
        scale.mp_nodes()
    );
    let mut t =
        Table::new("speedup of 4-context interleaved over single-context, per latency scale");
    t.headers(["Latency scale", "single cycles", "interleaved-4 cycles", "speedup"]);
    for factor in [0.5, 1.0, 2.0] {
        let spec = ExperimentSpec::new(format!("ablation_latency_{factor}x"), scale)
            .mp(app.clone())
            .schemes([Scheme::Interleaved])
            .contexts([4])
            .work(scale.mp_work() / 2)
            .latency(scaled(LatencyModel::dash_like(), factor));
        let sweep = runner.run(&spec);
        let cycles = |scheme, contexts| {
            sweep.get(app.name, scheme, contexts).expect("sweep covers the cell").cycles()
        };
        let s = cycles(Scheme::Single, 1);
        let i = cycles(Scheme::Interleaved, 4);
        t.row([
            format!("{factor}x"),
            s.to_string(),
            i.to_string(),
            format!("{:.2}", s as f64 / i as f64),
        ]);
    }
    println!("{t}");
    println!("Expected shape: the longer the latency, the more there is to tolerate and");
    println!("the larger the multiple-context speedup (the paper's motivation for");
    println!("multiprocessors as the natural first home of multithreading).");
}
