//! Ablation: the fine-grained (Denelcor HEP style) scheme of paper
//! Section 2.1 — no pipeline interlocks, one instruction per context in
//! flight, and (historically) no data caches. Quantifies the paper's two
//! criticisms: extremely poor single-thread performance and the large
//! number of threads needed to fill the machine.

use interleave_core::{ProcConfig, Processor, Scheme};
use interleave_mem::{MemConfig, UniMemSystem};
use interleave_stats::Table;
use interleave_workloads::{spec, SyntheticApp};

fn run(scheme: Scheme, hw_contexts: usize, threads: usize, cached: bool) -> f64 {
    let mut mem_cfg = MemConfig::workstation();
    mem_cfg.tlbs_enabled = false;
    mem_cfg.data_cache_enabled = cached;
    let mut cpu = Processor::new(ProcConfig::new(scheme, hw_contexts), UniMemSystem::new(mem_cfg));
    let quota = 20_000u64;
    for t in 0..threads {
        cpu.attach(t, Box::new(SyntheticApp::new(spec::emit(), t, 3).with_limit(quota)));
    }
    let cycles = cpu.run_until_done(200_000_000);
    assert!(cpu.is_done(), "fine-grained ablation did not complete");
    (threads as u64 * quota) as f64 / cycles as f64
}

fn main() {
    println!("Ablation: fine-grained (HEP-like) vs interleaved (paper Section 2.1)\n");

    let mut t = Table::new("single-thread performance (IPC, one loaded thread)");
    t.headers(["Machine", "IPC"]);
    t.row([
        "Single-context (interlocked, cached)".to_string(),
        format!("{:.3}", run(Scheme::Single, 1, 1, true)),
    ]);
    t.row([
        "Fine-grained (no interlocks, cached)".to_string(),
        format!("{:.3}", run(Scheme::FineGrained, 16, 1, true)),
    ]);
    t.row([
        "Fine-grained (no interlocks, no D-cache)".to_string(),
        format!("{:.3}", run(Scheme::FineGrained, 16, 1, false)),
    ]);
    println!("{t}");

    let mut t = Table::new("threads needed to fill the pipeline (aggregate IPC)");
    t.headers(["Threads", "Fine-grained", "Interleaved"]);
    for threads in [1usize, 2, 4, 8, 12, 16] {
        t.row([
            threads.to_string(),
            format!("{:.3}", run(Scheme::FineGrained, 16, threads, true)),
            format!("{:.3}", run(Scheme::Interleaved, 16, threads, true)),
        ]);
    }
    println!("{t}");
    println!("Paper's criticism quantified: without interlocks a thread issues at best one");
    println!("instruction per pipeline depth, so serial sections are ~7x slower, and many");
    println!("threads are needed to reach the utilization the interleaved scheme gets");
    println!("from one or two.");
}
