//! Figure 9: multiprocessor execution-time breakdown, interleaved scheme,
//! at 1/2/4/8 contexts per processor.

use interleave_bench::{breakdown_cells, mp_grid, Scale};
use interleave_core::Scheme;
use interleave_stats::Table;

fn main() {
    println!(
        "Figure 9: interleaved scheme execution-time breakdown ({} nodes)\n",
        Scale::from_env().mp_nodes()
    );
    let mut t = Table::new("columns: busy / instr(short) / instr(long) / memory / sync / switch");
    t.headers(["App", "ctx", "busy", "short", "long", "memory", "sync", "switch"]);
    for app in interleave_mp::splash_suite() {
        let (baseline, grid) = mp_grid(&app);
        let mut cells = vec![app.name.to_string(), "1".to_string()];
        cells.extend(breakdown_cells(&baseline.breakdown, false));
        t.row(cells);
        for (scheme, n, r) in &grid {
            if *scheme != Scheme::Interleaved {
                continue;
            }
            let mut cells = vec![String::new(), n.to_string()];
            cells.extend(breakdown_cells(&r.breakdown, false));
            t.row(cells);
        }
    }
    interleave_bench::emit_named(&t, "fig9");
    println!("Paper shape: less switch overhead than the blocked scheme and the short");
    println!("pipeline-dependency stalls (~12% of single-context time) are tolerated too.");
}
