//! Host-throughput benchmark for the event-driven hot loop.
//!
//! Two measurements, each isolating one hot-path optimisation:
//!
//! 1. **Idle-cycle skipping.** Runs an idle-heavy workload — a few
//!    contexts issuing strided loads that always miss all the way to
//!    memory, so the processor spends most simulated cycles with an
//!    empty pipe waiting on fills — once with idle-cycle skipping
//!    enabled and once with it disabled, on the same instruction
//!    streams. Asserts the two runs are cycle-identical (skipping is
//!    purely a host optimisation) and that skipping delivers at least
//!    a 2x simulated-cycles-per-second improvement.
//!
//! 2. **Batched workload generation.** Drives the synthetic generator
//!    directly — no processor attached — pulling the same stream once
//!    instruction-by-instruction (`next_instr`) and once in
//!    [`BATCH`]-sized runs (`next_run`), through `Box<dyn InstrSource>`
//!    with the host-phase profiler enabled, exactly as the fetch unit
//!    calls it in a profiled CI smoke: the per-call costs batching
//!    amortizes are the virtual dispatch, the profiler marks, and the
//!    batch-length histogram update. Asserts the streams are identical
//!    (batching is call-granularity-invisible) and that the batched
//!    form is faster (median of three trials each way).

use std::time::Instant;

use interleave_core::{InstrSource, ProcConfig, Processor, Scheme, VecSource};
use interleave_isa::{Instr, Reg};
use interleave_mem::{MemConfig, UniMemSystem};
use interleave_workloads::{AppProfile, SyntheticApp};

const CONTEXTS: usize = 2;
const LOADS_PER_CONTEXT: u64 = 20_000;
const CYCLE_LIMIT: u64 = 50_000_000;

/// A stream of strided loads that never reuse a cache line, so every
/// access misses to memory and the context waits out the full fill
/// latency with nothing else to run.
fn miss_stream(ctx: usize) -> VecSource {
    let base = 0x100_0000 * (ctx as u64 + 1);
    VecSource::new(
        (0..LOADS_PER_CONTEXT)
            .map(move |i| Instr::load(base + i * 4, Reg::int(1), Reg::int(2), base + i * 4096)),
    )
}

/// Workstation memory with remote-memory-class bank latency, so each
/// miss leaves the processor idle for hundreds of cycles.
fn slow_memory() -> MemConfig {
    let mut mem = MemConfig::workstation();
    mem.path.bank_access = 400;
    mem
}

/// Runs the workload and returns (simulated cycles, host seconds).
fn run(idle_skip: bool) -> (u64, f64) {
    let mut cfg = ProcConfig::new(Scheme::Interleaved, CONTEXTS);
    cfg.idle_skip = idle_skip;
    let mut cpu = Processor::new(cfg, UniMemSystem::new(slow_memory()));
    for ctx in 0..CONTEXTS {
        cpu.attach(ctx, Box::new(miss_stream(ctx)));
    }
    let started = Instant::now();
    cpu.run_until_done(CYCLE_LIMIT);
    let wall = started.elapsed().as_secs_f64();
    assert!(cpu.is_done(), "workload must finish within the cycle limit");
    (cpu.now(), wall)
}

/// Instructions pulled per `next_run` call in the batching benchmark —
/// the fetch unit's refill run size.
const BATCH: usize = 32;
const GEN_INSTRS: u64 = 2_000_000;
const GEN_TRIALS: usize = 3;

/// Boxed like [`Processor::attach`] takes it: every pull goes through
/// dynamic dispatch, as in the real fetch path.
fn gen_app() -> Box<dyn InstrSource> {
    Box::new(SyntheticApp::new(AppProfile::base("hotloop"), 0, 42).with_limit(GEN_INSTRS))
}

/// Drains a fresh generator one instruction at a time; returns (stream
/// checksum, host seconds).
fn gen_single() -> (u64, f64) {
    let mut app = gen_app();
    let started = Instant::now();
    let mut sum = 0u64;
    while let Some(instr) = app.next_instr() {
        sum = sum.wrapping_mul(31).wrapping_add(instr.pc);
    }
    (sum, started.elapsed().as_secs_f64())
}

/// Drains the identical stream in `BATCH`-sized runs.
fn gen_batched() -> (u64, f64) {
    let mut app = gen_app();
    let started = Instant::now();
    let mut sum = 0u64;
    let mut buf = Vec::with_capacity(BATCH);
    loop {
        buf.clear();
        let got = app.next_run(&mut buf, BATCH);
        for instr in &buf {
            sum = sum.wrapping_mul(31).wrapping_add(instr.pc);
        }
        if got < BATCH {
            break;
        }
    }
    (sum, started.elapsed().as_secs_f64())
}

/// Median wall time of `GEN_TRIALS` runs; asserts every trial produces
/// `checksum`.
fn median_secs(run: fn() -> (u64, f64), checksum: u64) -> f64 {
    let mut walls: Vec<f64> = (0..GEN_TRIALS)
        .map(|_| {
            let (sum, wall) = run();
            assert_eq!(sum, checksum, "stream changed between trials");
            wall
        })
        .collect();
    walls.sort_by(|a, b| a.total_cmp(b));
    walls[GEN_TRIALS / 2]
}

fn bench_generator_batching() {
    // The profiler marks are the dominant per-call bookkeeping; run the
    // comparison with them live, as a profiled CI smoke does.
    interleave_obs::profile::set_enabled(true);
    let (sum_single, _) = gen_single();
    let (sum_batched, _) = gen_batched();
    assert_eq!(
        sum_single, sum_batched,
        "batched generation must produce the identical instruction stream"
    );
    let wall_single = median_secs(gen_single, sum_single);
    let wall_batched = median_secs(gen_batched, sum_single);
    let rate_single = GEN_INSTRS as f64 / wall_single.max(1e-9);
    let rate_batched = GEN_INSTRS as f64 / wall_batched.max(1e-9);
    let ratio = rate_batched / rate_single;
    println!("genbatch: {GEN_INSTRS} instructions, batch={BATCH}, median of {GEN_TRIALS}");
    println!("  next_instr     {rate_single:>12.0} instrs/s ({wall_single:.3}s)");
    println!("  next_run       {rate_batched:>12.0} instrs/s ({wall_batched:.3}s)");
    println!("  speedup        {ratio:>12.2}x");
    assert!(ratio >= 1.1, "batched generation should beat per-call generation (got {ratio:.2}x)");
}

fn main() {
    let (cycles_on, wall_on) = run(true);
    let (cycles_off, wall_off) = run(false);
    assert_eq!(cycles_on, cycles_off, "idle skipping must not change the simulated cycle count");
    let rate_on = cycles_on as f64 / wall_on.max(1e-9);
    let rate_off = cycles_off as f64 / wall_off.max(1e-9);
    let ratio = rate_on / rate_off;
    println!("hotloop: {cycles_on} simulated cycles, {CONTEXTS} contexts of strided misses");
    println!("  idle_skip=on   {rate_on:>12.0} sim cycles/s ({wall_on:.3}s)");
    println!("  idle_skip=off  {rate_off:>12.0} sim cycles/s ({wall_off:.3}s)");
    println!("  speedup        {ratio:>12.2}x");
    assert!(
        ratio >= 2.0,
        "idle skipping should be at least 2x faster on an idle-heavy workload (got {ratio:.2}x)"
    );
    bench_generator_batching();
}
