//! Host-throughput benchmark for the event-driven hot loop.
//!
//! Runs an idle-heavy workload — a few contexts issuing strided loads
//! that always miss all the way to memory, so the processor spends most
//! simulated cycles with an empty pipe waiting on fills — once with
//! idle-cycle skipping enabled and once with it disabled, on the same
//! instruction streams. It asserts the two runs are cycle-identical
//! (skipping is purely a host optimisation) and that skipping delivers
//! at least a 2x simulated-cycles-per-second improvement on this
//! workload, then prints both rates.

use std::time::Instant;

use interleave_core::{ProcConfig, Processor, Scheme, VecSource};
use interleave_isa::{Instr, Reg};
use interleave_mem::{MemConfig, UniMemSystem};

const CONTEXTS: usize = 2;
const LOADS_PER_CONTEXT: u64 = 20_000;
const CYCLE_LIMIT: u64 = 50_000_000;

/// A stream of strided loads that never reuse a cache line, so every
/// access misses to memory and the context waits out the full fill
/// latency with nothing else to run.
fn miss_stream(ctx: usize) -> VecSource {
    let base = 0x100_0000 * (ctx as u64 + 1);
    VecSource::new(
        (0..LOADS_PER_CONTEXT)
            .map(move |i| Instr::load(base + i * 4, Reg::int(1), Reg::int(2), base + i * 4096)),
    )
}

/// Workstation memory with remote-memory-class bank latency, so each
/// miss leaves the processor idle for hundreds of cycles.
fn slow_memory() -> MemConfig {
    let mut mem = MemConfig::workstation();
    mem.path.bank_access = 400;
    mem
}

/// Runs the workload and returns (simulated cycles, host seconds).
fn run(idle_skip: bool) -> (u64, f64) {
    let mut cfg = ProcConfig::new(Scheme::Interleaved, CONTEXTS);
    cfg.idle_skip = idle_skip;
    let mut cpu = Processor::new(cfg, UniMemSystem::new(slow_memory()));
    for ctx in 0..CONTEXTS {
        cpu.attach(ctx, Box::new(miss_stream(ctx)));
    }
    let started = Instant::now();
    cpu.run_until_done(CYCLE_LIMIT);
    let wall = started.elapsed().as_secs_f64();
    assert!(cpu.is_done(), "workload must finish within the cycle limit");
    (cpu.now(), wall)
}

fn main() {
    let (cycles_on, wall_on) = run(true);
    let (cycles_off, wall_off) = run(false);
    assert_eq!(cycles_on, cycles_off, "idle skipping must not change the simulated cycle count");
    let rate_on = cycles_on as f64 / wall_on.max(1e-9);
    let rate_off = cycles_off as f64 / wall_off.max(1e-9);
    let ratio = rate_on / rate_off;
    println!("hotloop: {cycles_on} simulated cycles, {CONTEXTS} contexts of strided misses");
    println!("  idle_skip=on   {rate_on:>12.0} sim cycles/s ({wall_on:.3}s)");
    println!("  idle_skip=off  {rate_off:>12.0} sim cycles/s ({wall_off:.3}s)");
    println!("  speedup        {ratio:>12.2}x");
    assert!(
        ratio >= 2.0,
        "idle skipping should be at least 2x faster on an idle-heavy workload (got {ratio:.2}x)"
    );
}
