//! Ablation: compiler latency hints (backoff / explicit switch after
//! divides) on the divide-heavy SP workload.

use interleave_bench::uni_sim;
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let mut t = Table::new("Ablation: latency hints after divides (SP workload, 4 contexts)");
    t.headers(["Scheme", "hints", "IPC"]);
    for scheme in [Scheme::Blocked, Scheme::Interleaved] {
        for hints in [true, false] {
            let mut workload = mixes::sp();
            for app in &mut workload.apps {
                app.latency_hints = hints;
            }
            let mut sim = uni_sim(workload, scheme, 4);
            sim.quota /= 2;
            let r = sim.run();
            t.row([
                format!("{scheme:?}"),
                if hints { "on" } else { "off" }.to_string(),
                format!("{:.3}", r.throughput()),
            ]);
        }
    }
    println!("{t}");
    println!("Expected shape: hints help both multiple-context schemes (the context");
    println!("yields instead of clogging the issue stage while a divide completes).");
}
