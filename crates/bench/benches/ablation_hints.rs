//! Ablation: compiler latency hints (backoff / explicit switch after
//! divides) on the divide-heavy SP workload.

use interleave_bench::{ExperimentSpec, Runner, Scale, SweepResult};
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn sweep(hints: bool) -> SweepResult {
    let scale = Scale::from_env();
    let mut workload = mixes::sp();
    for app in &mut workload.apps {
        app.latency_hints = hints;
    }
    let spec =
        ExperimentSpec::new(if hints { "ablation_hints_on" } else { "ablation_hints_off" }, scale)
            .uni(workload)
            .contexts([4])
            .baseline(false)
            .quota(scale.uni_quota() / 2);
    Runner::from_env().run(&spec)
}

fn main() {
    let on = sweep(true);
    let off = sweep(false);
    let mut t = Table::new("Ablation: latency hints after divides (SP workload, 4 contexts)");
    t.headers(["Scheme", "hints", "IPC"]);
    for scheme in [Scheme::Blocked, Scheme::Interleaved] {
        for (label, sweep) in [("on", &on), ("off", &off)] {
            let r =
                sweep.get("SP", scheme, 4).and_then(|c| c.as_uni()).expect("sweep covers the cell");
            t.row([format!("{scheme:?}"), label.to_string(), format!("{:.3}", r.throughput())]);
        }
    }
    println!("{t}");
    println!("Expected shape: hints help both multiple-context schemes (the context");
    println!("yields instead of clogging the issue stage while a divide completes).");
}
