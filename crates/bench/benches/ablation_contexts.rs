//! Ablation: context count sweep (1..8) for the interleaved scheme —
//! where do the workstation gains saturate?

use interleave_bench::{ExperimentSpec, Runner, Scale};
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let scale = Scale::from_env();
    let spec = ExperimentSpec::new("ablation_contexts", scale)
        .uni(mixes::dc())
        .schemes([Scheme::Interleaved])
        .contexts([2, 3, 4, 6, 8])
        .quota(scale.uni_quota() / 2);
    let sweep = Runner::from_env().run(&spec);
    sweep.maybe_emit_json();

    let mut t = Table::new("Ablation: interleaved context count (DC workload)");
    t.headers(["Contexts", "IPC", "vs 1 ctx"]);
    let mut base = None;
    for (cell, result) in &sweep.cells {
        let tp = result.as_uni().expect("uniprocessor sweep").throughput();
        let b = *base.get_or_insert(tp);
        t.row([cell.contexts.to_string(), format!("{tp:.3}"), format!("{:.2}x", tp / b)]);
    }
    println!("{t}");
    println!("Expected shape: gains grow quickly to ~4 contexts and flatten as cache and");
    println!("TLB interference between resident applications offsets further tolerance");
    println!("(the paper argues a small number of contexts must suffice on workstations).");
}
