//! Ablation: context count sweep (1..8) for the interleaved scheme —
//! where do the workstation gains saturate?

use interleave_bench::uni_sim;
use interleave_core::Scheme;
use interleave_stats::Table;
use interleave_workloads::mixes;

fn main() {
    let mut t = Table::new("Ablation: interleaved context count (DC workload)");
    t.headers(["Contexts", "IPC", "vs 1 ctx"]);
    let mut base = None;
    for n in [1usize, 2, 3, 4, 6, 8] {
        let scheme = if n == 1 { Scheme::Single } else { Scheme::Interleaved };
        let mut sim = uni_sim(mixes::dc(), scheme, n);
        sim.quota /= 2;
        let r = sim.run();
        let tp = r.throughput();
        let b = *base.get_or_insert(tp);
        t.row([n.to_string(), format!("{tp:.3}"), format!("{:.2}x", tp / b)]);
    }
    println!("{t}");
    println!("Expected shape: gains grow quickly to ~4 contexts and flatten as cache and");
    println!("TLB interference between resident applications offsets further tolerance");
    println!("(the paper argues a small number of contexts must suffice on workstations).");
}
