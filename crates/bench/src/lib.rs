//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each harness is a `harness = false` bench target; `cargo bench
//! --workspace` runs them all and prints the rows/series the paper
//! reports. Set `INTERLEAVE_FULL=1` to run paper-scale configurations
//! (36 × 6M-cycle time slices, 16-node machines); the default is a scaled
//! configuration that preserves the shapes while finishing quickly (see
//! DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use interleave_core::Scheme;
use interleave_mp::{MpResult, MpSim, SplashProfile};
use interleave_stats::{Breakdown, Category, Table};
use interleave_workloads::mixes::Workload;
use interleave_workloads::{MultiprogramResult, MultiprogramSim, OsModel};

/// Whether paper-scale runs were requested via `INTERLEAVE_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("INTERLEAVE_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Builds a uniprocessor multiprogramming simulation at the configured
/// scale.
pub fn uni_sim(workload: Workload, scheme: Scheme, contexts: usize) -> MultiprogramSim {
    let mut sim = MultiprogramSim::new(workload, scheme, contexts);
    if full_scale() {
        sim.quota = 1_500_000;
        sim.warmup_cycles = 6_000_000;
        sim.os = OsModel::paper_scale();
    }
    sim
}

/// Runs the uniprocessor grid for one workload: the single-context
/// baseline plus blocked/interleaved at the given context counts.
/// Returns `(baseline, [(scheme, contexts, result), ...])`.
pub fn uni_grid(
    workload: &Workload,
    context_counts: &[usize],
) -> (MultiprogramResult, Vec<(Scheme, usize, MultiprogramResult)>) {
    let baseline = uni_sim(workload.clone(), Scheme::Single, 1).run();
    let mut rows = Vec::new();
    for &n in context_counts {
        for scheme in [Scheme::Blocked, Scheme::Interleaved] {
            let result = uni_sim(workload.clone(), scheme, n).run();
            rows.push((scheme, n, result));
        }
    }
    (baseline, rows)
}

/// Number of multiprocessor nodes at the configured scale (the paper's
/// DASH-like machine; 16 at full scale, 8 scaled).
pub fn mp_nodes() -> usize {
    if full_scale() {
        16
    } else {
        8
    }
}

/// Builds a multiprocessor simulation at the configured scale.
pub fn mp_sim(app: SplashProfile, scheme: Scheme, contexts: usize) -> MpSim {
    let mut sim = MpSim::new(app, scheme, mp_nodes(), contexts);
    if full_scale() {
        sim.total_work = 4_000_000;
        sim.warmup_cycles = 100_000;
    }
    sim
}

/// Runs one application's multiprocessor grid: single-context baseline
/// plus both schemes at 2/4/8 contexts per processor.
pub fn mp_grid(app: &SplashProfile) -> (MpResult, Vec<(Scheme, usize, MpResult)>) {
    let baseline = mp_sim(app.clone(), Scheme::Single, 1).run();
    let mut rows = Vec::new();
    for n in [2usize, 4, 8] {
        for scheme in [Scheme::Blocked, Scheme::Interleaved] {
            rows.push((scheme, n, mp_sim(app.clone(), scheme, n).run()));
        }
    }
    (baseline, rows)
}

/// Formats a breakdown as percentage cells in `Category::ALL` order,
/// optionally merging the short/long instruction stalls (the uniprocessor
/// figures report them as one bar).
pub fn breakdown_cells(b: &Breakdown, merge_instr: bool) -> Vec<String> {
    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    if merge_instr {
        vec![
            pct(b.fraction(Category::Busy)),
            pct(b.fraction(Category::InstrShort) + b.fraction(Category::InstrLong)),
            pct(b.fraction(Category::InstMem)),
            pct(b.fraction(Category::DataMem)),
            pct(b.fraction(Category::Switch)),
        ]
    } else {
        vec![
            pct(b.fraction(Category::Busy)),
            pct(b.fraction(Category::InstrShort)),
            pct(b.fraction(Category::InstrLong)),
            pct(b.fraction(Category::DataMem)),
            pct(b.fraction(Category::Sync)),
            pct(b.fraction(Category::Switch)),
        ]
    }
}

/// Prints a rendered table to stdout; when `INTERLEAVE_CSV=<dir>` is set,
/// also writes `<dir>/<slug>.csv` with the same rows.
pub fn emit(table: &Table) {
    println!("{table}");
    maybe_write_csv(table, None);
}

/// Like [`emit`] but with an explicit CSV file stem.
pub fn emit_named(table: &Table, stem: &str) {
    println!("{table}");
    maybe_write_csv(table, Some(stem));
}

fn maybe_write_csv(table: &Table, stem: Option<&str>) {
    let Ok(dir) = std::env::var("INTERLEAVE_CSV") else {
        return;
    };
    let stem = stem.map(str::to_string).unwrap_or_else(|| slug(&table.to_string()));
    let path = std::path::Path::new(&dir).join(format!("{stem}.csv"));
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, table.to_csv()))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// First line of a table's rendering, slugified for a file name.
fn slug(rendering: &str) -> String {
    let first = rendering.lines().next().filter(|l| !l.is_empty()).unwrap_or("table");
    first
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .take(48)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave_workloads::mixes;

    #[test]
    fn scaled_sims_construct() {
        let sim = uni_sim(mixes::fp(), Scheme::Interleaved, 2);
        assert!(sim.quota > 0);
        let mp = mp_sim(interleave_mp::splash_suite()[0].clone(), Scheme::Blocked, 4);
        assert!(mp.total_work > 0);
        assert!(mp_nodes() >= 4);
    }

    #[test]
    fn slug_is_filename_safe() {
        assert_eq!(slug("Table 7: x/y\nrest"), "table_7__x_y");
        assert_eq!(slug(""), "table");
    }

    #[test]
    fn breakdown_cells_shapes() {
        let mut b = Breakdown::new();
        b.record(Category::Busy, 50);
        b.record(Category::InstrShort, 25);
        b.record(Category::InstrLong, 25);
        assert_eq!(breakdown_cells(&b, true).len(), 5);
        assert_eq!(breakdown_cells(&b, false).len(), 6);
        assert_eq!(breakdown_cells(&b, true)[1], "50.0%");
    }
}
