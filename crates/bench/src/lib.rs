//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each harness is a `harness = false` bench target; `cargo bench
//! --workspace` runs them all and prints the rows/series the paper
//! reports. Harnesses describe their work as an
//! [`runner::ExperimentSpec`] and execute it with a [`runner::Runner`],
//! which parallelizes cells across OS threads (`INTERLEAVE_JOBS`
//! controls the worker count) with bit-identical results at any job
//! count. Set `INTERLEAVE_FULL=1` to run paper-scale configurations
//! (36 × 6M-cycle time slices, 16-node machines); the default is a
//! scaled configuration that preserves the shapes while finishing
//! quickly (see DESIGN.md). `INTERLEAVE_CSV=<dir>` writes table CSVs and
//! `INTERLEAVE_JSON=<dir>` writes machine-readable `BENCH_*.json` sweep
//! artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod merge;
pub mod runner;

use interleave_core::Scheme;
use interleave_mp::{splash_suite, MpResult, SplashProfile};
use interleave_stats::{Breakdown, Category, Table};
use interleave_workloads::mixes::{self, Workload};
use interleave_workloads::MultiprogramResult;

pub use cache::ResultCache;
pub use merge::{MergeError, MergedSweep};
pub use runner::{
    Cell, CellResult, ExperimentSpec, Runner, Scale, Shard, Snapshot, SweepResult, Target,
};

/// Builds the experiment grid behind a named artifact — the
/// library-level entry shared by the `sweep`/`profile` subcommands and
/// the `interleave-sim serve` daemon, so a spec submitted over the wire
/// resolves to exactly the grid the CLI would run.
///
/// # Errors
///
/// Returns a message naming the unknown artifact.
pub fn artifact_spec(artifact: &str, scale: Scale) -> Result<ExperimentSpec, String> {
    match artifact {
        "table7" => {
            let mut spec = ExperimentSpec::new("table7", scale).contexts([2, 4]);
            for w in mixes::all() {
                spec = spec.uni(w);
            }
            Ok(spec)
        }
        "table10" => {
            let mut spec = ExperimentSpec::new("table10", scale).contexts([2, 4, 8]);
            for app in splash_suite() {
                spec = spec.mp(app);
            }
            Ok(spec)
        }
        // A seconds-long single-workload grid for CI throughput checks
        // (`scripts/check.sh` reads the cycles/sec rates from its BENCH
        // json).
        "smoke" => Ok(ExperimentSpec::new("smoke", scale)
            .uni(mixes::fp())
            .contexts([2])
            .quota(2_000)
            .warmup(500)),
        other => Err(format!("unknown artifact `{other}` (expected table7, table10, or smoke)")),
    }
}

/// Runs the uniprocessor grid for one workload: the single-context
/// baseline plus blocked/interleaved at the given context counts.
/// Returns `(baseline, [(scheme, contexts, result), ...])`.
///
/// Cells execute on a [`Runner`] sized from `INTERLEAVE_JOBS` (default:
/// available parallelism); results are identical at any job count.
pub fn uni_grid(
    workload: &Workload,
    context_counts: &[usize],
) -> (MultiprogramResult, Vec<(Scheme, usize, MultiprogramResult)>) {
    let spec = ExperimentSpec::new(format!("uni_grid_{}", workload.name), Scale::from_env())
        .uni(workload.clone())
        .contexts(context_counts.iter().copied());
    let sweep = Runner::from_env().run(&spec);
    unpack_uni(sweep)
}

fn unpack_uni(
    sweep: SweepResult,
) -> (MultiprogramResult, Vec<(Scheme, usize, MultiprogramResult)>) {
    let mut baseline = None;
    let mut rows = Vec::new();
    for (cell, result) in sweep.cells {
        let CellResult::Uni(r) = result else {
            unreachable!("uni spec produced a multiprocessor cell")
        };
        if cell.scheme == Scheme::Single && cell.contexts == 1 {
            baseline = Some(*r);
        } else {
            rows.push((cell.scheme, cell.contexts, *r));
        }
    }
    (baseline.expect("spec includes the baseline cell"), rows)
}

/// Runs one application's multiprocessor grid: single-context baseline
/// plus both schemes at 2/4/8 contexts per processor.
///
/// Cells execute on a [`Runner`] sized from `INTERLEAVE_JOBS` (default:
/// available parallelism); results are identical at any job count.
pub fn mp_grid(app: &SplashProfile) -> (MpResult, Vec<(Scheme, usize, MpResult)>) {
    let spec = ExperimentSpec::new(format!("mp_grid_{}", app.name), Scale::from_env())
        .mp(app.clone())
        .contexts([2, 4, 8]);
    let sweep = Runner::from_env().run(&spec);
    let mut baseline = None;
    let mut rows = Vec::new();
    for (cell, result) in sweep.cells {
        let CellResult::Mp(r) = result else {
            unreachable!("mp spec produced a uniprocessor cell")
        };
        if cell.scheme == Scheme::Single && cell.contexts == 1 {
            baseline = Some(*r);
        } else {
            rows.push((cell.scheme, cell.contexts, *r));
        }
    }
    (baseline.expect("spec includes the baseline cell"), rows)
}

/// Formats a breakdown as percentage cells in `Category::ALL` order,
/// optionally merging the short/long instruction stalls (the uniprocessor
/// figures report them as one bar).
pub fn breakdown_cells(b: &Breakdown, merge_instr: bool) -> Vec<String> {
    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    if merge_instr {
        vec![
            pct(b.fraction(Category::Busy)),
            pct(b.fraction(Category::InstrShort) + b.fraction(Category::InstrLong)),
            pct(b.fraction(Category::InstMem)),
            pct(b.fraction(Category::DataMem)),
            pct(b.fraction(Category::Switch)),
        ]
    } else {
        vec![
            pct(b.fraction(Category::Busy)),
            pct(b.fraction(Category::InstrShort)),
            pct(b.fraction(Category::InstrLong)),
            pct(b.fraction(Category::DataMem)),
            pct(b.fraction(Category::Sync)),
            pct(b.fraction(Category::Switch)),
        ]
    }
}

/// Prints a rendered table to stdout; when `INTERLEAVE_CSV=<dir>` is set,
/// also writes `<dir>/<slug>.csv` with the same rows.
pub fn emit(table: &Table) {
    println!("{table}");
    maybe_write_csv(table, None);
}

/// Like [`emit`] but with an explicit CSV file stem.
pub fn emit_named(table: &Table, stem: &str) {
    println!("{table}");
    maybe_write_csv(table, Some(stem));
}

fn maybe_write_csv(table: &Table, stem: Option<&str>) {
    let Ok(dir) = std::env::var("INTERLEAVE_CSV") else {
        return;
    };
    let stem = stem.map(str::to_string).unwrap_or_else(|| slug(&table.to_string()));
    let path = std::path::Path::new(&dir).join(format!("{stem}.csv"));
    if let Err(e) =
        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, table.to_csv()))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// First line of a table's rendering, slugified for a file name.
fn slug(rendering: &str) -> String {
    let first = rendering.lines().next().filter(|l| !l.is_empty()).unwrap_or("table");
    first
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .take(48)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave_workloads::mixes;

    #[test]
    fn slug_is_filename_safe() {
        assert_eq!(slug("Table 7: x/y\nrest"), "table_7__x_y");
        assert_eq!(slug(""), "table");
    }

    #[test]
    fn breakdown_cells_shapes() {
        let mut b = Breakdown::new();
        b.record(Category::Busy, 50);
        b.record(Category::InstrShort, 25);
        b.record(Category::InstrLong, 25);
        assert_eq!(breakdown_cells(&b, true).len(), 5);
        assert_eq!(breakdown_cells(&b, false).len(), 6);
        assert_eq!(breakdown_cells(&b, true)[1], "50.0%");
    }

    #[test]
    fn artifact_spec_resolves_known_grids() {
        for name in ["table7", "table10", "smoke"] {
            let spec = artifact_spec(name, Scale::Ci).unwrap();
            assert_eq!(spec.name(), name);
            assert!(!spec.cells().is_empty());
        }
        let err = artifact_spec("table99", Scale::Ci).unwrap_err();
        assert!(err.contains("unknown artifact"), "{err}");
    }

    #[test]
    fn uni_grid_rides_the_runner() {
        std::env::set_var("INTERLEAVE_JOBS", "2");
        let (baseline, rows) = uni_grid(&mixes::ic(), &[2]);
        std::env::remove_var("INTERLEAVE_JOBS");
        assert!(baseline.cycles > 0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, Scheme::Blocked);
        assert_eq!(rows[1].0, Scheme::Interleaved);
        assert_eq!(rows[0].1, 2);
    }
}
