//! Unified experiment API: specs, cells, and a parallel sweep runner.
//!
//! Every table/figure harness, the `interleave-sim sweep` subcommand, and
//! the grid helpers in the crate root describe their work as an
//! [`ExperimentSpec`] — a grid of (target × scheme × context-count ×
//! seed) cells plus configuration overrides — and hand it to a
//! [`Runner`], which executes the cells across OS threads and aggregates
//! the results into a [`SweepResult`].
//!
//! Determinism is the design invariant: cells are enumerated in a fixed
//! order, each cell's configuration (including its seed) is a pure
//! function of its coordinates, and workers write results into
//! index-addressed slots, so a sweep produces bit-identical results
//! whether it runs serially or on any number of threads (see the
//! `determinism` integration test).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::cache::ResultCache;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use interleave_core::{Scheme, StorePolicy};
use interleave_mp::{LatencyModel, MpResult, MpSim, SplashProfile};
use interleave_obs::bus::{Subscriber, Watch};
use interleave_obs::profile::{self, PhaseProfile};
use interleave_obs::Registry;
use interleave_stats::{Breakdown, Category, Table};
use interleave_workloads::mixes::Workload;
use interleave_workloads::{MultiprogramResult, MultiprogramSim, OsModel};

/// Problem scale, resolved once from `INTERLEAVE_FULL`.
///
/// [`Scale::Ci`] preserves the paper's shapes at sizes that finish in
/// seconds; [`Scale::Full`] is the paper-scale configuration (36 ×
/// 6M-cycle time slices, 16-node machines). All scale-dependent knobs in
/// the workspace resolve through this type — nothing else should read
/// `INTERLEAVE_FULL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down configuration for CI and quick iteration (default).
    Ci,
    /// Paper-scale configuration (`INTERLEAVE_FULL=1`).
    Full,
}

impl Scale {
    /// Resolves the scale from the `INTERLEAVE_FULL` environment
    /// variable (`1` means [`Scale::Full`]).
    pub fn from_env() -> Scale {
        match std::env::var("INTERLEAVE_FULL") {
            Ok(v) if v == "1" => Scale::Full,
            _ => Scale::Ci,
        }
    }

    /// Parses `"ci"` / `"full"` (as accepted by `sweep --scale`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "ci" => Some(Scale::Ci),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Name used in reports and JSON (`ci` / `full`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Ci => "ci",
            Scale::Full => "full",
        }
    }

    /// Per-application instruction quota for uniprocessor runs.
    pub fn uni_quota(self) -> u64 {
        match self {
            Scale::Ci => 40_000,
            Scale::Full => 1_500_000,
        }
    }

    /// Warmup cycles for uniprocessor runs.
    pub fn uni_warmup(self) -> u64 {
        match self {
            Scale::Ci => 30_000,
            Scale::Full => 6_000_000,
        }
    }

    /// Operating-system model for uniprocessor runs.
    pub fn os_model(self) -> OsModel {
        match self {
            Scale::Ci => OsModel::scaled(),
            Scale::Full => OsModel::paper_scale(),
        }
    }

    /// Multiprocessor node count (the paper's DASH-like machine is 16
    /// nodes; the scaled machine is 8).
    pub fn mp_nodes(self) -> usize {
        match self {
            Scale::Ci => 8,
            Scale::Full => 16,
        }
    }

    /// Total application work for multiprocessor runs.
    pub fn mp_work(self) -> u64 {
        match self {
            Scale::Ci => 400_000,
            Scale::Full => 4_000_000,
        }
    }

    /// Warmup cycles for multiprocessor runs.
    pub fn mp_warmup(self) -> u64 {
        match self {
            Scale::Ci => 20_000,
            Scale::Full => 100_000,
        }
    }
}

/// One disjoint slice of an experiment grid: shard `index` of `count`
/// (1-based, as written on the command line: `--shard 2/4`).
///
/// Shard `k` of `n` owns the cells whose canonical grid index `i`
/// satisfies `i % n == k - 1` (round-robin). The assignment is a pure
/// function of the spec and the shard coordinates — never of execution
/// — so for any `n` the `n` slices are disjoint, cover the grid, and
/// are stable across invocations and machines (pinned by a property
/// test in `tests/sweep_determinism.rs`). Round-robin also spreads each
/// target's cheap baseline cells and expensive high-context cells
/// evenly across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// Shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index <= count`.
    pub fn new(index: usize, count: usize) -> Shard {
        assert!((1..=count).contains(&index), "shard index must be in 1..={count}, got {index}");
        Shard { index, count }
    }

    /// Parses the command-line form `K/N` (e.g. `2/4`). `None` for
    /// anything malformed or out of range.
    pub fn parse(s: &str) -> Option<Shard> {
        let (k, n) = s.split_once('/')?;
        let index = k.trim().parse::<usize>().ok()?;
        let count = n.trim().parse::<usize>().ok()?;
        (1..=count).contains(&index).then_some(Shard { index, count })
    }

    /// The `INTERLEAVE_SHARD=K/N` fallback for runners that do not set
    /// a shard explicitly. A malformed value is reported on stderr and
    /// ignored rather than silently running the full grid as if it were
    /// a slice — the resulting unstamped artifacts would then fail the
    /// merge step loudly instead of corrupting it quietly.
    pub fn from_env() -> Option<Shard> {
        let raw = std::env::var("INTERLEAVE_SHARD").ok()?;
        let shard = Shard::parse(&raw);
        if shard.is_none() {
            eprintln!("warning: ignoring malformed INTERLEAVE_SHARD={raw:?} (expected K/N)");
        }
        shard
    }

    /// 1-based shard index.
    pub fn index(self) -> usize {
        self.index
    }

    /// Total number of shards.
    pub fn count(self) -> usize {
        self.count
    }

    /// Artifact-name suffix (`shard2of4`), kept free of `/` so shard
    /// uploads from a CI matrix never collide or nest.
    pub fn label(self) -> String {
        format!("shard{}of{}", self.index, self.count)
    }

    /// The canonical grid indices this shard owns, in ascending order.
    pub fn indices(self, grid_cells: usize) -> impl Iterator<Item = usize> {
        (self.index - 1..grid_cells).step_by(self.count.max(1))
    }
}

/// What a cell simulates: a uniprocessor multiprogramming workload or a
/// multiprocessor SPLASH-like application.
#[derive(Debug, Clone)]
pub enum Target {
    /// Four-application multiprogrammed workload (paper Table 5).
    Uni(Workload),
    /// SPLASH-like parallel application (paper Table 9).
    Mp(SplashProfile),
}

impl Target {
    /// The workload or application name.
    pub fn name(&self) -> &'static str {
        match self {
            Target::Uni(w) => w.name,
            Target::Mp(a) => a.name,
        }
    }
}

/// One point of an experiment grid: target × scheme × contexts × seed.
#[derive(Debug, Clone)]
pub struct Cell {
    /// What to simulate.
    pub target: Target,
    /// Context scheduling scheme.
    pub scheme: Scheme,
    /// Hardware contexts (per processor for multiprocessor targets).
    pub contexts: usize,
    /// Explicit seed, or `None` for the sim's canonical default. The
    /// seed is part of the cell's coordinates, never derived from
    /// execution order, so sweeps are reproducible under any schedule.
    pub seed: Option<u64>,
}

/// The result of one cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellResult {
    /// Uniprocessor multiprogramming result (boxed: results are large
    /// and move through worker queues and sweep vectors).
    Uni(Box<MultiprogramResult>),
    /// Multiprocessor result.
    Mp(Box<MpResult>),
}

impl CellResult {
    /// Measured cycles.
    pub fn cycles(&self) -> u64 {
        match self {
            CellResult::Uni(r) => r.cycles,
            CellResult::Mp(r) => r.cycles,
        }
    }

    /// Execution-time breakdown.
    pub fn breakdown(&self) -> &Breakdown {
        match self {
            CellResult::Uni(r) => &r.breakdown,
            CellResult::Mp(r) => &r.breakdown,
        }
    }

    /// Processor utilization (busy fraction of the breakdown).
    pub fn utilization(&self) -> f64 {
        self.breakdown().fraction(Category::Busy)
    }

    /// The uniprocessor result, if this cell ran one.
    pub fn as_uni(&self) -> Option<&MultiprogramResult> {
        match self {
            CellResult::Uni(r) => Some(r),
            CellResult::Mp(_) => None,
        }
    }

    /// The multiprocessor result, if this cell ran one.
    pub fn as_mp(&self) -> Option<&MpResult> {
        match self {
            CellResult::Mp(r) => Some(r),
            CellResult::Uni(_) => None,
        }
    }

    /// The cell's instrumentation registry (counters and histograms).
    pub fn metrics(&self) -> &Registry {
        match self {
            CellResult::Uni(r) => &r.metrics,
            CellResult::Mp(r) => &r.metrics,
        }
    }
}

/// Configuration overrides applied uniformly to every cell of a spec.
///
/// `None` means "use the scale-resolved default". Uniprocessor-only
/// knobs are ignored by multiprocessor cells and vice versa.
#[derive(Debug, Clone, Default)]
struct Overrides {
    quota: Option<u64>,
    warmup: Option<u64>,
    os: Option<OsModel>,
    btb_entries: Option<usize>,
    store_policy: Option<StorePolicy>,
    nodes: Option<usize>,
    work: Option<u64>,
    latency: Option<LatencyModel>,
    idle_skip: Option<bool>,
    adaptive: Option<bool>,
    mp_jobs: Option<usize>,
}

/// Declarative description of an experiment grid.
///
/// A spec is a set of targets crossed with schemes, context counts, and
/// seeds, plus overrides. Build one with the fluent methods, then hand
/// it to [`Runner::run`]:
///
/// ```
/// use interleave_bench::runner::{ExperimentSpec, Runner, Scale};
/// use interleave_core::Scheme;
/// use interleave_workloads::mixes;
///
/// let spec = ExperimentSpec::new("demo", Scale::Ci)
///     .uni(mixes::fp())
///     .schemes([Scheme::Blocked, Scheme::Interleaved])
///     .contexts([2])
///     .quota(2_000) // tiny run for the doctest
///     .warmup(500);
/// let sweep = Runner::serial().run(&spec);
/// assert_eq!(sweep.cells.len(), 3); // baseline + 2 schemes × 1 count
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    name: String,
    scale: Scale,
    targets: Vec<Target>,
    schemes: Vec<Scheme>,
    contexts: Vec<usize>,
    seeds: Vec<Option<u64>>,
    baseline: bool,
    overrides: Overrides,
}

impl ExperimentSpec {
    /// A new empty spec named `name` (used for table titles and the
    /// `BENCH_<name>.json` artifact stem) at the given scale. Defaults:
    /// no targets, schemes `[Blocked, Interleaved]`, contexts `[2, 4]`,
    /// the default seed, baseline included.
    pub fn new(name: impl Into<String>, scale: Scale) -> ExperimentSpec {
        ExperimentSpec {
            name: name.into(),
            scale,
            targets: Vec::new(),
            schemes: vec![Scheme::Blocked, Scheme::Interleaved],
            contexts: vec![2, 4],
            seeds: vec![None],
            baseline: true,
            overrides: Overrides::default(),
        }
    }

    /// Adds a uniprocessor multiprogramming workload target.
    pub fn uni(mut self, workload: Workload) -> Self {
        self.targets.push(Target::Uni(workload));
        self
    }

    /// Adds a multiprocessor application target.
    pub fn mp(mut self, app: SplashProfile) -> Self {
        self.targets.push(Target::Mp(app));
        self
    }

    /// Replaces the scheme axis.
    pub fn schemes(mut self, schemes: impl IntoIterator<Item = Scheme>) -> Self {
        self.schemes = schemes.into_iter().collect();
        self
    }

    /// Replaces the context-count axis.
    pub fn contexts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.contexts = counts.into_iter().collect();
        self
    }

    /// Replaces the seed axis with explicit seeds.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().map(Some).collect();
        self
    }

    /// Whether each target also runs a single-context baseline cell
    /// (default true).
    pub fn baseline(mut self, include: bool) -> Self {
        self.baseline = include;
        self
    }

    /// Overrides the uniprocessor per-application instruction quota.
    pub fn quota(mut self, quota: u64) -> Self {
        self.overrides.quota = Some(quota);
        self
    }

    /// Overrides warmup cycles (both uniprocessor and multiprocessor).
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.overrides.warmup = Some(cycles);
        self
    }

    /// Overrides the uniprocessor operating-system model.
    pub fn os(mut self, os: OsModel) -> Self {
        self.overrides.os = Some(os);
        self
    }

    /// Overrides the branch-target-buffer size (0 disables the BTB).
    pub fn btb_entries(mut self, entries: usize) -> Self {
        self.overrides.btb_entries = Some(entries);
        self
    }

    /// Overrides the store-miss handling policy.
    pub fn store_policy(mut self, policy: StorePolicy) -> Self {
        self.overrides.store_policy = Some(policy);
        self
    }

    /// Overrides the multiprocessor node count.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.overrides.nodes = Some(nodes);
        self
    }

    /// Overrides the multiprocessor total work.
    pub fn work(mut self, total_work: u64) -> Self {
        self.overrides.work = Some(total_work);
        self
    }

    /// Overrides the multiprocessor latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.overrides.latency = Some(latency);
        self
    }

    /// Overrides idle-cycle skipping (default on). When unset, the
    /// `INTERLEAVE_IDLE_SKIP` environment variable applies. Purely a
    /// host-throughput knob: simulated results are bit-identical either
    /// way (asserted by the `sweep_determinism` integration test).
    pub fn idle_skip(mut self, enabled: bool) -> Self {
        self.overrides.idle_skip = Some(enabled);
        self
    }

    /// Overrides adaptive lookahead widening for multiprocessor cells
    /// (see [`interleave_mp::MpSimBuilder::adaptive`]; default on). When
    /// unset, the `INTERLEAVE_ADAPTIVE` environment variable applies.
    /// Purely a host-throughput knob: simulated results are
    /// bit-identical either way.
    pub fn adaptive(mut self, enabled: bool) -> Self {
        self.overrides.adaptive = Some(enabled);
        self
    }

    /// Overrides the host worker threads each multiprocessor cell uses
    /// to advance its node shards between conservative quantum barriers
    /// (see [`interleave_mp::MpSimBuilder::mp_jobs`]). When unset, the
    /// `INTERLEAVE_MP_JOBS` environment variable applies, defaulting to
    /// 1 (serial). Purely a host-throughput knob: simulated results are
    /// bit-identical for every value.
    pub fn mp_jobs(mut self, jobs: usize) -> Self {
        self.overrides.mp_jobs = Some(jobs);
        self
    }

    /// The spec's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The spec's scale.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Enumerates the grid in its canonical order: per target, the
    /// baseline cell first (one per seed), then contexts × schemes ×
    /// seeds. The order is a pure function of the spec, never of
    /// execution.
    pub fn cells(&self) -> Vec<Cell> {
        let mut cells = Vec::new();
        for target in &self.targets {
            for &seed in &self.seeds {
                if self.baseline {
                    cells.push(Cell {
                        target: target.clone(),
                        scheme: Scheme::Single,
                        contexts: 1,
                        seed,
                    });
                }
                for &contexts in &self.contexts {
                    for &scheme in &self.schemes {
                        cells.push(Cell { target: target.clone(), scheme, contexts, seed });
                    }
                }
            }
        }
        cells
    }

    /// Builds and runs the simulation for one cell.
    pub fn run_cell(&self, cell: &Cell) -> CellResult {
        let ov = &self.overrides;
        match &cell.target {
            Target::Uni(workload) => {
                let mut b = MultiprogramSim::builder(workload.clone())
                    .scheme(cell.scheme)
                    .contexts(cell.contexts)
                    .quota(ov.quota.unwrap_or_else(|| self.scale.uni_quota()))
                    .warmup(ov.warmup.unwrap_or_else(|| self.scale.uni_warmup()))
                    .os(ov.os.clone().unwrap_or_else(|| self.scale.os_model()));
                if let Some(seed) = cell.seed {
                    b = b.seed(seed);
                }
                if let Some(entries) = ov.btb_entries {
                    b = b.btb_entries(entries);
                }
                if let Some(policy) = ov.store_policy {
                    b = b.store_policy(policy);
                }
                if let Some(skip) = ov.idle_skip.or_else(idle_skip_from_env) {
                    b = b.idle_skip(skip);
                }
                CellResult::Uni(Box::new(b.build().run()))
            }
            Target::Mp(app) => {
                let mut b = MpSim::builder(app.clone())
                    .scheme(cell.scheme)
                    .contexts(cell.contexts)
                    .nodes(ov.nodes.unwrap_or_else(|| self.scale.mp_nodes()))
                    .work(ov.work.unwrap_or_else(|| self.scale.mp_work()))
                    .warmup(ov.warmup.unwrap_or_else(|| self.scale.mp_warmup()));
                if let Some(seed) = cell.seed {
                    b = b.seed(seed);
                }
                if let Some(latency) = ov.latency {
                    b = b.latency(latency);
                }
                if let Some(skip) = ov.idle_skip.or_else(idle_skip_from_env) {
                    b = b.idle_skip(skip);
                }
                if let Some(adaptive) = ov.adaptive.or_else(adaptive_from_env) {
                    b = b.adaptive(adaptive);
                }
                if let Some(jobs) = ov.mp_jobs.or_else(mp_jobs_from_env) {
                    b = b.mp_jobs(jobs);
                }
                CellResult::Mp(Box::new(b.build().run()))
            }
        }
    }

    /// Canonical description of everything that determines a cell's
    /// simulated result: the resolved (not merely overridden)
    /// result-affecting configuration plus the cell coordinates, salted
    /// with the crate version. This string is what the checkpoint key
    /// hashes, so two cells share a checkpoint exactly when they are
    /// guaranteed to produce identical results.
    ///
    /// Host-throughput-only knobs (`idle_skip`, `adaptive`, `mp_jobs`,
    /// and the runner's `jobs`) are deliberately excluded: they are
    /// proven bit-invisible, so checkpoints stay valid across them.
    pub fn cell_descriptor(&self, cell: &Cell) -> String {
        let ov = &self.overrides;
        match &cell.target {
            Target::Uni(w) => format!(
                "interleave-cell-v1 crate={} uni target={:?} scheme={} contexts={} seed={:?} \
                 quota={} warmup={} os={:?} btb={:?} store={:?}",
                env!("CARGO_PKG_VERSION"),
                w,
                cell.scheme.name(),
                cell.contexts,
                cell.seed,
                ov.quota.unwrap_or_else(|| self.scale.uni_quota()),
                ov.warmup.unwrap_or_else(|| self.scale.uni_warmup()),
                ov.os.clone().unwrap_or_else(|| self.scale.os_model()),
                ov.btb_entries,
                ov.store_policy,
            ),
            Target::Mp(app) => format!(
                "interleave-cell-v1 crate={} mp target={:?} scheme={} contexts={} seed={:?} \
                 nodes={} work={} warmup={} latency={:?}",
                env!("CARGO_PKG_VERSION"),
                app,
                cell.scheme.name(),
                cell.contexts,
                cell.seed,
                ov.nodes.unwrap_or_else(|| self.scale.mp_nodes()),
                ov.work.unwrap_or_else(|| self.scale.mp_work()),
                ov.warmup.unwrap_or_else(|| self.scale.mp_warmup()),
                ov.latency,
            ),
        }
    }
}

/// Executes an [`ExperimentSpec`]'s cells, optionally across OS threads.
///
/// Workers pull cell indices from a shared counter and deposit results
/// into per-index slots, so aggregation order — and therefore every
/// downstream table and JSON artifact — is independent of thread
/// scheduling.
///
/// Every runner owns a latest-wins telemetry bus: after each completed
/// cell it publishes a [`Snapshot`] (progress, throughput, merged
/// metrics), which in-process clients read via [`Runner::subscribe`] and
/// out-of-process clients read from the atomically-replaced
/// `STATUS_<name>.json` written when a status directory is configured
/// ([`Runner::status_dir`] / `INTERLEAVE_STATUS=<dir>`), e.g. with
/// `interleave-sim watch`.
#[derive(Debug, Clone)]
pub struct Runner {
    jobs: usize,
    progress: bool,
    status_dir: Option<PathBuf>,
    shard: Option<Shard>,
    cache: Option<Arc<ResultCache>>,
    bus: Watch<Snapshot>,
}

/// One live-telemetry observation of a running sweep, published on the
/// runner's bus after every completed cell (latest-wins; see
/// [`interleave_obs::bus`]).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Spec name (artifact stem).
    pub artifact: String,
    /// Scale name (`ci` / `full`).
    pub scale: &'static str,
    /// Completed cells.
    pub done: usize,
    /// Total cells in the sweep.
    pub total: usize,
    /// Wall-clock milliseconds since the sweep started.
    pub wall_ms: u64,
    /// Completed cells per host second.
    pub cells_per_sec: f64,
    /// Estimated seconds to completion at the current rate.
    pub eta_secs: f64,
    /// Simulated cycles summed over completed cells.
    pub sim_cycles: u64,
    /// Simulated cycles per host second so far.
    pub sim_cycles_per_sec: f64,
    /// Whether every cell has completed.
    pub finished: bool,
    /// Coordinates of the most recently completed cell, or `""` before
    /// the first one.
    pub last_cell: String,
    /// Metric registries of completed cells, merged. The registry fold
    /// is commutative, so this is independent of completion order.
    pub metrics: Registry,
}

impl Snapshot {
    /// Serializes the snapshot as the `STATUS_*.json` document
    /// (`interleave-status-v1`: scalar fields one per line, then the
    /// merged metrics registry).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"artifact\": {},\n", json_str(&self.artifact)));
        out.push_str("  \"schema\": \"interleave-status-v1\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"done\": {},\n", self.done));
        out.push_str(&format!("  \"total\": {},\n", self.total));
        out.push_str(&format!("  \"finished\": {},\n", self.finished));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall_ms));
        out.push_str(&format!("  \"cells_per_sec\": {:.3},\n", self.cells_per_sec));
        out.push_str(&format!("  \"eta_secs\": {:.1},\n", self.eta_secs));
        out.push_str(&format!("  \"sim_cycles\": {},\n", self.sim_cycles));
        out.push_str(&format!("  \"sim_cycles_per_sec\": {:.1},\n", self.sim_cycles_per_sec));
        out.push_str(&format!("  \"last_cell\": {},\n", json_str(&self.last_cell)));
        out.push_str(&format!("  \"metrics\": {}\n", self.metrics.to_json(2)));
        out.push_str("}\n");
        out
    }

    /// The same `interleave-status-v1` document as [`Snapshot::to_json`]
    /// on a single line (no trailing newline) — the framing used by the
    /// serve daemon's `GET /jobs/<id>/events` newline-delimited stream,
    /// where each line must be one complete document.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"artifact\": {}, \"schema\": \"interleave-status-v1\", \"scale\": \"{}\", \
             \"done\": {}, \"total\": {}, \"finished\": {}, \"wall_ms\": {}, \
             \"cells_per_sec\": {:.3}, \"eta_secs\": {:.1}, \"sim_cycles\": {}, \
             \"sim_cycles_per_sec\": {:.1}, \"last_cell\": {}, \"metrics\": {}}}",
            json_str(&self.artifact),
            self.scale,
            self.done,
            self.total,
            self.finished,
            self.wall_ms,
            self.cells_per_sec,
            self.eta_secs,
            self.sim_cycles,
            self.sim_cycles_per_sec,
            json_str(&self.last_cell),
            self.metrics.to_json_line()
        )
    }
}

/// Whether a heartbeat line should print after cell `done` of `total`
/// completed, `since_last` after the previous line. The final cell
/// always reports — a sweep that finishes inside the rate-limit window
/// must still print its completion line (pinned by a unit test).
fn heartbeat_due(done: usize, total: usize, since_last: Duration) -> bool {
    done >= total || since_last >= Duration::from_secs(1)
}

/// Per-sweep telemetry state: publishes a [`Snapshot`] on the bus after
/// every cell, mirrors it to the status file (write-then-rename, so
/// readers never observe a partial document), and prints the
/// rate-limited stderr heartbeat when progress reporting is on.
struct SweepTelemetry<'a> {
    artifact: String,
    scale: Scale,
    total: usize,
    started: Instant,
    heartbeat: bool,
    bus: &'a Watch<Snapshot>,
    status_path: Option<PathBuf>,
    state: Mutex<TelemetryState>,
}

struct TelemetryState {
    done: usize,
    sim_cycles: u64,
    metrics: Registry,
    last_print: Instant,
}

impl<'a> SweepTelemetry<'a> {
    fn new(runner: &'a Runner, spec: &'a ExperimentSpec, total: usize) -> SweepTelemetry<'a> {
        let now = Instant::now();
        // Shard identity is part of the telemetry artifact stem so
        // concurrent shards of one spec never clobber each other's
        // status files.
        let artifact = match runner.shard {
            Some(shard) => format!("{}.{}", spec.name(), shard.label()),
            None => spec.name().to_string(),
        };
        let status_path =
            runner.status_dir.as_ref().map(|dir| dir.join(format!("STATUS_{artifact}.json")));
        SweepTelemetry {
            artifact,
            scale: spec.scale(),
            total,
            started: now,
            heartbeat: runner.progress,
            bus: &runner.bus,
            status_path,
            state: Mutex::new(TelemetryState {
                done: 0,
                sim_cycles: 0,
                metrics: Registry::new(),
                last_print: now,
            }),
        }
    }

    fn snapshot(&self, state: &TelemetryState, last_cell: String) -> Snapshot {
        let wall = self.started.elapsed();
        let secs = wall.as_secs_f64().max(1e-9);
        let cells_per_sec = state.done as f64 / secs;
        let eta_secs =
            if state.done == 0 { 0.0 } else { (self.total - state.done) as f64 / cells_per_sec };
        Snapshot {
            artifact: self.artifact.to_string(),
            scale: self.scale.name(),
            done: state.done,
            total: self.total,
            wall_ms: u64::try_from(wall.as_millis()).unwrap_or(u64::MAX),
            cells_per_sec,
            eta_secs,
            sim_cycles: state.sim_cycles,
            sim_cycles_per_sec: cycles_per_sec(state.sim_cycles, wall),
            finished: state.done >= self.total,
            last_cell,
            metrics: state.metrics.clone(),
        }
    }

    /// Publishes the starting snapshot so subscribers (and the status
    /// file) see the sweep before its first cell completes.
    fn begin(&self) {
        let state = self.state.lock().expect("telemetry lock");
        let snapshot = self.snapshot(&state, String::new());
        drop(state);
        self.emit(snapshot, false);
    }

    /// Folds one completed cell in, publishes, and maybe heartbeats.
    fn cell_finished(&self, cell: &Cell, result: &CellResult) {
        let now = Instant::now();
        let mut state = self.state.lock().expect("telemetry lock");
        state.done += 1;
        state.sim_cycles += result.cycles();
        state.metrics.merge(result.metrics());
        let print = self.heartbeat && {
            let due = heartbeat_due(state.done, self.total, now.duration_since(state.last_print));
            if due {
                state.last_print = now;
            }
            due
        };
        let last_cell = format!("{} {} x{}", cell.target.name(), cell.scheme.name(), cell.contexts);
        let snapshot = self.snapshot(&state, last_cell);
        drop(state);
        self.emit(snapshot, print);
    }

    fn emit(&self, snapshot: Snapshot, print: bool) {
        if let Some(path) = &self.status_path {
            if let Err(e) = write_status(path, &snapshot) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        if print {
            eprintln!(
                "sweep {}: {}/{} cells, {:.2} cells/s, {:.2e} sim cycles/s, ETA {:.0}s",
                snapshot.artifact,
                snapshot.done,
                snapshot.total,
                snapshot.cells_per_sec,
                snapshot.sim_cycles_per_sec,
                snapshot.eta_secs
            );
        }
        self.bus.publish(snapshot);
    }
}

/// Atomically replaces the status file: write a sibling temp file, then
/// rename over the target, so a concurrent `watch` never reads a torn
/// document.
fn write_status(path: &Path, snapshot: &Snapshot) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, snapshot.to_json())?;
    std::fs::rename(&tmp, path)
}

impl Runner {
    /// A runner using `jobs` worker threads (clamped to at least 1).
    pub fn new(jobs: usize) -> Runner {
        Runner {
            jobs: jobs.max(1),
            progress: false,
            status_dir: None,
            shard: None,
            cache: None,
            bus: Watch::new(),
        }
    }

    /// A single-threaded runner.
    pub fn serial() -> Runner {
        Runner::new(1)
    }

    /// A runner using `INTERLEAVE_JOBS` if set, else the machine's
    /// available parallelism. Progress reporting is enabled when
    /// `INTERLEAVE_PROGRESS=1`, and `INTERLEAVE_STATUS=<dir>` configures
    /// the live status-file directory.
    pub fn from_env() -> Runner {
        let jobs = std::env::var("INTERLEAVE_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        let mut runner = Runner::new(jobs)
            .progress(matches!(std::env::var("INTERLEAVE_PROGRESS"), Ok(v) if v == "1"));
        if let Ok(dir) = std::env::var("INTERLEAVE_STATUS") {
            runner = runner.status_dir(dir);
        }
        if let Some(shard) = Shard::from_env() {
            runner = runner.shard(shard);
        }
        if let Ok(dir) = std::env::var("INTERLEAVE_CHECKPOINT_DIR") {
            runner = runner.checkpoint_dir(dir);
        }
        runner
    }

    /// Overrides the worker-thread count (clamped to at least 1),
    /// keeping any progress/status configuration already applied.
    pub fn with_jobs(mut self, jobs: usize) -> Runner {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables or disables the per-second completion heartbeat on stderr
    /// (default off).
    pub fn progress(mut self, on: bool) -> Runner {
        self.progress = on;
        self
    }

    /// Mirrors every telemetry snapshot to `<dir>/STATUS_<name>.json`,
    /// atomically replaced after each cell, so `interleave-sim watch`
    /// (or any file-tailing client) can follow the sweep live.
    pub fn status_dir(mut self, dir: impl Into<PathBuf>) -> Runner {
        self.status_dir = Some(dir.into());
        self
    }

    /// Restricts the sweep to one disjoint slice of the grid (see
    /// [`Shard`]). Shard identity is stamped into the sweep's artifact
    /// names and JSON headers so a later `interleave-sim merge` can fold
    /// the slices back into the canonical single-process documents.
    pub fn shard(mut self, shard: Shard) -> Runner {
        self.shard = Some(shard);
        self
    }

    /// Enables per-cell checkpointing under `dir`: every freshly
    /// computed cell is serialized to `CELL_<key>.json` (written to a
    /// temp file, then renamed, so a killed sweep never leaves a torn
    /// checkpoint), and cells whose checkpoint already exists are
    /// restored instead of recomputed. The key is a canonical hash of
    /// the resolved result-affecting configuration plus the cell
    /// coordinates (see [`crate::checkpoint`]), so stale checkpoints
    /// from a different spec, seed, or code version are ignored — a
    /// resumed sweep is byte-identical to an uninterrupted one.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Runner {
        self.cache = Some(Arc::new(ResultCache::new(dir)));
        self
    }

    /// Backs the runner with an existing shared [`ResultCache`]
    /// (the checkpoint store promoted to a service component): cells
    /// whose entry exists are restored instead of recomputed, fresh
    /// cells are stored, and the cache's hit/miss counters account for
    /// both. Sharing one `Arc<ResultCache>` across runners is how
    /// `interleave-sim serve` dedupes repeated job submissions.
    pub fn result_cache(mut self, cache: Arc<ResultCache>) -> Runner {
        self.cache = Some(cache);
        self
    }

    /// Replaces the runner's telemetry bus with a caller-owned one, so
    /// subscribers created *before* the runner existed (e.g. a server
    /// job registered at enqueue time) observe the sweep this runner
    /// eventually executes.
    pub fn with_bus(mut self, bus: Watch<Snapshot>) -> Runner {
        self.bus = bus;
        self
    }

    /// Subscribes to the runner's live telemetry bus. Snapshots are
    /// latest-wins: a subscriber polling [`Subscriber::latest`] (or
    /// blocking on [`Subscriber::changed`]) always sees the newest
    /// state of whatever sweep this runner is executing.
    pub fn subscribe(&self) -> Subscriber<Snapshot> {
        self.bus.subscribe()
    }

    /// The worker-thread count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every cell of `spec` (or, when a shard is configured, the
    /// shard's slice of the grid) and returns the aggregated sweep.
    pub fn run(&self, spec: &ExperimentSpec) -> SweepResult {
        let grid = spec.cells();
        let grid_cells = grid.len();
        let grid_indices: Vec<usize> = match self.shard {
            Some(shard) => shard.indices(grid_cells).collect(),
            None => (0..grid_cells).collect(),
        };
        let cells: Vec<Cell> = grid_indices.iter().map(|&i| grid[i].clone()).collect();
        let started = Instant::now();
        // Scope the host-phase profile to this sweep: discard anything
        // accumulated before it, harvest after the workers are done.
        let profiling = profile::enabled();
        if profiling {
            let _ = profile::take();
        }
        // Root scope on the coordinating thread: its self time picks up
        // everything outside the cells (spawning, collection, telemetry),
        // so the harvested self-times structurally account for the whole
        // sweep wall even when the cells themselves are brief.
        let sweep_scope = profile::enter("runner.sweep");
        let telemetry = SweepTelemetry::new(self, spec, cells.len());
        telemetry.begin();
        let telemetry = &telemetry;
        let checkpoints = self.cache.as_deref();
        let resumed_cells = AtomicUsize::new(0);
        let fresh_cells = AtomicUsize::new(0);
        // Test hook: exit after n freshly computed cells, checkpoints
        // already flushed, so the resume smoke in scripts/check.sh can
        // kill a sweep mid-grid deterministically.
        let kill_after =
            std::env::var("INTERLEAVE_SWEEP_KILL_AFTER").ok().and_then(|v| v.parse::<usize>().ok());
        let timed_cell = |c: &Cell| {
            let _cell = profile::enter("runner.cell");
            let cell_start = Instant::now();
            let restored = checkpoints.and_then(|cache| cache.load(spec, c));
            let fresh = restored.is_none();
            let result = restored.unwrap_or_else(|| {
                let result = spec.run_cell(c);
                if let Some(cache) = checkpoints {
                    if let Err(e) = cache.store(spec, c, &result) {
                        eprintln!(
                            "warning: could not checkpoint {} {} x{}: {e}",
                            c.target.name(),
                            c.scheme.name(),
                            c.contexts
                        );
                    }
                }
                result
            });
            if !fresh {
                resumed_cells.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "sweep {}: resumed {} {} x{} from checkpoint",
                    telemetry.artifact,
                    c.target.name(),
                    c.scheme.name(),
                    c.contexts
                );
            }
            let wall = cell_start.elapsed();
            telemetry.cell_finished(c, &result);
            if fresh {
                let done = fresh_cells.fetch_add(1, Ordering::SeqCst) + 1;
                if kill_after.is_some_and(|n| done >= n) {
                    eprintln!(
                        "sweep {}: INTERLEAVE_SWEEP_KILL_AFTER={} reached, exiting",
                        telemetry.artifact,
                        kill_after.unwrap_or(0)
                    );
                    std::process::exit(86);
                }
            }
            (result, wall)
        };
        let results: Vec<(CellResult, Duration)> = if self.jobs == 1 || cells.len() <= 1 {
            cells.iter().map(timed_cell).collect()
        } else {
            let slots: Vec<OnceLock<(CellResult, Duration)>> =
                (0..cells.len()).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..self.jobs.min(cells.len()) {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells.len() {
                            break;
                        }
                        let timed = timed_cell(&cells[i]);
                        slots[i].set(timed).expect("cell index claimed twice");
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("worker pool covered every cell"))
                .collect()
        };
        let (results, cell_walls): (Vec<CellResult>, Vec<Duration>) = results.into_iter().unzip();
        let wall = started.elapsed();
        // Close the root scope before harvesting so its frame is folded
        // into the profile.
        drop(sweep_scope);
        SweepResult {
            name: spec.name.clone(),
            scale: spec.scale,
            jobs: self.jobs,
            shard: self.shard,
            grid_cells,
            grid_indices,
            resumed: resumed_cells.load(Ordering::Relaxed),
            wall,
            cell_walls,
            cells: cells.into_iter().zip(results).collect(),
            profile: profiling.then(profile::take),
        }
    }
}

/// The aggregated outcome of running an [`ExperimentSpec`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Spec name (JSON artifact stem; sharded sweeps append the shard
    /// label — see [`SweepResult::artifact_stem`]).
    pub name: String,
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// Worker threads used.
    pub jobs: usize,
    /// The grid slice this sweep ran, or `None` for the whole grid.
    pub shard: Option<Shard>,
    /// Total cells in the spec's canonical grid (across all shards).
    pub grid_cells: usize,
    /// Canonical grid index of each entry of `cells`, index-aligned.
    /// Without a shard this is simply `0..grid_cells`.
    pub grid_indices: Vec<usize>,
    /// Cells restored from checkpoints instead of recomputed.
    pub resumed: usize,
    /// Wall-clock duration of the sweep.
    pub wall: Duration,
    /// Per-cell wall-clock durations, index-aligned with `cells`. Host
    /// timing lives here (and in `BENCH_*.json`) only — never in the
    /// deterministic `METRICS_*.json` artifact.
    pub cell_walls: Vec<Duration>,
    /// Every cell with its result, in the spec's canonical order.
    pub cells: Vec<(Cell, CellResult)>,
    /// Host-phase profile harvested over the sweep, when profiling was
    /// enabled (see [`interleave_obs::profile`]).
    pub profile: Option<PhaseProfile>,
}

impl SweepResult {
    /// Looks up a cell's result by coordinates (first seed-axis match).
    pub fn get(&self, target: &str, scheme: Scheme, contexts: usize) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|(c, _)| {
                c.target.name() == target && c.scheme == scheme && c.contexts == contexts
            })
            .map(|(_, r)| r)
    }

    /// A target's single-context baseline result.
    pub fn baseline(&self, target: &str) -> Option<&CellResult> {
        self.get(target, Scheme::Single, 1)
    }

    /// Whether two sweeps produced identical results cell for cell
    /// (coordinates and simulation outputs; wall time and job count are
    /// ignored).
    pub fn results_match(&self, other: &SweepResult) -> bool {
        self.cells.len() == other.cells.len()
            && self.cells.iter().zip(&other.cells).all(|((a, ra), (b, rb))| {
                a.target.name() == b.target.name()
                    && a.scheme == b.scheme
                    && a.contexts == b.contexts
                    && a.seed == b.seed
                    && ra == rb
            })
    }

    /// Renders the sweep as a generic summary table: one row per cell
    /// with cycles, utilization, and speedup over the target's baseline.
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(format!("Sweep: {} ({} scale)", self.name, self.scale.name()));
        table.headers(["target", "scheme", "contexts", "cycles", "util", "speedup"]);
        for (cell, result) in &self.cells {
            let speedup = self
                .baseline(cell.target.name())
                .map(|b| format!("{:.2}", b.cycles() as f64 / result.cycles() as f64))
                .unwrap_or_else(|| "-".into());
            table.row([
                cell.target.name().to_string(),
                cell.scheme.name().to_string(),
                cell.contexts.to_string(),
                result.cycles().to_string(),
                format!("{:.1}%", result.utilization() * 100.0),
                speedup,
            ]);
        }
        table
    }

    /// Serializes the sweep as a machine-readable JSON document.
    pub fn to_json(&self) -> String {
        let timestamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"artifact\": {},\n", json_str(&self.name)));
        out.push_str(&format!("  \"unix_timestamp\": {timestamp},\n"));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str(&format!("  \"grid_cells\": {},\n", self.grid_cells));
        if let Some(shard) = self.shard {
            out.push_str(&format!(
                "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
                shard.index(),
                shard.count()
            ));
        }
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"wall_ms\": {},\n", self.wall.as_millis()));
        let total_sim_cycles: u64 = self.cells.iter().map(|(_, r)| r.cycles()).sum();
        out.push_str(&format!("  \"total_sim_cycles\": {total_sim_cycles},\n"));
        out.push_str(&format!(
            "  \"sim_cycles_per_sec\": {:.1},\n",
            cycles_per_sec(total_sim_cycles, self.wall)
        ));
        out.push_str("  \"cells\": [\n");
        for (i, (cell, result)) in self.cells.iter().enumerate() {
            let seed = cell.seed.map(|s| s.to_string()).unwrap_or_else(|| "null".into());
            let cell_wall = self.cell_walls.get(i).copied().unwrap_or_default();
            let common = format!(
                "\"grid_index\": {}, \"target\": {}, \"scheme\": \"{}\", \"contexts\": {}, \
                 \"seed\": {seed}, \"cycles\": {}, \"utilization\": {:.6}, \"wall_ms\": {}, \
                 \"sim_cycles_per_sec\": {:.1}",
                self.grid_indices.get(i).copied().unwrap_or(i),
                json_str(cell.target.name()),
                cell.scheme.name(),
                cell.contexts,
                result.cycles(),
                result.utilization(),
                cell_wall.as_millis(),
                cycles_per_sec(result.cycles(), cell_wall),
            );
            let extra = match result {
                CellResult::Uni(r) => format!(
                    "\"kind\": \"uni\", \"instructions\": {}, \"throughput\": {:.6}",
                    r.instructions,
                    r.throughput()
                ),
                CellResult::Mp(r) => format!(
                    "\"kind\": \"mp\", \"threads\": {}, \"avg_mlp\": {:.6}",
                    r.threads, r.avg_mlp
                ),
            };
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!("    {{{common}, {extra}}}{comma}\n"));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes every cell's metric registry as a JSON document.
    ///
    /// Unlike [`SweepResult::to_json`], the document carries no
    /// timestamp, wall time, or job count, and every registry is
    /// name-sorted — so serial and parallel sweeps of the same spec
    /// produce byte-identical artifacts (asserted by the
    /// `metrics_json_identical_serial_vs_parallel` test).
    pub fn metrics_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"artifact\": {},\n", json_str(&self.name)));
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str(&format!("  \"grid_cells\": {},\n", self.grid_cells));
        if let Some(shard) = self.shard {
            out.push_str(&format!(
                "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
                shard.index(),
                shard.count()
            ));
        }
        out.push_str("  \"cells\": [\n");
        // One line per cell (single-line registry serialization): shard
        // merge reassembles the canonical document by splicing these
        // exact lines in grid order, so byte-identity with a
        // single-process sweep holds by construction.
        for (i, (cell, result)) in self.cells.iter().enumerate() {
            let seed = cell.seed.map(|s| s.to_string()).unwrap_or_else(|| "null".into());
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"grid_index\": {}, \"target\": {}, \"scheme\": \"{}\", \
                 \"contexts\": {}, \"seed\": {seed}, \"metrics\": {}}}{comma}\n",
                self.grid_indices.get(i).copied().unwrap_or(i),
                json_str(cell.target.name()),
                cell.scheme.name(),
                cell.contexts,
                result.metrics().to_json_line(),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// File-name stem for the sweep's artifacts: the spec name, with
    /// the shard label appended (`table7.shard2of4`) when the sweep ran
    /// one slice — so N shard processes sharing an artifact directory
    /// (or a CI artifact namespace) never collide.
    pub fn artifact_stem(&self) -> String {
        match self.shard {
            Some(shard) => format!("{}.{}", self.name, shard.label()),
            None => self.name.clone(),
        }
    }

    /// Writes `BENCH_<stem>.json` into `dir`.
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.artifact_stem()));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes `METRICS_<stem>.json` into `dir`.
    pub fn write_metrics_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("METRICS_{}.json", self.artifact_stem()));
        std::fs::write(&path, self.metrics_json())?;
        Ok(path)
    }

    /// Serializes the harvested host-phase profile as the
    /// `PROFILE_*.json` document (`interleave-profile-v1`: header
    /// scalars, then one phase object per line so shell gates can `grep`
    /// individual phases). `None` when the sweep ran unprofiled.
    pub fn profile_json(&self) -> Option<String> {
        let profile = self.profile.as_ref()?;
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"artifact\": {},\n", json_str(&self.name)));
        out.push_str("  \"schema\": \"interleave-profile-v1\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale.name()));
        out.push_str(&format!("  \"grid_cells\": {},\n", self.grid_cells));
        if let Some(shard) = self.shard {
            out.push_str(&format!(
                "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
                shard.index(),
                shard.count()
            ));
        }
        out.push_str(&format!("  \"wall_ns\": {},\n", wall_ns(self.wall)));
        let total_sim_cycles: u64 = self.cells.iter().map(|(_, r)| r.cycles()).sum();
        out.push_str(&format!("  \"total_sim_cycles\": {total_sim_cycles},\n"));
        out.push_str(&format!("  \"phases\": {}\n", profile.to_json(2)));
        out.push_str("}\n");
        Some(out)
    }

    /// Writes `PROFILE_<name>.json` into `dir`; `Ok(None)` when the
    /// sweep ran unprofiled.
    pub fn write_profile_json(
        &self,
        dir: &std::path::Path,
    ) -> std::io::Result<Option<std::path::PathBuf>> {
        let Some(doc) = self.profile_json() else {
            return Ok(None);
        };
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("PROFILE_{}.json", self.artifact_stem()));
        std::fs::write(&path, doc)?;
        Ok(Some(path))
    }

    /// When `INTERLEAVE_JSON=<dir>` is set, writes the `BENCH_*.json`
    /// and `METRICS_*.json` artifacts there — plus `PROFILE_*.json` when
    /// the sweep was profiled — logging to stderr; otherwise does
    /// nothing.
    pub fn maybe_emit_json(&self) {
        let Ok(dir) = std::env::var("INTERLEAVE_JSON") else {
            return;
        };
        let dir = std::path::Path::new(&dir);
        match self.write_json(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("warning: could not write BENCH_{}.json: {e}", self.artifact_stem())
            }
        }
        match self.write_metrics_json(dir) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("warning: could not write METRICS_{}.json: {e}", self.artifact_stem())
            }
        }
        match self.write_profile_json(dir) {
            Ok(Some(path)) => eprintln!("wrote {}", path.display()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("warning: could not write PROFILE_{}.json: {e}", self.artifact_stem())
            }
        }
    }
}

/// Wall duration in nanoseconds, saturating (u64 holds ~584 years).
fn wall_ns(wall: Duration) -> u64 {
    u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX)
}

/// The `INTERLEAVE_MP_JOBS` fallback for specs that do not set
/// [`ExperimentSpec::mp_jobs`] explicitly.
fn mp_jobs_from_env() -> Option<usize> {
    std::env::var("INTERLEAVE_MP_JOBS").ok().and_then(|v| v.parse::<usize>().ok())
}

/// The `INTERLEAVE_IDLE_SKIP` fallback for specs that do not set
/// [`ExperimentSpec::idle_skip`] explicitly.
fn idle_skip_from_env() -> Option<bool> {
    bool_env("INTERLEAVE_IDLE_SKIP")
}

/// The `INTERLEAVE_ADAPTIVE` fallback for specs that do not set
/// [`ExperimentSpec::adaptive`] explicitly.
fn adaptive_from_env() -> Option<bool> {
    bool_env("INTERLEAVE_ADAPTIVE")
}

/// Parses a boolean knob: `1`/`true`/`on` and `0`/`false`/`off`;
/// anything else (including unset) falls through to the built-in
/// default.
fn bool_env(var: &str) -> Option<bool> {
    match std::env::var(var).ok()?.as_str() {
        "1" | "true" | "on" => Some(true),
        "0" | "false" | "off" => Some(false),
        _ => None,
    }
}

/// Simulated-cycles-per-host-second rate, or 0 when the wall time is too
/// small to measure.
fn cycles_per_sec(cycles: u64, wall: Duration) -> f64 {
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        cycles as f64 / secs
    } else {
        0.0
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave_mp::splash_suite;
    use interleave_workloads::mixes;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec::new("tiny", Scale::Ci)
            .uni(mixes::ic())
            .mp(splash_suite()[0].clone())
            .contexts([2])
            .quota(2_000)
            .work(8_000)
            .warmup(500)
    }

    #[test]
    fn cell_enumeration_is_canonical() {
        let cells = tiny_spec().cells();
        // Per target: baseline + 1 count × 2 schemes.
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].scheme, Scheme::Single);
        assert_eq!(cells[0].contexts, 1);
        assert_eq!(cells[1].scheme, Scheme::Blocked);
        assert_eq!(cells[2].scheme, Scheme::Interleaved);
        assert!(matches!(cells[3].target, Target::Mp(_)));
    }

    #[test]
    fn serial_and_parallel_sweeps_match() {
        let spec = tiny_spec();
        let serial = Runner::serial().run(&spec);
        let parallel = Runner::new(4).run(&spec);
        assert_eq!(parallel.jobs, 4);
        assert!(serial.results_match(&parallel));
    }

    #[test]
    fn seeds_axis_changes_results() {
        let spec = ExperimentSpec::new("seeded", Scale::Ci)
            .uni(mixes::fp())
            .contexts([2])
            .schemes([Scheme::Interleaved])
            .baseline(false)
            .quota(2_000)
            .warmup(500);
        let default = Runner::serial().run(&spec.clone());
        let reseeded = Runner::serial().run(&spec.seeds([7]));
        assert_eq!(default.cells.len(), 1);
        assert_eq!(reseeded.cells[0].0.seed, Some(7));
        assert!(!default.results_match(&reseeded));
    }

    #[test]
    fn sweep_table_and_json_are_well_formed() {
        let sweep = Runner::serial().run(&tiny_spec());
        let table = sweep.to_table();
        assert_eq!(table.len(), 6);
        let json = sweep.to_json();
        assert!(json.contains("\"artifact\": \"tiny\""));
        assert!(json.contains("\"kind\": \"uni\""));
        assert!(json.contains("\"kind\": \"mp\""));
        assert!(json.contains("\"total_sim_cycles\""));
        // Top-level rate plus one per cell.
        assert_eq!(json.matches("\"sim_cycles_per_sec\"").count(), 7);
        assert_eq!(json.matches("\"cycles\"").count(), 6);
        // Balanced braces — cheap structural sanity check without a
        // JSON parser in the dependency set.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn idle_skip_override_is_bit_identical() {
        let on = Runner::serial().run(&tiny_spec().idle_skip(true));
        let off = Runner::serial().run(&tiny_spec().idle_skip(false));
        assert!(on.results_match(&off), "idle skipping must not change simulated results");
        assert_eq!(on.metrics_json(), off.metrics_json());
    }

    #[test]
    fn adaptive_override_is_bit_identical() {
        let on = Runner::serial().run(&tiny_spec().adaptive(true));
        let off = Runner::serial().run(&tiny_spec().adaptive(false));
        assert!(on.results_match(&off), "adaptive lookahead must not change simulated results");
        assert_eq!(on.metrics_json(), off.metrics_json());
    }

    /// One test covers every env knob so concurrent test threads never
    /// race on the same variable. The knobs themselves are all
    /// host-throughput-only (bit-invisible), so a concurrently running
    /// sweep observing a transient value cannot change any result.
    #[test]
    fn env_knobs_round_trip() {
        std::env::set_var("INTERLEAVE_MP_JOBS", "3");
        std::env::set_var("INTERLEAVE_IDLE_SKIP", "0");
        std::env::set_var("INTERLEAVE_ADAPTIVE", "off");
        assert_eq!(mp_jobs_from_env(), Some(3));
        assert_eq!(idle_skip_from_env(), Some(false));
        assert_eq!(adaptive_from_env(), Some(false));
        std::env::set_var("INTERLEAVE_IDLE_SKIP", "true");
        std::env::set_var("INTERLEAVE_ADAPTIVE", "1");
        assert_eq!(idle_skip_from_env(), Some(true));
        assert_eq!(adaptive_from_env(), Some(true));
        // Garbage falls through to the built-in default rather than
        // silently picking a side.
        std::env::set_var("INTERLEAVE_ADAPTIVE", "maybe");
        assert_eq!(adaptive_from_env(), None);
        std::env::remove_var("INTERLEAVE_MP_JOBS");
        std::env::remove_var("INTERLEAVE_IDLE_SKIP");
        std::env::remove_var("INTERLEAVE_ADAPTIVE");
        assert_eq!(mp_jobs_from_env(), None);
        assert_eq!(idle_skip_from_env(), None);
        assert_eq!(adaptive_from_env(), None);
        std::env::set_var("INTERLEAVE_SHARD", "3/4");
        assert_eq!(Shard::from_env(), Some(Shard::new(3, 4)));
        // Malformed shard values are ignored (with a warning), never
        // silently reinterpreted.
        std::env::set_var("INTERLEAVE_SHARD", "4/3");
        assert_eq!(Shard::from_env(), None);
        std::env::remove_var("INTERLEAVE_SHARD");
        assert_eq!(Shard::from_env(), None);
        std::env::set_var("INTERLEAVE_CHECKPOINT_DIR", "/tmp/ckpt");
        assert_eq!(
            Runner::from_env().cache.as_deref().map(ResultCache::dir),
            Some(Path::new("/tmp/ckpt"))
        );
        std::env::remove_var("INTERLEAVE_CHECKPOINT_DIR");
        assert!(Runner::from_env().cache.is_none());
    }

    #[test]
    fn mp_jobs_override_is_bit_identical() {
        let serial = Runner::serial().run(&tiny_spec().mp_jobs(1));
        let sharded = Runner::serial().run(&tiny_spec().mp_jobs(4));
        assert!(
            serial.results_match(&sharded),
            "the parallel multiprocessor driver must not change simulated results"
        );
        assert_eq!(serial.metrics_json(), sharded.metrics_json());
    }

    #[test]
    fn cell_walls_align_with_cells() {
        let sweep = Runner::new(3).run(&tiny_spec());
        assert_eq!(sweep.cell_walls.len(), sweep.cells.len());
    }

    /// The final heartbeat must print even when the whole sweep finishes
    /// inside the 1-second rate-limit window.
    #[test]
    fn heartbeat_always_reports_the_final_cell() {
        assert!(heartbeat_due(6, 6, Duration::from_millis(1)), "final cell inside the window");
        assert!(heartbeat_due(3, 6, Duration::from_secs(2)), "window elapsed mid-sweep");
        assert!(!heartbeat_due(3, 6, Duration::from_millis(1)), "rate-limited mid-sweep");
        assert!(heartbeat_due(1, 1, Duration::ZERO), "single-cell sweep still reports");
    }

    #[test]
    fn bus_publishes_per_cell_snapshots() {
        let spec = tiny_spec();
        let runner = Runner::new(2);
        let mut sub = runner.subscribe();
        assert!(sub.latest().is_none(), "nothing published before the sweep");
        let sweep = runner.run(&spec);
        let last = sub.latest().expect("final snapshot on the bus");
        assert_eq!(last.artifact, "tiny");
        assert_eq!(last.done, 6);
        assert_eq!(last.total, 6);
        assert!(last.finished);
        assert!(!last.last_cell.is_empty());
        let total: u64 = sweep.cells.iter().map(|(_, r)| r.cycles()).sum();
        assert_eq!(last.sim_cycles, total);
        // The merged registry equals the fold of every cell's registry
        // (order-independent by the monoid property).
        let mut merged = Registry::new();
        for (_, r) in &sweep.cells {
            merged.merge(r.metrics());
        }
        assert_eq!(last.metrics, merged);
    }

    #[test]
    fn status_file_is_written_and_parses() {
        let dir = std::env::temp_dir().join(format!("ilv_status_{}", std::process::id()));
        let spec = tiny_spec();
        let sweep = Runner::serial().status_dir(&dir).run(&spec);
        let path = dir.join("STATUS_tiny.json");
        let text = std::fs::read_to_string(&path).expect("status file written");
        let doc = interleave_obs::json::parse(&text).expect("status json parses");
        assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("interleave-status-v1"));
        assert_eq!(doc.get("done").and_then(|v| v.as_u64()), Some(6));
        assert_eq!(doc.get("finished").and_then(|v| v.as_bool()), Some(true));
        let total: u64 = sweep.cells.iter().map(|(_, r)| r.cycles()).sum();
        assert_eq!(doc.get("sim_cycles").and_then(|v| v.as_u64()), Some(total));
        assert!(doc.get("metrics").and_then(|m| m.get("cycles.busy")).is_some());
        assert!(!path.with_extension("json.tmp").exists(), "temp file renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The profiler must be bit-invisible to simulation results: the
    /// deterministic METRICS artifact is byte-identical with profiling
    /// on vs off, and every simulated result matches.
    #[test]
    fn profiling_is_bit_invisible_to_results() {
        let spec = tiny_spec();
        profile::set_enabled(false);
        let off = Runner::serial().run(&spec);
        profile::set_enabled(true);
        let on = Runner::serial().run(&spec);
        profile::set_enabled(false);
        assert!(off.profile.is_none());
        let profile = on.profile.as_ref().expect("profiled sweep harvests a profile");
        assert!(on.results_match(&off), "profiling changed simulated results");
        assert_eq!(on.metrics_json(), off.metrics_json(), "METRICS must be byte-identical");
        // BENCH carries timestamps and wall times, so byte-identity is
        // impossible there; results_match plus METRICS equality is the
        // meaningful invariant.
        // `>=`: other tests' worker threads may fold extra cells into
        // the global harvest while the switch is on (global state).
        let cell = profile.get("runner.cell").expect("root scope recorded");
        assert!(cell.calls as usize >= on.cells.len());
        assert!(profile.get("core.run").is_some(), "nested sim phases recorded");
        assert!(profile.get("core.tick").map(|s| s.calls).unwrap_or(0) > 0);
        // PROFILE json round-trips through obs::json.
        let doc = on.profile_json().expect("profile document");
        let parsed = interleave_obs::json::parse(&doc).expect("profile json parses");
        assert_eq!(parsed.get("schema").and_then(|v| v.as_str()), Some("interleave-profile-v1"));
        let phases = parsed.get("phases").expect("phases array");
        let back = PhaseProfile::from_value(phases).expect("phases round-trip");
        assert_eq!(&back, profile);
    }

    #[test]
    fn metrics_json_identical_serial_vs_parallel() {
        let spec = tiny_spec();
        let serial = Runner::serial().run(&spec).metrics_json();
        let parallel = Runner::new(4).run(&spec).metrics_json();
        assert_eq!(serial, parallel, "metrics artifact must not depend on the schedule");
        let doc = interleave_obs::json::parse(&serial).expect("metrics json parses");
        let cells = doc.get("cells").and_then(|c| c.as_arr()).expect("cells array");
        assert_eq!(cells.len(), 6);
        let first = cells[0].get("metrics").expect("metrics object");
        assert!(first.get("cycles.busy").and_then(|v| v.as_u64()).is_some());
        assert!(first.get("core.run_length").and_then(|h| h.get("count")).is_some());
    }

    #[test]
    fn cell_metrics_reconcile_with_breakdown() {
        let sweep = Runner::serial().run(&tiny_spec());
        for (cell, result) in &sweep.cells {
            let busy = result.metrics().counter_value("cycles.busy");
            assert_eq!(
                busy,
                Some(result.breakdown().get(Category::Busy)),
                "cycles.busy mismatch for {} {:?} x{}",
                cell.target.name(),
                cell.scheme,
                cell.contexts
            );
        }
    }

    #[test]
    fn lookup_by_coordinates() {
        let sweep = Runner::new(2).run(&tiny_spec());
        assert!(sweep.baseline("IC").is_some());
        assert!(sweep.get("IC", Scheme::Interleaved, 2).is_some());
        assert!(sweep.get("IC", Scheme::Interleaved, 64).is_none());
    }

    #[test]
    fn shard_parse_accepts_k_of_n_only() {
        assert_eq!(Shard::parse("2/4"), Some(Shard::new(2, 4)));
        assert_eq!(Shard::parse("1/1"), Some(Shard::new(1, 1)));
        for bad in ["0/4", "5/4", "4", "a/b", "2/0", "", "1/2/3", "-1/4"] {
            assert_eq!(Shard::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn shard_slices_are_disjoint_and_covering() {
        for total in [0usize, 1, 5, 6, 17] {
            for count in 1..=5 {
                let mut seen = vec![0usize; total];
                for index in 1..=count {
                    for i in Shard::new(index, count).indices(total) {
                        seen[i] += 1;
                    }
                }
                assert!(seen.iter().all(|&n| n == 1), "grid {total} over {count} shards");
            }
        }
    }

    #[test]
    fn sharded_sweep_runs_its_slice_and_stamps_artifacts() {
        let spec = tiny_spec();
        let full = Runner::serial().run(&spec);
        let shard = Shard::new(2, 3);
        let slice = Runner::serial().shard(shard).run(&spec);
        assert_eq!(slice.grid_cells, 6);
        assert_eq!(slice.grid_indices, vec![1, 4]);
        assert_eq!(slice.cells.len(), 2);
        assert_eq!(slice.artifact_stem(), "tiny.shard2of3");
        // The slice's results equal the corresponding full-grid cells.
        for (&gi, (cell, result)) in slice.grid_indices.iter().zip(&slice.cells) {
            let (full_cell, full_result) = &full.cells[gi];
            assert_eq!(cell.target.name(), full_cell.target.name());
            assert_eq!(cell.scheme, full_cell.scheme);
            assert_eq!(cell.contexts, full_cell.contexts);
            assert_eq!(result, full_result);
        }
        let json = slice.to_json();
        assert!(json.contains("\"shard\": {\"index\": 2, \"count\": 3}"));
        assert!(json.contains("\"grid_cells\": 6"));
        assert!(json.contains("\"grid_index\": 4"));
        let metrics = slice.metrics_json();
        assert!(metrics.contains("\"shard\": {\"index\": 2, \"count\": 3}"));
        // Unsharded artifacts carry the grid header but no shard key.
        assert!(!full.to_json().contains("\"shard\""));
        assert!(full.metrics_json().contains("\"grid_cells\": 6"));
        assert_eq!(full.artifact_stem(), "tiny");
    }

    /// Every METRICS cell row is a single line, so shard merge can
    /// splice rows byte-exactly (the merge module depends on this).
    #[test]
    fn metrics_cells_are_single_lines() {
        let sweep = Runner::serial().run(&tiny_spec());
        let doc = sweep.metrics_json();
        let cell_lines: Vec<&str> =
            doc.lines().filter(|l| l.trim_start().starts_with("{\"grid_index\":")).collect();
        assert_eq!(cell_lines.len(), sweep.cells.len());
    }

    #[test]
    fn scale_parse_and_knobs() {
        assert_eq!(Scale::parse("ci"), Some(Scale::Ci));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
        assert!(Scale::Full.uni_quota() > Scale::Ci.uni_quota());
        assert!(Scale::Full.mp_nodes() > Scale::Ci.mp_nodes());
        assert_eq!(Scale::Ci.name(), "ci");
    }
}
