//! Content-addressed result cache: the checkpoint store promoted to a
//! shared, stats-bearing service component.
//!
//! [`ResultCache`] wraps the [`crate::checkpoint`] file format — one
//! `CELL_<fnv64>.json` per cell, keyed by the resolved-configuration
//! hash (spec × seed × crate version), written atomically — behind a
//! handle that can be shared across many [`crate::Runner`]s (the
//! `interleave-sim serve` worker pool hands one `Arc<ResultCache>` to
//! every job) and counts hits/misses so `GET /stats` can report a cache
//! hit rate. Because the key hashes only result-affecting configuration,
//! a cache hit is guaranteed to reproduce the fresh computation
//! bit-for-bit: a cached response byte-equals a fresh run by
//! construction.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::checkpoint;
use crate::runner::{Cell, CellResult, ExperimentSpec};

/// A content-addressed store of per-cell results with hit/miss counters.
///
/// Thread-safe: `load`/`store` take `&self`, so one cache can back any
/// number of concurrent runners (atomicity of the underlying file
/// writes makes concurrent stores of the same key safe — last rename
/// wins, and every candidate is bit-identical anyway).
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("dir", &self.dir)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl ResultCache {
    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> ResultCache {
        ResultCache { dir: dir.into(), hits: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Restores a cell's result when a valid entry for its resolved
    /// configuration exists, counting a hit; counts a miss otherwise.
    pub fn load(&self, spec: &ExperimentSpec, cell: &Cell) -> Option<CellResult> {
        let result = checkpoint::load(&self.dir, spec, cell);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Stores a freshly computed cell result (write-to-temp + rename).
    pub fn store(
        &self,
        spec: &ExperimentSpec,
        cell: &Cell,
        result: &CellResult,
    ) -> std::io::Result<PathBuf> {
        checkpoint::store(&self.dir, spec, cell, result)
    }

    /// Loads served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that had to be computed fresh so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Fraction of loads served from the cache (0.0 when nothing has
    /// been looked up yet).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, Scale};
    use interleave_workloads::mixes;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new("cache", Scale::Ci).uni(mixes::fp()).contexts([2]).quota(1_000)
    }

    #[test]
    fn counts_hits_and_misses() {
        let dir = std::env::temp_dir().join(format!("ilv_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::new(&dir);
        let spec = spec();
        let cell = &spec.cells()[0];
        assert!(cache.load(&spec, cell).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        assert_eq!(cache.hit_rate(), 0.0);
        let result = spec.run_cell(cell);
        cache.store(&spec, cell, &result).unwrap();
        assert_eq!(cache.load(&spec, cell).as_ref(), Some(&result), "round-trips exactly");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_across_runners_dedupes_work() {
        let dir = std::env::temp_dir().join(format!("ilv_cache_share_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = std::sync::Arc::new(ResultCache::new(&dir));
        let spec = spec();
        let first = Runner::serial().result_cache(std::sync::Arc::clone(&cache)).run(&spec);
        assert_eq!(first.resumed, 0);
        let second = Runner::serial().result_cache(std::sync::Arc::clone(&cache)).run(&spec);
        assert_eq!(second.resumed, second.cells.len(), "second runner hits for every cell");
        assert!(first.results_match(&second));
        assert_eq!(cache.hits(), second.cells.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
