//! Folds shard sweep artifacts back into the canonical single-process
//! documents.
//!
//! A sharded sweep writes `BENCH_<name>.shard<K>of<N>.json` /
//! `METRICS_<name>.shard<K>of<N>.json` per shard, each cell row stamped
//! with its canonical `grid_index`. Because every cell row is exactly
//! one line in both documents (see [`crate::SweepResult::to_json`] and
//! `metrics_json`), merging is deterministic line splicing: validate
//! that the shard set is complete and covering, sort the raw cell lines
//! by grid index, and reassemble them under the canonical (unsharded)
//! header. No value is ever re-parsed and re-formatted, so the merged
//! `METRICS` document is byte-identical to a single-process sweep's by
//! construction, and the merged `BENCH` document is identical after the
//! volatile host keys (`unix_timestamp`, `jobs`, `wall_ms`,
//! `sim_cycles_per_sec`) are stripped — the exact contract
//! `scripts/determinism_gate.sh` enforces and
//! `tests/sweep_determinism.rs` pins in-process.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use interleave_obs::json;

/// Why a shard set could not be merged. The message names the offending
/// files so CI logs are actionable.
#[derive(Debug)]
pub struct MergeError(pub String);

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "merge error: {}", self.0)
    }
}

impl std::error::Error for MergeError {}

/// One merged sweep: the reassembled canonical documents for one
/// artifact name.
#[derive(Debug)]
pub struct MergedSweep {
    /// Artifact name (`table7`, ...).
    pub artifact: String,
    /// Shards folded in.
    pub shards: usize,
    /// Total grid cells across all shards.
    pub grid_cells: usize,
    /// The canonical `BENCH_<artifact>.json` document.
    pub bench: String,
    /// The canonical `METRICS_<artifact>.json` document.
    pub metrics: String,
}

impl MergedSweep {
    /// Writes `BENCH_<artifact>.json` and `METRICS_<artifact>.json` into
    /// `dir`, returning both paths.
    pub fn write(&self, dir: &Path) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let bench = dir.join(format!("BENCH_{}.json", self.artifact));
        std::fs::write(&bench, &self.bench)?;
        let metrics = dir.join(format!("METRICS_{}.json", self.artifact));
        std::fs::write(&metrics, &self.metrics)?;
        Ok((bench, metrics))
    }
}

/// One parsed shard document (either kind).
struct ShardDoc {
    path: PathBuf,
    index: usize,
    count: usize,
    scale: String,
    grid_cells: usize,
    /// Raw cell lines (comma-stripped), keyed by grid index.
    cells: BTreeMap<usize, String>,
    /// Summed simulated cycles of the shard's cells (BENCH only).
    sim_cycles: u64,
    /// Header `jobs` (BENCH only).
    jobs: u64,
    /// Header `wall_ms` (BENCH only).
    wall_ms: u64,
}

/// Scans `dirs` for shard artifacts and merges every complete set
/// found, sorted by artifact name. Errors if no shard artifacts exist,
/// if a shard set is incomplete or inconsistent, or if a shard's
/// `METRICS` counterpart is missing.
pub fn merge_dirs(dirs: &[PathBuf]) -> Result<Vec<MergedSweep>, MergeError> {
    // artifact name -> (shard label -> BENCH path)
    let mut groups: BTreeMap<String, Vec<(PathBuf, usize, usize)>> = BTreeMap::new();
    for dir in dirs {
        let entries = std::fs::read_dir(dir)
            .map_err(|e| MergeError(format!("cannot read {}: {e}", dir.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some((artifact, k, n)) = parse_shard_file_name(&name, "BENCH_") {
                groups.entry(artifact).or_default().push((entry.path(), k, n));
            }
        }
    }
    if groups.is_empty() {
        return Err(MergeError(format!(
            "no shard artifacts (BENCH_<name>.shard<K>of<N>.json) found under: {}",
            dirs.iter().map(|d| d.display().to_string()).collect::<Vec<_>>().join(", ")
        )));
    }
    groups.into_iter().map(|(artifact, shards)| merge_group(&artifact, shards)).collect()
}

/// `BENCH_table7.shard2of4.json` -> `("table7", 2, 4)`.
fn parse_shard_file_name(name: &str, prefix: &str) -> Option<(String, usize, usize)> {
    let stem = name.strip_prefix(prefix)?.strip_suffix(".json")?;
    let (artifact, shard) = stem.rsplit_once(".shard")?;
    let (k, n) = shard.split_once("of")?;
    let k = k.parse::<usize>().ok()?;
    let n = n.parse::<usize>().ok()?;
    (!artifact.is_empty() && k >= 1 && k <= n).then(|| (artifact.to_string(), k, n))
}

fn merge_group(
    artifact: &str,
    shards: Vec<(PathBuf, usize, usize)>,
) -> Result<MergedSweep, MergeError> {
    let count = shards[0].2;
    let mut bench_docs: Vec<ShardDoc> = Vec::new();
    let mut metrics_docs: Vec<ShardDoc> = Vec::new();
    for (bench_path, k, n) in &shards {
        if *n != count {
            return Err(MergeError(format!(
                "{artifact}: mixed shard counts ({n} vs {count}) — artifacts from different \
                 sweep configurations cannot merge"
            )));
        }
        let metrics_path = bench_path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(format!("METRICS_{artifact}.shard{k}of{n}.json"));
        if !metrics_path.exists() {
            return Err(MergeError(format!(
                "{}: missing METRICS counterpart {}",
                bench_path.display(),
                metrics_path.display()
            )));
        }
        bench_docs.push(read_shard(bench_path, artifact, *k, count)?);
        metrics_docs.push(read_shard(&metrics_path, artifact, *k, count)?);
    }
    for docs in [&mut bench_docs, &mut metrics_docs] {
        docs.sort_by_key(|d| d.index);
        validate_set(artifact, docs, count)?;
    }
    let grid_cells = bench_docs[0].grid_cells;
    Ok(MergedSweep {
        artifact: artifact.to_string(),
        shards: count,
        grid_cells,
        bench: render_bench(artifact, &bench_docs, grid_cells),
        metrics: render_metrics(artifact, &metrics_docs, grid_cells),
    })
}

/// Parses one shard document: header fields for validation, raw cell
/// lines for splicing.
fn read_shard(path: &Path, artifact: &str, k: usize, n: usize) -> Result<ShardDoc, MergeError> {
    let fail = |msg: String| MergeError(format!("{}: {msg}", path.display()));
    let text = std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read: {e}")))?;
    let doc = json::parse(&text).map_err(|e| fail(format!("not valid JSON: {e}")))?;
    let header_str = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .ok_or_else(|| fail(format!("missing {key:?} header")))
    };
    let header_u64 = |key: &str| {
        doc.get(key).and_then(|v| v.as_u64()).ok_or_else(|| fail(format!("missing {key:?} header")))
    };
    if header_str("artifact")? != artifact {
        return Err(fail(format!("embedded artifact does not match file name {artifact:?}")));
    }
    let shard = doc.get("shard").ok_or_else(|| {
        fail("no \"shard\" header — this is an unsharded artifact; nothing to merge".into())
    })?;
    let (index, count) = (
        shard.get("index").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
        shard.get("count").and_then(|v| v.as_u64()).unwrap_or(0) as usize,
    );
    if (index, count) != (k, n) {
        return Err(fail(format!(
            "embedded shard {index}/{count} does not match file name {k}/{n}"
        )));
    }
    let mut cells = BTreeMap::new();
    let mut sim_cycles = 0u64;
    for line in text.lines() {
        if !line.trim_start().starts_with("{\"grid_index\":") {
            continue;
        }
        let row = line.trim_start();
        let row = row.strip_suffix(',').unwrap_or(row);
        let parsed = json::parse(row).map_err(|e| fail(format!("unparsable cell row: {e}")))?;
        let gi = parsed
            .get("grid_index")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| fail("cell row without grid_index".into()))? as usize;
        sim_cycles += parsed.get("cycles").and_then(|v| v.as_u64()).unwrap_or(0);
        if cells.insert(gi, row.to_string()).is_some() {
            return Err(fail(format!("duplicate grid_index {gi}")));
        }
    }
    Ok(ShardDoc {
        path: path.to_path_buf(),
        index,
        count,
        scale: header_str("scale")?,
        grid_cells: header_u64("grid_cells")? as usize,
        cells,
        sim_cycles,
        jobs: doc.get("jobs").and_then(|v| v.as_u64()).unwrap_or(0),
        wall_ms: doc.get("wall_ms").and_then(|v| v.as_u64()).unwrap_or(0),
    })
}

/// Checks a sorted shard set is exactly `1..=count`, mutually
/// consistent, and covers the grid with no gaps or overlaps.
fn validate_set(artifact: &str, docs: &[ShardDoc], count: usize) -> Result<(), MergeError> {
    let indices: Vec<usize> = docs.iter().map(|d| d.index).collect();
    let expected: Vec<usize> = (1..=count).collect();
    if indices != expected {
        return Err(MergeError(format!(
            "{artifact}: incomplete shard set — have {indices:?}, need every shard in 1..={count}"
        )));
    }
    let first = &docs[0];
    for doc in docs {
        if doc.scale != first.scale || doc.grid_cells != first.grid_cells || doc.count != count {
            return Err(MergeError(format!(
                "{}: header disagrees with {} (scale/grid_cells/shard count)",
                doc.path.display(),
                first.path.display()
            )));
        }
        let expected: Vec<usize> = (doc.index - 1..doc.grid_cells).step_by(count.max(1)).collect();
        let got: Vec<usize> = doc.cells.keys().copied().collect();
        if got != expected {
            return Err(MergeError(format!(
                "{}: cell coverage {got:?} is not the canonical slice for shard {}/{count}",
                doc.path.display(),
                doc.index
            )));
        }
    }
    Ok(())
}

/// All cell lines of a shard set in ascending grid order, with the
/// canonical trailing commas re-applied.
fn spliced_cells(docs: &[ShardDoc]) -> Vec<String> {
    let mut rows: BTreeMap<usize, &str> = BTreeMap::new();
    for doc in docs {
        for (&gi, row) in &doc.cells {
            rows.insert(gi, row);
        }
    }
    let total = rows.len();
    rows.into_values()
        .enumerate()
        .map(|(i, row)| format!("{row}{}", if i + 1 < total { "," } else { "" }))
        .collect()
}

/// Reassembles the canonical `BENCH` document. Header layout must stay
/// in lockstep with [`crate::SweepResult::to_json`]: after stripping
/// the volatile keys the two renderings are byte-identical.
fn render_bench(artifact: &str, docs: &[ShardDoc], grid_cells: usize) -> String {
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let total_sim_cycles: u64 = docs.iter().map(|d| d.sim_cycles).sum();
    // Aggregate host numbers: the compute the shard fleet actually
    // spent. All volatile keys, stripped before any byte comparison.
    let jobs: u64 = docs.iter().map(|d| d.jobs).sum();
    let wall_ms: u64 = docs.iter().map(|d| d.wall_ms).sum();
    let rate = if wall_ms > 0 { total_sim_cycles as f64 / (wall_ms as f64 / 1000.0) } else { 0.0 };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"artifact\": \"{artifact}\",\n"));
    out.push_str(&format!("  \"unix_timestamp\": {timestamp},\n"));
    out.push_str(&format!("  \"scale\": \"{}\",\n", docs[0].scale));
    out.push_str(&format!("  \"grid_cells\": {grid_cells},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"wall_ms\": {wall_ms},\n"));
    out.push_str(&format!("  \"total_sim_cycles\": {total_sim_cycles},\n"));
    out.push_str(&format!("  \"sim_cycles_per_sec\": {rate:.1},\n"));
    out.push_str("  \"cells\": [\n");
    for row in spliced_cells(docs) {
        out.push_str(&format!("    {row}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Reassembles the canonical `METRICS` document — byte-identical to a
/// single-process sweep's `metrics_json`, so the determinism gate can
/// compare them with plain `cmp`.
fn render_metrics(artifact: &str, docs: &[ShardDoc], grid_cells: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"artifact\": \"{artifact}\",\n"));
    out.push_str(&format!("  \"scale\": \"{}\",\n", docs[0].scale));
    out.push_str(&format!("  \"grid_cells\": {grid_cells},\n"));
    out.push_str("  \"cells\": [\n");
    for row in spliced_cells(docs) {
        out.push_str(&format!("    {row}\n"));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_file_names_parse() {
        assert_eq!(
            parse_shard_file_name("BENCH_table7.shard2of4.json", "BENCH_"),
            Some(("table7".to_string(), 2, 4))
        );
        assert_eq!(
            parse_shard_file_name("METRICS_a.b.shard1of1.json", "METRICS_"),
            Some(("a.b".to_string(), 1, 1))
        );
        for bad in [
            "BENCH_table7.json",
            "BENCH_table7.shard0of4.json",
            "BENCH_table7.shard5of4.json",
            "BENCH_table7.shardxofy.json",
            "METRICS_table7.shard1of4.json",
            "BENCH_.shard1of2.json",
        ] {
            assert_eq!(parse_shard_file_name(bad, "BENCH_"), None, "{bad}");
        }
    }

    #[test]
    fn empty_dir_is_a_clear_error() {
        let dir = std::env::temp_dir().join(format!("ilv_merge_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = merge_dirs(&[dir.clone()]).unwrap_err();
        assert!(err.to_string().contains("no shard artifacts"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
