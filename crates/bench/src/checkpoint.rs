//! Per-cell sweep checkpoints: crash-safe, exactly-reproducing cell
//! results keyed by a canonical configuration hash.
//!
//! A [`crate::Runner`] with a checkpoint directory configured writes one
//! `CELL_<key>.json` file per freshly computed cell and restores cells
//! whose file already exists. Three properties make resume safe:
//!
//! 1. **Keying.** The file name is an FNV-1a hash of
//!    [`crate::ExperimentSpec::cell_descriptor`] — the *resolved*
//!    result-affecting configuration (scale defaults folded in) plus the
//!    cell coordinates, salted with the crate version. A checkpoint is
//!    only ever reused for a cell that is guaranteed to produce the
//!    identical result; host-throughput knobs proven bit-invisible
//!    (`idle_skip`, `adaptive`, `mp_jobs`, worker counts) are excluded,
//!    so checkpoints survive across them.
//! 2. **Atomicity.** Files are written to a process-unique temp name and
//!    renamed into place, so a sweep killed mid-write never leaves a
//!    torn checkpoint — the next run recomputes that cell.
//! 3. **Exactness.** The serialization round-trips every field of the
//!    result bit-for-bit (histograms and registries via their exact
//!    `from_value` reconstructions; the one `f64`, `avg_mlp`, as its IEEE
//!    bit pattern), so a resumed sweep's artifacts are byte-identical to
//!    an uninterrupted run's — enforced by `tests/sweep_determinism.rs`
//!    and the resume smoke in `scripts/check.sh`.

use std::path::{Path, PathBuf};

use interleave_mem::MemStats;
use interleave_mp::{DirectoryStats, MpResult};
use interleave_obs::json::{self, Value};
use interleave_obs::{Histogram, Registry};
use interleave_stats::{Breakdown, Category};
use interleave_workloads::MultiprogramResult;

use crate::runner::{Cell, CellResult, ExperimentSpec};

/// Schema tag written into (and required of) every checkpoint file.
const SCHEMA: &str = "interleave-checkpoint-v1";

/// FNV-1a 64-bit hash: tiny, dependency-free, and stable across
/// platforms and releases — exactly what a file-name key needs (this is
/// a cache key, not a security boundary).
fn fnv1a64(data: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in data.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The checkpoint key for one cell of a spec.
pub fn cell_key(spec: &ExperimentSpec, cell: &Cell) -> u64 {
    fnv1a64(&spec.cell_descriptor(cell))
}

/// The checkpoint file path for one cell of a spec under `dir`.
pub fn cell_path(dir: &Path, spec: &ExperimentSpec, cell: &Cell) -> PathBuf {
    dir.join(format!("CELL_{:016x}.json", cell_key(spec, cell)))
}

/// Restores a cell's result from its checkpoint under `dir`, or `None`
/// when no (valid) checkpoint exists. A file that exists but fails
/// validation is reported on stderr and ignored — the cell recomputes.
pub fn load(dir: &Path, spec: &ExperimentSpec, cell: &Cell) -> Option<CellResult> {
    let path = cell_path(dir, spec, cell);
    let text = std::fs::read_to_string(&path).ok()?;
    match parse(&text, spec, cell) {
        Some(result) => Some(result),
        None => {
            eprintln!("warning: ignoring invalid checkpoint {} (recomputing cell)", path.display());
            None
        }
    }
}

/// Checkpoints a freshly computed cell result under `dir`
/// (write-to-temp then rename; the temp name is process-unique so
/// parallel shards sharing a directory never trample each other
/// mid-write). Returns the final path.
pub fn store(
    dir: &Path,
    spec: &ExperimentSpec,
    cell: &Cell,
    result: &CellResult,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = cell_path(dir, spec, cell);
    let tmp =
        dir.join(format!("CELL_{:016x}.json.tmp.{}", cell_key(spec, cell), std::process::id()));
    std::fs::write(&tmp, to_json(spec, cell, result))?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Serializes one cell result as the checkpoint document.
fn to_json(spec: &ExperimentSpec, cell: &Cell, result: &CellResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"key\": \"{:016x}\",\n", cell_key(spec, cell)));
    // The pre-hash descriptor, for post-mortem inspection of what a
    // checkpoint was keyed on. Never read back (the key alone decides
    // reuse).
    out.push_str(&format!("  \"descriptor\": {},\n", json::escape(&spec.cell_descriptor(cell))));
    out.push_str(&format!("  \"target\": {},\n", json::escape(cell.target.name())));
    out.push_str(&format!("  \"scheme\": \"{}\",\n", cell.scheme.name()));
    out.push_str(&format!("  \"contexts\": {},\n", cell.contexts));
    let seed = cell.seed.map(|s| s.to_string()).unwrap_or_else(|| "null".into());
    out.push_str(&format!("  \"seed\": {seed},\n"));
    match result {
        CellResult::Uni(r) => {
            out.push_str("  \"kind\": \"uni\",\n");
            out.push_str(&format!("  \"cycles\": {},\n", r.cycles));
            out.push_str(&format!("  \"breakdown\": {},\n", breakdown_json(&r.breakdown)));
            out.push_str(&format!("  \"instructions\": {},\n", r.instructions));
            out.push_str(&format!("  \"mem_stats\": {},\n", mem_stats_json(&r.mem_stats)));
            out.push_str(&format!("  \"run_lengths\": {},\n", hist_json(&r.run_lengths)));
            out.push_str(&format!("  \"metrics\": {}\n", r.metrics.to_json_line()));
        }
        CellResult::Mp(r) => {
            out.push_str("  \"kind\": \"mp\",\n");
            out.push_str(&format!("  \"cycles\": {},\n", r.cycles));
            out.push_str(&format!("  \"breakdown\": {},\n", breakdown_json(&r.breakdown)));
            out.push_str(&format!("  \"threads\": {},\n", r.threads));
            // IEEE-754 bit pattern: the generic JSON number path cannot
            // round-trip every f64 exactly, the hex bits can.
            out.push_str(&format!("  \"avg_mlp_bits\": \"{:016x}\",\n", r.avg_mlp.to_bits()));
            out.push_str(&format!("  \"directory\": {},\n", directory_json(&r.directory)));
            let per_node: Vec<String> = r.per_node.iter().map(breakdown_json).collect();
            out.push_str(&format!("  \"per_node\": [{}],\n", per_node.join(", ")));
            out.push_str(&format!("  \"metrics\": {}\n", r.metrics.to_json_line()));
        }
    }
    out.push_str("}\n");
    out
}

/// Parses and validates a checkpoint document for the given cell.
fn parse(text: &str, spec: &ExperimentSpec, cell: &Cell) -> Option<CellResult> {
    let doc = json::parse(text).ok()?;
    if doc.get("schema")?.as_str()? != SCHEMA {
        return None;
    }
    // The key check is what actually gates reuse (it hashes the full
    // resolved configuration); the coordinate checks are a cheap
    // cross-check against hash collisions between grid neighbors.
    if doc.get("key")?.as_str()? != format!("{:016x}", cell_key(spec, cell)) {
        return None;
    }
    if doc.get("target")?.as_str()? != cell.target.name()
        || doc.get("scheme")?.as_str()? != cell.scheme.name()
        || doc.get("contexts")?.as_u64()? != cell.contexts as u64
    {
        return None;
    }
    match (doc.get("seed")?, cell.seed) {
        (Value::Null, None) => {}
        (v, Some(s)) if v.as_u64() == Some(s) => {}
        _ => return None,
    }
    let cycles = doc.get("cycles")?.as_u64()?;
    let breakdown = breakdown_from_value(doc.get("breakdown")?)?;
    let metrics = Registry::from_value(doc.get("metrics")?)?;
    match doc.get("kind")?.as_str()? {
        "uni" => Some(CellResult::Uni(Box::new(MultiprogramResult {
            cycles,
            breakdown,
            mem_stats: mem_stats_from_value(doc.get("mem_stats")?)?,
            instructions: doc.get("instructions")?.as_u64()?,
            run_lengths: Histogram::from_value(doc.get("run_lengths")?)?,
            metrics,
        }))),
        "mp" => {
            let bits = u64::from_str_radix(doc.get("avg_mlp_bits")?.as_str()?, 16).ok()?;
            let per_node = doc
                .get("per_node")?
                .as_arr()?
                .iter()
                .map(breakdown_from_value)
                .collect::<Option<Vec<_>>>()?;
            Some(CellResult::Mp(Box::new(MpResult {
                cycles,
                breakdown,
                directory: directory_from_value(doc.get("directory")?)?,
                threads: doc.get("threads")?.as_u64()? as usize,
                avg_mlp: f64::from_bits(bits),
                per_node,
                metrics,
            })))
        }
        _ => None,
    }
}

/// A breakdown as a 7-element array in [`Category::ALL`] order.
fn breakdown_json(b: &Breakdown) -> String {
    let counts: Vec<String> = Category::ALL.iter().map(|&c| b.get(c).to_string()).collect();
    format!("[{}]", counts.join(", "))
}

fn breakdown_from_value(v: &Value) -> Option<Breakdown> {
    let arr = v.as_arr()?;
    if arr.len() != Category::ALL.len() {
        return None;
    }
    let mut b = Breakdown::new();
    for (&category, val) in Category::ALL.iter().zip(arr) {
        b.record(category, val.as_u64()?);
    }
    Some(b)
}

/// Field order here is the (stable) serialization contract; the parser
/// looks fields up by name, so reordering would stay compatible.
const MEM_STAT_FIELDS: [&str; 9] = [
    "l1d_hits",
    "l1d_misses",
    "l1i_hits",
    "l1i_misses",
    "l2_hits",
    "l2_misses",
    "dtlb_misses",
    "itlb_misses",
    "writebacks",
];

fn mem_stats_json(m: &MemStats) -> String {
    let vals = [
        m.l1d_hits,
        m.l1d_misses,
        m.l1i_hits,
        m.l1i_misses,
        m.l2_hits,
        m.l2_misses,
        m.dtlb_misses,
        m.itlb_misses,
        m.writebacks,
    ];
    let fields: Vec<String> =
        MEM_STAT_FIELDS.iter().zip(vals).map(|(name, v)| format!("\"{name}\": {v}")).collect();
    format!("{{{}}}", fields.join(", "))
}

fn mem_stats_from_value(v: &Value) -> Option<MemStats> {
    Some(MemStats {
        l1d_hits: v.get("l1d_hits")?.as_u64()?,
        l1d_misses: v.get("l1d_misses")?.as_u64()?,
        l1i_hits: v.get("l1i_hits")?.as_u64()?,
        l1i_misses: v.get("l1i_misses")?.as_u64()?,
        l2_hits: v.get("l2_hits")?.as_u64()?,
        l2_misses: v.get("l2_misses")?.as_u64()?,
        dtlb_misses: v.get("dtlb_misses")?.as_u64()?,
        itlb_misses: v.get("itlb_misses")?.as_u64()?,
        writebacks: v.get("writebacks")?.as_u64()?,
    })
}

fn directory_json(d: &DirectoryStats) -> String {
    format!(
        "{{\"local\": {}, \"remote\": {}, \"remote_cache\": {}, \"upgrades\": {}, \
         \"invalidations\": {}, \"writebacks\": {}}}",
        d.local, d.remote, d.remote_cache, d.upgrades, d.invalidations, d.writebacks
    )
}

fn directory_from_value(v: &Value) -> Option<DirectoryStats> {
    Some(DirectoryStats {
        local: v.get("local")?.as_u64()?,
        remote: v.get("remote")?.as_u64()?,
        remote_cache: v.get("remote_cache")?.as_u64()?,
        upgrades: v.get("upgrades")?.as_u64()?,
        invalidations: v.get("invalidations")?.as_u64()?,
        writebacks: v.get("writebacks")?.as_u64()?,
    })
}

/// A bare histogram in the registry's histogram JSON shape (exactly
/// reconstructed by [`Histogram::from_value`]).
fn hist_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .map(|(lo, hi, n)| format!("{{\"lo\": {lo}, \"hi\": {hi}, \"n\": {n}}}"))
        .collect();
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.4}, \
         \"buckets\": [{}]}}",
        h.count(),
        h.sum(),
        h.min(),
        h.max(),
        h.mean(),
        buckets.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Runner, Scale};
    use interleave_mp::splash_suite;
    use interleave_workloads::mixes;

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new("ckpt", Scale::Ci)
            .uni(mixes::ic())
            .mp(splash_suite()[0].clone())
            .contexts([2])
            .quota(2_000)
            .work(8_000)
            .warmup(500)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ilv_ckpt_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_both_kinds_exactly() {
        let spec = spec();
        let dir = temp_dir("rt");
        let sweep = Runner::serial().run(&spec);
        for (cell, result) in &sweep.cells {
            let path = store(&dir, &spec, cell, result).expect("checkpoint written");
            assert!(path.exists());
            let restored = load(&dir, &spec, cell).expect("checkpoint restores");
            assert_eq!(
                &restored,
                result,
                "{} {} x{}",
                cell.target.name(),
                cell.scheme.name(),
                cell.contexts
            );
        }
        // No temp files left behind.
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leftovers, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let spec1 = spec();
        let cells = spec1.cells();
        // Stable across invocations (a pure function of the descriptor).
        assert_eq!(cell_key(&spec1, &cells[0]), cell_key(&spec1, &cells[0]));
        // Distinct cells get distinct keys.
        let keys: std::collections::BTreeSet<u64> =
            cells.iter().map(|c| cell_key(&spec1, c)).collect();
        assert_eq!(keys.len(), cells.len());
        // A result-affecting knob changes the key...
        let requota = spec().quota(2_001);
        assert_ne!(cell_key(&spec1, &cells[0]), cell_key(&requota, &requota.cells()[0]));
        // ...a bit-invisible knob does not (checkpoints stay reusable).
        let retuned = spec().mp_jobs(4).adaptive(false).idle_skip(false);
        assert_eq!(cell_key(&spec1, &cells[0]), cell_key(&retuned, &retuned.cells()[0]));
        // The spec *name* doesn't key either: same resolved config, same
        // result.
        let renamed = ExperimentSpec::new("other", Scale::Ci)
            .uni(mixes::ic())
            .contexts([2])
            .quota(2_000)
            .warmup(500);
        assert_eq!(cell_key(&spec1, &cells[0]), cell_key(&renamed, &renamed.cells()[0]));
    }

    #[test]
    fn mismatched_or_corrupt_checkpoints_are_ignored() {
        let spec1 = spec();
        let dir = temp_dir("bad");
        let cells = spec1.cells();
        let result = spec1.run_cell(&cells[0]);
        store(&dir, &spec1, &cells[0], &result).unwrap();
        // A different config hashes to a different file: nothing loads.
        let requota = spec().quota(2_001);
        assert!(load(&dir, &requota, &requota.cells()[0]).is_none());
        // Corrupt file: ignored, not a panic.
        let path = cell_path(&dir, &spec1, &cells[0]);
        std::fs::write(&path, "{ not json").unwrap();
        assert!(load(&dir, &spec1, &cells[0]).is_none());
        // Wrong-schema file: ignored.
        std::fs::write(&path, "{\"schema\": \"other\"}").unwrap();
        assert!(load(&dir, &spec1, &cells[0]).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runner_resumes_from_checkpoints() {
        let spec = spec();
        let dir = temp_dir("resume");
        let first = Runner::serial().checkpoint_dir(&dir).run(&spec);
        assert_eq!(first.resumed, 0);
        let second = Runner::serial().checkpoint_dir(&dir).run(&spec);
        assert_eq!(second.resumed, second.cells.len(), "every cell restores");
        assert!(first.results_match(&second));
        assert_eq!(first.metrics_json(), second.metrics_json());
        // Partial resume: drop one checkpoint, rerun — exactly one cell
        // recomputes and the artifacts still match.
        let victim = cell_path(&dir, &spec, &spec.cells()[2]);
        std::fs::remove_file(&victim).unwrap();
        let third = Runner::new(2).checkpoint_dir(&dir).run(&spec);
        assert_eq!(third.resumed, third.cells.len() - 1);
        assert!(first.results_match(&third));
        assert_eq!(first.metrics_json(), third.metrics_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
