use std::collections::VecDeque;

use interleave_core::InstrSource;
use interleave_isa::{Instr, Op, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::AppProfile;

/// Deterministic synthetic instruction stream for one application.
///
/// The generator walks a program counter through the profile's code
/// footprint (branch targets actually redirect the walk, so I-cache and
/// BTB behaviour emerge from the control flow), emits the profile's
/// operation mix with configurable dependency distances, and touches a
/// data footprint with hot/cold, streaming, and strided components.
///
/// When the profile carries `latency_hints`, divides are followed by a
/// backoff instruction covering the divide latency before the dependent
/// consumer — the compiler support for latency tolerance the paper
/// assumes (interpreted as a backoff by the interleaved scheme, an
/// explicit switch by the blocked scheme, and a no-op by the
/// single-context processor).
///
/// # Examples
///
/// ```
/// use interleave_core::InstrSource;
/// use interleave_workloads::{AppProfile, SyntheticApp};
///
/// let mut app = SyntheticApp::new(AppProfile::base("demo"), 0, 42);
/// let first = app.next_instr().unwrap();
/// let again = SyntheticApp::new(AppProfile::base("demo"), 0, 42).next_instr().unwrap();
/// assert_eq!(first, again, "streams are deterministic per seed");
/// ```
pub struct SyntheticApp {
    profile: AppProfile,
    rng: SmallRng,
    code_base: u64,
    data_base: u64,
    pc: u64,
    /// Start of the current hot code region (phase): the walk stays inside
    /// it until a phase change.
    region_base: u64,
    /// Active set of hot regions: phase changes mostly revisit these and
    /// only occasionally bring in a new region (slow working-set drift).
    active_regions: [u64; 3],
    /// Base of the window cold data references currently fall in (drifts
    /// slowly through the data footprint).
    data_window: u64,
    block_left: u32,
    last_int: Reg,
    last_fp: Reg,
    int_rr: u8,
    fp_rr: u8,
    stream_pos: u64,
    pending: VecDeque<Instr>,
    /// Recent load destinations and when they were emitted: the
    /// scheduler-modeled streams avoid using a load's result in its two
    /// delay slots (the paper's code is scheduled by Twine).
    recent_loads: [Option<(Reg, u64)>; 2],
    /// A load result that must be consumed shortly: (register, countdown).
    /// Real code uses nearly every loaded value within a few instructions;
    /// without this the stream would behave like an unbounded
    /// out-of-order memory system under the stall-on-use baseline.
    due_consumer: Option<(Reg, u8)>,
    emitted: u64,
    limit: Option<u64>,
}

const INT_POOL_BASE: u8 = 8;
const FP_POOL_BASE: u8 = 8;
const POOL_LEN: u8 = 16;
/// Base register used for addressing; never written, so address
/// generation does not serialize on data results.
const ADDR_REG: u8 = 29;

fn mix_hash(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

impl SyntheticApp {
    /// Creates the stream for `profile`, placed in address slot
    /// `app_slot` (each resident application gets disjoint code and data
    /// regions that still conflict in the caches, as real multiprogrammed
    /// applications do), seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`AppProfile::validate`].
    pub fn new(profile: AppProfile, app_slot: usize, seed: u64) -> SyntheticApp {
        profile.validate();
        // Slot strides are deliberately not multiples of the cache size or
        // TLB span, so co-resident applications interfere realistically
        // instead of aliasing perfectly.
        let code_base = 0x4000_0000 + app_slot as u64 * 0x0211_3000;
        let data_base = 0x1_0000_0000 + app_slot as u64 * 0x1039_7000;
        let mixed = seed ^ mix_hash(app_slot as u64 + 1) ^ mix_hash(profile.name.len() as u64);
        SyntheticApp {
            rng: SmallRng::seed_from_u64(mixed),
            code_base,
            data_base,
            pc: code_base,
            region_base: code_base,
            active_regions: [code_base; 3],
            data_window: 0,
            block_left: profile.block_len,
            last_int: Reg::int(INT_POOL_BASE),
            last_fp: Reg::fp(FP_POOL_BASE),
            int_rr: 0,
            fp_rr: 0,
            stream_pos: 0,
            pending: VecDeque::new(),
            recent_loads: [None; 2],
            due_consumer: None,
            emitted: 0,
            limit: None,
            profile,
        }
    }

    /// Caps the stream at `limit` instructions (fixed-work runs).
    pub fn with_limit(mut self, limit: u64) -> SyntheticApp {
        self.limit = Some(limit);
        self
    }

    /// The profile this stream was built from.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    fn next_int_dst(&mut self) -> Reg {
        self.int_rr = (self.int_rr + 1) % POOL_LEN;
        let reg = Reg::int(INT_POOL_BASE + self.int_rr);
        self.last_int = reg;
        reg
    }

    fn next_fp_dst(&mut self) -> Reg {
        self.fp_rr = (self.fp_rr + 1) % POOL_LEN;
        let reg = Reg::fp(FP_POOL_BASE + self.fp_rr);
        self.last_fp = reg;
        reg
    }

    fn int_src(&mut self) -> Reg {
        let reg = if self.rng.gen_bool(self.profile.dep_near) {
            self.last_int
        } else {
            Reg::int(INT_POOL_BASE + self.rng.gen_range(0..POOL_LEN))
        };
        self.scheduled(reg)
    }

    fn fp_src(&mut self) -> Reg {
        let reg = if self.rng.gen_bool(self.profile.dep_near) {
            self.last_fp
        } else {
            Reg::fp(FP_POOL_BASE + self.rng.gen_range(0..POOL_LEN))
        };
        self.scheduled(reg)
    }

    /// Models the global instruction scheduler: a load's result is not
    /// consumed within its two delay slots (the compiler fills them with
    /// independent work).
    fn scheduled(&mut self, reg: Reg) -> Reg {
        let embargoed = |r: Reg, loads: &[Option<(Reg, u64)>; 2], emitted: u64| {
            loads.iter().flatten().any(|&(l, at)| l == r && emitted.saturating_sub(at) <= 2)
        };
        if !embargoed(reg, &self.recent_loads, self.emitted) {
            return reg;
        }
        for offset in 1..POOL_LEN {
            let n = (reg.number() - INT_POOL_BASE + offset) % POOL_LEN + INT_POOL_BASE;
            let candidate = if reg.is_fp() { Reg::fp(n) } else { Reg::int(n) };
            if !embargoed(candidate, &self.recent_loads, self.emitted) {
                return candidate;
            }
        }
        reg
    }

    /// Size of a hot code region (one "phase" of execution).
    fn region_bytes(&self) -> u64 {
        (2 * 1024).min(self.profile.code_footprint)
    }

    fn step_pc(&mut self) -> u64 {
        let pc = self.pc;
        self.pc = self.wrap_region(self.pc + 4);
        pc
    }

    /// Keeps an address inside the current hot region.
    fn wrap_region(&self, addr: u64) -> u64 {
        let span = self.region_bytes();
        let offset = addr.wrapping_sub(self.region_base) % span;
        self.region_base + (offset & !3)
    }

    fn data_addr(&mut self) -> u64 {
        let p = &self.profile;
        let draw: f64 = self.rng.gen();
        let offset = if draw < p.streaming {
            self.stream_pos = (self.stream_pos + p.stream_stride) % p.data_footprint;
            if p.software_prefetch {
                // Prefetch the next stream element so its line is (mostly)
                // resident by the time the stream reaches it.
                let ahead = (self.stream_pos + 4 * p.stream_stride) % p.data_footprint;
                let pf_pc = self.peek_pc(1);
                self.pending.push_back(Instr::prefetch(
                    pf_pc,
                    Reg::int(ADDR_REG),
                    self.data_base + (ahead & !3),
                ));
            }
            self.stream_pos
        } else if self.rng.gen_bool(p.locality) {
            // The hot subset is what the application keeps in its primary
            // cache; clamp it to cache scale so `locality` really means
            // "re-references recently used data".
            let hot = ((p.data_footprint as f64 * p.hot_fraction) as u64).clamp(64, 12 * 1024);
            self.rng.gen_range(0..hot)
        } else {
            // Cold references fall in a window that drifts slowly through
            // the footprint (working-set behaviour), not uniformly over
            // the whole data segment.
            let window = (32 * 1024).min(p.data_footprint);
            if self.rng.gen_bool(0.002) {
                let step = window / 4;
                self.data_window = (self.data_window + step) % p.data_footprint;
            }
            (self.data_window + self.rng.gen_range(0..window)) % p.data_footprint
        };
        self.data_base + (offset & !3)
    }

    /// Emits a branch closing the current basic block. Site behaviour
    /// (bias and target) is a pure function of the site PC, so the BTB
    /// can learn the biased sites.
    fn gen_branch(&mut self, pc: u64) -> Instr {
        let p = self.profile;
        // Phase change (a call into, or return from, another part of the
        // program): jump to a new hot region. These look like indirect
        // jumps to the BTB — their targets vary — and are the source of
        // I-cache pressure proportional to the code footprint.
        if self.rng.gen_bool(0.015) {
            let regions = (p.code_footprint / self.region_bytes()).max(1);
            if self.rng.gen_bool(0.05) {
                // Working-set drift: bring a new region into the active set.
                let pick = self.rng.gen_range(0..regions);
                let slot = self.rng.gen_range(0..self.active_regions.len());
                self.active_regions[slot] = self.code_base + pick * self.region_bytes();
            }
            let slot = self.rng.gen_range(0..self.active_regions.len());
            self.region_base = self.active_regions[slot];
            self.pc = self.region_base;
            let cond = self.scheduled(self.last_int);
            return Instr::branch(pc, Some(cond), true, self.region_base);
        }
        // Site behaviour within a region is a pure function of the site
        // PC so the BTB can learn the biased sites.
        let h = mix_hash(pc ^ 0x5EED);
        let block_bytes = u64::from(p.block_len) * 4;
        let is_loop = (h % 1000) as f64 / 1000.0 < p.loop_branch_frac;
        let (taken_prob, target) = if is_loop {
            // Loop-closing branch: strongly biased taken, tight backward
            // target (the hot-loop attractor).
            let back = block_bytes * (1 + (h >> 10) % 4);
            (0.92, self.wrap_region(pc.wrapping_sub(back)))
        } else {
            // Data-dependent branch: unbiased, short forward target.
            let fwd = block_bytes * (1 + (h >> 10) % 2);
            (0.5, self.wrap_region(pc + fwd))
        };
        let taken = self.rng.gen_bool(taken_prob);
        if taken {
            self.pc = target;
        }
        let cond = self.scheduled(self.last_int);
        Instr::branch(pc, Some(cond), taken, target)
    }

    /// Emits a divide followed (optionally) by a latency hint and the
    /// dependent consumer, via the pending queue.
    fn gen_divide(&mut self, pc: u64, op: Op) -> Instr {
        let (dst, src, latency) = match op {
            Op::IntDiv => {
                let src = self.int_src();
                (self.next_int_dst(), src, 35u32)
            }
            Op::FpDivSingle => {
                let src = self.fp_src();
                (self.next_fp_dst(), src, 31)
            }
            Op::FpDivDouble => {
                let src = self.fp_src();
                (self.next_fp_dst(), src, 61)
            }
            _ => unreachable!("gen_divide only handles divides"),
        };
        let div = Instr::arith(pc, op, Some(dst), Some(src), None);
        if self.profile.latency_hints {
            let hint_pc = self.peek_pc(0);
            self.pending.push_back(Instr::backoff(hint_pc, latency.saturating_sub(4).max(1)));
        }
        let cons_pc = self.peek_pc(1);
        let consumer = if dst.is_fp() {
            Instr::arith(cons_pc, Op::FpAdd, Some(self.next_fp_dst()), Some(dst), None)
        } else {
            Instr::alu(cons_pc, Some(self.next_int_dst()), Some(dst), None)
        };
        self.pending.push_back(consumer);
        div
    }

    fn peek_pc(&self, ahead: u64) -> u64 {
        self.wrap_region(self.pc + ahead * 4)
    }

    fn gen_instr(&mut self) -> Instr {
        if let Some(queued) = self.pending.pop_front() {
            // Queued instructions carry pre-assigned PCs; keep the walk
            // consistent by advancing past them.
            self.pc = self.wrap_region(queued.pc + 4);
            return queued;
        }

        // Consume a recently loaded value once its scheduled distance
        // (past the delay slots) elapses.
        if let Some((reg, countdown)) = self.due_consumer {
            if countdown == 0 {
                self.due_consumer = None;
                let pc = self.step_pc();
                return if reg.is_fp() {
                    Instr::arith(pc, Op::FpAdd, Some(self.next_fp_dst()), Some(reg), None)
                } else {
                    Instr::alu(pc, Some(self.next_int_dst()), Some(reg), None)
                };
            }
            self.due_consumer = Some((reg, countdown - 1));
        }

        if self.block_left == 0 {
            self.block_left = self.jittered_block_len();
            let pc = self.step_pc();
            return self.gen_branch(pc);
        }
        self.block_left -= 1;
        let pc = self.step_pc();

        let p = self.profile;
        let draw: f64 = self.rng.gen();
        let mut acc = p.frac_load;
        if draw < acc {
            let dst =
                if self.rng.gen_bool(p.frac_fp) { self.next_fp_dst() } else { self.next_int_dst() };
            let addr = self.data_addr();
            self.recent_loads = [Some((dst, self.emitted)), self.recent_loads[0]];
            if self.due_consumer.is_none() && self.rng.gen_bool(0.85) {
                self.due_consumer = Some((dst, 2));
            }
            return Instr::load(pc, dst, Reg::int(ADDR_REG), addr);
        }
        acc += p.frac_store;
        if draw < acc {
            let src = self.int_src();
            let addr = self.data_addr();
            return Instr::store(pc, src, Reg::int(ADDR_REG), addr);
        }
        acc += p.frac_branch;
        if draw < acc {
            return self.gen_branch(pc);
        }
        acc += p.frac_fp;
        if draw < acc {
            if self.rng.gen_bool(p.fp_div_frac) {
                let op = if self.rng.gen_bool(p.fp_double_frac) {
                    Op::FpDivDouble
                } else {
                    Op::FpDivSingle
                };
                return self.gen_divide(pc, op);
            }
            let op = match self.rng.gen_range(0..3) {
                0 => Op::FpAdd,
                1 => Op::FpMul,
                _ => Op::FpConv,
            };
            let (s1, s2) = (self.fp_src(), self.fp_src());
            return Instr::arith(pc, op, Some(self.next_fp_dst()), Some(s1), Some(s2));
        }
        acc += p.frac_shift;
        if draw < acc {
            let src = self.int_src();
            return Instr::arith(pc, Op::Shift, Some(self.next_int_dst()), Some(src), None);
        }
        acc += p.frac_int_mul;
        if draw < acc {
            let (s1, s2) = (self.int_src(), self.int_src());
            return Instr::arith(pc, Op::IntMul, Some(self.next_int_dst()), Some(s1), Some(s2));
        }
        acc += p.frac_int_div;
        if draw < acc {
            return self.gen_divide(pc, Op::IntDiv);
        }
        let (s1, s2) = (self.int_src(), self.int_src());
        Instr::alu(pc, Some(self.next_int_dst()), Some(s1), Some(s2))
    }

    fn jittered_block_len(&mut self) -> u32 {
        let mean = self.profile.block_len;
        self.rng.gen_range(mean.saturating_sub(mean / 2).max(1)..=mean + mean / 2)
    }
}

impl InstrSource for SyntheticApp {
    fn next_instr(&mut self) -> Option<Instr> {
        if let Some(limit) = self.limit {
            if self.emitted >= limit {
                return None;
            }
        }
        self.emitted += 1;
        interleave_obs::profile::mark("workloads.gen_instr");
        Some(self.gen_instr())
    }
}

impl std::fmt::Debug for SyntheticApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticApp")
            .field("profile", &self.profile.name)
            .field("emitted", &self.emitted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(profile: AppProfile, n: usize) -> Vec<Instr> {
        let mut app = SyntheticApp::new(profile, 0, 7);
        (0..n).map(|_| app.next_instr().expect("unbounded stream")).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = take(AppProfile::base("a"), 500);
        let b = take(AppProfile::base("a"), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut x = SyntheticApp::new(AppProfile::base("a"), 0, 1);
        let mut y = SyntheticApp::new(AppProfile::base("a"), 0, 2);
        let xs: Vec<_> = (0..200).map(|_| x.next_instr().unwrap()).collect();
        let ys: Vec<_> = (0..200).map(|_| y.next_instr().unwrap()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn op_mix_roughly_matches_profile() {
        let mut p = AppProfile::base("mix");
        p.frac_fp = 0.3;
        p.frac_load = 0.2;
        let instrs = take(p, 20_000);
        let loads = instrs.iter().filter(|i| i.op == Op::Load).count() as f64;
        let fps = instrs.iter().filter(|i| i.op.is_fp()).count() as f64;
        let n = instrs.len() as f64;
        assert!((loads / n - 0.2).abs() < 0.05, "load fraction {}", loads / n);
        assert!((fps / n - 0.3).abs() < 0.08, "fp fraction {}", fps / n);
    }

    #[test]
    fn code_stays_in_footprint() {
        let p = AppProfile::base("code");
        let app = SyntheticApp::new(p, 2, 3);
        let base = app.code_base;
        let mut app = app;
        for _ in 0..5000 {
            let i = app.next_instr().unwrap();
            assert!(i.pc >= base && i.pc < base + p.code_footprint, "pc {:x}", i.pc);
        }
    }

    #[test]
    fn data_stays_in_footprint() {
        let p = AppProfile::base("data");
        let app = SyntheticApp::new(p, 1, 3);
        let base = app.data_base;
        let mut app = app;
        for _ in 0..5000 {
            if let Some(m) = app.next_instr().unwrap().mem {
                assert!(m.addr >= base && m.addr < base + p.data_footprint);
            }
        }
    }

    #[test]
    fn divides_carry_hints_and_consumers() {
        let mut p = AppProfile::base("div");
        p.frac_fp = 0.4;
        p.fp_div_frac = 1.0;
        p.latency_hints = true;
        let instrs = take(p, 3000);
        let divs = instrs.iter().filter(|i| i.op.is_divide()).count();
        let hints = instrs.iter().filter(|i| i.op == Op::Backoff).count();
        assert!(divs > 50, "expected many divides, got {divs}");
        assert!(
            (divs as i64 - hints as i64).abs() <= 1,
            "every divide should carry a backoff hint ({divs} vs {hints})"
        );
        // Consumer follows the hint and reads the divide's destination.
        for w in instrs.windows(3) {
            if w[0].op.is_divide() {
                assert_eq!(w[1].op, Op::Backoff);
                assert_eq!(w[2].src1, w[0].dst);
            }
        }
    }

    #[test]
    fn no_hints_when_disabled() {
        let mut p = AppProfile::base("nohint");
        p.frac_fp = 0.4;
        p.fp_div_frac = 1.0;
        p.latency_hints = false;
        let instrs = take(p, 2000);
        assert_eq!(instrs.iter().filter(|i| i.op == Op::Backoff).count(), 0);
        assert!(instrs.iter().any(|i| i.op.is_divide()));
    }

    #[test]
    fn load_results_not_used_in_delay_slots() {
        let mut p = AppProfile::base("sched");
        p.frac_load = 0.4;
        p.dep_near = 0.9;
        let instrs = take(p, 20_000);
        for window in instrs.windows(3) {
            if window[0].op == Op::Load {
                let dst = window[0].dst.unwrap();
                for later in &window[1..] {
                    assert!(
                        later.sources().all(|s| s != dst),
                        "load at {:x} consumed in a delay slot: {:?} then {:?}",
                        window[0].pc,
                        window[0],
                        later
                    );
                }
            }
        }
    }

    #[test]
    fn software_prefetch_emits_prefetches_for_streams() {
        let mut p = AppProfile::base("pf");
        p.streaming = 0.5;
        p.software_prefetch = true;
        let instrs = take(p, 10_000);
        let prefetches = instrs.iter().filter(|i| i.op == Op::Prefetch).count();
        let loads = instrs.iter().filter(|i| i.op == Op::Load).count();
        assert!(prefetches > loads / 8, "streams should carry prefetches ({prefetches})");
        // Prefetches bind nothing.
        assert!(instrs.iter().filter(|i| i.op == Op::Prefetch).all(|i| i.dst.is_none()));
    }

    #[test]
    fn load_results_are_consumed_soon() {
        let mut p = AppProfile::base("consume");
        p.frac_load = 0.3;
        let instrs = take(p, 20_000);
        let mut consumed = 0;
        let mut loads = 0;
        for (i, instr) in instrs.iter().enumerate() {
            if instr.op == Op::Load {
                loads += 1;
                let dst = instr.dst.unwrap();
                if instrs[i + 1..].iter().take(8).any(|c| c.sources().any(|s| s == dst)) {
                    consumed += 1;
                }
            }
        }
        assert!(
            consumed as f64 / loads as f64 > 0.6,
            "most load results should be consumed within a few instructions ({consumed}/{loads})"
        );
    }

    #[test]
    fn limit_caps_stream() {
        let mut app = SyntheticApp::new(AppProfile::base("lim"), 0, 9).with_limit(10);
        let mut n = 0;
        while app.next_instr().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn most_branch_sites_are_consistent() {
        // Site PCs keep fixed targets (so the BTB can learn), except the
        // few phase-change branches, which behave like indirect jumps.
        let mut p = AppProfile::base("sites");
        p.frac_branch = 0.4;
        let instrs = take(p, 20_000);
        let mut targets: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        let mut total = 0usize;
        for i in &instrs {
            if let Some(b) = i.branch {
                targets.entry(i.pc).or_default().insert(b.target);
                total += 1;
            }
        }
        assert!(total > 1000, "expected many branches");
        let single = targets.values().filter(|t| t.len() == 1).count();
        assert!(
            single as f64 / targets.len() as f64 > 0.5,
            "most sites should keep one target ({single}/{})",
            targets.len()
        );
    }

    #[test]
    fn code_walk_visits_multiple_regions() {
        let mut p = AppProfile::base("phases");
        p.code_footprint = 64 * 1024;
        let instrs = take(p, 60_000);
        let regions: std::collections::HashSet<u64> = instrs.iter().map(|i| i.pc >> 12).collect();
        assert!(regions.len() >= 3, "phase changes should spread over the code");
    }
}
