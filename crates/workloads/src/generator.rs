use std::collections::VecDeque;

use interleave_core::InstrSource;
use interleave_engine::rand64::{bounded, coin, hashed, unit_f64};
use interleave_isa::{Instr, Op, Reg};
use interleave_obs::{profile, Histogram};

use crate::AppProfile;

/// Deterministic synthetic instruction stream for one application.
///
/// The generator walks a program counter through the profile's code
/// footprint (branch targets actually redirect the walk, so I-cache and
/// BTB behaviour emerge from the control flow), emits the profile's
/// operation mix with configurable dependency distances, and touches a
/// data footprint with hot/cold, streaming, and strided components.
///
/// Sampling is stateless: every random decision is a pure function of
/// `(app key, draw site, instruction index)` via
/// [`interleave_engine::rand64`], so instruction `i` of a stream is
/// identical no matter how the stream is pulled — one instruction at a
/// time, in batches of any size, or interleaved with other streams.
/// There is no generator object to advance and no draw-order coupling
/// between instructions.
///
/// When the profile carries `latency_hints`, divides are followed by a
/// backoff instruction covering the divide latency before the dependent
/// consumer — the compiler support for latency tolerance the paper
/// assumes (interpreted as a backoff by the interleaved scheme, an
/// explicit switch by the blocked scheme, and a no-op by the
/// single-context processor).
///
/// # Examples
///
/// ```
/// use interleave_core::InstrSource;
/// use interleave_workloads::{AppProfile, SyntheticApp};
///
/// let mut app = SyntheticApp::new(AppProfile::base("demo"), 0, 42);
/// let first = app.next_instr().unwrap();
/// let again = SyntheticApp::new(AppProfile::base("demo"), 0, 42).next_instr().unwrap();
/// assert_eq!(first, again, "streams are deterministic per seed");
/// ```
pub struct SyntheticApp {
    profile: AppProfile,
    /// Keyed-sampling seed: every draw is `hashed(key, site, emitted)`.
    key: u64,
    code_base: u64,
    data_base: u64,
    pc: u64,
    /// Start of the current hot code region (phase): the walk stays inside
    /// it until a phase change.
    region_base: u64,
    /// Active set of hot regions: phase changes mostly revisit these and
    /// only occasionally bring in a new region (slow working-set drift).
    active_regions: [u64; 3],
    /// Base of the window cold data references currently fall in (drifts
    /// slowly through the data footprint).
    data_window: u64,
    block_left: u32,
    last_int: Reg,
    last_fp: Reg,
    int_rr: u8,
    fp_rr: u8,
    stream_pos: u64,
    pending: VecDeque<Instr>,
    /// Recent load destinations and when they were emitted: the
    /// scheduler-modeled streams avoid using a load's result in its two
    /// delay slots (the paper's code is scheduled by Twine).
    recent_loads: [Option<(Reg, u64)>; 2],
    /// A load result that must be consumed shortly: (register, countdown).
    /// Real code uses nearly every loaded value within a few instructions;
    /// without this the stream would behave like an unbounded
    /// out-of-order memory system under the stall-on-use baseline.
    due_consumer: Option<(Reg, u8)>,
    emitted: u64,
    limit: Option<u64>,
    /// Distribution of run lengths handed out per [`InstrSource::next_run`]
    /// call (and the 1-instruction runs of `next_instr`).
    batch_lens: Histogram,
}

const INT_POOL_BASE: u8 = 8;
const FP_POOL_BASE: u8 = 8;
const POOL_LEN: u8 = 16;
/// Base register used for addressing; never written, so address
/// generation does not serialize on data results.
const ADDR_REG: u8 = 29;

/// Draw-site lanes for stateless sampling: each random decision the
/// generator makes per instruction owns a lane, so one `(site, index)`
/// pair is never drawn for two purposes. Sites needing both a coin and a
/// small pick share one draw — the coin reads bits 11..64, the pick the
/// low bits (independence property-tested in `engine::rand64`).
mod site {
    /// Operation-class selector (the mix accumulator walk).
    pub const OP_CLASS: u64 = 1;
    /// Whether a load destination is FP.
    pub const LOAD_DST: u64 = 2;
    /// Whether a load's result gets a scheduled near consumer.
    pub const CONSUME: u64 = 3;
    /// Streaming-vs-resident selector for a data reference.
    pub const ADDR_CLASS: u64 = 4;
    /// Hot-subset coin for non-streaming references.
    pub const ADDR_LOC: u64 = 5;
    /// Offset within the hot subset.
    pub const ADDR_HOT: u64 = 6;
    /// Cold-window drift coin.
    pub const ADDR_STEP: u64 = 7;
    /// Offset within the cold window.
    pub const ADDR_OFF: u64 = 8;
    /// First source operand: near-dependence coin + pool pick (one draw).
    pub const SRC_A: u64 = 9;
    /// Second source operand: near-dependence coin + pool pick (one draw).
    pub const SRC_B: u64 = 10;
    /// Phase-change coin for a branch.
    pub const BR_PHASE: u64 = 11;
    /// Working-set drift coin on a phase change.
    pub const BR_DRIFT: u64 = 12;
    /// Which region drifts into the active set.
    pub const BR_PICK: u64 = 13;
    /// Active-set slot the new region replaces.
    pub const BR_SLOT_NEW: u64 = 14;
    /// Active-set slot a phase change jumps to.
    pub const BR_SLOT: u64 = 15;
    /// Taken/not-taken outcome of a conditional branch.
    pub const BR_TAKEN: u64 = 16;
    /// FP-divide coin within the FP class.
    pub const FP_DIV: u64 = 17;
    /// Single-vs-double precision of an FP divide.
    pub const FP_DOUBLE: u64 = 18;
    /// Which non-divide FP operation.
    pub const FP_OP: u64 = 19;
    /// Jittered basic-block length.
    pub const BLOCK_LEN: u64 = 20;
}

fn mix_hash(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

impl SyntheticApp {
    /// Creates the stream for `profile`, placed in address slot
    /// `app_slot` (each resident application gets disjoint code and data
    /// regions that still conflict in the caches, as real multiprogrammed
    /// applications do), seeded by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`AppProfile::validate`].
    pub fn new(profile: AppProfile, app_slot: usize, seed: u64) -> SyntheticApp {
        profile.validate();
        // Slot strides are deliberately not multiples of the cache size or
        // TLB span, so co-resident applications interfere realistically
        // instead of aliasing perfectly.
        let code_base = 0x4000_0000 + app_slot as u64 * 0x0211_3000;
        let data_base = 0x1_0000_0000 + app_slot as u64 * 0x1039_7000;
        let key = seed ^ mix_hash(app_slot as u64 + 1) ^ mix_hash(profile.name.len() as u64);
        SyntheticApp {
            key,
            code_base,
            data_base,
            pc: code_base,
            region_base: code_base,
            active_regions: [code_base; 3],
            data_window: 0,
            block_left: profile.block_len,
            last_int: Reg::int(INT_POOL_BASE),
            last_fp: Reg::fp(FP_POOL_BASE),
            int_rr: 0,
            fp_rr: 0,
            stream_pos: 0,
            pending: VecDeque::new(),
            recent_loads: [None; 2],
            due_consumer: None,
            emitted: 0,
            limit: None,
            batch_lens: Histogram::new(),
            profile,
        }
    }

    /// Caps the stream at `limit` instructions (fixed-work runs).
    pub fn with_limit(mut self, limit: u64) -> SyntheticApp {
        self.limit = Some(limit);
        self
    }

    /// The profile this stream was built from.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Distribution of run lengths produced per source round-trip:
    /// `next_run` records the run it hands out, `next_instr` records a
    /// run of one. The mean is the generator's batching amortization
    /// factor.
    pub fn batch_lens(&self) -> &Histogram {
        &self.batch_lens
    }

    /// The keyed draw for `site` at the current instruction index.
    #[inline]
    fn draw(&self, site: u64) -> u64 {
        hashed(self.key, site, self.emitted)
    }

    fn next_int_dst(&mut self) -> Reg {
        self.int_rr = (self.int_rr + 1) % POOL_LEN;
        let reg = Reg::int(INT_POOL_BASE + self.int_rr);
        self.last_int = reg;
        reg
    }

    fn next_fp_dst(&mut self) -> Reg {
        self.fp_rr = (self.fp_rr + 1) % POOL_LEN;
        let reg = Reg::fp(FP_POOL_BASE + self.fp_rr);
        self.last_fp = reg;
        reg
    }

    /// One draw decides near-dependence (high bits) and the pool pick
    /// (low bits); `site` distinguishes the two operand positions.
    fn int_src(&mut self, site: u64) -> Reg {
        let d = self.draw(site);
        let reg = if coin(d, self.profile.dep_near) {
            self.last_int
        } else {
            Reg::int(INT_POOL_BASE + bounded(d, u64::from(POOL_LEN)) as u8)
        };
        self.scheduled(reg)
    }

    fn fp_src(&mut self, site: u64) -> Reg {
        let d = self.draw(site);
        let reg = if coin(d, self.profile.dep_near) {
            self.last_fp
        } else {
            Reg::fp(FP_POOL_BASE + bounded(d, u64::from(POOL_LEN)) as u8)
        };
        self.scheduled(reg)
    }

    /// Models the global instruction scheduler: a load's result is not
    /// consumed within its two delay slots (the compiler fills them with
    /// independent work).
    fn scheduled(&mut self, reg: Reg) -> Reg {
        let embargoed = |r: Reg, loads: &[Option<(Reg, u64)>; 2], emitted: u64| {
            loads.iter().flatten().any(|&(l, at)| l == r && emitted.saturating_sub(at) <= 2)
        };
        if !embargoed(reg, &self.recent_loads, self.emitted) {
            return reg;
        }
        for offset in 1..POOL_LEN {
            let n = (reg.number() - INT_POOL_BASE + offset) % POOL_LEN + INT_POOL_BASE;
            let candidate = if reg.is_fp() { Reg::fp(n) } else { Reg::int(n) };
            if !embargoed(candidate, &self.recent_loads, self.emitted) {
                return candidate;
            }
        }
        reg
    }

    /// Size of a hot code region (one "phase" of execution).
    fn region_bytes(&self) -> u64 {
        (2 * 1024).min(self.profile.code_footprint)
    }

    fn step_pc(&mut self) -> u64 {
        let pc = self.pc;
        self.pc = self.wrap_region(self.pc + 4);
        pc
    }

    /// Keeps an address inside the current hot region.
    fn wrap_region(&self, addr: u64) -> u64 {
        let span = self.region_bytes();
        let offset = addr.wrapping_sub(self.region_base) % span;
        self.region_base + (offset & !3)
    }

    fn data_addr(&mut self) -> u64 {
        let p = self.profile;
        let offset = if unit_f64(self.draw(site::ADDR_CLASS)) < p.streaming {
            self.stream_pos = (self.stream_pos + p.stream_stride) % p.data_footprint;
            if p.software_prefetch {
                // Prefetch the next stream element so its line is (mostly)
                // resident by the time the stream reaches it.
                let ahead = (self.stream_pos + 4 * p.stream_stride) % p.data_footprint;
                let pf_pc = self.peek_pc(1);
                self.pending.push_back(Instr::prefetch(
                    pf_pc,
                    Reg::int(ADDR_REG),
                    self.data_base + (ahead & !3),
                ));
            }
            self.stream_pos
        } else if coin(self.draw(site::ADDR_LOC), p.locality) {
            // The hot subset is what the application keeps in its primary
            // cache; clamp it to cache scale so `locality` really means
            // "re-references recently used data".
            let hot = ((p.data_footprint as f64 * p.hot_fraction) as u64).clamp(64, 12 * 1024);
            bounded(self.draw(site::ADDR_HOT), hot)
        } else {
            // Cold references fall in a window that drifts slowly through
            // the footprint (working-set behaviour), not uniformly over
            // the whole data segment.
            let window = (32 * 1024).min(p.data_footprint);
            if coin(self.draw(site::ADDR_STEP), 0.002) {
                let step = window / 4;
                self.data_window = (self.data_window + step) % p.data_footprint;
            }
            (self.data_window + bounded(self.draw(site::ADDR_OFF), window)) % p.data_footprint
        };
        self.data_base + (offset & !3)
    }

    /// Emits a branch closing the current basic block. Site behaviour
    /// (bias and target) is a pure function of the site PC, so the BTB
    /// can learn the biased sites.
    fn gen_branch(&mut self, pc: u64) -> Instr {
        let p = self.profile;
        // Phase change (a call into, or return from, another part of the
        // program): jump to a new hot region. These look like indirect
        // jumps to the BTB — their targets vary — and are the source of
        // I-cache pressure proportional to the code footprint.
        if coin(self.draw(site::BR_PHASE), 0.015) {
            let regions = (p.code_footprint / self.region_bytes()).max(1);
            if coin(self.draw(site::BR_DRIFT), 0.05) {
                // Working-set drift: bring a new region into the active set.
                let pick = bounded(self.draw(site::BR_PICK), regions);
                let slot = bounded(self.draw(site::BR_SLOT_NEW), self.active_regions.len() as u64);
                self.active_regions[slot as usize] = self.code_base + pick * self.region_bytes();
            }
            let slot = bounded(self.draw(site::BR_SLOT), self.active_regions.len() as u64);
            self.region_base = self.active_regions[slot as usize];
            self.pc = self.region_base;
            let cond = self.scheduled(self.last_int);
            return Instr::branch(pc, Some(cond), true, self.region_base);
        }
        // Site behaviour within a region is a pure function of the site
        // PC so the BTB can learn the biased sites.
        let h = mix_hash(pc ^ 0x5EED);
        let block_bytes = u64::from(p.block_len) * 4;
        let is_loop = (h % 1000) as f64 / 1000.0 < p.loop_branch_frac;
        let (taken_prob, target) = if is_loop {
            // Loop-closing branch: strongly biased taken, tight backward
            // target (the hot-loop attractor).
            let back = block_bytes * (1 + (h >> 10) % 4);
            (0.92, self.wrap_region(pc.wrapping_sub(back)))
        } else {
            // Data-dependent branch: unbiased, short forward target.
            let fwd = block_bytes * (1 + (h >> 10) % 2);
            (0.5, self.wrap_region(pc + fwd))
        };
        let taken = coin(self.draw(site::BR_TAKEN), taken_prob);
        if taken {
            self.pc = target;
        }
        let cond = self.scheduled(self.last_int);
        Instr::branch(pc, Some(cond), taken, target)
    }

    /// Emits a divide followed (optionally) by a latency hint and the
    /// dependent consumer, via the pending queue.
    fn gen_divide(&mut self, pc: u64, op: Op) -> Instr {
        let (dst, src, latency) = match op {
            Op::IntDiv => {
                let src = self.int_src(site::SRC_A);
                (self.next_int_dst(), src, 35u32)
            }
            Op::FpDivSingle => {
                let src = self.fp_src(site::SRC_A);
                (self.next_fp_dst(), src, 31)
            }
            Op::FpDivDouble => {
                let src = self.fp_src(site::SRC_A);
                (self.next_fp_dst(), src, 61)
            }
            _ => unreachable!("gen_divide only handles divides"),
        };
        let div = Instr::arith(pc, op, Some(dst), Some(src), None);
        if self.profile.latency_hints {
            let hint_pc = self.peek_pc(0);
            self.pending.push_back(Instr::backoff(hint_pc, latency.saturating_sub(4).max(1)));
        }
        let cons_pc = self.peek_pc(1);
        let consumer = if dst.is_fp() {
            Instr::arith(cons_pc, Op::FpAdd, Some(self.next_fp_dst()), Some(dst), None)
        } else {
            Instr::alu(cons_pc, Some(self.next_int_dst()), Some(dst), None)
        };
        self.pending.push_back(consumer);
        div
    }

    fn peek_pc(&self, ahead: u64) -> u64 {
        self.wrap_region(self.pc + ahead * 4)
    }

    fn gen_instr(&mut self) -> Instr {
        if let Some(queued) = self.pending.pop_front() {
            // Queued instructions carry pre-assigned PCs; keep the walk
            // consistent by advancing past them.
            self.pc = self.wrap_region(queued.pc + 4);
            return queued;
        }

        // Consume a recently loaded value once its scheduled distance
        // (past the delay slots) elapses.
        if let Some((reg, countdown)) = self.due_consumer {
            if countdown == 0 {
                self.due_consumer = None;
                let pc = self.step_pc();
                return if reg.is_fp() {
                    Instr::arith(pc, Op::FpAdd, Some(self.next_fp_dst()), Some(reg), None)
                } else {
                    Instr::alu(pc, Some(self.next_int_dst()), Some(reg), None)
                };
            }
            self.due_consumer = Some((reg, countdown - 1));
        }

        if self.block_left == 0 {
            self.block_left = self.jittered_block_len();
            let pc = self.step_pc();
            return self.gen_branch(pc);
        }
        self.block_left -= 1;
        let pc = self.step_pc();

        let p = self.profile;
        let class = unit_f64(self.draw(site::OP_CLASS));
        let mut acc = p.frac_load;
        if class < acc {
            let dst = if coin(self.draw(site::LOAD_DST), p.frac_fp) {
                self.next_fp_dst()
            } else {
                self.next_int_dst()
            };
            let addr = self.data_addr();
            self.recent_loads = [Some((dst, self.emitted)), self.recent_loads[0]];
            if self.due_consumer.is_none() && coin(self.draw(site::CONSUME), 0.85) {
                self.due_consumer = Some((dst, 2));
            }
            return Instr::load(pc, dst, Reg::int(ADDR_REG), addr);
        }
        acc += p.frac_store;
        if class < acc {
            let src = self.int_src(site::SRC_A);
            let addr = self.data_addr();
            return Instr::store(pc, src, Reg::int(ADDR_REG), addr);
        }
        acc += p.frac_branch;
        if class < acc {
            return self.gen_branch(pc);
        }
        acc += p.frac_fp;
        if class < acc {
            if coin(self.draw(site::FP_DIV), p.fp_div_frac) {
                let op = if coin(self.draw(site::FP_DOUBLE), p.fp_double_frac) {
                    Op::FpDivDouble
                } else {
                    Op::FpDivSingle
                };
                return self.gen_divide(pc, op);
            }
            let op = match bounded(self.draw(site::FP_OP), 3) {
                0 => Op::FpAdd,
                1 => Op::FpMul,
                _ => Op::FpConv,
            };
            let (s1, s2) = (self.fp_src(site::SRC_A), self.fp_src(site::SRC_B));
            return Instr::arith(pc, op, Some(self.next_fp_dst()), Some(s1), Some(s2));
        }
        acc += p.frac_shift;
        if class < acc {
            let src = self.int_src(site::SRC_A);
            return Instr::arith(pc, Op::Shift, Some(self.next_int_dst()), Some(src), None);
        }
        acc += p.frac_int_mul;
        if class < acc {
            let (s1, s2) = (self.int_src(site::SRC_A), self.int_src(site::SRC_B));
            return Instr::arith(pc, Op::IntMul, Some(self.next_int_dst()), Some(s1), Some(s2));
        }
        acc += p.frac_int_div;
        if class < acc {
            return self.gen_divide(pc, Op::IntDiv);
        }
        let (s1, s2) = (self.int_src(site::SRC_A), self.int_src(site::SRC_B));
        Instr::alu(pc, Some(self.next_int_dst()), Some(s1), Some(s2))
    }

    fn jittered_block_len(&mut self) -> u32 {
        let mean = self.profile.block_len;
        let lo = mean.saturating_sub(mean / 2).max(1);
        let hi = mean + mean / 2;
        lo + bounded(self.draw(site::BLOCK_LEN), u64::from(hi - lo + 1)) as u32
    }

    /// Generates the next instruction of the stream, or `None` past the
    /// limit. Shared by both pull granularities so the stream is
    /// identical no matter how it is batched.
    fn produce(&mut self) -> Option<Instr> {
        if let Some(limit) = self.limit {
            if self.emitted >= limit {
                return None;
            }
        }
        self.emitted += 1;
        Some(self.gen_instr())
    }
}

impl InstrSource for SyntheticApp {
    fn next_instr(&mut self) -> Option<Instr> {
        let instr = self.produce()?;
        profile::mark("workloads.gen_batch");
        profile::mark_n("workloads.gen_instrs", 1);
        self.batch_lens.record(1);
        Some(instr)
    }

    fn next_run(&mut self, out: &mut Vec<Instr>, max: usize) -> usize {
        let mut produced = 0;
        while produced < max {
            match self.produce() {
                Some(instr) => {
                    out.push(instr);
                    produced += 1;
                }
                None => break,
            }
        }
        if produced > 0 {
            profile::mark("workloads.gen_batch");
            profile::mark_n("workloads.gen_instrs", produced as u64);
            self.batch_lens.record(produced as u64);
        }
        produced
    }
}

impl std::fmt::Debug for SyntheticApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyntheticApp")
            .field("profile", &self.profile.name)
            .field("emitted", &self.emitted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn take(profile: AppProfile, n: usize) -> Vec<Instr> {
        let mut app = SyntheticApp::new(profile, 0, 7);
        (0..n).map(|_| app.next_instr().expect("unbounded stream")).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = take(AppProfile::base("a"), 500);
        let b = take(AppProfile::base("a"), 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut x = SyntheticApp::new(AppProfile::base("a"), 0, 1);
        let mut y = SyntheticApp::new(AppProfile::base("a"), 0, 2);
        let xs: Vec<_> = (0..200).map(|_| x.next_instr().unwrap()).collect();
        let ys: Vec<_> = (0..200).map(|_| y.next_instr().unwrap()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn op_mix_roughly_matches_profile() {
        let mut p = AppProfile::base("mix");
        p.frac_fp = 0.3;
        p.frac_load = 0.2;
        let instrs = take(p, 20_000);
        let loads = instrs.iter().filter(|i| i.op == Op::Load).count() as f64;
        let fps = instrs.iter().filter(|i| i.op.is_fp()).count() as f64;
        let n = instrs.len() as f64;
        assert!((loads / n - 0.2).abs() < 0.05, "load fraction {}", loads / n);
        assert!((fps / n - 0.3).abs() < 0.08, "fp fraction {}", fps / n);
    }

    #[test]
    fn code_stays_in_footprint() {
        let p = AppProfile::base("code");
        let app = SyntheticApp::new(p, 2, 3);
        let base = app.code_base;
        let mut app = app;
        for _ in 0..5000 {
            let i = app.next_instr().unwrap();
            assert!(i.pc >= base && i.pc < base + p.code_footprint, "pc {:x}", i.pc);
        }
    }

    #[test]
    fn data_stays_in_footprint() {
        let p = AppProfile::base("data");
        let app = SyntheticApp::new(p, 1, 3);
        let base = app.data_base;
        let mut app = app;
        for _ in 0..5000 {
            if let Some(m) = app.next_instr().unwrap().mem {
                assert!(m.addr >= base && m.addr < base + p.data_footprint);
            }
        }
    }

    #[test]
    fn divides_carry_hints_and_consumers() {
        let mut p = AppProfile::base("div");
        p.frac_fp = 0.4;
        p.fp_div_frac = 1.0;
        p.latency_hints = true;
        let instrs = take(p, 3000);
        let divs = instrs.iter().filter(|i| i.op.is_divide()).count();
        let hints = instrs.iter().filter(|i| i.op == Op::Backoff).count();
        assert!(divs > 50, "expected many divides, got {divs}");
        assert!(
            (divs as i64 - hints as i64).abs() <= 1,
            "every divide should carry a backoff hint ({divs} vs {hints})"
        );
        // Consumer follows the hint and reads the divide's destination.
        for w in instrs.windows(3) {
            if w[0].op.is_divide() {
                assert_eq!(w[1].op, Op::Backoff);
                assert_eq!(w[2].src1, w[0].dst);
            }
        }
    }

    #[test]
    fn no_hints_when_disabled() {
        let mut p = AppProfile::base("nohint");
        p.frac_fp = 0.4;
        p.fp_div_frac = 1.0;
        p.latency_hints = false;
        let instrs = take(p, 2000);
        assert_eq!(instrs.iter().filter(|i| i.op == Op::Backoff).count(), 0);
        assert!(instrs.iter().any(|i| i.op.is_divide()));
    }

    #[test]
    fn load_results_not_used_in_delay_slots() {
        let mut p = AppProfile::base("sched");
        p.frac_load = 0.4;
        p.dep_near = 0.9;
        let instrs = take(p, 20_000);
        for window in instrs.windows(3) {
            if window[0].op == Op::Load {
                let dst = window[0].dst.unwrap();
                for later in &window[1..] {
                    assert!(
                        later.sources().all(|s| s != dst),
                        "load at {:x} consumed in a delay slot: {:?} then {:?}",
                        window[0].pc,
                        window[0],
                        later
                    );
                }
            }
        }
    }

    #[test]
    fn software_prefetch_emits_prefetches_for_streams() {
        let mut p = AppProfile::base("pf");
        p.streaming = 0.5;
        p.software_prefetch = true;
        let instrs = take(p, 10_000);
        let prefetches = instrs.iter().filter(|i| i.op == Op::Prefetch).count();
        let loads = instrs.iter().filter(|i| i.op == Op::Load).count();
        assert!(prefetches > loads / 8, "streams should carry prefetches ({prefetches})");
        // Prefetches bind nothing.
        assert!(instrs.iter().filter(|i| i.op == Op::Prefetch).all(|i| i.dst.is_none()));
    }

    #[test]
    fn load_results_are_consumed_soon() {
        let mut p = AppProfile::base("consume");
        p.frac_load = 0.3;
        let instrs = take(p, 20_000);
        let mut consumed = 0;
        let mut loads = 0;
        for (i, instr) in instrs.iter().enumerate() {
            if instr.op == Op::Load {
                loads += 1;
                let dst = instr.dst.unwrap();
                if instrs[i + 1..].iter().take(8).any(|c| c.sources().any(|s| s == dst)) {
                    consumed += 1;
                }
            }
        }
        assert!(
            consumed as f64 / loads as f64 > 0.6,
            "most load results should be consumed within a few instructions ({consumed}/{loads})"
        );
    }

    #[test]
    fn limit_caps_stream() {
        let mut app = SyntheticApp::new(AppProfile::base("lim"), 0, 9).with_limit(10);
        let mut n = 0;
        while app.next_instr().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn limit_caps_batched_stream() {
        let mut app = SyntheticApp::new(AppProfile::base("lim"), 0, 9).with_limit(10);
        let mut out = Vec::new();
        assert_eq!(app.next_run(&mut out, 7), 7);
        assert_eq!(app.next_run(&mut out, 7), 3, "run truncates at the limit");
        assert_eq!(app.next_run(&mut out, 7), 0);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn most_branch_sites_are_consistent() {
        // Site PCs keep fixed targets (so the BTB can learn), except the
        // few phase-change branches, which behave like indirect jumps.
        let mut p = AppProfile::base("sites");
        p.frac_branch = 0.4;
        let instrs = take(p, 20_000);
        let mut targets: std::collections::HashMap<u64, std::collections::HashSet<u64>> =
            std::collections::HashMap::new();
        let mut total = 0usize;
        for i in &instrs {
            if let Some(b) = i.branch {
                targets.entry(i.pc).or_default().insert(b.target);
                total += 1;
            }
        }
        assert!(total > 1000, "expected many branches");
        let single = targets.values().filter(|t| t.len() == 1).count();
        assert!(
            single as f64 / targets.len() as f64 > 0.5,
            "most sites should keep one target ({single}/{})",
            targets.len()
        );
    }

    #[test]
    fn code_walk_visits_multiple_regions() {
        let mut p = AppProfile::base("phases");
        p.code_footprint = 64 * 1024;
        let instrs = take(p, 60_000);
        let regions: std::collections::HashSet<u64> = instrs.iter().map(|i| i.pc >> 12).collect();
        assert!(regions.len() >= 3, "phase changes should spread over the code");
    }

    #[test]
    fn batch_len_histogram_records_runs() {
        let mut app = SyntheticApp::new(AppProfile::base("h"), 0, 3);
        let mut out = Vec::new();
        app.next_run(&mut out, 32);
        app.next_run(&mut out, 32);
        app.next_instr().unwrap();
        let h = app.batch_lens();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 65);
        assert_eq!(h.max(), 32);
        assert_eq!(h.min(), 1);
    }

    /// Pulls `total` instructions using a deterministic mix of call
    /// granularities derived from `plan`.
    fn take_batched(profile: AppProfile, total: usize, plan: &[usize]) -> Vec<Instr> {
        let mut app = SyntheticApp::new(profile, 0, 7);
        let mut out = Vec::new();
        let mut k = 0;
        while out.len() < total {
            let want = plan[k % plan.len()];
            k += 1;
            if want == 0 {
                out.push(app.next_instr().expect("unbounded stream"));
            } else {
                let room = total - out.len();
                app.next_run(&mut out, want.min(room));
            }
        }
        out
    }

    proptest! {
        /// The tentpole invariant: instruction `i` of a stream is
        /// identical regardless of batch size or call interleaving —
        /// sampling is a pure function of (key, site, index), and the
        /// state walk is shared by both pull granularities.
        #[test]
        fn stream_is_invariant_under_batching(plan in proptest::collection::vec(0usize..97, 1..8)) {
            let one_by_one = take(AppProfile::base("inv"), 600);
            let batched = take_batched(AppProfile::base("inv"), 600, &plan);
            prop_assert_eq!(one_by_one, batched);
        }
    }
}
