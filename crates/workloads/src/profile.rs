/// Statistical parameters of one application's instruction stream.
///
/// A profile is a compact stand-in for a compiled benchmark: the generator
/// in [`crate::SyntheticApp`] turns it into a deterministic instruction
/// stream. Fractions are of all instructions unless noted; the remainder
/// after loads, stores, branches, FP, shifts, and multiplies/divides are
/// single-cycle integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppProfile {
    /// Short name (as in the paper's Table 5).
    pub name: &'static str,
    /// Fraction of loads.
    pub frac_load: f64,
    /// Fraction of stores.
    pub frac_store: f64,
    /// Fraction of branches.
    pub frac_branch: f64,
    /// Fraction of FP arithmetic (add/mul/conv + divides).
    pub frac_fp: f64,
    /// Fraction of shifts.
    pub frac_shift: f64,
    /// Fraction of integer multiplies.
    pub frac_int_mul: f64,
    /// Fraction of integer divides.
    pub frac_int_div: f64,
    /// Of the FP operations, the fraction that are divides.
    pub fp_div_frac: f64,
    /// Of FP divides, the fraction that are double precision.
    pub fp_double_frac: f64,
    /// Code footprint in bytes (drives I-cache/I-TLB behaviour).
    pub code_footprint: u64,
    /// Data footprint in bytes (drives D-cache behaviour).
    pub data_footprint: u64,
    /// Probability a data reference falls in the hot subset.
    pub locality: f64,
    /// Fraction of the data footprint that is hot.
    pub hot_fraction: f64,
    /// Fraction of data references that advance a sequential stream.
    pub streaming: f64,
    /// Stride of the sequential streams, in bytes (large strides stress
    /// the TLB — the DT workload's applications).
    pub stream_stride: u64,
    /// Probability a source operand is the most recent result (short
    /// dependency distances cause pipeline stalls).
    pub dep_near: f64,
    /// Fraction of branch sites that are strongly biased loop branches
    /// (the rest are data-dependent, ~50% taken).
    pub loop_branch_frac: f64,
    /// Mean basic-block length in instructions.
    pub block_len: u32,
    /// Whether the compiled code carries backoff / explicit-switch
    /// instructions after long-latency producers (Section 4.2).
    pub latency_hints: bool,
    /// Whether the compiler inserts non-binding software prefetches for
    /// the predictable (streaming) references — the alternative
    /// latency-tolerance technique of the paper's introduction.
    pub software_prefetch: bool,
}

impl AppProfile {
    /// A neutral integer-code profile; named profiles in [`crate::spec`]
    /// adjust from here.
    pub fn base(name: &'static str) -> AppProfile {
        AppProfile {
            name,
            frac_load: 0.22,
            frac_store: 0.10,
            frac_branch: 0.15,
            frac_fp: 0.0,
            frac_shift: 0.05,
            frac_int_mul: 0.01,
            frac_int_div: 0.001,
            fp_div_frac: 0.02,
            fp_double_frac: 0.8,
            code_footprint: 16 * 1024,
            data_footprint: 48 * 1024,
            locality: 0.85,
            hot_fraction: 0.25,
            streaming: 0.2,
            stream_stride: 8,
            dep_near: 0.4,
            loop_branch_frac: 0.8,
            block_len: 6,
            latency_hints: true,
            software_prefetch: false,
        }
    }

    /// Checks that the mix fractions are sane.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]` or the op-mix fractions
    /// sum past 1, or footprints/strides are zero.
    pub fn validate(&self) {
        let mix = self.frac_load
            + self.frac_store
            + self.frac_branch
            + self.frac_fp
            + self.frac_shift
            + self.frac_int_mul
            + self.frac_int_div;
        assert!(mix <= 1.0 + 1e-9, "{}: op mix sums to {mix} > 1", self.name);
        for (label, f) in [
            ("frac_load", self.frac_load),
            ("frac_store", self.frac_store),
            ("frac_branch", self.frac_branch),
            ("frac_fp", self.frac_fp),
            ("frac_shift", self.frac_shift),
            ("frac_int_mul", self.frac_int_mul),
            ("frac_int_div", self.frac_int_div),
            ("fp_div_frac", self.fp_div_frac),
            ("fp_double_frac", self.fp_double_frac),
            ("locality", self.locality),
            ("hot_fraction", self.hot_fraction),
            ("streaming", self.streaming),
            ("dep_near", self.dep_near),
            ("loop_branch_frac", self.loop_branch_frac),
        ] {
            assert!((0.0..=1.0).contains(&f), "{}: {label} = {f} out of range", self.name);
        }
        assert!(self.code_footprint >= 4096, "{}: code footprint too small", self.name);
        assert!(self.data_footprint >= 4096, "{}: data footprint too small", self.name);
        assert!(self.stream_stride >= 4, "{}: stream stride too small", self.name);
        assert!(self.block_len >= 2, "{}: blocks must hold a branch and a body", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_profile_validates() {
        AppProfile::base("x").validate();
    }

    #[test]
    #[should_panic]
    fn overfull_mix_rejected() {
        let mut p = AppProfile::base("bad");
        p.frac_fp = 0.9;
        p.validate();
    }

    #[test]
    #[should_panic]
    fn out_of_range_fraction_rejected() {
        let mut p = AppProfile::base("bad");
        p.locality = 1.5;
        p.validate();
    }
}
