//! Named application profiles for the paper's workloads.
//!
//! These are statistical stand-ins for the Spec89 applications and NASA7
//! kernels of Table 5 plus the uniprocessor SPLASH applications of the SP
//! workload. Footprints and mixes are chosen to reproduce each
//! application's *qualitative* role in the study — which hardware
//! mechanism it stresses (I-cache, D-cache, D-TLB, FP units, divides) —
//! not its exact dynamic profile; see DESIGN.md's substitution notes.

use crate::AppProfile;

const KB: u64 = 1024;

/// Doduc: Monte Carlo nuclear reactor simulation — FP-heavy with divides
/// and a large code footprint (an I-cache stressor in the IC workload).
pub fn doduc() -> AppProfile {
    AppProfile {
        frac_load: 0.22,
        frac_store: 0.08,
        frac_branch: 0.10,
        frac_fp: 0.30,
        fp_div_frac: 0.05,
        code_footprint: 160 * KB,
        data_footprint: 64 * KB,
        locality: 0.85,
        dep_near: 0.45,
        block_len: 8,
        ..AppProfile::base("Doduc")
    }
}

/// Eqntott: boolean equation to truth-table conversion — integer and
/// branchy, with many data-dependent branches.
pub fn eqntott() -> AppProfile {
    AppProfile {
        frac_load: 0.26,
        frac_store: 0.06,
        frac_branch: 0.24,
        loop_branch_frac: 0.55,
        code_footprint: 24 * KB,
        data_footprint: 96 * KB,
        locality: 0.9,
        dep_near: 0.5,
        block_len: 4,
        ..AppProfile::base("Eqntott")
    }
}

/// Li: Lisp interpreter — pointer chasing, large code, short blocks
/// (an I-cache stressor).
pub fn li() -> AppProfile {
    AppProfile {
        frac_load: 0.28,
        frac_store: 0.12,
        frac_branch: 0.20,
        loop_branch_frac: 0.6,
        code_footprint: 120 * KB,
        data_footprint: 80 * KB,
        locality: 0.7,
        hot_fraction: 0.15,
        dep_near: 0.6,
        block_len: 4,
        ..AppProfile::base("Li")
    }
}

/// Matrix300: dense matrix multiply — streaming FP over a footprint well
/// past the secondary cache.
pub fn matrix300() -> AppProfile {
    AppProfile {
        frac_load: 0.30,
        frac_store: 0.08,
        frac_branch: 0.06,
        frac_fp: 0.42,
        fp_div_frac: 0.0,
        code_footprint: 8 * KB,
        data_footprint: 1536 * KB,
        locality: 0.68,
        streaming: 0.5,
        stream_stride: 8,
        dep_near: 0.25,
        block_len: 12,
        ..AppProfile::base("Matrix300")
    }
}

/// Tomcatv: vectorized mesh generation — streaming FP, large data.
pub fn tomcatv() -> AppProfile {
    AppProfile {
        frac_load: 0.28,
        frac_store: 0.10,
        frac_branch: 0.05,
        frac_fp: 0.40,
        fp_div_frac: 0.015,
        code_footprint: 8 * KB,
        data_footprint: 256 * KB,
        locality: 0.78,
        streaming: 0.32,
        stream_stride: 8,
        dep_near: 0.3,
        block_len: 12,
        ..AppProfile::base("Tomcatv")
    }
}

/// NASA7 Btrix: block-tridiagonal solver — strided FP, TLB pressure.
pub fn btrix() -> AppProfile {
    AppProfile {
        frac_load: 0.28,
        frac_store: 0.10,
        frac_branch: 0.06,
        frac_fp: 0.38,
        code_footprint: 12 * KB,
        data_footprint: 192 * KB,
        locality: 0.76,
        streaming: 0.2,
        stream_stride: 4096 + 32,
        dep_near: 0.3,
        block_len: 10,
        ..AppProfile::base("Btrix")
    }
}

/// NASA7 Cholsky: Cholesky decomposition — FP with moderate reuse.
pub fn cholsky() -> AppProfile {
    AppProfile {
        frac_load: 0.26,
        frac_store: 0.08,
        frac_branch: 0.07,
        frac_fp: 0.40,
        fp_div_frac: 0.02,
        code_footprint: 8 * KB,
        data_footprint: 192 * KB,
        locality: 0.75,
        streaming: 0.3,
        stream_stride: 264,
        dep_near: 0.35,
        block_len: 10,
        ..AppProfile::base("Cholsky")
    }
}

/// NASA7 Cfft2d: 2-D FFT — butterfly access pattern stressing the data
/// cache.
pub fn cfft2d() -> AppProfile {
    AppProfile {
        frac_load: 0.30,
        frac_store: 0.12,
        frac_branch: 0.06,
        frac_fp: 0.36,
        code_footprint: 8 * KB,
        data_footprint: 192 * KB,
        locality: 0.78,
        hot_fraction: 0.1,
        streaming: 0.28,
        stream_stride: 8,
        dep_near: 0.35,
        block_len: 10,
        ..AppProfile::base("Cfft2d")
    }
}

/// NASA7 Emit: vortex generation — small working set, FP.
pub fn emit() -> AppProfile {
    AppProfile {
        frac_load: 0.22,
        frac_store: 0.08,
        frac_branch: 0.08,
        frac_fp: 0.32,
        code_footprint: 8 * KB,
        data_footprint: 32 * KB,
        locality: 0.92,
        dep_near: 0.4,
        block_len: 9,
        ..AppProfile::base("Emit")
    }
}

/// NASA7 Gmtry: Gaussian elimination setup — strided FP with divides
/// (stresses both the data cache and the D-TLB).
pub fn gmtry() -> AppProfile {
    AppProfile {
        frac_load: 0.28,
        frac_store: 0.10,
        frac_branch: 0.06,
        frac_fp: 0.38,
        fp_div_frac: 0.06,
        code_footprint: 8 * KB,
        data_footprint: 160 * KB,
        locality: 0.74,
        streaming: 0.22,
        stream_stride: 4096 + 64,
        dep_near: 0.3,
        block_len: 10,
        ..AppProfile::base("Gmtry")
    }
}

/// NASA7 Mxm: blocked matrix multiply — high FP intensity, cache-resident
/// blocks, tiny code (used in the IC mix as the well-behaved partner).
pub fn mxm() -> AppProfile {
    AppProfile {
        frac_load: 0.26,
        frac_store: 0.06,
        frac_branch: 0.05,
        frac_fp: 0.46,
        fp_div_frac: 0.0,
        code_footprint: 4 * KB,
        data_footprint: 96 * KB,
        locality: 0.85,
        streaming: 0.4,
        stream_stride: 8,
        dep_near: 0.3,
        block_len: 14,
        ..AppProfile::base("Mxm")
    }
}

/// NASA7 Vpenta: pentadiagonal inversion — large-stride vector code, the
/// classic TLB breaker.
pub fn vpenta() -> AppProfile {
    AppProfile {
        frac_load: 0.30,
        frac_store: 0.12,
        frac_branch: 0.05,
        frac_fp: 0.38,
        code_footprint: 8 * KB,
        data_footprint: 256 * KB,
        locality: 0.72,
        streaming: 0.22,
        stream_stride: 4096 + 32,
        dep_near: 0.3,
        block_len: 12,
        ..AppProfile::base("Vpenta")
    }
}

/// SPLASH MP3D (uniprocessor build): particle simulation — poor locality
/// over a large footprint.
pub fn mp3d_uni() -> AppProfile {
    AppProfile {
        frac_load: 0.28,
        frac_store: 0.12,
        frac_branch: 0.10,
        frac_fp: 0.24,
        code_footprint: 12 * KB,
        data_footprint: 384 * KB,
        locality: 0.65,
        hot_fraction: 0.05,
        streaming: 0.25,
        stream_stride: 64,
        dep_near: 0.35,
        block_len: 7,
        ..AppProfile::base("MP3D")
    }
}

/// SPLASH Water (uniprocessor build): molecular dynamics — FP-divide
/// heavy, small working set.
pub fn water_uni() -> AppProfile {
    AppProfile {
        frac_load: 0.22,
        frac_store: 0.08,
        frac_branch: 0.08,
        frac_fp: 0.38,
        fp_div_frac: 0.10,
        code_footprint: 12 * KB,
        data_footprint: 48 * KB,
        locality: 0.9,
        dep_near: 0.45,
        block_len: 9,
        ..AppProfile::base("Water")
    }
}

/// SPLASH LocusRoute (uniprocessor build): VLSI routing — integer,
/// branchy, moderate working set.
pub fn locus_uni() -> AppProfile {
    AppProfile {
        frac_load: 0.26,
        frac_store: 0.10,
        frac_branch: 0.18,
        loop_branch_frac: 0.65,
        code_footprint: 48 * KB,
        data_footprint: 192 * KB,
        locality: 0.7,
        dep_near: 0.5,
        block_len: 5,
        ..AppProfile::base("Locus")
    }
}

/// SPLASH Barnes-Hut (uniprocessor build): N-body — FP divides, irregular
/// tree walks.
pub fn barnes_uni() -> AppProfile {
    AppProfile {
        frac_load: 0.26,
        frac_store: 0.08,
        frac_branch: 0.12,
        frac_fp: 0.32,
        fp_div_frac: 0.08,
        code_footprint: 16 * KB,
        data_footprint: 256 * KB,
        locality: 0.6,
        hot_fraction: 0.1,
        dep_near: 0.4,
        block_len: 7,
        ..AppProfile::base("Barnes")
    }
}

/// Every named profile, for exhaustive validation in tests and reports.
pub fn all_profiles() -> Vec<AppProfile> {
    vec![
        doduc(),
        eqntott(),
        li(),
        matrix300(),
        tomcatv(),
        btrix(),
        cholsky(),
        cfft2d(),
        emit(),
        gmtry(),
        mxm(),
        vpenta(),
        mp3d_uni(),
        water_uni(),
        locus_uni(),
        barnes_uni(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in all_profiles() {
            p.validate();
        }
    }

    #[test]
    fn names_are_unique() {
        let profiles = all_profiles();
        for (i, a) in profiles.iter().enumerate() {
            for b in &profiles[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn role_assignments() {
        // IC stressors have large code footprints.
        assert!(doduc().code_footprint > 64 * KB);
        assert!(li().code_footprint > 64 * KB);
        // DT stressors use page-scale strides.
        assert!(vpenta().stream_stride >= 4096);
        assert!(btrix().stream_stride >= 4096);
        assert!(gmtry().stream_stride >= 4096);
        // Divide-heavy applications.
        assert!(water_uni().fp_div_frac >= 0.08);
        assert!(barnes_uni().fp_div_frac >= 0.06);
        // Cache-resident applications.
        assert!(emit().data_footprint <= 64 * KB);
        assert!(water_uni().data_footprint <= 64 * KB);
    }
}
