//! Trace-driven instruction sources.
//!
//! Besides the statistical models, the simulator accepts explicit
//! instruction traces in a small text format, so externally generated
//! traces (e.g. from a binary-instrumentation tool) can drive the same
//! pipeline and memory models the paper's Tango-Lite traces drove.
//!
//! # Format
//!
//! One instruction per line; blank lines and `#` comments are ignored.
//! Fields are whitespace-separated; addresses accept decimal or `0x` hex.
//!
//! ```text
//! # kind  operands
//! A                     # integer ALU op
//! H                     # shift
//! M                     # integer multiply
//! V                     # integer divide
//! F                     # FP add/sub/conv
//! X                     # FP multiply
//! D                     # FP divide (double)
//! d                     # FP divide (single)
//! L <addr>              # load
//! S <addr>              # store
//! B <taken 0|1> <target>  # branch
//! K <cycles>            # backoff
//! N                     # nop
//! ```
//!
//! Register dependences are synthesized round-robin (trace formats of the
//! paper's era carried addresses and op kinds, not register names); loads
//! are followed by a consumer of their destination as in compiled code.

use std::num::ParseIntError;
use std::str::FromStr;

use interleave_core::InstrSource;
use interleave_isa::{Instr, Op, Reg};

/// One parsed trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    /// Plain operation of the given class.
    Op(Op),
    /// Load from an address.
    Load(u64),
    /// Store to an address.
    Store(u64),
    /// Branch with resolved outcome and target.
    Branch {
        /// Whether the branch is taken.
        taken: bool,
        /// Target address.
        target: u64,
    },
    /// Backoff for a number of cycles.
    Backoff(u32),
}

/// Error produced when a trace line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

fn parse_num(s: &str) -> Result<u64, ParseIntError> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        u64::from_str(s)
    }
}

fn parse_line(line: &str) -> Result<Option<TraceRecord>, String> {
    let body = line.split('#').next().unwrap_or("").trim();
    if body.is_empty() {
        return Ok(None);
    }
    let mut fields = body.split_whitespace();
    let kind = fields.next().expect("non-empty body has a first field");
    let mut arg = |name: &str| {
        fields
            .next()
            .ok_or_else(|| format!("missing {name}"))
            .and_then(|s| parse_num(s).map_err(|e| format!("bad {name} `{s}`: {e}")))
    };
    let record = match kind {
        "A" => TraceRecord::Op(Op::IntAlu),
        "H" => TraceRecord::Op(Op::Shift),
        "M" => TraceRecord::Op(Op::IntMul),
        "V" => TraceRecord::Op(Op::IntDiv),
        "F" => TraceRecord::Op(Op::FpAdd),
        "X" => TraceRecord::Op(Op::FpMul),
        "D" => TraceRecord::Op(Op::FpDivDouble),
        "d" => TraceRecord::Op(Op::FpDivSingle),
        "N" => TraceRecord::Op(Op::Nop),
        "L" => TraceRecord::Load(arg("address")?),
        "S" => TraceRecord::Store(arg("address")?),
        "K" => TraceRecord::Backoff(arg("cycles")?.try_into().map_err(|_| "backoff too large")?),
        "B" => {
            let taken = match arg("taken flag")? {
                0 => false,
                1 => true,
                other => return Err(format!("taken flag must be 0 or 1, got {other}")),
            };
            TraceRecord::Branch { taken, target: arg("target")? }
        }
        other => return Err(format!("unknown record kind `{other}`")),
    };
    if fields.next().is_some() {
        return Err("trailing fields".to_string());
    }
    Ok(Some(record))
}

/// Parses a whole trace text into records.
///
/// # Errors
///
/// Returns the first offending line on malformed input.
///
/// # Examples
///
/// ```
/// use interleave_workloads::trace::parse_trace;
///
/// let records = parse_trace("A\nL 0x100\nB 1 0x40\n# comment\n").unwrap();
/// assert_eq!(records.len(), 3);
/// ```
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match parse_line(line) {
            Ok(Some(r)) => records.push(r),
            Ok(None) => {}
            Err(message) => return Err(ParseTraceError { line: i + 1, message }),
        }
    }
    Ok(records)
}

/// An [`InstrSource`] replaying a parsed trace.
///
/// PCs advance sequentially from `pc_base` (4 bytes per instruction,
/// redirected by taken branches); registers are synthesized round-robin
/// with load results consumed by the following dependent operation, as in
/// compiled code.
#[derive(Debug, Clone)]
pub struct TraceSource {
    records: std::vec::IntoIter<TraceRecord>,
    pc: u64,
    rr: u8,
    last_dst: Reg,
}

impl TraceSource {
    /// Creates a source replaying `records` with code placed at `pc_base`.
    pub fn new(records: Vec<TraceRecord>, pc_base: u64) -> TraceSource {
        TraceSource { records: records.into_iter(), pc: pc_base, rr: 0, last_dst: Reg::int(8) }
    }

    /// Parses `text` and builds the source.
    ///
    /// # Errors
    ///
    /// Propagates [`ParseTraceError`] from [`parse_trace`].
    pub fn from_text(text: &str, pc_base: u64) -> Result<TraceSource, ParseTraceError> {
        Ok(TraceSource::new(parse_trace(text)?, pc_base))
    }

    fn next_dst(&mut self, fp: bool) -> Reg {
        self.rr = (self.rr + 1) % 16;
        let reg = if fp { Reg::fp(8 + self.rr) } else { Reg::int(8 + self.rr) };
        self.last_dst = reg;
        reg
    }
}

impl InstrSource for TraceSource {
    fn next_instr(&mut self) -> Option<Instr> {
        let record = self.records.next()?;
        let pc = self.pc;
        self.pc += 4;
        let src = self.last_dst;
        Some(match record {
            TraceRecord::Op(op) => {
                let fp = op.is_fp();
                let src = if fp == src.is_fp() { Some(src) } else { None };
                let dst = self.next_dst(fp);
                Instr::arith(pc, op, Some(dst), src, None)
            }
            TraceRecord::Load(addr) => {
                let dst = self.next_dst(false);
                Instr::load(pc, dst, Reg::int(29), addr)
            }
            TraceRecord::Store(addr) => Instr::store(pc, src, Reg::int(29), addr),
            TraceRecord::Branch { taken, target } => {
                if taken {
                    self.pc = target;
                }
                Instr::branch(pc, Some(src), taken, target)
            }
            TraceRecord::Backoff(cycles) => Instr::backoff(pc, cycles.max(1)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let text = "A\nH\nM\nV\nF\nX\nD\nd\nN\nL 256\nS 0x100\nB 0 0x40\nK 12\n";
        let records = parse_trace(text).unwrap();
        assert_eq!(records.len(), 13);
        assert_eq!(records[9], TraceRecord::Load(256));
        assert_eq!(records[10], TraceRecord::Store(0x100));
        assert_eq!(records[11], TraceRecord::Branch { taken: false, target: 0x40 });
        assert_eq!(records[12], TraceRecord::Backoff(12));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let records = parse_trace("# header\n\nA # inline\n\n").unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_trace("A\nZ\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown"));
        let err = parse_trace("L\n").unwrap_err();
        assert!(err.message.contains("missing"));
        let err = parse_trace("B 2 0x40\n").unwrap_err();
        assert!(err.message.contains("taken"));
        let err = parse_trace("A extra\n").unwrap_err();
        assert!(err.message.contains("trailing"));
    }

    #[test]
    fn replays_with_sequential_pcs_and_branch_redirect() {
        let mut src = TraceSource::from_text("A\nB 1 0x1000\nA\n", 0x400).unwrap();
        let a = src.next_instr().unwrap();
        assert_eq!(a.pc, 0x400);
        let b = src.next_instr().unwrap();
        assert_eq!(b.pc, 0x404);
        assert!(b.branch.unwrap().taken);
        let c = src.next_instr().unwrap();
        assert_eq!(c.pc, 0x1000, "taken branch redirects the PC");
        assert!(src.next_instr().is_none());
    }

    #[test]
    fn loads_feed_following_instructions() {
        let mut src = TraceSource::from_text("L 0x80\nA\n", 0).unwrap();
        let load = src.next_instr().unwrap();
        let alu = src.next_instr().unwrap();
        assert_eq!(alu.src1, load.dst, "the consumer reads the load result");
    }

    #[test]
    fn trace_runs_on_the_processor() {
        use interleave_core::{ProcConfig, Processor, Scheme};
        use interleave_mem::{MemConfig, UniMemSystem};
        let text = "A\nL 0x100\nA\nF\nB 1 0\nA\nS 0x100\n";
        let mut cpu = Processor::new(
            ProcConfig::new(Scheme::Single, 1),
            UniMemSystem::new(MemConfig::workstation()),
        );
        cpu.attach(0, Box::new(TraceSource::from_text(text, 0x400).unwrap()));
        cpu.run_until_done(1_000_000);
        assert!(cpu.is_done());
        assert_eq!(cpu.retired(0), 7);
    }
}
