/// Operating-system cache interference at a scheduler call (paper
/// Table 6, after Torrellas's IRIX measurements).
///
/// The published table's numeric cells are corrupted in the source text;
/// this is a monotone reconstruction scaled to the modeled 2048-line
/// primary caches (see DESIGN.md). Each row gives the instruction- and
/// data-cache lines displaced when a given number of processes is
/// switched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceTable {
    /// Rows of (processes switched, I-cache lines, D-cache lines).
    rows: Vec<(usize, usize, usize)>,
}

impl InterferenceTable {
    /// The reconstructed Table 6.
    pub fn torrellas_like() -> InterferenceTable {
        InterferenceTable {
            rows: vec![(0, 40, 30), (1, 170, 140), (2, 320, 260), (4, 600, 500), (8, 1100, 900)],
        }
    }

    /// Lines displaced when `switched` processes are swapped: returns
    /// `(icache_lines, dcache_lines)` from the row with the nearest
    /// not-smaller process count (saturating at the largest row).
    pub fn displacement(&self, switched: usize) -> (usize, usize) {
        let row = self
            .rows
            .iter()
            .find(|(n, _, _)| *n >= switched)
            .or_else(|| self.rows.last())
            .expect("table has rows");
        (row.1, row.2)
    }

    /// The raw rows, for the configuration report.
    pub fn rows(&self) -> &[(usize, usize, usize)] {
        &self.rows
    }
}

impl Default for InterferenceTable {
    fn default() -> Self {
        InterferenceTable::torrellas_like()
    }
}

/// The simple operating-system model of paper Section 4.3: a periodic
/// scheduler with processor affinity and cache interference.
///
/// The paper uses a 30 ms slice on a 200 MHz processor (six million
/// cycles) and runs 36 slices; the default here scales the slice down by
/// 100× so the full evaluation grid completes quickly while keeping many
/// slices per run. Set `INTERLEAVE_FULL=1` in the environment to run the
/// paper-scale configuration from the benchmark harnesses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OsModel {
    /// Scheduler interrupt period in cycles.
    pub slice_cycles: u64,
    /// Number of slices an application set stays resident (affinity).
    pub affinity_slices: u64,
    /// Cache displacement per scheduler call.
    pub interference: InterferenceTable,
}

impl OsModel {
    /// Scaled-down default (60 k-cycle slices, affinity 3).
    pub fn scaled() -> OsModel {
        OsModel {
            slice_cycles: 60_000,
            affinity_slices: 3,
            interference: InterferenceTable::torrellas_like(),
        }
    }

    /// The paper's configuration: 30 ms slices at 200 MHz = 6 M cycles.
    pub fn paper_scale() -> OsModel {
        OsModel { slice_cycles: 6_000_000, ..OsModel::scaled() }
    }

    /// Checks configuration sanity.
    ///
    /// # Panics
    ///
    /// Panics if the slice length or affinity is zero.
    pub fn validate(&self) {
        assert!(self.slice_cycles > 0, "slice must be non-empty");
        assert!(self.affinity_slices > 0, "affinity must cover at least one slice");
    }
}

impl Default for OsModel {
    fn default() -> Self {
        OsModel::scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displacement_monotone() {
        let t = InterferenceTable::torrellas_like();
        let mut last = (0, 0);
        for n in [0, 1, 2, 4, 8] {
            let d = t.displacement(n);
            assert!(d.0 >= last.0 && d.1 >= last.1, "not monotone at {n}");
            last = d;
        }
    }

    #[test]
    fn displacement_rounds_up_and_saturates() {
        let t = InterferenceTable::torrellas_like();
        assert_eq!(t.displacement(3), t.displacement(4));
        assert_eq!(t.displacement(100), t.displacement(8));
    }

    #[test]
    fn paper_scale_slice() {
        let os = OsModel::paper_scale();
        assert_eq!(os.slice_cycles, 6_000_000);
        os.validate();
    }

    #[test]
    #[should_panic]
    fn zero_slice_rejected() {
        let os = OsModel { slice_cycles: 0, ..OsModel::scaled() };
        os.validate();
    }
}
