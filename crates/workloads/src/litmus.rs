//! Deterministic litmus workloads and differential oracles for the
//! validation layer.
//!
//! A litmus case is a tiny, fully seeded multiprogrammed run that
//! finishes in well under a second with every invariant checker enabled.
//! The oracles exploit two properties the simulator must preserve by
//! construction:
//!
//! * **Idle-skip invariance** — fast-forwarding cycles in which the
//!   processor can only idle is a host-throughput optimisation and must
//!   be bit-invisible: cycles, instructions, and the full execution-time
//!   breakdown are identical with it on or off.
//! * **Fixed work** — the driver runs every application to the same
//!   retirement quota, so total measured instructions are bounded by the
//!   quota regardless of scheme or context count (each live context can
//!   overshoot by at most one scheduling step).
//!
//! The cases double as a stress grid for the checkers themselves: a run
//! through [`run_case`] executes with validation forced on, so any
//! internal inconsistency panics with a replayable report.

use interleave_core::Scheme;

use crate::{mixes, MultiprogramResult, MultiprogramSim, OsModel};

/// One deterministic litmus configuration.
#[derive(Debug, Clone, Copy)]
pub struct LitmusCase {
    /// Stable name, used in failure reports.
    pub name: &'static str,
    /// Context scheduling scheme under test.
    pub scheme: Scheme,
    /// Hardware contexts.
    pub contexts: usize,
    /// Instructions each application must retire.
    pub quota: u64,
    /// Seed for the synthetic streams and OS displacement.
    pub seed: u64,
}

/// The default litmus grid: one case per scheme, plus a rotation case
/// with more applications than contexts.
pub fn cases() -> Vec<LitmusCase> {
    vec![
        LitmusCase {
            name: "single",
            scheme: Scheme::Single,
            contexts: 1,
            quota: 2_000,
            seed: 0x1994_0501,
        },
        LitmusCase {
            name: "blocked-2",
            scheme: Scheme::Blocked,
            contexts: 2,
            quota: 2_000,
            seed: 0x1994_0502,
        },
        LitmusCase {
            name: "interleaved-4",
            scheme: Scheme::Interleaved,
            contexts: 4,
            quota: 2_000,
            seed: 0x1994_0503,
        },
        LitmusCase {
            name: "fine-grained-2",
            scheme: Scheme::FineGrained,
            contexts: 2,
            quota: 1_500,
            seed: 0x1994_0504,
        },
        LitmusCase {
            name: "rotate-blocked-2",
            scheme: Scheme::Blocked,
            contexts: 2,
            quota: 1_500,
            seed: 0x1994_0505,
        },
    ]
}

/// Builds the simulation for `case`. Validation is always on; callers
/// control only idle skipping so the differential oracle can compare.
fn build(case: &LitmusCase, idle_skip: bool) -> MultiprogramSim {
    MultiprogramSim::builder(mixes::fp())
        .scheme(case.scheme)
        .contexts(case.contexts)
        .quota(case.quota)
        .warmup(1_000)
        .seed(case.seed)
        .os(OsModel { slice_cycles: 6_000, affinity_slices: 2, ..OsModel::scaled() })
        .idle_skip(idle_skip)
        .validate(true)
        .build()
}

/// Runs one case with every invariant checker enabled.
///
/// # Panics
///
/// Panics with a replayable violation report if any checker fires.
pub fn run_case(case: &LitmusCase) -> MultiprogramResult {
    build(case, true).run()
}

/// Differential oracle: idle-cycle skipping must be bit-invisible.
///
/// Returns a description of the first divergence, or `Ok(())` when the
/// two runs agree exactly.
pub fn check_idle_skip_invariance(case: &LitmusCase) -> Result<(), String> {
    let fast = build(case, true).run();
    let slow = build(case, false).run();
    if fast.cycles != slow.cycles {
        return Err(format!(
            "{}: idle skip changed cycles ({} vs {})",
            case.name, fast.cycles, slow.cycles
        ));
    }
    if fast.instructions != slow.instructions {
        return Err(format!(
            "{}: idle skip changed instructions ({} vs {})",
            case.name, fast.instructions, slow.instructions
        ));
    }
    if fast.breakdown != slow.breakdown {
        return Err(format!(
            "{}: idle skip changed the breakdown ({:?} vs {:?})",
            case.name, fast.breakdown, slow.breakdown
        ));
    }
    Ok(())
}

/// Fixed-work oracle: total measured instructions equal the per-stream
/// quota times the application count, up to the per-context overshoot of
/// one scheduling step.
///
/// Because the driver normalizes by work instead of time, this bound
/// holds for every scheme and context count — a single-context baseline
/// and a four-context interleaved run retire the same streams.
pub fn check_fixed_work(case: &LitmusCase) -> Result<(), String> {
    let result = run_case(case);
    let apps = 4u64; // every mix in Table 5 has four applications
    let floor = case.quota * apps;
    // A resident application that meets its quota keeps running until the
    // next scheduler call, so each application can overshoot by at most
    // one OS slice of retirement (the litmus grid uses 6 000-cycle
    // slices; see `build`).
    let ceiling = floor + apps * 6_000;
    if result.instructions < floor {
        return Err(format!(
            "{}: retired {} instructions, below the fixed-work floor {}",
            case.name, result.instructions, floor
        ));
    }
    if result.instructions > ceiling {
        return Err(format!(
            "{}: retired {} instructions, above the fixed-work ceiling {}",
            case.name, result.instructions, ceiling
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_run_clean_with_validation() {
        for case in cases() {
            let r = run_case(&case);
            assert!(r.cycles > 0, "{}: no measured cycles", case.name);
            // Fine-grained draining is accounted outside the breakdown
            // categories; the exported counter closes the identity.
            let drained = r.metrics.counter_value("cycles.drained").unwrap_or(0);
            assert_eq!(
                r.breakdown.total() + drained,
                r.cycles,
                "{}: breakdown + drained does not cover the measured cycles",
                case.name
            );
        }
    }

    #[test]
    fn idle_skip_is_invisible() {
        for case in cases() {
            check_idle_skip_invariance(&case).unwrap();
        }
    }

    #[test]
    fn fixed_work_bounds_hold() {
        for case in cases() {
            check_fixed_work(&case).unwrap();
        }
    }
}
