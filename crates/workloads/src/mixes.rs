//! The seven multiprogrammed workloads of paper Table 5.
//!
//! Each workload is four applications chosen to stress one mechanism:
//! IC the instruction cache, DC the data cache, DT the data TLB, FP the
//! floating-point units, R0/R1 random mixes, and SP uniprocessor builds of
//! four SPLASH applications.

use crate::{spec, AppProfile};

/// A named four-application workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (IC, DC, DT, FP, R0, R1, SP).
    pub name: &'static str,
    /// The four applications.
    pub apps: Vec<AppProfile>,
}

/// IC — stresses the instruction cache: Doduc, Li, Eqntott, Mxm.
pub fn ic() -> Workload {
    Workload { name: "IC", apps: vec![spec::doduc(), spec::li(), spec::eqntott(), spec::mxm()] }
}

/// DC — stresses the data cache: Cfft2d, Gmtry, Tomcatv, Vpenta.
pub fn dc() -> Workload {
    Workload {
        name: "DC",
        apps: vec![spec::cfft2d(), spec::gmtry(), spec::tomcatv(), spec::vpenta()],
    }
}

/// DT — stresses the data TLB: Btrix, Cholsky, Gmtry, Vpenta.
pub fn dt() -> Workload {
    Workload {
        name: "DT",
        apps: vec![spec::btrix(), spec::cholsky(), spec::gmtry(), spec::vpenta()],
    }
}

/// FP — floating-point intensive: Emit, Cholsky, Doduc, Matrix300.
pub fn fp() -> Workload {
    Workload {
        name: "FP",
        apps: vec![spec::emit(), spec::cholsky(), spec::doduc(), spec::matrix300()],
    }
}

/// R0 — random mix: Emit, Btrix, Cfft2d, Eqntott.
pub fn r0() -> Workload {
    Workload {
        name: "R0",
        apps: vec![spec::emit(), spec::btrix(), spec::cfft2d(), spec::eqntott()],
    }
}

/// R1 — random mix: Mxm, Li, Matrix300, Tomcatv.
pub fn r1() -> Workload {
    Workload { name: "R1", apps: vec![spec::mxm(), spec::li(), spec::matrix300(), spec::tomcatv()] }
}

/// SP — uniprocessor versions of four SPLASH applications: MP3D, Water,
/// Locus, Barnes.
pub fn sp() -> Workload {
    Workload {
        name: "SP",
        apps: vec![spec::mp3d_uni(), spec::water_uni(), spec::locus_uni(), spec::barnes_uni()],
    }
}

/// All seven workloads in the paper's presentation order.
pub fn all() -> Vec<Workload> {
    vec![ic(), dc(), dt(), fp(), r0(), r1(), sp()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_workloads_of_four() {
        let ws = all();
        assert_eq!(ws.len(), 7);
        for w in &ws {
            assert_eq!(w.apps.len(), 4, "{} should have four applications", w.name);
            for app in &w.apps {
                app.validate();
            }
        }
    }

    #[test]
    fn table5_composition() {
        assert_eq!(
            ic().apps.iter().map(|a| a.name).collect::<Vec<_>>(),
            ["Doduc", "Li", "Eqntott", "Mxm"]
        );
        assert_eq!(
            dt().apps.iter().map(|a| a.name).collect::<Vec<_>>(),
            ["Btrix", "Cholsky", "Gmtry", "Vpenta"]
        );
        assert_eq!(
            sp().apps.iter().map(|a| a.name).collect::<Vec<_>>(),
            ["MP3D", "Water", "Locus", "Barnes"]
        );
    }
}
