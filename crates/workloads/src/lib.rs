//! Synthetic application models, multiprogrammed workloads, and the OS
//! scheduler model for the workstation study (paper Section 4.3).
//!
//! The paper drove its simulator with compiled Spec89 binaries through
//! Tango-Lite; this reproduction cannot execute MIPS binaries, so each
//! application is replaced by a *statistical stream model*
//! ([`AppProfile`] + [`SyntheticApp`]): a deterministic, seeded generator
//! that emits instruction streams with the application's characteristic
//! operation mix, dependency structure, branch behaviour, code/data
//! footprints, and access patterns. The mechanisms the paper evaluates —
//! pipeline dependency stalls, primary misses that hit in the secondary
//! cache, TLB pressure, FP-divide serialization — are all exercised by the
//! same hardware paths; see DESIGN.md for the substitution argument.
//!
//! Provided here:
//!
//! * [`AppProfile`] / [`SyntheticApp`] — the stream models;
//! * [`spec`] — named profiles for the Spec89 applications and NASA7
//!   kernels of Table 5, plus uniprocessor SPLASH models;
//! * [`mixes`] — the seven multiprogrammed workloads (IC, DC, DT, FP, R0,
//!   R1, SP) of Table 5;
//! * [`OsModel`] — the 30 ms time-slice scheduler with cache-interference
//!   displacement (Table 6) and three-slice affinity;
//! * [`MultiprogramSim`] — the fixed-work multiprogramming driver that
//!   produces the paper's Figure 6/7 breakdowns and Table 7 throughput
//!   numbers;
//! * [`trace`] — a text trace format and replaying instruction source,
//!   for driving the simulator with externally generated traces;
//! * [`litmus`] — deterministic litmus cases and differential oracles
//!   for the validation layer (idle-skip invariance, fixed work).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
pub mod litmus;
mod measure;
pub mod mixes;
mod os;
mod profile;
mod sim;
pub mod spec;
pub mod trace;

pub use generator::SyntheticApp;
pub use measure::{measure_profile, StreamStats};
pub use os::{InterferenceTable, OsModel};
pub use profile::AppProfile;
pub use sim::{MultiprogramResult, MultiprogramSim, MultiprogramSimBuilder};
