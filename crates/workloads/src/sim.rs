use interleave_core::{FetchUnit, ProcConfig, Processor, Scheme, StorePolicy};
use interleave_mem::{MemConfig, MemStats, UniMemSystem};
use interleave_obs::{profile, Histogram, Registry};
use interleave_stats::Breakdown;

use crate::mixes::Workload;
#[cfg(test)]
use crate::InterferenceTable;
use crate::{OsModel, SyntheticApp};

/// Fixed-work multiprogramming driver for the workstation study.
///
/// Runs a four-application workload (paper Table 5) on a processor with
/// `contexts` hardware contexts until every application has retired
/// `quota` instructions, with the OS model rotating resident applications
/// at affinity boundaries and displacing cache state at every scheduler
/// call (Table 6). The paper's throughput comparison normalizes so every
/// application receives an equal share of the machine; fixed work per
/// application achieves the same normalization (see DESIGN.md).
///
/// # Examples
///
/// ```
/// use interleave_core::Scheme;
/// use interleave_workloads::{mixes, MultiprogramSim};
///
/// let sim = MultiprogramSim::builder(mixes::fp())
///     .scheme(Scheme::Interleaved)
///     .contexts(2)
///     .quota(2_000) // tiny run for the doctest
///     .warmup(500)
///     .build();
/// let result = sim.run();
/// assert!(result.cycles > 0);
/// assert!(result.breakdown.total() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MultiprogramSim {
    /// The workload to run.
    workload: Workload,
    /// Context scheduling scheme.
    scheme: Scheme,
    /// Hardware contexts.
    contexts: usize,
    /// Instructions each application must retire (measured work).
    quota: u64,
    /// Cycles executed before statistics are reset (cache warmup).
    warmup_cycles: u64,
    /// Seed for the synthetic streams and OS displacement.
    seed: u64,
    /// Operating-system model.
    os: OsModel,
    /// Memory-system configuration.
    mem: MemConfig,
    /// Branch target buffer entries (2048 in the paper; 0 disables it).
    btb_entries: usize,
    /// Store-miss handling policy.
    store_policy: StorePolicy,
    /// Fast-forward cycles in which the processor can only idle.
    idle_skip: bool,
    /// Run the always-compiled invariant checkers during the simulation.
    validate: bool,
}

/// Builder for [`MultiprogramSim`]; obtained from
/// [`MultiprogramSim::builder`].
///
/// Defaults (before any setter) are a single-context processor at the
/// scaled CI configuration: scheme [`Scheme::Single`], one context,
/// 40 000-instruction quotas, 30 000 warmup cycles, [`OsModel::scaled`],
/// the workstation memory system, a 2048-entry BTB, and switch-on-miss
/// stores.
#[derive(Debug, Clone)]
pub struct MultiprogramSimBuilder {
    sim: MultiprogramSim,
}

impl MultiprogramSimBuilder {
    /// Context scheduling scheme (default [`Scheme::Single`]).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.sim.scheme = scheme;
        self
    }

    /// Hardware contexts (default 1).
    pub fn contexts(mut self, contexts: usize) -> Self {
        self.sim.contexts = contexts;
        self
    }

    /// Instructions each application must retire (default 40 000).
    pub fn quota(mut self, quota: u64) -> Self {
        self.sim.quota = quota;
        self
    }

    /// Warmup cycles before statistics reset (default 30 000).
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.sim.warmup_cycles = cycles;
        self
    }

    /// Seed for the synthetic streams and OS displacement.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Operating-system model (default [`OsModel::scaled`]).
    pub fn os(mut self, os: OsModel) -> Self {
        self.sim.os = os;
        self
    }

    /// Memory-system configuration (default
    /// [`MemConfig::workstation`]).
    pub fn mem(mut self, mem: MemConfig) -> Self {
        self.sim.mem = mem;
        self
    }

    /// Branch target buffer entries; 0 disables the BTB (default 2048).
    pub fn btb_entries(mut self, entries: usize) -> Self {
        self.sim.btb_entries = entries;
        self
    }

    /// Store-miss handling policy (default
    /// [`StorePolicy::SwitchOnMiss`]).
    pub fn store_policy(mut self, policy: StorePolicy) -> Self {
        self.sim.store_policy = policy;
        self
    }

    /// Fast-forward cycles in which the processor can only idle (default
    /// true). Purely a host-throughput optimisation — results are
    /// bit-identical with it on or off.
    pub fn idle_skip(mut self, enabled: bool) -> Self {
        self.sim.idle_skip = enabled;
        self
    }

    /// Run the invariant checkers during the simulation (default
    /// [`interleave_obs::validate::default_enabled`]). A violation panics
    /// with a report naming the cycle, context, and this run's seed.
    pub fn validate(mut self, enabled: bool) -> Self {
        self.sim.validate = enabled;
        self
    }

    /// Finalizes the simulation.
    pub fn build(self) -> MultiprogramSim {
        self.sim
    }
}

/// Results of one multiprogrammed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiprogramResult {
    /// Measured cycles (after warmup) until every quota completed.
    pub cycles: u64,
    /// Execution-time breakdown over the measured period.
    pub breakdown: Breakdown,
    /// Memory-system counters over the measured period.
    pub mem_stats: MemStats,
    /// Instructions retired in the measured period (>= total quota).
    pub instructions: u64,
    /// Run-length histogram over the measured period.
    pub run_lengths: Histogram,
    /// Full instrumentation snapshot (processor, pipeline, and memory
    /// metrics) collected at the end of the run. Event counters
    /// accumulate from cycle zero; the `cycles.*` entries mirror the
    /// warmup-reset [`MultiprogramResult::breakdown`].
    pub metrics: Registry,
}

impl MultiprogramResult {
    /// Aggregate throughput in instructions per cycle.
    pub fn throughput(&self) -> f64 {
        self.instructions as f64 / self.cycles as f64
    }
}

impl MultiprogramSim {
    /// Starts building a simulation of `workload` with scaled defaults
    /// (see [`MultiprogramSimBuilder`]).
    pub fn builder(workload: Workload) -> MultiprogramSimBuilder {
        MultiprogramSimBuilder {
            sim: MultiprogramSim {
                workload,
                scheme: Scheme::Single,
                contexts: 1,
                quota: 40_000,
                warmup_cycles: 30_000,
                seed: 0x19940501,
                os: OsModel::scaled(),
                mem: MemConfig::workstation(),
                btb_entries: 2048,
                store_policy: StorePolicy::SwitchOnMiss,
                idle_skip: true,
                validate: interleave_obs::validate::default_enabled(),
            },
        }
    }

    /// The workload being run.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Context scheduling scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Hardware contexts.
    pub fn contexts(&self) -> usize {
        self.contexts
    }

    /// Instructions each application must retire.
    pub fn quota(&self) -> u64 {
        self.quota
    }

    /// Warmup cycles before statistics reset.
    pub fn warmup_cycles(&self) -> u64 {
        self.warmup_cycles
    }

    /// Seed for the synthetic streams and OS displacement.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The operating-system model.
    pub fn os(&self) -> &OsModel {
        &self.os
    }

    /// Branch target buffer entries.
    pub fn btb_entries(&self) -> usize {
        self.btb_entries
    }

    /// Store-miss handling policy.
    pub fn store_policy(&self) -> StorePolicy {
        self.store_policy
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent or the run exceeds an
    /// internal safety bound (indicating livelock).
    pub fn run(&self) -> MultiprogramResult {
        self.os.validate();
        let n_apps = self.workload.apps.len();
        assert!(n_apps >= 1, "workload must have applications");
        let resident_count = self.contexts.min(n_apps);

        let mut proc_cfg = ProcConfig::new(self.scheme, self.contexts);
        proc_cfg.btb_entries = self.btb_entries;
        proc_cfg.store_policy = self.store_policy;
        proc_cfg.idle_skip = self.idle_skip;
        proc_cfg.validate = self.validate;
        let mut cpu = Processor::new(proc_cfg, UniMemSystem::new(self.mem.clone()));
        // Per-tick checks run inside the processor; this driver-level pass
        // re-checks at scheduling boundaries so a violation report carries
        // the replayable seed of this run.
        let check = |cpu: &Processor<UniMemSystem>| {
            if self.validate {
                if let Err(v) = cpu.check_invariants() {
                    panic!("{}", v.with_seed(self.seed));
                }
            }
        };

        // Parked fetch units, indexed by application; residents are inside
        // the processor (None here).
        let mut parked: Vec<Option<FetchUnit>> = (0..n_apps)
            .map(|i| {
                let app = SyntheticApp::new(self.workload.apps[i], i, self.seed);
                Some(FetchUnit::new(Box::new(app)))
            })
            .collect();
        // Application resident on each context.
        let mut resident: Vec<Option<usize>> = vec![None; self.contexts];
        for (ctx, slot) in resident.iter_mut().take(resident_count).enumerate() {
            let unit = parked[ctx].take().expect("freshly created");
            // `attach` builds a unit from a source; install directly by
            // attaching a placeholder then swapping the real unit in.
            cpu.attach(ctx, Box::new(crate::sim::EmptySource));
            let _ = cpu.swap_unit(ctx, unit);
            *slot = Some(ctx);
        }
        // resident[ctx] currently holds ctx; fix to app ids.
        for (ctx, slot) in resident.iter_mut().enumerate().take(resident_count) {
            *slot = Some(ctx);
        }

        // Warmup, then reset all statistics.
        {
            let _warmup = profile::enter("uni.warmup");
            cpu.run_cycles(self.warmup_cycles);
        }
        check(&cpu);
        cpu.reset_breakdown();
        cpu.port_mut().reset_stats();
        let mut completed = vec![0u64; n_apps];
        for ctx in 0..resident_count {
            cpu.reset_retired(ctx);
        }

        let start = cpu.now();
        let mut slice = 0u64;
        let mut rr_next_app = resident_count % n_apps.max(1);
        let safety = self.quota.saturating_mul(n_apps as u64).saturating_mul(200).max(10_000_000);

        loop {
            // Run one slice (checking completion periodically).
            let slice_end = start + (slice + 1) * self.os.slice_cycles;
            let mut all_done = false;
            {
                let _slice = profile::enter("uni.slice");
                while cpu.now() < slice_end {
                    let step = 256.min(slice_end - cpu.now());
                    cpu.run_cycles(step);
                    if self.all_quotas_met(&cpu, &resident, &completed) {
                        all_done = true;
                        break;
                    }
                }
            }
            check(&cpu);
            if all_done {
                break;
            }
            if std::env::var("ILV_DEBUG").is_ok() && slice.is_multiple_of(50) {
                let live: Vec<u64> = (0..resident_count).map(|c| cpu.retired(c)).collect();
                eprintln!("slice={slice} now={} completed={completed:?} live={live:?} resident={resident:?}", cpu.now());
            }
            assert!(
                cpu.now() - start < safety,
                "multiprogram run exceeded safety bound (livelock?)"
            );
            slice += 1;

            // Scheduler call: rotate at affinity boundaries or when a
            // resident application has completed its quota.
            let _scheduler = profile::enter("uni.scheduler");
            let rotating = slice.is_multiple_of(self.os.affinity_slices) && n_apps > resident_count;
            let mut switched = 0;
            for (ctx, slot) in resident.iter_mut().enumerate().take(resident_count) {
                let Some(app) = *slot else { continue };
                let app_done = completed[app] + cpu.retired(ctx) >= self.quota;
                if !(rotating || app_done) {
                    continue;
                }
                let Some(next) = self.pick_next_app(&parked, &completed, &mut rr_next_app) else {
                    continue;
                };
                completed[app] += cpu.retired(ctx);
                let incoming = parked[next].take().expect("picked a parked app");
                let outgoing = cpu.swap_unit(ctx, incoming);
                parked[app] = Some(outgoing);
                *slot = Some(next);
                switched += 1;
            }
            let (i_lines, d_lines) = self.os.interference.displacement(switched);
            cpu.port_mut().os_displace(i_lines, d_lines, self.seed ^ slice);
        }

        let cycles = cpu.now() - start;
        let live: u64 = (0..resident_count).map(|c| cpu.retired(c)).sum();
        let instructions = completed.iter().sum::<u64>() + live;
        let mut metrics = Registry::new();
        cpu.collect_metrics(&mut metrics);
        cpu.port().collect_metrics(&mut metrics);
        MultiprogramResult {
            cycles,
            breakdown: cpu.breakdown().clone(),
            mem_stats: *cpu.port().stats(),
            instructions,
            run_lengths: cpu.run_lengths().clone(),
            metrics,
        }
    }

    fn all_quotas_met(
        &self,
        cpu: &Processor<UniMemSystem>,
        resident: &[Option<usize>],
        completed: &[u64],
    ) -> bool {
        let n_apps = self.workload.apps.len();
        (0..n_apps).all(|app| {
            let live = resident
                .iter()
                .enumerate()
                .find(|(_, a)| **a == Some(app))
                .map(|(ctx, _)| cpu.retired(ctx))
                .unwrap_or(0);
            completed[app] + live >= self.quota
        })
    }

    /// Next parked application that still has quota to run, scanning
    /// round-robin from `cursor`.
    fn pick_next_app(
        &self,
        parked: &[Option<FetchUnit>],
        completed: &[u64],
        cursor: &mut usize,
    ) -> Option<usize> {
        let n = parked.len();
        for offset in 0..n {
            let app = (*cursor + offset) % n;
            if parked[app].is_some() && completed[app] < self.quota {
                *cursor = (app + 1) % n;
                return Some(app);
            }
        }
        None
    }
}

/// Placeholder source used only while installing pre-built fetch units.
#[derive(Debug, Clone, Copy)]
struct EmptySource;

impl interleave_core::InstrSource for EmptySource {
    fn next_instr(&mut self) -> Option<interleave_isa::Instr> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes;
    use interleave_stats::Category;

    fn quick(scheme: Scheme, contexts: usize) -> MultiprogramResult {
        MultiprogramSim::builder(mixes::fp())
            .scheme(scheme)
            .contexts(contexts)
            .quota(3_000)
            .warmup(2_000)
            .os(OsModel { slice_cycles: 8_000, ..OsModel::scaled() })
            .build()
            .run()
    }

    #[test]
    fn builder_defaults_are_stable() {
        // These defaults were pinned by the old
        // `MultiprogramSim::new(workload, scheme, contexts)` constructor;
        // the builder must keep them.
        let sim =
            MultiprogramSim::builder(mixes::fp()).scheme(Scheme::Interleaved).contexts(2).build();
        assert_eq!(sim.scheme, Scheme::Interleaved);
        assert_eq!(sim.contexts, 2);
        assert_eq!(sim.quota, 40_000);
        assert_eq!(sim.warmup_cycles, 30_000);
        assert_eq!(sim.seed, 0x19940501);
        assert_eq!(sim.os, OsModel::scaled());
        assert_eq!(sim.mem, MemConfig::workstation());
        assert_eq!(sim.btb_entries, 2048);
        assert_eq!(sim.store_policy, StorePolicy::SwitchOnMiss);
        assert!(sim.idle_skip);
        assert_eq!(sim.workload.name, mixes::fp().name);
    }

    #[test]
    fn completes_and_accounts() {
        let r = quick(Scheme::Interleaved, 2);
        assert!(r.instructions >= 4 * 3_000);
        assert_eq!(r.breakdown.total(), r.cycles);
        assert!(r.breakdown.get(Category::Busy) > 0);
    }

    #[test]
    fn single_baseline_runs_all_apps() {
        let r = quick(Scheme::Single, 1);
        assert!(r.instructions >= 4 * 3_000);
        assert!(r.throughput() > 0.1 && r.throughput() <= 1.0);
    }

    #[test]
    fn interleaved_beats_single_throughput() {
        let single = quick(Scheme::Single, 1);
        let inter = quick(Scheme::Interleaved, 4);
        assert!(
            inter.throughput() > single.throughput(),
            "interleaved {:.3} should beat single {:.3}",
            inter.throughput(),
            single.throughput()
        );
    }

    #[test]
    fn rotation_runs_more_apps_than_contexts() {
        // Four applications on two contexts: the scheduler must rotate all
        // of them through, and every quota must complete.
        let sim = MultiprogramSim::builder(mixes::r1())
            .scheme(Scheme::Blocked)
            .contexts(2)
            .quota(2_500)
            .warmup(1_000)
            .os(OsModel { slice_cycles: 5_000, affinity_slices: 2, ..OsModel::scaled() })
            .build();
        let r = sim.run();
        assert!(r.instructions >= 4 * 2_500);
    }

    #[test]
    fn os_interference_costs_cycles() {
        // The same workload with much heavier scheduler interference must
        // run slower.
        let quick = |interference: InterferenceTable, seed: u64| {
            MultiprogramSim::builder(mixes::fp())
                .quota(4_000)
                .warmup(2_000)
                .os(OsModel { slice_cycles: 4_000, interference, ..OsModel::scaled() })
                .seed(seed)
                .build()
        };
        let base = quick(InterferenceTable::torrellas_like(), 0x19940501).run().cycles;
        // Decorrelate the streams slightly for the comparison run.
        let noisy = quick(InterferenceTable::torrellas_like(), 0x19940501 ^ 1).run().cycles;
        // Same-magnitude runs; the point is both complete and produce
        // comparable, nonzero costs (detailed displacement behaviour is
        // unit-tested in `interleave-mem`).
        assert!(base > 0 && noisy > 0);
        let ratio = noisy as f64 / base as f64;
        assert!(ratio > 0.5 && ratio < 2.0, "interference runs should be comparable: {ratio}");
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(Scheme::Blocked, 2);
        let b = quick(Scheme::Blocked, 2);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.instructions, b.instructions);
    }
}
