//! Measurement of synthetic instruction streams: sample a stream and
//! report its realized operation mix and reference behaviour, for
//! validating profiles against their targets (and for documentation).

use interleave_core::InstrSource;
use interleave_isa::{Instr, Op};
use interleave_stats::Table;

use crate::{AppProfile, SyntheticApp};

/// Realized statistics of an instruction-stream sample.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Instructions sampled.
    pub instructions: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches (taken count in `.1`).
    pub branches: (u64, u64),
    /// FP arithmetic operations.
    pub fp_ops: u64,
    /// Divides (integer + FP).
    pub divides: u64,
    /// Backoff hints.
    pub backoffs: u64,
    /// Prefetches.
    pub prefetches: u64,
    /// Distinct 32-byte data lines touched.
    pub data_lines: u64,
    /// Distinct 4 KB data pages touched.
    pub data_pages: u64,
    /// Distinct 32-byte code lines touched.
    pub code_lines: u64,
}

impl StreamStats {
    /// Collects statistics over the next `n` instructions of `source`.
    ///
    /// # Panics
    ///
    /// Panics if the source ends before `n` instructions.
    pub fn sample(source: &mut dyn InstrSource, n: u64) -> StreamStats {
        let mut stats = StreamStats::default();
        let mut data_lines = std::collections::HashSet::new();
        let mut data_pages = std::collections::HashSet::new();
        let mut code_lines = std::collections::HashSet::new();
        for _ in 0..n {
            let instr: Instr = source.next_instr().expect("stream ended during sampling");
            stats.instructions += 1;
            code_lines.insert(instr.pc >> 5);
            match instr.op {
                Op::Load => stats.loads += 1,
                Op::Store => stats.stores += 1,
                Op::Prefetch => stats.prefetches += 1,
                Op::Branch => {
                    stats.branches.0 += 1;
                    if instr.branch.is_some_and(|b| b.taken) {
                        stats.branches.1 += 1;
                    }
                }
                Op::Backoff => stats.backoffs += 1,
                op if op.is_fp() => stats.fp_ops += 1,
                _ => {}
            }
            if instr.op.is_divide() {
                stats.divides += 1;
            }
            if let Some(mem) = instr.mem {
                data_lines.insert(mem.addr >> 5);
                data_pages.insert(mem.addr >> 12);
            }
        }
        stats.data_lines = data_lines.len() as u64;
        stats.data_pages = data_pages.len() as u64;
        stats.code_lines = code_lines.len() as u64;
        stats
    }

    /// Fraction helper.
    fn frac(&self, x: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            x as f64 / self.instructions as f64
        }
    }

    /// Renders the statistics as a table (one profile per call).
    pub fn report(&self, name: &str) -> Table {
        let mut t = Table::new(format!("stream sample: {name}"));
        t.headers(["metric", "value"]);
        t.row(["instructions".to_string(), self.instructions.to_string()]);
        t.row(["load fraction".to_string(), format!("{:.3}", self.frac(self.loads))]);
        t.row(["store fraction".to_string(), format!("{:.3}", self.frac(self.stores))]);
        t.row(["branch fraction".to_string(), format!("{:.3}", self.frac(self.branches.0))]);
        let taken = if self.branches.0 == 0 {
            0.0
        } else {
            self.branches.1 as f64 / self.branches.0 as f64
        };
        t.row(["branch taken rate".to_string(), format!("{taken:.3}")]);
        t.row(["fp fraction".to_string(), format!("{:.3}", self.frac(self.fp_ops))]);
        t.row(["divides".to_string(), self.divides.to_string()]);
        t.row(["backoff hints".to_string(), self.backoffs.to_string()]);
        t.row(["prefetches".to_string(), self.prefetches.to_string()]);
        t.row(["data lines touched".to_string(), self.data_lines.to_string()]);
        t.row(["data pages touched".to_string(), self.data_pages.to_string()]);
        t.row(["code lines touched".to_string(), self.code_lines.to_string()]);
        t
    }
}

/// Samples `n` instructions of `profile`'s stream and returns the realized
/// statistics (convenience wrapper).
///
/// # Examples
///
/// ```
/// use interleave_workloads::{measure_profile, spec};
///
/// let stats = measure_profile(&spec::water_uni(), 5_000);
/// assert!(stats.divides > 0, "Water is divide-heavy");
/// ```
pub fn measure_profile(profile: &AppProfile, n: u64) -> StreamStats {
    let mut app = SyntheticApp::new(*profile, 0, 0x51EA7);
    StreamStats::sample(&mut app, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn realized_mix_tracks_profile() {
        let profile = spec::eqntott();
        let stats = measure_profile(&profile, 30_000);
        // The generator dilutes the configured mix slightly (scheduled
        // load consumers and block-closing branches add instructions).
        let load_frac = stats.loads as f64 / stats.instructions as f64;
        assert!((load_frac - profile.frac_load).abs() < 0.1, "loads {load_frac}");
        // Branches = the configured in-body fraction plus one block-closing
        // branch per basic block.
        let br_frac = stats.branches.0 as f64 / stats.instructions as f64;
        let lo = profile.frac_branch * 0.6;
        let hi = profile.frac_branch + 1.2 / profile.block_len as f64;
        assert!(br_frac > lo && br_frac < hi, "branches {br_frac} outside [{lo:.2}, {hi:.2}]");
    }

    #[test]
    fn working_sets_track_footprints() {
        let small = measure_profile(&spec::emit(), 30_000);
        let large = measure_profile(&spec::matrix300(), 30_000);
        assert!(
            large.data_lines as f64 > small.data_lines as f64 * 1.5,
            "matrix300 should touch far more lines ({} vs {})",
            large.data_lines,
            small.data_lines
        );
        assert!(large.data_pages > small.data_pages);
    }

    #[test]
    fn divide_heavy_profiles_backoff() {
        let stats = measure_profile(&spec::water_uni(), 30_000);
        assert!(stats.divides > 100);
        assert!(stats.backoffs > 0, "hints accompany divides");
    }

    #[test]
    fn report_renders() {
        let stats = measure_profile(&spec::mxm(), 2_000);
        let table = stats.report("Mxm");
        let text = table.to_string();
        assert!(text.contains("load fraction"));
        assert!(text.contains("Mxm"));
    }

    #[test]
    fn taken_rate_is_loopy() {
        let stats = measure_profile(&spec::mxm(), 30_000);
        let taken = stats.branches.1 as f64 / stats.branches.0.max(1) as f64;
        assert!(taken > 0.5, "loop-dominated code is mostly taken, got {taken}");
    }
}
