//! Property tests for the [`Registry`] merge fold.
//!
//! Sweep metric artifacts are produced by folding per-run registries
//! into one snapshot; serial and parallel sweeps fold in different
//! orders, so byte-identical artifacts require the fold to be a
//! commutative, associative monoid with the empty registry as identity.

use interleave_obs::{Histogram, Registry};
use proptest::prelude::*;

/// One registration event: counters and histograms draw from disjoint
/// name pools so no event sequence can trigger the type-mismatch panic.
#[derive(Debug, Clone, Copy)]
enum Event {
    Counter { name: u8, value: u16 },
    Record { name: u8, value: u16 },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..6, any::<u16>()).prop_map(|(name, value)| Event::Counter { name, value }),
        (0u8..4, any::<u16>()).prop_map(|(name, value)| Event::Record { name, value }),
    ]
}

fn build(events: &[Event]) -> Registry {
    let mut reg = Registry::new();
    for event in events {
        match *event {
            Event::Counter { name, value } => {
                reg.counter(&format!("counter.{name}"), u64::from(value));
            }
            Event::Record { name, value } => {
                let mut h = Histogram::new();
                h.record(u64::from(value));
                reg.histogram(&format!("hist.{name}"), &h);
            }
        }
    }
    reg
}

proptest! {
    /// Merging is commutative: `a ∪ b == b ∪ a`.
    #[test]
    fn merge_commutes(
        a in proptest::collection::vec(event(), 0..40),
        b in proptest::collection::vec(event(), 0..40),
    ) {
        let (a, b) = (build(&a), build(&b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn merge_associates(
        a in proptest::collection::vec(event(), 0..30),
        b in proptest::collection::vec(event(), 0..30),
        c in proptest::collection::vec(event(), 0..30),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty registry is a two-sided identity.
    #[test]
    fn empty_is_identity(a in proptest::collection::vec(event(), 0..40)) {
        let a = build(&a);
        let mut left = Registry::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&Registry::new());
        prop_assert_eq!(&left, &a);
        prop_assert_eq!(&right, &a);
    }

    /// Folding a batch of registries is independent of fold order: any
    /// permutation (modelled here as forward vs reverse, which generate
    /// all adjacent transpositions under shrinking) yields the same
    /// snapshot — the property the parallel sweep runner relies on.
    #[test]
    fn fold_order_is_irrelevant(
        batches in proptest::collection::vec(
            proptest::collection::vec(event(), 0..20), 0..8,
        ),
    ) {
        let regs: Vec<Registry> = batches.iter().map(|b| build(b)).collect();
        let mut forward = Registry::new();
        for r in &regs {
            forward.merge(r);
        }
        let mut reverse = Registry::new();
        for r in regs.iter().rev() {
            reverse.merge(r);
        }
        prop_assert_eq!(&forward, &reverse);
        // And folding equals building from the concatenated event log.
        let all: Vec<Event> = batches.into_iter().flatten().collect();
        prop_assert_eq!(&forward, &build(&all));
    }
}
