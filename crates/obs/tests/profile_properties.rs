//! Property tests for the [`PhaseProfile`] merge fold.
//!
//! The host-phase profiler accumulates per-thread profiles and folds
//! them into one global harvest as threads exit; worker threads finish
//! in nondeterministic order, so an order-independent `PROFILE_*` json
//! requires the fold to be a commutative, associative monoid with the
//! empty profile as identity — exactly the contract the [`Registry`]
//! fold pins in `merge_properties.rs`.
//!
//! [`Registry`]: interleave_obs::Registry

use interleave_obs::profile::{PhaseProfile, PhaseStats};
use proptest::prelude::*;

/// One recording event: a small name pool (so merges collide often) and
/// `u16`/`u32` magnitudes (so sums never overflow `u64`).
#[derive(Debug, Clone, Copy)]
struct Event {
    name: u8,
    calls: u16,
    total_ns: u32,
    self_ns: u32,
}

fn event() -> impl Strategy<Value = Event> {
    (0u8..6, any::<u16>(), any::<u32>(), any::<u32>())
        .prop_map(|(name, calls, total_ns, self_ns)| Event { name, calls, total_ns, self_ns })
}

fn build(events: &[Event]) -> PhaseProfile {
    let mut profile = PhaseProfile::new();
    for e in events {
        profile.record(
            &format!("phase.{}", e.name),
            PhaseStats {
                calls: u64::from(e.calls),
                total_ns: u64::from(e.total_ns),
                self_ns: u64::from(e.self_ns),
            },
        );
    }
    profile
}

proptest! {
    /// Merging is commutative: `a ∪ b == b ∪ a`.
    #[test]
    fn merge_commutes(
        a in proptest::collection::vec(event(), 0..40),
        b in proptest::collection::vec(event(), 0..40),
    ) {
        let (a, b) = (build(&a), build(&b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Merging is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`.
    #[test]
    fn merge_associates(
        a in proptest::collection::vec(event(), 0..30),
        b in proptest::collection::vec(event(), 0..30),
        c in proptest::collection::vec(event(), 0..30),
    ) {
        let (a, b, c) = (build(&a), build(&b), build(&c));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// The empty profile is a two-sided identity.
    #[test]
    fn empty_is_identity(a in proptest::collection::vec(event(), 0..40)) {
        let a = build(&a);
        let mut left = PhaseProfile::new();
        left.merge(&a);
        let mut right = a.clone();
        right.merge(&PhaseProfile::new());
        prop_assert_eq!(&left, &a);
        prop_assert_eq!(&right, &a);
    }

    /// Folding a batch of per-thread profiles is independent of harvest
    /// order — the property the profiler's thread-exit fold relies on.
    #[test]
    fn fold_order_is_irrelevant(
        batches in proptest::collection::vec(
            proptest::collection::vec(event(), 0..20), 0..8,
        ),
    ) {
        let profiles: Vec<PhaseProfile> = batches.iter().map(|b| build(b)).collect();
        let mut forward = PhaseProfile::new();
        for p in &profiles {
            forward.merge(p);
        }
        let mut reverse = PhaseProfile::new();
        for p in profiles.iter().rev() {
            reverse.merge(p);
        }
        prop_assert_eq!(&forward, &reverse);
        // And folding equals building from the concatenated event log.
        let all: Vec<Event> = batches.into_iter().flatten().collect();
        prop_assert_eq!(&forward, &build(&all));
    }

    /// `to_json` → `from_json` is lossless for any profile, so harvest
    /// order aside, the emitted `PROFILE_*` document carries the exact
    /// fold result.
    #[test]
    fn json_round_trips(a in proptest::collection::vec(event(), 0..40)) {
        let a = build(&a);
        let parsed = PhaseProfile::from_json(&a.to_json(0)).expect("round-trip parses");
        prop_assert_eq!(parsed, a);
    }
}
