//! Latest-wins telemetry bus.
//!
//! A watch-channel-style publisher: [`Watch::publish`] replaces the
//! current value and bumps a version; any number of [`Subscriber`]s
//! read the latest value ([`Subscriber::latest`]) or block until it
//! changes ([`Subscriber::changed`]). Intermediate values are
//! deliberately dropped — telemetry wants the *current* state of a
//! sweep, not a backlog, so a slow subscriber can never stall the
//! publisher or accumulate unbounded history.
//!
//! The bench `Runner` publishes a `Snapshot` here after every cell and
//! mirrors it to an atomically-replaced `STATUS_*.json` for
//! out-of-process subscribers (`interleave-sim watch`).

use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

struct State<T> {
    version: u64,
    value: Option<T>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    changed: Condvar,
}

/// The publishing side of the bus. Cloning shares the same channel.
pub struct Watch<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Watch<T> {
    fn clone(&self) -> Watch<T> {
        Watch { shared: Arc::clone(&self.shared) }
    }
}

impl<T> std::fmt::Debug for Watch<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watch").field("version", &self.version()).finish()
    }
}

impl<T> Default for Watch<T> {
    fn default() -> Watch<T> {
        Watch::new()
    }
}

impl<T> Watch<T> {
    /// Creates an empty bus (version 0, no value yet).
    pub fn new() -> Watch<T> {
        Watch {
            shared: Arc::new(Shared {
                state: Mutex::new(State { version: 0, value: None }),
                changed: Condvar::new(),
            }),
        }
    }

    /// Replaces the current value and wakes every blocked subscriber.
    pub fn publish(&self, value: T) {
        let mut state = self.lock();
        state.version += 1;
        state.value = Some(value);
        drop(state);
        self.shared.changed.notify_all();
    }

    /// Number of publishes so far.
    pub fn version(&self) -> u64 {
        self.lock().version
    }

    /// Creates a subscriber that has seen nothing yet (its first
    /// [`Subscriber::latest`] returns the current value, if any).
    pub fn subscribe(&self) -> Subscriber<T> {
        Subscriber { shared: Arc::clone(&self.shared), seen: 0 }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.shared.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reading side of the bus; tracks which version it has seen.
pub struct Subscriber<T> {
    shared: Arc<Shared<T>>,
    seen: u64,
}

impl<T> Clone for Subscriber<T> {
    /// Fans out: the clone shares the channel but keeps its own `seen`
    /// cursor, so N concurrent readers (e.g. N streaming connections to
    /// the same job) each observe every change independently.
    fn clone(&self) -> Subscriber<T> {
        Subscriber { shared: Arc::clone(&self.shared), seen: self.seen }
    }
}

impl<T> std::fmt::Debug for Subscriber<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber").field("seen", &self.seen).finish()
    }
}

impl<T: Clone> Subscriber<T> {
    /// The latest published value, if any, without blocking. Marks it
    /// seen.
    pub fn latest(&mut self) -> Option<T> {
        let state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        self.seen = state.version;
        state.value.clone()
    }

    /// True if a publish has happened since this subscriber last read.
    pub fn has_changed(&self) -> bool {
        let state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.version > self.seen
    }

    /// Blocks until a value newer than the last one read is published,
    /// or `timeout` elapses. Returns the new value, or `None` on
    /// timeout.
    pub fn changed(&mut self, timeout: Duration) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        let (next, result) = self
            .shared
            .changed
            .wait_timeout_while(state, timeout, |s| s.version <= self.seen)
            .unwrap_or_else(PoisonError::into_inner);
        state = next;
        if result.timed_out() && state.version <= self.seen {
            return None;
        }
        self.seen = state.version;
        state.value.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latest_wins_and_marks_seen() {
        let bus = Watch::new();
        let mut sub = bus.subscribe();
        assert_eq!(sub.latest(), None);
        bus.publish(1u32);
        bus.publish(2);
        bus.publish(3);
        assert_eq!(sub.latest(), Some(3), "intermediate values are dropped");
        assert!(!sub.has_changed());
        bus.publish(4);
        assert!(sub.has_changed());
        assert_eq!(sub.latest(), Some(4));
    }

    #[test]
    fn many_subscribers_see_the_same_value() {
        let bus = Watch::new();
        let mut a = bus.subscribe();
        let mut b = bus.subscribe();
        bus.publish("x");
        assert_eq!(a.latest(), Some("x"));
        assert_eq!(b.latest(), Some("x"));
    }

    #[test]
    fn changed_blocks_until_publish() {
        let bus = Watch::new();
        let mut sub = bus.subscribe();
        assert_eq!(sub.changed(Duration::from_millis(10)), None, "times out with no publish");
        std::thread::scope(|s| {
            let publisher = bus.clone();
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                publisher.publish(7u32);
            });
            assert_eq!(sub.changed(Duration::from_secs(5)), Some(7));
        });
        assert_eq!(sub.changed(Duration::from_millis(10)), None, "already seen");
    }

    #[test]
    fn cloned_subscribers_fan_out_independently() {
        let bus = Watch::new();
        let mut a = bus.subscribe();
        bus.publish(1u32);
        assert_eq!(a.latest(), Some(1));
        let mut b = a.clone();
        assert!(!b.has_changed(), "clone inherits the parent's cursor");
        bus.publish(2);
        assert_eq!(a.latest(), Some(2));
        assert!(b.has_changed(), "each clone tracks changes independently");
        assert_eq!(b.latest(), Some(2));
        bus.publish(3);
        assert_eq!(b.changed(Duration::from_secs(1)), Some(3));
        assert_eq!(a.latest(), Some(3), "reads on one clone do not consume the other's");
    }

    #[test]
    fn clones_share_the_channel() {
        let bus = Watch::new();
        let alias = bus.clone();
        let mut sub = alias.subscribe();
        bus.publish(9u8);
        assert_eq!(bus.version(), 1);
        assert_eq!(alias.version(), 1);
        assert_eq!(sub.latest(), Some(9));
    }
}
