//! Deterministic metric registry.

use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::json;

/// One collected metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// A monotonic event count.
    Counter(u64),
    /// A bucketed value distribution (boxed: the fixed bucket array
    /// would otherwise dominate every entry's footprint).
    Histogram(Box<Histogram>),
}

/// A name-sorted snapshot of metrics collected from simulator
/// components after a run.
///
/// Components expose a `collect_metrics(&self, reg: &mut Registry)`
/// method that registers their counters and histograms under
/// dot-separated names (`mem.l1d.misses`, `core.run_length`, ...).
/// Entries are kept sorted by name and re-registering a name folds the
/// new value into the old (counters add, histograms merge), so the
/// snapshot is independent of collection order — which is what makes
/// sweep metric artifacts byte-identical between serial and parallel
/// runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    entries: Vec<(String, Metric)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or fold into) a counter named `name`.
    pub fn counter(&mut self, name: &str, value: u64) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => match &mut self.entries[i].1 {
                Metric::Counter(v) => *v += value,
                Metric::Histogram(_) => {
                    panic!("metric {name:?} already registered as a histogram")
                }
            },
            Err(i) => self.entries.insert(i, (name.to_string(), Metric::Counter(value))),
        }
    }

    /// Register (or merge into) a histogram named `name`.
    pub fn histogram(&mut self, name: &str, value: &Histogram) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => match &mut self.entries[i].1 {
                Metric::Histogram(h) => h.merge(value),
                Metric::Counter(_) => {
                    panic!("metric {name:?} already registered as a counter")
                }
            },
            Err(i) => self
                .entries
                .insert(i, (name.to_string(), Metric::Histogram(Box::new(value.clone())))),
        }
    }

    /// Fold every entry of `other` into this registry.
    pub fn merge(&mut self, other: &Registry) {
        for (name, metric) in &other.entries {
            match metric {
                Metric::Counter(v) => self.counter(name, *v),
                Metric::Histogram(h) => self.histogram(name, h),
            }
        }
    }

    /// Look up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name, if `name` is a registered counter.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            Metric::Counter(v) => Some(*v),
            Metric::Histogram(_) => None,
        }
    }

    /// Histogram by name, if `name` is a registered histogram.
    pub fn histogram_value(&self, name: &str) -> Option<&Histogram> {
        match self.get(name)? {
            Metric::Histogram(h) => Some(h.as_ref()),
            Metric::Counter(_) => None,
        }
    }

    /// Entries in ascending name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize as a JSON object, one key per metric, sorted by name.
    ///
    /// Counters serialize as bare numbers; histograms as
    /// `{"count","sum","min","max","mean","buckets":[{"lo","hi","n"}]}`.
    /// `indent` is the number of leading spaces applied to each line so
    /// the object can be embedded in larger hand-rolled documents.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::new();
        out.push_str("{\n");
        for (i, (name, metric)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            match metric {
                Metric::Counter(v) => {
                    let _ = writeln!(out, "{pad}  {}: {v}{comma}", json::escape(name));
                }
                Metric::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .map(|(lo, hi, n)| format!("{{\"lo\": {lo}, \"hi\": {hi}, \"n\": {n}}}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{pad}  {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"mean\": {:.4}, \"buckets\": [{}]}}{comma}",
                        json::escape(name),
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.mean(),
                        buckets.join(", ")
                    );
                }
            }
        }
        let _ = write!(out, "{pad}}}");
        out
    }

    /// Serialize as a single-line JSON object (same per-metric shapes as
    /// [`Registry::to_json`], no newlines). Sweep `METRICS_*.json`
    /// artifacts embed one registry per cell line so that shard merging
    /// and checkpoint resume can splice cells byte-exactly.
    pub fn to_json_line(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, metric)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match metric {
                Metric::Counter(v) => {
                    let _ = write!(out, "{}: {v}", json::escape(name));
                }
                Metric::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .nonzero_buckets()
                        .map(|(lo, hi, n)| format!("{{\"lo\": {lo}, \"hi\": {hi}, \"n\": {n}}}"))
                        .collect();
                    let _ = write!(
                        out,
                        "{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                         \"mean\": {:.4}, \"buckets\": [{}]}}",
                        json::escape(name),
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.mean(),
                        buckets.join(", ")
                    );
                }
            }
        }
        out.push('}');
        out
    }

    /// Reconstructs a registry from its serialized JSON object: bare
    /// numbers become counters, histogram-shaped objects become
    /// histograms (see [`Histogram::from_value`]). The reconstruction
    /// is exact, so re-serializing yields the original bytes — the
    /// property sweep checkpoints and shard merges rely on. Returns
    /// `None` if the value is not such an object.
    pub fn from_value(v: &json::Value) -> Option<Registry> {
        let json::Value::Obj(map) = v else {
            return None;
        };
        let mut reg = Registry::new();
        // BTreeMap iterates in ascending key order, matching the
        // registry's own name-sorted invariant.
        for (name, val) in map {
            match val {
                json::Value::Num(_) => reg.counter(name, val.as_u64()?),
                json::Value::Obj(_) => reg.histogram(name, &Histogram::from_value(val)?),
                _ => return None,
            }
        }
        Some(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_sorted_and_folded() {
        let mut r = Registry::new();
        r.counter("b.second", 2);
        r.counter("a.first", 1);
        r.counter("b.second", 3);
        let names: Vec<_> = r.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a.first", "b.second"]);
        assert_eq!(r.counter_value("b.second"), Some(5));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn histograms_merge_on_reregister() {
        let mut r = Registry::new();
        let mut h = Histogram::new();
        h.record(4);
        r.histogram("h", &h);
        r.histogram("h", &h);
        assert_eq!(r.histogram_value("h").unwrap().count(), 2);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut h = Histogram::new();
        h.record(7);
        let mut a = Registry::new();
        a.counter("x", 1);
        a.histogram("h", &h);
        let mut b = Registry::new();
        b.counter("x", 2);
        b.counter("y", 3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter_value("x"), Some(3));
    }

    #[test]
    fn json_is_deterministic_and_parses() {
        let mut r = Registry::new();
        let mut h = Histogram::new();
        h.record(3);
        h.record(300);
        r.histogram("core.run_length", &h);
        r.counter("mem.l1d.misses", 17);
        let j = r.to_json(0);
        assert_eq!(j, r.clone().to_json(0));
        let v = json::parse(&j).expect("registry json parses");
        assert_eq!(v.get("mem.l1d.misses").and_then(|m| m.as_u64()), Some(17));
        let hist = v.get("core.run_length").expect("histogram present");
        assert_eq!(hist.get("count").and_then(|c| c.as_u64()), Some(2));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let mut r = Registry::new();
        r.counter("x", 1);
        r.histogram("x", &Histogram::new());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = Registry::new();
        let mut h = Histogram::new();
        for v in [0, 1, 3, 900, 7_000_000] {
            h.record(v);
        }
        r.histogram("core.run_length", &h);
        r.histogram("mp.empty", &Histogram::new());
        r.counter("mem.l1d.misses", 17);
        r.counter("big", 1 << 50);
        for doc in [r.to_json(0), r.to_json_line()] {
            let v = json::parse(&doc).expect("registry json parses");
            let back = Registry::from_value(&v).expect("registry round-trips");
            assert_eq!(back, r);
        }
        // Single-line and indented forms agree after a round trip.
        assert!(!r.to_json_line().contains('\n'));
    }

    #[test]
    fn from_value_rejects_non_registry_shapes() {
        for doc in ["[1]", "3", "{\"x\": \"str\"}", "{\"h\": {\"count\": 1}}"] {
            let v = json::parse(doc).unwrap();
            assert!(Registry::from_value(&v).is_none(), "{doc} should not parse as a registry");
        }
    }
}
