//! Minimal JSON support: a string escaper for emitters and a small
//! recursive-descent parser for validators and schema tests.
//!
//! The workspace builds offline with no serde; every JSON document we
//! emit is hand-rolled, and this module is what lets tests and the
//! Chrome-trace validator read those documents back structurally
//! instead of by substring matching.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean if this is `true` or `false`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an
/// error; the error string carries a byte offset for debugging.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.i)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
                            // Surrogate pairs are not emitted by our
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => {
                            return Err(format!("bad escape {other:?} at byte {}", self.i));
                        }
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("parses");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn escape_round_trips() {
        let raw = "he said \"hi\"\n\tback\\slash \u{1} é";
        let v = parse(&escape(raw)).expect("escaped string parses");
        assert_eq!(v.as_str(), Some(raw));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"}").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn as_u64_guards() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-2").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
