//! Shared vocabulary for the simulator's invariant checkers.
//!
//! Every structural checker in the workspace (`interleave-mem` MSHR
//! occupancy, `interleave-mp` directory legality, `interleave-pipeline`
//! scoreboard consistency, `interleave-core` cycle accounting) reports
//! failures as a [`Violation`]: which component broke which invariant, at
//! which cycle, for which hardware context, and — when the caller knows
//! it — the seed that replays the failing run.
//!
//! The checkers themselves are *always compiled*; whether they run is a
//! runtime decision resolved by [`default_enabled`]: on when the
//! `validate` cargo feature is enabled or `INTERLEAVE_VALIDATE=1` is set,
//! off otherwise. Simulation drivers expose the same switch as a builder
//! knob so tests can enable validation without touching the environment.

use std::fmt;
use std::sync::OnceLock;

/// A broken structural invariant, with enough context to replay it.
///
/// Rendered through [`fmt::Display`] as e.g.
///
/// ```text
/// validate[mp.directory]: dirty line has an out-of-range owner at cycle 777 (context 9, seed 0x19941004): line 0x40 owned by node 9 of 4
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Component that detected the violation (`mem.mshr`, `mp.directory`,
    /// `pipeline.scoreboard`, `core.breakdown`, ...).
    pub component: &'static str,
    /// Short statement of the invariant that broke.
    pub invariant: &'static str,
    /// Simulation cycle at which the violation was detected.
    pub cycle: u64,
    /// Hardware context (or node) the violation implicates, if any.
    pub context: Option<usize>,
    /// Seed that replays the failing run, when the reporting layer knows
    /// it (simulation drivers attach it via [`Violation::with_seed`]).
    pub seed: Option<u64>,
    /// Free-form detail: the offending values.
    pub detail: String,
}

impl Violation {
    /// Builds a violation with no context or seed attached.
    pub fn new(
        component: &'static str,
        invariant: &'static str,
        cycle: u64,
        detail: String,
    ) -> Violation {
        Violation { component, invariant, cycle, context: None, seed: None, detail }
    }

    /// Attaches the implicated hardware context (or node).
    pub fn with_context(mut self, context: usize) -> Violation {
        self.context = Some(context);
        self
    }

    /// Attaches the seed that replays the failing run.
    pub fn with_seed(mut self, seed: u64) -> Violation {
        self.seed = Some(seed);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validate[{}]: {} at cycle {}", self.component, self.invariant, self.cycle)?;
        match (self.context, self.seed) {
            (Some(c), Some(s)) => write!(f, " (context {c}, seed {s:#x})")?,
            (Some(c), None) => write!(f, " (context {c})")?,
            (None, Some(s)) => write!(f, " (seed {s:#x})")?,
            (None, None) => {}
        }
        if self.detail.is_empty() {
            Ok(())
        } else {
            write!(f, ": {}", self.detail)
        }
    }
}

/// Whether `INTERLEAVE_VALIDATE=1` is set (cached on first call: the
/// checkers consult this on hot paths, and the drivers resolve it once at
/// build time anyway).
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("INTERLEAVE_VALIDATE").is_ok_and(|v| v == "1"))
}

/// Default state of the invariant checkers: on under the `validate`
/// cargo feature or `INTERLEAVE_VALIDATE=1`, off otherwise. Simulation
/// builders use this as the default for their `validate` knobs.
pub fn default_enabled() -> bool {
    cfg!(feature = "validate") || env_enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_cycle_context_and_seed() {
        let v = Violation::new("mp.directory", "dirty line has sharers", 777, "line 0x40".into())
            .with_context(9)
            .with_seed(0x1994);
        let s = v.to_string();
        assert!(s.contains("cycle 777"), "{s}");
        assert!(s.contains("context 9"), "{s}");
        assert!(s.contains("seed 0x1994"), "{s}");
        assert!(s.contains("mp.directory"), "{s}");
        assert!(s.contains("line 0x40"), "{s}");
    }

    #[test]
    fn display_without_optionals_is_clean() {
        let v = Violation::new("mem.mshr", "occupancy exceeds capacity", 3, String::new());
        assert_eq!(v.to_string(), "validate[mem.mshr]: occupancy exceeds capacity at cycle 3");
    }

    #[test]
    fn env_and_feature_defaults_are_consistent() {
        // Without the feature and without the env var the default is off;
        // with either it is on. This test only pins the wiring, not the
        // environment: default_enabled() must agree with its inputs.
        assert_eq!(default_enabled(), cfg!(feature = "validate") || env_enabled());
    }
}
