//! Chrome trace-event JSON export.
//!
//! Builds documents in the [Trace Event Format] consumed by Perfetto
//! and `chrome://tracing`: a `traceEvents` array of complete-span
//! (`"ph": "X"`) events plus metadata (`"ph": "M"`) events naming each
//! process and thread. The simulator maps one *track* (pid/tid pair)
//! to each hardware context, so a trace opens as a per-context
//! timeline of issue/stall/squash spans. Timestamps are in the
//! format's microsecond unit; the simulator writes one microsecond per
//! cycle.
//!
//! [`validate`] is the inverse: it structurally checks a document
//! (every event has `ph`, `ts`, `pid`, `tid`) and returns per-span-name
//! duration totals, which is what lets tests reconcile a trace against
//! the simulator's own cycle `Breakdown`.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Value};

/// One trace event (span or metadata).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// A complete span (`"ph": "X"`).
    Span {
        /// Track process id.
        pid: u64,
        /// Track thread id.
        tid: u64,
        /// Start timestamp (µs; the simulator uses 1 µs = 1 cycle).
        ts: u64,
        /// Duration (µs).
        dur: u64,
        /// Span name (rendered on the slice).
        name: String,
        /// Category (used by trace-viewer filtering).
        cat: String,
    },
    /// A `process_name` / `thread_name` metadata record (`"ph": "M"`).
    Meta {
        /// Which metadata key (`process_name` or `thread_name`).
        key: &'static str,
        /// Track process id.
        pid: u64,
        /// Track thread id.
        tid: u64,
        /// Human-readable label.
        label: String,
    },
}

/// Builder for a Chrome trace-event document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeTrace {
    events: Vec<Event>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Name a process track.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(Event::Meta { key: "process_name", pid, tid: 0, label: name.into() });
    }

    /// Name a thread track within a process.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(Event::Meta { key: "thread_name", pid, tid, label: name.into() });
    }

    /// Add a complete span of `dur` µs starting at `ts` µs.
    pub fn span(&mut self, pid: u64, tid: u64, ts: u64, dur: u64, name: &str, cat: &str) {
        self.events.push(Event::Span { pid, tid, ts, dur, name: name.into(), cat: cat.into() });
    }

    /// Number of events recorded (spans + metadata).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize the trace as a Chrome trace-event JSON document.
    ///
    /// Output is fully determined by the recorded events (no
    /// timestamps or environment leak in), one event per line.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"traceEvents\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            let comma = if i + 1 == self.events.len() { "" } else { "," };
            match ev {
                Event::Meta { key, pid, tid, label } => {
                    let _ = writeln!(
                        out,
                        "    {{\"name\": \"{key}\", \"ph\": \"M\", \"ts\": 0, \"pid\": {pid}, \
                         \"tid\": {tid}, \"args\": {{\"name\": {}}}}}{comma}",
                        json::escape(label)
                    );
                }
                Event::Span { pid, tid, ts, dur, name, cat } => {
                    let _ = writeln!(
                        out,
                        "    {{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {ts}, \
                         \"dur\": {dur}, \"pid\": {pid}, \"tid\": {tid}}}{comma}",
                        json::escape(name),
                        json::escape(cat)
                    );
                }
            }
        }
        out.push_str("  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
        out
    }
}

/// Structural summary returned by [`validate`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events in the document (spans + metadata).
    pub events: usize,
    /// Number of `"ph": "X"` span events.
    pub spans: usize,
    /// Summed `dur` per span name (µs == cycles for simulator traces).
    pub dur_by_name: BTreeMap<String, u64>,
    /// Number of span events per `(pid, tid)` track.
    pub spans_by_track: BTreeMap<(u64, u64), usize>,
}

/// Structurally validate a Chrome trace-event JSON document.
///
/// Checks that the document is valid JSON with a non-empty
/// `traceEvents` array and that *every* event carries `ph` (a
/// single-character string), an integral `ts`, and integral
/// `pid`/`tid`; span (`X`) events must also carry `name` and an
/// integral `dur`. Spans on each `(pid, tid)` track must additionally
/// obey stack discipline: any two spans are either disjoint or one is
/// fully contained in the other (partial overlap would render as a
/// corrupt timeline). Both simulator context tracks and host-profiler
/// tracks ([`crate::profile::spans_to_chrome`]) satisfy this by
/// construction. Returns per-name duration totals so callers can
/// reconcile span time against independent cycle accounting.
pub fn validate(doc: &str) -> Result<TraceSummary, String> {
    let root = json::parse(doc)?;
    let events =
        root.get("traceEvents").and_then(Value::as_arr).ok_or("missing \"traceEvents\" array")?;
    if events.is_empty() {
        return Err("empty \"traceEvents\" array".into());
    }
    // Spans grouped per (pid, tid) track as (ts, dur, name), for the
    // stack-discipline check below.
    type TrackSpans = BTreeMap<(u64, u64), Vec<(u64, u64, String)>>;
    let mut summary = TraceSummary { events: events.len(), ..TraceSummary::default() };
    let mut by_track: TrackSpans = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        if ph.chars().count() != 1 {
            return Err(format!("event {i}: \"ph\" must be one character, got {ph:?}"));
        }
        ev.get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing integral \"ts\""))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing integral \"pid\""))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing integral \"tid\""))?;
        if ph == "X" {
            let name = ev
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("event {i}: span missing \"name\""))?;
            let dur = ev
                .get("dur")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event {i}: span missing integral \"dur\""))?;
            summary.spans += 1;
            *summary.dur_by_name.entry(name.to_string()).or_insert(0) += dur;
            *summary.spans_by_track.entry((pid, tid)).or_insert(0) += 1;
            let ts = ev.get("ts").and_then(Value::as_u64).unwrap_or(0);
            by_track.entry((pid, tid)).or_default().push((ts, dur, name.to_string()));
        }
    }
    for ((pid, tid), mut spans) in by_track {
        // Sorting by (ts, -dur) puts an enclosing span before its
        // children regardless of document order; a stack of open end
        // times then detects any partial overlap.
        spans.sort_unstable_by_key(|&(ts, dur, _)| (ts, std::cmp::Reverse(dur)));
        let mut open: Vec<u64> = Vec::new();
        for (ts, dur, name) in spans {
            while open.last().is_some_and(|&end| ts >= end) {
                open.pop();
            }
            if let Some(&end) = open.last() {
                if ts + dur > end {
                    return Err(format!(
                        "track ({pid}, {tid}): span {name:?} [{ts}, {end_new}) partially \
                         overlaps an enclosing span ending at {end}",
                        end_new = ts + dur
                    ));
                }
            }
            open.push(ts + dur);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.process_name(0, "interleave-sim");
        t.thread_name(0, 1, "ctx0");
        t.span(0, 1, 0, 3, "busy", "busy");
        t.span(0, 1, 3, 2, "data mem", "stall");
        t.span(0, 1, 5, 1, "busy", "busy");
        t
    }

    #[test]
    fn round_trips_through_validator() {
        let json = sample().to_json();
        let summary = validate(&json).expect("valid trace");
        assert_eq!(summary.events, 5);
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.dur_by_name.get("busy"), Some(&4));
        assert_eq!(summary.dur_by_name.get("data mem"), Some(&2));
        assert_eq!(summary.spans_by_track.get(&(0, 1)), Some(&3));
    }

    #[test]
    fn json_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate("{}").is_err());
        assert!(validate(r#"{"traceEvents": []}"#).is_err());
        // Span with no ts.
        let bad = r#"{"traceEvents": [{"name": "x", "ph": "X", "dur": 1, "pid": 0, "tid": 0}]}"#;
        let err = validate(bad).unwrap_err();
        assert!(err.contains("ts"), "unexpected error: {err}");
        // Metadata event with no pid.
        let bad = r#"{"traceEvents": [{"name": "thread_name", "ph": "M", "ts": 0, "tid": 0}]}"#;
        assert!(validate(bad).unwrap_err().contains("pid"));
        // Not JSON at all.
        assert!(validate("traceEvents").is_err());
    }

    #[test]
    fn validator_accepts_nested_and_rejects_partial_overlap() {
        // Proper nesting (out of document order) is fine.
        let mut nested = ChromeTrace::new();
        nested.span(0, 1, 2, 3, "inner", "host");
        nested.span(0, 1, 0, 10, "outer", "host");
        nested.span(0, 1, 10, 4, "sibling", "host");
        validate(&nested.to_json()).expect("nested spans validate");

        // Same intervals on different tracks never interact.
        let mut tracks = ChromeTrace::new();
        tracks.span(0, 1, 0, 10, "a", "host");
        tracks.span(0, 2, 5, 10, "b", "host");
        validate(&tracks.to_json()).expect("overlap across tracks is fine");

        // Partial overlap on one track is structural corruption.
        let mut bad = ChromeTrace::new();
        bad.span(0, 1, 0, 10, "outer", "host");
        bad.span(0, 1, 5, 10, "straddler", "host");
        let err = validate(&bad.to_json()).unwrap_err();
        assert!(err.contains("straddler"), "unexpected error: {err}");
        assert!(err.contains("partially overlaps"), "unexpected error: {err}");
    }
}
