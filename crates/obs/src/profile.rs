//! Hierarchical host-phase self-profiler.
//!
//! The paper's methodology rests on exact attribution of *simulated*
//! cycles (the `Breakdown`); this module is the same idea applied to
//! *host* time. Hot phases of the simulator (cell execution, the uni
//! slice loop, idle skipping, quantum barriers, shard advances, ...)
//! bracket themselves with [`enter`] scopes; ultra-hot per-event sites
//! (ticks, event pops, generated instructions) use the clock-free
//! [`mark`] so enabling the profiler never distorts what it measures.
//!
//! # Accumulation model
//!
//! Each thread accumulates into a thread-local table keyed by the
//! `&'static str` phase name (pointer-compared on the hot path, so a
//! lookup is a short binary search over addresses, not a string
//! compare). A scope stack tracks child time, so every exit charges
//! `total` and `self = total - children` exactly once. When a thread
//! dies — sweep workers live inside `std::thread::scope` — its table is
//! folded into a process-wide [`PhaseProfile`] by the same name-sorted
//! commutative/associative monoid fold the metric [`crate::Registry`]
//! uses (property-tested in `tests/profile_properties.rs`), so the
//! harvested profile is independent of thread scheduling. [`take`]
//! flushes the calling thread and swaps the global profile out.
//!
//! # Cost when disabled
//!
//! Mirrors `INTERLEAVE_VALIDATE`: the instrumentation is always
//! compiled, and [`enabled`] resolves once from the `profile` cargo
//! feature or `INTERLEAVE_PROFILE=1` (overridable at runtime with
//! [`set_enabled`], which the `interleave-sim profile` subcommand
//! uses). Disabled cost per site is one relaxed atomic load and a
//! branch — no clock read, no TLS access.
//!
//! # Test hook
//!
//! `INTERLEAVE_PROFILE_SLOW=<phase>:<micros>` sleeps that long inside
//! every exit of the named scope, inflating its self time and the real
//! wall clock. CI uses it to prove the phase-attributed throughput gate
//! names the regressed phase (see `scripts/throughput_gate.sh`).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::chrome::ChromeTrace;
use crate::json::{self, Value};

/// Accumulated statistics of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Scope entries plus [`mark`] hits.
    pub calls: u64,
    /// Nanoseconds spent inside the phase, children included.
    pub total_ns: u64,
    /// Nanoseconds spent inside the phase, children excluded.
    pub self_ns: u64,
}

impl PhaseStats {
    /// Folds `other` into this entry (plain field-wise addition, so the
    /// fold is trivially commutative and associative).
    pub fn merge(&mut self, other: PhaseStats) {
        self.calls += other.calls;
        self.total_ns += other.total_ns;
        self.self_ns += other.self_ns;
    }
}

/// A name-sorted snapshot of per-phase host-time statistics.
///
/// The merge fold mirrors [`crate::Registry`]: entries are kept sorted
/// by name and re-recording a name folds field-wise, so folding
/// per-thread profiles is independent of harvest order (the property
/// `tests/profile_properties.rs` pins).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    entries: Vec<(String, PhaseStats)>,
}

impl PhaseProfile {
    /// An empty profile (the fold identity).
    pub fn new() -> PhaseProfile {
        PhaseProfile::default()
    }

    /// Folds `stats` into the entry named `name`.
    pub fn record(&mut self, name: &str, stats: PhaseStats) {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(i) => self.entries[i].1.merge(stats),
            Err(i) => self.entries.insert(i, (name.to_string(), stats)),
        }
    }

    /// Folds every entry of `other` into this profile.
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (name, stats) in &other.entries {
            self.record(name, *stats);
        }
    }

    /// Statistics of the phase named `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<PhaseStats> {
        self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)).ok().map(|i| self.entries[i].1)
    }

    /// Entries in ascending name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PhaseStats)> {
        self.entries.iter().map(|(n, s)| (n.as_str(), s))
    }

    /// Number of recorded phases.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of every phase's self time — with a root scope around the
    /// unit of work (the runner wraps each cell in `runner.cell`), this
    /// approaches the measured wall time from below.
    pub fn total_self_ns(&self) -> u64 {
        self.entries.iter().map(|(_, s)| s.self_ns).sum()
    }

    /// Serialize as a JSON array, one phase object per line (so shell
    /// gates can `grep` individual phases), sorted by name. `indent` is
    /// the number of leading spaces applied to each line, as in
    /// [`crate::Registry::to_json`].
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::new();
        out.push_str("[\n");
        for (i, (name, s)) in self.entries.iter().enumerate() {
            let comma = if i + 1 == self.entries.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "{pad}  {{\"name\": {}, \"calls\": {}, \"total_ns\": {}, \"self_ns\": {}}}{comma}",
                json::escape(name),
                s.calls,
                s.total_ns,
                s.self_ns
            );
        }
        let _ = write!(out, "{pad}]");
        out
    }

    /// Rebuilds a profile from the [`PhaseProfile::to_json`] array (or
    /// any parsed `Value` of the same shape, e.g. the `"phases"` field
    /// of a `PROFILE_*.json` document).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed entry.
    pub fn from_value(value: &Value) -> Result<PhaseProfile, String> {
        let arr = value.as_arr().ok_or("phase profile must be a JSON array")?;
        let mut profile = PhaseProfile::new();
        for (i, entry) in arr.iter().enumerate() {
            let name = entry
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("phase {i}: missing \"name\""))?;
            let field = |key: &str| {
                entry
                    .get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("phase {i} ({name}): missing integral {key:?}"))
            };
            profile.record(
                name,
                PhaseStats {
                    calls: field("calls")?,
                    total_ns: field("total_ns")?,
                    self_ns: field("self_ns")?,
                },
            );
        }
        Ok(profile)
    }

    /// Parses the output of [`PhaseProfile::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message for unparseable JSON or a malformed entry.
    pub fn from_json(doc: &str) -> Result<PhaseProfile, String> {
        PhaseProfile::from_value(&json::parse(doc)?)
    }
}

/// One completed host-time span, for Chrome-trace export ([`take_spans`]
/// / [`spans_to_chrome`]). Only recorded while [`record_spans`] is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSpan {
    /// Profiler thread ordinal (one track per host thread).
    pub thread: u64,
    /// Phase name.
    pub name: &'static str,
    /// Microseconds since the profiler epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

// --- enable switch -------------------------------------------------------

const STATE_UNRESOLVED: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);
static SPANS_ON: AtomicU8 = AtomicU8::new(0);
static THREAD_SEQ: AtomicU64 = AtomicU64::new(0);

/// Whether `INTERLEAVE_PROFILE=1` is set (cached on first query).
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("INTERLEAVE_PROFILE").is_ok_and(|v| v == "1"))
}

/// The initial profiling default: on when the `profile` cargo feature
/// is enabled or `INTERLEAVE_PROFILE=1` is set (mirroring
/// `validate::default_enabled`).
pub fn default_enabled() -> bool {
    cfg!(feature = "profile") || env_enabled()
}

/// Whether profiling is currently on. Disabled cost at every
/// instrumentation site is this one relaxed load plus a branch.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => resolve_enabled(),
    }
}

#[cold]
fn resolve_enabled() -> bool {
    let on = default_enabled();
    if on {
        let _ = epoch();
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Overrides the enable switch at runtime (used by `interleave-sim
/// profile`, which profiles regardless of the environment).
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Turns span recording for Chrome-trace export on or off (off by
/// default: spans cost memory proportional to scope entries, while the
/// aggregate profile is O(phases)). Only scopes entered while both
/// [`enabled`] and this switch are on are recorded; each thread keeps at
/// most 65,536 spans and counts the overflow as dropped.
pub fn record_spans(on: bool) {
    SPANS_ON.store(u8::from(on), Ordering::Relaxed);
}

#[inline]
fn spans_on() -> bool {
    SPANS_ON.load(Ordering::Relaxed) != 0
}

/// The instant host spans are timestamped against (set the first time
/// profiling turns on).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds from `epoch` to `t`, truncated (0 if `t` precedes it).
fn micros_since(epoch: Instant, t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(epoch).as_micros()).unwrap_or(u64::MAX)
}

/// The `INTERLEAVE_PROFILE_SLOW=<phase>:<micros>` test hook, parsed
/// once.
fn slow_hook() -> Option<&'static (String, u64)> {
    static HOOK: OnceLock<Option<(String, u64)>> = OnceLock::new();
    HOOK.get_or_init(|| {
        let spec = std::env::var("INTERLEAVE_PROFILE_SLOW").ok()?;
        let (name, micros) = spec.rsplit_once(':')?;
        Some((name.to_string(), micros.parse().ok()?))
    })
    .as_ref()
}

// --- thread-local accumulation -------------------------------------------

const MAX_SPANS_PER_THREAD: usize = 1 << 16;

struct Frame {
    slot: u32,
    start: Instant,
    child_ns: u64,
}

/// Harvested but not yet taken state (all threads fold in here).
#[derive(Default)]
struct Harvest {
    profile: PhaseProfile,
    spans: Vec<HostSpan>,
    dropped_spans: u64,
}

fn global() -> &'static Mutex<Harvest> {
    static GLOBAL: OnceLock<Mutex<Harvest>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(Harvest::default()))
}

struct ThreadProfiler {
    thread: u64,
    /// `(name ptr, name len) -> slot`, sorted by key: same-site lookups
    /// are a short binary search over addresses, never a string compare.
    /// Distinct sites sharing one name get distinct slots here and fold
    /// together by name at harvest time.
    lookup: Vec<(usize, usize, u32)>,
    slots: Vec<(&'static str, PhaseStats)>,
    stack: Vec<Frame>,
    spans: Vec<HostSpan>,
    dropped_spans: u64,
}

impl ThreadProfiler {
    fn new() -> ThreadProfiler {
        ThreadProfiler {
            thread: THREAD_SEQ.fetch_add(1, Ordering::Relaxed),
            lookup: Vec::new(),
            slots: Vec::new(),
            stack: Vec::new(),
            spans: Vec::new(),
            dropped_spans: 0,
        }
    }

    fn slot(&mut self, name: &'static str) -> u32 {
        let key = (name.as_ptr() as usize, name.len());
        match self.lookup.binary_search_by(|&(p, l, _)| (p, l).cmp(&key)) {
            Ok(i) => self.lookup[i].2,
            Err(i) => {
                let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 phases");
                self.slots.push((name, PhaseStats::default()));
                self.lookup.insert(i, (key.0, key.1, slot));
                slot
            }
        }
    }

    fn exit(&mut self, end: Instant) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let dur = end.saturating_duration_since(frame.start);
        let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
        let stats = &mut self.slots[frame.slot as usize].1;
        stats.calls += 1;
        stats.total_ns += ns;
        stats.self_ns += ns.saturating_sub(frame.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += ns;
        }
        if spans_on() {
            if self.spans.len() < MAX_SPANS_PER_THREAD {
                let epoch = epoch();
                // Truncate both endpoints to microseconds and derive the
                // duration from them: truncating start and duration
                // independently can push a child's end one microsecond
                // past its parent's, which the Chrome-trace nesting
                // validator rejects.
                let ts_us = micros_since(epoch, frame.start);
                let end_us = micros_since(epoch, end);
                self.spans.push(HostSpan {
                    thread: self.thread,
                    name: self.slots[frame.slot as usize].0,
                    ts_us,
                    dur_us: end_us.saturating_sub(ts_us),
                });
            } else {
                self.dropped_spans += 1;
            }
        }
    }

    fn flush_into(&mut self, harvest: &mut Harvest) {
        for (name, stats) in &mut self.slots {
            if *stats != PhaseStats::default() {
                harvest.profile.record(name, *stats);
                *stats = PhaseStats::default();
            }
        }
        harvest.spans.append(&mut self.spans);
        harvest.dropped_spans += std::mem::take(&mut self.dropped_spans);
    }
}

impl Drop for ThreadProfiler {
    fn drop(&mut self) {
        let mut harvest = lock_global();
        self.flush_into(&mut harvest);
    }
}

fn lock_global() -> std::sync::MutexGuard<'static, Harvest> {
    global().lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

thread_local! {
    static TLS: RefCell<ThreadProfiler> = RefCell::new(ThreadProfiler::new());
}

// --- instrumentation API -------------------------------------------------

/// RAII guard returned by [`enter`]; dropping it exits the scope.
#[must_use = "the phase is timed until the guard drops"]
#[derive(Debug)]
pub struct ScopeGuard {
    active: bool,
}

/// Opens a timed hierarchical scope named `name`. Nested scopes charge
/// their time to the parent's `total` but not its `self`. No-op (one
/// atomic load) when profiling is off.
#[inline]
pub fn enter(name: &'static str) -> ScopeGuard {
    if !enabled() {
        return ScopeGuard { active: false };
    }
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let slot = t.slot(name);
        t.stack.push(Frame { slot, start: Instant::now(), child_ns: 0 });
    });
    ScopeGuard { active: true }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        if let Some((slow_name, micros)) = slow_hook() {
            let current = TLS.with(|tls| {
                let t = tls.borrow();
                t.stack.last().map(|f| t.slots[f.slot as usize].0)
            });
            if current == Some(slow_name.as_str()) {
                // Sleep before reading the exit clock so the synthetic
                // slowdown lands inside this scope's measured self time.
                std::thread::sleep(Duration::from_micros(*micros));
            }
        }
        let end = Instant::now();
        TLS.with(|tls| tls.borrow_mut().exit(end));
    }
}

/// Counts one hit of `name` without reading the clock — for per-event
/// sites too hot to time (ticks, event pops, generated instructions).
/// The hit appears in the profile with `calls` only; its time stays in
/// the enclosing scope's self time.
#[inline]
pub fn mark(name: &'static str) {
    if !enabled() {
        return;
    }
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let slot = t.slot(name);
        t.slots[slot as usize].1.calls += 1;
    });
}

/// Counts `n` hits of `name` in one shot — the batched form of
/// [`mark`], for sites that amortize bookkeeping over a run of events
/// (e.g. one generator refill producing a whole basic block). The hits
/// are indistinguishable in the profile from `n` separate marks.
#[inline]
pub fn mark_n(name: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let slot = t.slot(name);
        t.slots[slot as usize].1.calls += n;
    });
}

/// Folds the calling thread's accumulation into the global profile
/// (worker threads fold automatically when they exit; the main thread
/// must flush explicitly, which [`take`] does).
pub fn flush_thread() {
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let mut harvest = lock_global();
        t.flush_into(&mut harvest);
    });
}

/// Flushes the calling thread and returns the accumulated global
/// profile, resetting it. Flush and swap happen under one lock hold so
/// a concurrent `take` cannot observe (or steal) a half-flushed
/// harvest. Open scopes on any thread are not included until they exit.
pub fn take() -> PhaseProfile {
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let mut harvest = lock_global();
        t.flush_into(&mut harvest);
        std::mem::take(&mut harvest.profile)
    })
}

/// Flushes the calling thread and returns `(spans, dropped)`: every
/// recorded host span plus the count that overflowed the per-thread
/// buffer, resetting both.
pub fn take_spans() -> (Vec<HostSpan>, u64) {
    TLS.with(|tls| {
        let mut t = tls.borrow_mut();
        let mut harvest = lock_global();
        t.flush_into(&mut harvest);
        (std::mem::take(&mut harvest.spans), std::mem::take(&mut harvest.dropped_spans))
    })
}

/// Renders host spans as a Chrome trace-event document on one process
/// track (`pid` 9000, "host profiler"), one thread track per profiler
/// thread — openable in Perfetto alongside a simulated-time trace
/// (which uses per-context pids starting at 0). Spans are emitted
/// sorted by `(thread, ts, -dur)` so parents precede children and the
/// output is deterministic for a given span set.
pub fn spans_to_chrome(spans: &[HostSpan]) -> ChromeTrace {
    const HOST_PID: u64 = 9000;
    let mut trace = ChromeTrace::new();
    trace.process_name(HOST_PID, "host profiler");
    let mut threads: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in &threads {
        trace.thread_name(HOST_PID, *t, &format!("host thread {t}"));
    }
    let mut ordered: Vec<&HostSpan> = spans.iter().collect();
    ordered.sort_unstable_by_key(|s| (s.thread, s.ts_us, std::cmp::Reverse(s.dur_us), s.name));
    for s in ordered {
        trace.span(HOST_PID, s.thread, s.ts_us, s.dur_us, s.name, "host");
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global switch or inspect the
    /// global harvest.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn nested_scopes_split_self_and_total() {
        let _serial = serial();
        set_enabled(true);
        let _ = take();
        {
            let _outer = enter("test.outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = enter("test.inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let profile = take();
        set_enabled(false);
        let outer = profile.get("test.outer").expect("outer recorded");
        let inner = profile.get("test.inner").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(inner.total_ns >= 2_000_000, "inner ran 2ms, got {}ns", inner.total_ns);
        assert!(outer.total_ns >= inner.total_ns + 2_000_000);
        assert_eq!(inner.total_ns, inner.self_ns, "leaf scope: self == total");
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
    }

    #[test]
    fn marks_count_without_timing() {
        let _serial = serial();
        set_enabled(true);
        let _ = take();
        for _ in 0..5 {
            mark("test.mark");
        }
        let profile = take();
        set_enabled(false);
        let m = profile.get("test.mark").expect("mark recorded");
        assert_eq!(m.calls, 5);
        assert_eq!(m.total_ns, 0);
        assert_eq!(m.self_ns, 0);
    }

    #[test]
    fn mark_n_counts_in_one_shot() {
        let _serial = serial();
        set_enabled(true);
        let _ = take();
        mark_n("test.mark_n", 7);
        mark_n("test.mark_n", 0); // zero-length batches record nothing
        mark("test.mark_n");
        let profile = take();
        set_enabled(false);
        let m = profile.get("test.mark_n").expect("mark_n recorded");
        assert_eq!(m.calls, 8);
        assert_eq!(m.total_ns, 0);
    }

    #[test]
    fn disabled_records_nothing() {
        let _serial = serial();
        set_enabled(false);
        let _ = take();
        {
            let _scope = enter("test.disabled");
            mark("test.disabled.mark");
        }
        let profile = take();
        assert_eq!(profile.get("test.disabled"), None);
        assert_eq!(profile.get("test.disabled.mark"), None);
    }

    #[test]
    fn worker_threads_fold_into_the_harvest() {
        let _serial = serial();
        set_enabled(true);
        let _ = take();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _scope = enter("test.worker");
                    mark("test.worker.mark");
                });
            }
        });
        let profile = take();
        set_enabled(false);
        assert_eq!(profile.get("test.worker").expect("folded").calls, 4);
        assert_eq!(profile.get("test.worker.mark").expect("folded").calls, 4);
    }

    #[test]
    fn profile_json_round_trips() {
        let mut p = PhaseProfile::new();
        p.record("b.phase", PhaseStats { calls: 2, total_ns: 100, self_ns: 60 });
        p.record("a.phase", PhaseStats { calls: 1, total_ns: 40, self_ns: 40 });
        p.record("b.phase", PhaseStats { calls: 1, total_ns: 10, self_ns: 10 });
        let json = p.to_json(0);
        assert_eq!(json, p.to_json(0), "serialization is deterministic");
        let back = PhaseProfile::from_json(&json).expect("round trip");
        assert_eq!(back, p);
        assert_eq!(back.get("b.phase"), Some(PhaseStats { calls: 3, total_ns: 110, self_ns: 70 }));
        assert_eq!(back.total_self_ns(), 110);
    }

    #[test]
    fn from_json_rejects_malformed_entries() {
        assert!(PhaseProfile::from_json("{}").is_err());
        assert!(PhaseProfile::from_json(r#"[{"calls": 1}]"#).is_err());
        let err =
            PhaseProfile::from_json(r#"[{"name": "x", "calls": 1, "total_ns": 2}]"#).unwrap_err();
        assert!(err.contains("self_ns"), "unexpected error: {err}");
    }

    #[test]
    fn spans_export_as_a_valid_chrome_trace() {
        let spans = [
            HostSpan { thread: 1, name: "outer", ts_us: 0, dur_us: 10 },
            HostSpan { thread: 1, name: "inner", ts_us: 2, dur_us: 3 },
            HostSpan { thread: 0, name: "other", ts_us: 5, dur_us: 1 },
        ];
        let doc = spans_to_chrome(&spans).to_json();
        let summary = crate::chrome::validate(&doc).expect("host trace validates");
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.dur_by_name.get("outer"), Some(&10));
        assert_eq!(summary.spans_by_track.get(&(9000, 1)), Some(&2));
    }

    #[test]
    fn recorded_spans_nest_and_validate() {
        let _serial = serial();
        set_enabled(true);
        record_spans(true);
        let _ = take_spans();
        let _ = take();
        {
            let _outer = enter("test.span.outer");
            let _inner = enter("test.span.inner");
        }
        record_spans(false);
        set_enabled(false);
        let (spans, dropped) = take_spans();
        let _ = take();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"test.span.outer"), "got {names:?}");
        assert!(names.contains(&"test.span.inner"), "got {names:?}");
        crate::chrome::validate(&spans_to_chrome(&spans).to_json()).expect("valid");
    }

    #[test]
    fn merge_matches_manual_fold() {
        let mut a = PhaseProfile::new();
        a.record("x", PhaseStats { calls: 1, total_ns: 5, self_ns: 5 });
        let mut b = PhaseProfile::new();
        b.record("x", PhaseStats { calls: 2, total_ns: 7, self_ns: 3 });
        b.record("y", PhaseStats { calls: 1, total_ns: 1, self_ns: 1 });
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("x"), Some(PhaseStats { calls: 3, total_ns: 12, self_ns: 8 }));
        assert_eq!(ab.len(), 2);
    }
}
