//! Monotonic event counter.

/// A monotonically increasing event counter.
///
/// A thin wrapper over `u64` so instrumentation points read as intent
/// (`self.stats.squashes.inc()`) and so counters can be collected into
/// a [`crate::Registry`] uniformly. All methods are `#[inline]`; the
/// enabled cost is a single add.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    #[inline]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Reset to zero (used when a simulation discards warmup state).
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }
}
