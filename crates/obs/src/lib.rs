//! Instrumentation layer for the interleave simulator.
//!
//! This crate is the measurement substrate the rest of the workspace
//! reports through. It deliberately depends on nothing (not even the
//! other `interleave-*` crates) so every layer of the stack can use it:
//!
//! * [`Counter`] — a monotonically increasing `u64` event counter.
//! * [`Histogram`] — a power-of-two bucketed value distribution
//!   (run lengths, miss latencies, ...).
//! * [`Registry`] — a deterministic, name-sorted snapshot of metrics
//!   collected from simulator components after a run.
//! * [`chrome`] — a Chrome trace-event JSON builder and validator so
//!   per-context pipeline timelines can be opened in Perfetto or
//!   `chrome://tracing`.
//! * [`json`] — a minimal JSON parser used by the trace validator and
//!   the schema tests (the workspace is offline; no serde).
//! * [`validate`] — the shared [`validate::Violation`] report type and
//!   enable logic for the workspace-wide invariant checkers.
//! * [`profile`] — the hierarchical host-phase self-profiler: timed
//!   scopes and clock-free marks accumulate per thread and fold into a
//!   [`profile::PhaseProfile`] by the same monoid as [`Registry`].
//! * [`bus`] — a latest-wins watch channel ([`bus::Watch`]) the sweep
//!   runner publishes live per-cell telemetry snapshots through.
//!
//! # Overhead when disabled
//!
//! Counters and histograms are plain integer fields bumped at *event*
//! sites (a cache miss, a squash, a context switch), never per cycle,
//! and every recording method is `#[inline]` — the enabled cost is an
//! add or a compare per event. The only per-cycle instrumentation is
//! the issue trace consumed by the Chrome exporter, and that stays
//! behind the processor's existing `Option`-gated trace buffer: when
//! tracing is off the per-cycle cost is a single branch on `None`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod chrome;
mod counter;
mod histogram;
pub mod json;
pub mod profile;
mod registry;
pub mod validate;

pub use counter::Counter;
pub use histogram::Histogram;
pub use registry::{Metric, Registry};
