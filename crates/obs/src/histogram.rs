//! Power-of-two bucketed histogram.

use crate::json::Value;

/// Number of buckets: one for the value 0 plus one per power of two.
const BUCKETS: usize = 65;

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `b` (for `b >= 1`) holds values
/// in `[2^(b-1), 2^b - 1]`. Exact `count`, `sum`, `min` and `max` are
/// kept alongside the buckets, so means are exact and only percentile
/// queries are quantized. Recording is `#[inline]` and costs a handful
/// of integer ops — cheap enough to leave on unconditionally at event
/// sites (run ends, miss completions), which is how the simulator uses
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Approximate `p`-th percentile (`0.0..=1.0`): the upper bound of
    /// the first bucket whose cumulative count reaches `p * count`,
    /// clamped to the exact observed `max`. Returns 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.max(1);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(b).min(self.max);
            }
        }
        self.max
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(low, high, count)` ranges, in ascending
    /// value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (bucket_low(b), bucket_high(b), n))
    }

    /// Discard all samples (used when a simulation discards warmup
    /// state).
    pub fn reset(&mut self) {
        *self = Histogram::default();
    }

    /// Reconstructs a histogram from its serialized JSON object (the
    /// `{"count","sum","min","max","mean","buckets"}` shape written by
    /// [`crate::Registry::to_json`]). The reconstruction is exact — the
    /// same buckets, count, sum, min, and max — which is what lets
    /// sweep checkpoints and shard merges reproduce byte-identical
    /// artifacts. Returns `None` if the value is not such an object.
    pub fn from_value(v: &Value) -> Option<Histogram> {
        let count = v.get("count")?.as_u64()?;
        let mut h = Histogram {
            buckets: [0; BUCKETS],
            count,
            sum: v.get("sum")?.as_u64()?,
            // `to_json` writes the *observed* min, which reads as 0 for
            // an empty histogram; restore the internal sentinel so a
            // later `merge`/`record` keeps tracking the true minimum.
            min: if count == 0 { u64::MAX } else { v.get("min")?.as_u64()? },
            max: v.get("max")?.as_u64()?,
        };
        for b in v.get("buckets")?.as_arr()? {
            let lo = b.get("lo")?.as_u64()?;
            let n = b.get("n")?.as_u64()?;
            h.buckets[bucket_of(lo)] += n;
        }
        Some(h)
    }
}

/// Inclusive lower bound of bucket `b`.
fn bucket_low(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Inclusive upper bound of bucket `b`.
fn bucket_high(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b == 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_benign() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn buckets_by_power_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        let got: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(
            got,
            vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (4, 7, 2), (8, 15, 1), (512, 1023, 1)]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(5);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn percentile_clamps_to_max() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(1.0), 100);
        assert!(h.percentile(0.5) >= 50);
        assert!(h.percentile(0.0) >= 1);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(2);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 11);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 9);
    }

    #[test]
    fn extreme_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.nonzero_buckets().count(), 1);
    }
}
