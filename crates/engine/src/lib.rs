//! Generic discrete-event substrate shared by every simulator in the
//! workspace.
//!
//! The uniprocessor hot loop and the multiprocessor quantum-barrier
//! driver are two faces of one discrete-event idea; this crate hosts the
//! pieces both instantiate instead of forking:
//!
//! * [`EventQueue`] — a cycle-indexed min-heap over any payload
//!   implementing [`Sequenced`], keyed `(due, class, seq)` so
//!   processing order is a pure function of scheduling order, never of
//!   heap internals.
//! * [`IdleBound`] and [`Quiescence`] — the time authority's vocabulary
//!   for "nothing can happen before cycle t", used by idle-cycle
//!   skipping inside one component and by adaptive lookahead across a
//!   whole machine. [`quantum_end`] is the single shared clamp of a
//!   quantum to the next scheduled boundary (warmup end or validation
//!   chunk), so no driver can drift from the schedule.
//! * [`Inbox`] and [`Msg`] — the deterministic cross-shard router:
//!   messages totally ordered by `(due cycle, source lane, per-lane
//!   sequence)` keys and delivered in exactly that order.
//! * [`rand64`] — stateless keyed sampling: a draw is a pure function
//!   of `(seed, lane, index)`, so concurrent consumers sample identical
//!   values no matter how the host schedules them. The latency model
//!   and the synthetic workload generator both key off it.
//! * [`QuantumSchedule`] and [`run_sharded`] — the conservative
//!   quantum-barrier driver: quanta of at most one lookahead, clipped to
//!   warmup and validation-chunk boundaries, executed serially or on
//!   host worker threads with bit-identical results, with optional
//!   adaptive widening of quanta across provably quiescent stretches.
//!
//! Nothing in this crate knows about processors, caches, or directories;
//! `interleave-core` instantiates the queue and idle bounds for its
//! pipeline loop, `interleave-mp` instantiates the router and driver for
//! its sharded machine, and future scenario families (shared-L1 thread
//! coupling, deeply pipelined C-slow schemes) can instantiate the same
//! substrate rather than fork a third copy. The only dependency is the
//! workspace instrumentation layer: the driver brackets its segments and
//! barrier exchanges with `interleave_obs::profile` scopes (and the
//! queue/router count pops) so host time attributes to the substrate's
//! phases — a relaxed atomic load per site when profiling is off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod queue;
pub mod rand64;
mod router;
mod time;

pub use driver::{
    lock, read_lock, run_sharded, write_lock, Abort, Hooks, QuantumSchedule, Segment, Shard,
};
pub use queue::{EventQueue, Sequenced};
pub use router::{Inbox, Msg, MsgKey};
pub use time::{quantum_end, IdleBound, Quiescence};
