//! The conservative quantum-barrier driver.
//!
//! Time advances in quanta of at most one lookahead `hop`: within a
//! quantum every shard advances independently (optionally on parallel
//! host threads), and at the quantum barrier the machine's
//! [`Hooks::exchange`] replays logged state changes and routes messages.
//! Because no cross-shard message can be due before the end of the
//! quantum that produced it, results are bit-identical for any worker
//! count.
//!
//! [`QuantumSchedule::run`] owns the barrier placement — warmup in
//! hop-sized quanta clipped to the warmup boundary, then measurement in
//! fixed validation chunks, every clamp going through
//! [`crate::quantum_end`] — and is shared verbatim by the serial and
//! threaded executors of [`run_sharded`], so the worker count cannot
//! influence the schedule.
//!
//! # Adaptive lookahead
//!
//! With [`QuantumSchedule::adaptive`] set, the schedule consults
//! [`Hooks::quiescent`] before each quantum. If the machine is provably
//! quiet until cycle `q` — every shard idle, no message due before `q` —
//! the next quantum widens past the fixed `hop` floor to the last fixed
//! barrier cycle at or before `q` (or all the way to the boundary when
//! `q` lies beyond it). Every skipped barrier falls inside the quiet
//! window, so its exchange would have replayed nothing and routed
//! nothing: removing it is invisible to simulated state. Barriers that
//! do remain stay on the fixed schedule's grid, so transaction replay
//! and message delivery happen at exactly the cycles the fixed schedule
//! would use — which is why adaptive widening is byte-identical to fixed
//! quanta, a contract the determinism gate enforces.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

use interleave_obs::profile;

use crate::time::{quantum_end, Quiescence};

/// One segment order from the schedule to every shard: advance from
/// `from` to exactly `to`, resetting measured statistics first when
/// `reset` is set (the first segment after warmup).
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Starting cycle (the shard's current clock).
    pub from: u64,
    /// Ending cycle (the next quantum barrier).
    pub to: u64,
    /// Reset measured statistics before advancing.
    pub reset: bool,
}

/// Why a schedule stopped early.
#[derive(Debug)]
pub enum Abort {
    /// A violation or livelock the schedule detected; carries the
    /// message to panic with after the workers shut down.
    Fail(String),
    /// A shard advance panicked; the payload waits in the executor's
    /// panic slot.
    Panicked,
}

/// Machine-level callbacks [`QuantumSchedule::run`] drives between
/// segments. All hooks run on the driver thread while every worker is
/// parked at a barrier, so implementations may freely lock shard state.
pub trait Hooks {
    /// The quantum barrier at cycle `now`: replay logged transactions
    /// and route the messages they generate.
    fn exchange(&mut self, now: u64);

    /// Machine-wide invariant checks at the warmup boundary and at every
    /// chunk boundary; an `Err` aborts the run with the message.
    fn check(&mut self, now: u64) -> Result<(), String> {
        let _ = now;
        Ok(())
    }

    /// Called once at the warmup boundary, after the check: reset
    /// measured statistics.
    fn begin_measurement(&mut self, now: u64) {
        let _ = now;
    }

    /// Called at every measured chunk boundary before the check (fault
    /// injection and similar test plumbing).
    fn chunk_boundary(&mut self, now: u64) {
        let _ = now;
    }

    /// Whether the run's completion condition holds (checked at chunk
    /// boundaries).
    fn done(&mut self) -> bool;

    /// Machine-wide quiescence, consulted before each quantum when the
    /// schedule is adaptive. The default pins the machine active, which
    /// disables widening.
    fn quiescent(&mut self) -> Quiescence {
        Quiescence::Active
    }
}

/// The barrier schedule: warmup in hop-sized quanta, then measurement in
/// fixed validation chunks, each advanced in quanta of at most `hop`
/// cycles with an exchange at every barrier.
///
/// The schedule is a pure function of its fields plus the hook's
/// deterministic quiescence reports — never of the executor's worker
/// count — which is what keeps parallel runs bit-identical to serial
/// ones.
#[derive(Debug, Clone, Copy)]
pub struct QuantumSchedule {
    /// Conservative lookahead: the minimum cycles any cross-shard
    /// message spends in flight, and therefore the fixed quantum length.
    pub hop: u64,
    /// Warmup cycles before measured statistics reset.
    pub warmup: u64,
    /// Measured-loop chunk length: completion, invariant checks, and
    /// fault hooks run at every chunk boundary.
    pub chunk: u64,
    /// Measured cycles past which the run aborts as a livelock.
    pub safety_slack: u64,
    /// Widen quanta across provably quiescent stretches (see the module
    /// docs); byte-identical to fixed quanta either way.
    pub adaptive: bool,
}

impl QuantumSchedule {
    /// Runs the schedule: `exec` advances every shard over one segment
    /// (returning `Err(())` if a shard panicked and the payload is
    /// parked), `hooks` supplies the machine-level callbacks. Returns
    /// the measured `(start, end)` cycle span.
    ///
    /// # Panics
    ///
    /// Panics if `hop` or `chunk` is zero.
    pub fn run(
        &self,
        exec: &mut dyn FnMut(Segment) -> Result<(), ()>,
        hooks: &mut impl Hooks,
    ) -> Result<(u64, u64), Abort> {
        assert!(self.hop > 0, "lookahead hop must be at least one cycle");
        assert!(self.chunk > 0, "validation chunk must be at least one cycle");
        let mut now = 0u64;
        while now < self.warmup {
            let to = self.segment_end(now, self.warmup, hooks);
            {
                let _segment = profile::enter("engine.segment");
                exec(Segment { from: now, to, reset: false }).map_err(|()| Abort::Panicked)?;
            }
            let _exchange = profile::enter("engine.exchange");
            hooks.exchange(to);
            now = to;
        }
        hooks.check(now).map_err(Abort::Fail)?;
        hooks.begin_measurement(now);
        let start = now;
        let safety = start.saturating_add(self.safety_slack);
        // The shards reset their own statistics at the start of the
        // first measured segment.
        let mut reset = true;
        loop {
            let chunk_end = now + self.chunk;
            while now < chunk_end {
                let to = self.segment_end(now, chunk_end, hooks);
                {
                    let _segment = profile::enter("engine.segment");
                    exec(Segment { from: now, to, reset }).map_err(|()| Abort::Panicked)?;
                }
                reset = false;
                let _exchange = profile::enter("engine.exchange");
                hooks.exchange(to);
                now = to;
            }
            hooks.chunk_boundary(now);
            hooks.check(now).map_err(Abort::Fail)?;
            if hooks.done() {
                break;
            }
            if now >= safety {
                return Err(Abort::Fail(
                    "quantum schedule exceeded its safety bound (livelock?)".into(),
                ));
            }
        }
        Ok((start, now))
    }

    /// End of the next quantum starting at `now` within `boundary`: the
    /// fixed `hop` clamp, adaptively widened — only onto the fixed
    /// schedule's own barrier grid — across a window the hooks prove
    /// quiescent.
    fn segment_end(&self, now: u64, boundary: u64, hooks: &mut impl Hooks) -> u64 {
        let fixed = quantum_end(now, self.hop, boundary);
        if !self.adaptive || fixed >= boundary {
            return fixed;
        }
        // The quiescence query locks every shard, so it is the only
        // part of quantum scheduling worth timing.
        let _schedule = profile::enter("engine.schedule");
        match hooks.quiescent() {
            Quiescence::Active => fixed,
            Quiescence::External => boundary,
            Quiescence::Until(q) => {
                if q >= boundary {
                    boundary
                } else {
                    // Snap down to the fixed barrier grid so every
                    // skipped barrier lies inside the quiet window and
                    // is provably a no-op exchange.
                    fixed.max(now + q.saturating_sub(now) / self.hop * self.hop)
                }
            }
        }
    }
}

/// One shard of the machine: everything a single worker advances
/// independently between barriers.
pub trait Shard: Send {
    /// Advances this shard over one commanded segment.
    fn run_segment(&mut self, seg: Segment);
}

/// Locks a mutex, ignoring poisoning: panics are handled deliberately by
/// the segment protocol (stored, shut down, re-raised), so a poisoned
/// lock must not cascade into a second panic that would wedge a barrier.
pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// See [`lock`].
pub fn read_lock<T>(m: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    m.read().unwrap_or_else(PoisonError::into_inner)
}

/// See [`lock`].
pub fn write_lock<T>(m: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    m.write().unwrap_or_else(PoisonError::into_inner)
}

/// One segment order from the driver to every worker group.
#[derive(Debug, Clone, Copy)]
struct SegmentCtl {
    seg: Segment,
    quit: bool,
}

/// Runs a schedule over `shards`, serially (`jobs <= 1`) or on `jobs`
/// host threads (the driver thread doubles as worker group 0). `drive`
/// receives the segment executor and runs the schedule — typically
/// [`QuantumSchedule::run`] — exactly once; the executor advances every
/// shard over each commanded segment and reports `Err(())` if any shard
/// panicked. Returns the schedule's measured span and the shards in
/// their original order.
///
/// # Panics
///
/// Re-raises the first shard panic, or panics with the message of an
/// [`Abort::Fail`], after every worker has shut down cleanly.
pub fn run_sharded<S: Shard>(
    mut shards: Vec<S>,
    jobs: usize,
    drive: impl FnOnce(&mut dyn FnMut(Segment) -> Result<(), ()>) -> Result<(u64, u64), Abort>,
) -> ((u64, u64), Vec<S>) {
    let jobs = jobs.clamp(1, shards.len().max(1));
    if jobs == 1 {
        let mut exec = |seg: Segment| -> Result<(), ()> {
            for shard in shards.iter_mut() {
                shard.run_segment(seg);
            }
            Ok(())
        };
        return match drive(&mut exec) {
            Ok(span) => (span, shards),
            Err(Abort::Fail(msg)) => panic!("{msg}"),
            Err(Abort::Panicked) => {
                unreachable!("the serial executor propagates panics directly")
            }
        };
    }

    let mut groups: Vec<Vec<(usize, S)>> = (0..jobs).map(|_| Vec::new()).collect();
    for (index, shard) in shards.drain(..).enumerate() {
        groups[index % jobs].push((index, shard));
    }
    // The driver thread doubles as worker group 0, so `jobs` counts
    // every host thread advancing shards.
    let mut own = groups.remove(0);
    let idle = SegmentCtl { seg: Segment { from: 0, to: 0, reset: false }, quit: false };
    let ctl = Mutex::new(idle);
    let start_bar = SpinBarrier::new(jobs);
    let end_bar = SpinBarrier::new(jobs);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let (outcome, mut indexed) = std::thread::scope(|scope| {
        let ctl = &ctl;
        let start_bar = &start_bar;
        let end_bar = &end_bar;
        let panic_slot = &panic_slot;
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                scope.spawn(move || worker_loop(group, ctl, start_bar, end_bar, panic_slot))
            })
            .collect();
        let mut exec = |seg: Segment| -> Result<(), ()> {
            *lock(ctl) = SegmentCtl { seg, quit: false };
            start_bar.wait();
            let result = catch_unwind(AssertUnwindSafe(|| run_group(&mut own, seg)));
            if let Err(payload) = result {
                lock(panic_slot).get_or_insert(payload);
            }
            end_bar.wait();
            // Any panic (ours or a worker's) aborts the schedule; the
            // payload waits in the slot.
            if lock(panic_slot).is_some() {
                Err(())
            } else {
                Ok(())
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| drive(&mut exec)));
        // Quit handshake on every exit path: the workers park at the
        // start barrier, so release them before the scope would try to
        // join them.
        *lock(ctl) = SegmentCtl { quit: true, ..idle };
        start_bar.wait();
        let mut indexed = own;
        for h in handles {
            indexed.extend(h.join().expect("workers catch panics and exit at quit"));
        }
        (outcome, indexed)
    });
    indexed.sort_unstable_by_key(|&(index, _)| index);
    let shards: Vec<S> = indexed.into_iter().map(|(_, shard)| shard).collect();
    match outcome {
        Err(driver_panic) => resume_unwind(driver_panic),
        Ok(Err(Abort::Panicked)) => {
            let payload = panic_slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("a panicked abort leaves its payload in the slot");
            resume_unwind(payload);
        }
        Ok(Err(Abort::Fail(msg))) => panic!("{msg}"),
        Ok(Ok(span)) => (span, shards),
    }
}

/// Runs one segment over every shard a worker group owns.
fn run_group<S: Shard>(group: &mut [(usize, S)], seg: Segment) {
    for (_, shard) in group.iter_mut() {
        shard.run_segment(seg);
    }
}

/// One worker's service loop: park at the start barrier, run the
/// commanded segment over the owned shards, park at the end barrier.
/// Panics are caught and parked in `panic_slot` so the barrier protocol
/// never wedges; the thread exits (returning its shards) on `quit`.
fn worker_loop<S: Shard>(
    mut group: Vec<(usize, S)>,
    ctl: &Mutex<SegmentCtl>,
    start: &SpinBarrier,
    end: &SpinBarrier,
    panic_slot: &Mutex<Option<Box<dyn Any + Send>>>,
) -> Vec<(usize, S)> {
    loop {
        start.wait();
        let ctl = *lock(ctl);
        if ctl.quit {
            return group;
        }
        let result = catch_unwind(AssertUnwindSafe(|| run_group(&mut group, ctl.seg)));
        if let Err(payload) = result {
            lock(panic_slot).get_or_insert(payload);
        }
        end.wait();
    }
}

/// A reusable spin rendezvous for the per-segment barriers. `std`'s
/// `Barrier` parks threads through the OS; segments are tens of
/// microseconds of host work, so spinning (with a yield fallback for
/// oversubscribed hosts) keeps the rendezvous cheap.
struct SpinBarrier {
    members: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(members: usize) -> SpinBarrier {
        SpinBarrier { members, count: AtomicUsize::new(0), generation: AtomicUsize::new(0) }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.members {
            // Last arrival: reset the count for the next use, then
            // release the waiters (the generation bump publishes the
            // reset).
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(1024) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every segment it is told to run.
    struct LogShard {
        log: Vec<(u64, u64, bool)>,
    }

    impl Shard for LogShard {
        fn run_segment(&mut self, seg: Segment) {
            self.log.push((seg.from, seg.to, seg.reset));
        }
    }

    /// Hooks that finish after a fixed number of chunks and report a
    /// scripted quiescence before each quantum.
    struct ScriptedHooks {
        exchanges: Vec<u64>,
        chunks_left: usize,
        quiescence: Box<dyn FnMut(usize) -> Quiescence>,
        queries: usize,
    }

    impl ScriptedHooks {
        fn fixed(chunks: usize) -> ScriptedHooks {
            ScriptedHooks {
                exchanges: Vec::new(),
                chunks_left: chunks,
                quiescence: Box::new(|_| Quiescence::Active),
                queries: 0,
            }
        }
    }

    impl Hooks for ScriptedHooks {
        fn exchange(&mut self, now: u64) {
            self.exchanges.push(now);
        }

        fn done(&mut self) -> bool {
            self.chunks_left = self.chunks_left.saturating_sub(1);
            self.chunks_left == 0
        }

        fn quiescent(&mut self) -> Quiescence {
            let q = (self.quiescence)(self.queries);
            self.queries += 1;
            q
        }
    }

    fn schedule(adaptive: bool) -> QuantumSchedule {
        QuantumSchedule { hop: 80, warmup: 200, chunk: 128, safety_slack: 1 << 20, adaptive }
    }

    /// One run under the serial executor, returning (span, segments,
    /// barrier cycles).
    fn run_one(
        sched: QuantumSchedule,
        mut hooks: ScriptedHooks,
    ) -> ((u64, u64), Vec<(u64, u64, bool)>, Vec<u64>) {
        let shards = vec![LogShard { log: Vec::new() }];
        let (span, shards) = run_sharded(shards, 1, |exec| sched.run(exec, &mut hooks));
        let log = shards.into_iter().next().unwrap().log;
        (span, log, hooks.exchanges)
    }

    #[test]
    fn fixed_schedule_clips_to_warmup_and_chunks() {
        let (span, log, barriers) = run_one(schedule(false), ScriptedHooks::fixed(1));
        // Warmup 200 with hop 80: quanta 80/80/40; one 128-cycle chunk:
        // 80/48, with the reset on the first measured segment.
        assert_eq!(
            log,
            vec![
                (0, 80, false),
                (80, 160, false),
                (160, 200, false),
                (200, 280, true),
                (280, 328, false),
            ]
        );
        assert_eq!(barriers, vec![80, 160, 200, 280, 328]);
        assert_eq!(span, (200, 328));
    }

    #[test]
    fn adaptive_quiet_machine_widens_to_each_boundary() {
        let mut hooks = ScriptedHooks::fixed(2);
        hooks.quiescence = Box::new(|_| Quiescence::External);
        let (span, log, barriers) = run_one(schedule(true), hooks);
        // Fully external machine: one segment per boundary.
        assert_eq!(log, vec![(0, 200, false), (200, 328, true), (328, 456, false)]);
        assert_eq!(barriers, vec![200, 328, 456]);
        assert_eq!(span, (200, 456));
    }

    #[test]
    fn adaptive_widening_snaps_down_to_the_fixed_grid() {
        let mut hooks = ScriptedHooks::fixed(1);
        // Quiet until cycle 190 < warmup end: the widened quantum must
        // stop at 160 (= 2 hops), the last fixed barrier inside the
        // quiet window, not at 190. Afterwards stay active.
        hooks.quiescence =
            Box::new(|n| if n == 0 { Quiescence::Until(190) } else { Quiescence::Active });
        let (_, log, _) = run_one(schedule(true), hooks);
        assert_eq!(
            log,
            vec![(0, 160, false), (160, 200, false), (200, 280, true), (280, 328, false)]
        );
    }

    #[test]
    fn adaptive_active_machine_matches_the_fixed_schedule() {
        let (_, fixed_log, fixed_barriers) = run_one(schedule(false), ScriptedHooks::fixed(2));
        let (_, adaptive_log, adaptive_barriers) = run_one(schedule(true), ScriptedHooks::fixed(2));
        assert_eq!(fixed_log, adaptive_log);
        assert_eq!(fixed_barriers, adaptive_barriers);
    }

    #[test]
    fn quiescence_below_one_hop_keeps_the_fixed_quantum() {
        let mut hooks = ScriptedHooks::fixed(1);
        hooks.quiescence = Box::new(|_| Quiescence::Until(79));
        let (_, log, _) = run_one(schedule(true), hooks);
        assert_eq!(log[0], (0, 80, false));
    }

    #[test]
    fn parallel_executor_matches_serial_segments() {
        let mk = || (0..5).map(|_| LogShard { log: Vec::new() }).collect::<Vec<_>>();
        let sched = schedule(false);
        let mut serial_hooks = ScriptedHooks::fixed(2);
        let (serial_span, serial) = run_sharded(mk(), 1, |e| sched.run(e, &mut serial_hooks));
        let mut par_hooks = ScriptedHooks::fixed(2);
        let (par_span, parallel) = run_sharded(mk(), 3, |e| sched.run(e, &mut par_hooks));
        assert_eq!(serial_span, par_span);
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.log, p.log, "shard order or segments diverged under threads");
        }
    }

    #[test]
    #[should_panic(expected = "shard 3 exploded")]
    fn parallel_executor_propagates_shard_panics() {
        struct Bomb {
            index: usize,
        }
        impl Shard for Bomb {
            fn run_segment(&mut self, seg: Segment) {
                if self.index == 3 && seg.from >= 160 {
                    panic!("shard {} exploded", self.index);
                }
            }
        }
        let shards = (0..4).map(|index| Bomb { index }).collect::<Vec<_>>();
        let mut hooks = ScriptedHooks::fixed(4);
        run_sharded(shards, 4, |e| schedule(false).run(e, &mut hooks));
    }

    #[test]
    #[should_panic(expected = "safety bound")]
    fn never_done_run_hits_the_safety_bound() {
        struct Forever;
        impl Hooks for Forever {
            fn exchange(&mut self, _now: u64) {}
            fn done(&mut self) -> bool {
                false
            }
        }
        let sched =
            QuantumSchedule { hop: 80, warmup: 0, chunk: 128, safety_slack: 512, adaptive: false };
        let shards = vec![LogShard { log: Vec::new() }];
        run_sharded(shards, 1, |e| sched.run(e, &mut Forever));
    }
}
