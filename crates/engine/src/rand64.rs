//! Stateless keyed sampling shared by every simulator in the workspace.
//!
//! A draw is a pure function of `(seed, lane, index)` — no generator
//! object, no mutable state, no draw-order coupling. The multiprocessor
//! latency model proved the scheme order-independent (concurrent shards
//! sample identical sequences no matter how the host schedules them,
//! the property that makes `--mp-jobs` bit-invisible); the synthetic
//! workload generator uses the same keying with its draw *sites* as
//! lanes, so instruction `i` of a stream is identical regardless of
//! batch size or call interleaving.
//!
//! The mixer is the SplitMix64 finalizer: three rounds of
//! multiply-xorshift, cheap enough for the per-instruction hot path and
//! statistically flat across low and high bits (see the avalanche test
//! below). Helpers derive the common sample shapes — a unit-interval
//! `f64`, a biased coin, a bounded integer — from one 64-bit draw each.

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer.
///
/// This is the exact function the multiprocessor latency model has
/// always used; moving it here must not change a single sampled value,
/// so the constants are load-bearing.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The keyed draw: a 64-bit value that is a pure function of
/// `(seed, lane, index)`.
///
/// `lane` separates independent draw streams under one seed (a
/// multiprocessor node, a generator draw site); `index` is the position
/// within the lane. Distinct lanes under the same seed are decorrelated
/// by the inner mix; the outer mix folds the seed in so distinct seeds
/// decorrelate everything.
#[inline]
pub fn hashed(seed: u64, lane: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64((lane << 40) ^ index))
}

/// Maps a draw to the unit interval `[0, 1)` using its top 53 bits
/// (the standard `f64` construction, matching the vendored generator's
/// distribution so profile fractions keep their meaning).
#[inline]
pub fn unit_f64(draw: u64) -> f64 {
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A coin with probability `p` of `true`, decided by the top bits of
/// `draw` (independent of [`bounded`] on the same draw, which uses the
/// low bits).
#[inline]
pub fn coin(draw: u64, p: f64) -> bool {
    unit_f64(draw) < p
}

/// Maps a draw to `0..span` by low-bits modulo (matching the latency
/// model's historical reduction; the bias for `span` far below 2^64 is
/// negligible at simulation scale).
///
/// # Panics
///
/// Panics in debug builds if `span` is zero.
#[inline]
pub fn bounded(draw: u64, span: u64) -> u64 {
    debug_assert!(span > 0, "bounded() needs a nonempty range");
    draw % span
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values from the public-domain splitmix64 stream for
        // seed 0 (the finalizer applied to 0, then 1, ...): any drift
        // here would silently re-golden every fixed-seed test.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(2), 0x9758_35DE_1C97_56CE);
    }

    #[test]
    fn hashed_is_deterministic_and_lane_separated() {
        for index in 0..200 {
            assert_eq!(hashed(7, 3, index), hashed(7, 3, index));
        }
        let a: Vec<u64> = (0..64).map(|i| hashed(7, 0, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| hashed(7, 1, i)).collect();
        let c: Vec<u64> = (0..64).map(|i| hashed(8, 0, i)).collect();
        assert_ne!(a, b, "lanes must decorrelate");
        assert_ne!(a, c, "seeds must decorrelate");
    }

    #[test]
    fn unit_f64_stays_in_half_open_interval() {
        for i in 0..10_000 {
            let u = unit_f64(hashed(1, 0, i));
            assert!((0.0..1.0).contains(&u), "{u}");
        }
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn coin_tracks_probability() {
        let heads = (0..20_000).filter(|&i| coin(hashed(42, 5, i), 0.3)).count();
        let frac = heads as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "coin frequency {frac}");
        assert!((0..1000).all(|i| !coin(hashed(1, 0, i), 0.0)));
        assert!((0..1000).all(|i| coin(hashed(1, 0, i), 1.0)));
    }

    #[test]
    fn bounded_covers_the_range_roughly_uniformly() {
        let mut counts = [0u32; 16];
        for i in 0..16_000 {
            counts[bounded(hashed(9, 2, i), 16) as usize] += 1;
        }
        for (v, &n) in counts.iter().enumerate() {
            assert!((700..=1300).contains(&n), "value {v} drawn {n} times");
        }
    }

    #[test]
    fn low_and_high_bits_of_one_draw_are_independent() {
        // coin() reads bits 11..64, bounded(_, 16) reads bits 0..4: one
        // draw can safely decide both a coin and a small pick. Check the
        // joint distribution is the product of the marginals.
        let mut joint = [[0u32; 2]; 16];
        let n = 32_000;
        for i in 0..n {
            let d = hashed(3, 1, i);
            joint[bounded(d, 16) as usize][usize::from(coin(d, 0.5))] += 1;
        }
        for (v, cell) in joint.iter().enumerate() {
            let total = cell[0] + cell[1];
            let frac = cell[1] as f64 / total as f64;
            assert!((frac - 0.5).abs() < 0.1, "value {v}: heads fraction {frac}");
        }
    }
}
