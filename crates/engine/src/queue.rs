//! Cycle-indexed event queue generic over the event payload.
//!
//! A simulator schedules a handful of future micro-events per cause (a
//! miss, a mispredicted branch, a timer); the [`EventQueue`] is a binary
//! min-heap keyed on `(due, class, seq)`, so a cycle with no due event
//! costs one peek and a cycle with due events pops exactly those.
//!
//! The key makes processing order a pure function of the schedule:
//! events pop at their due cycle, lower [`Sequenced::class`] values
//! before higher ones within a cycle, and scheduling order within each
//! class. Heap internals can never reorder two events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Ordering contract of a queued event: when it is due and how it ranks
/// against other events due the same cycle.
pub trait Sequenced {
    /// Cycle at which the event must be processed.
    fn due(&self) -> u64;

    /// Same-cycle ordering class: lower classes pop first. Events of
    /// equal due cycle and class pop in scheduling order.
    fn class(&self) -> u8 {
        0
    }
}

struct Entry<E> {
    /// (due, class, scheduling sequence) — the pop order.
    key: (u64, u8, u64),
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Entry<E>) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Entry<E>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Entry<E>) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.key.cmp(&self.key)
    }
}

/// Min-heap of pending events ordered by `(due, class, seq)`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue::default()
    }

    /// Due cycle of the earliest pending event.
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.key.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Sequenced> EventQueue<E> {
    /// Schedules `event`; later pushes with an equal `(due, class)` pop
    /// after earlier ones.
    pub fn push(&mut self, event: E) {
        let key = (event.due(), event.class(), self.seq);
        self.seq += 1;
        self.heap.push(Entry { key, event });
    }

    /// Pops the next event due at or before `now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<E> {
        if self.next_due()? <= now {
            interleave_obs::profile::mark("engine.event_pop");
            self.heap.pop().map(|e| e.event)
        } else {
            None
        }
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_due", &self.next_due())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-class test event: class-0 `A`s beat class-1 `B`s in a cycle.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        A { due: u64 },
        B { due: u64, tag: u64 },
    }

    impl Sequenced for Ev {
        fn due(&self) -> u64 {
            match *self {
                Ev::A { due } | Ev::B { due, .. } => due,
            }
        }

        fn class(&self) -> u8 {
            match self {
                Ev::A { .. } => 0,
                Ev::B { .. } => 1,
            }
        }
    }

    #[test]
    fn pops_in_due_order() {
        let mut q = EventQueue::new();
        q.push(Ev::A { due: 9 });
        q.push(Ev::A { due: 3 });
        q.push(Ev::A { due: 6 });
        assert_eq!(q.next_due(), Some(3));
        assert!(q.pop_due(2).is_none());
        assert_eq!(q.pop_due(9).unwrap().due(), 3);
        assert_eq!(q.pop_due(9).unwrap().due(), 6);
        assert_eq!(q.pop_due(9).unwrap().due(), 9);
        assert!(q.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn lower_classes_pop_before_same_cycle_higher_ones() {
        let mut q = EventQueue::new();
        q.push(Ev::B { due: 5, tag: 0x10 });
        q.push(Ev::A { due: 5 });
        assert!(matches!(q.pop_due(5), Some(Ev::A { .. })));
        assert!(matches!(q.pop_due(5), Some(Ev::B { .. })));
    }

    #[test]
    fn same_class_pops_in_scheduling_order() {
        let mut q = EventQueue::new();
        q.push(Ev::B { due: 5, tag: 0x10 });
        q.push(Ev::B { due: 5, tag: 0x20 });
        q.push(Ev::B { due: 5, tag: 0x30 });
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop_due(5))
            .map(|e| match e {
                Ev::B { tag, .. } => tag,
                Ev::A { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(tags, [0x10, 0x20, 0x30]);
    }

    #[test]
    fn empty_queue_reports_nothing_due() {
        let mut q: EventQueue<Ev> = EventQueue::new();
        assert_eq!(q.next_due(), None);
        assert!(q.pop_due(100).is_none());
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }
}
