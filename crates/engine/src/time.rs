//! The time authority: idle bounds, machine-wide quiescence, and the
//! shared quantum boundary clamp.
//!
//! Idle-cycle skipping inside one component and adaptive lookahead
//! across a whole machine rest on the same claim: *nothing observable
//! can happen before cycle t*. [`IdleBound`] states that claim for one
//! component; [`Quiescence`] folds the claims of every component (plus
//! every in-flight message) into the machine-wide version the
//! quantum-barrier driver may act on. [`quantum_end`] is the one clamp
//! of a quantum to its schedule boundary, shared by every driver so
//! warmup ends and validation chunks can never drift between them.

/// How long a component will stay idle, as reported by its own state
/// when nothing is in flight and nothing can start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleBound {
    /// Idle until the given cycle at the latest: the earliest pending
    /// event or timed wake.
    Until(u64),
    /// Idle until an external wake arrives (every blocker is untimed);
    /// wakes only happen between run calls, so the caller may skip to
    /// its own horizon.
    External,
}

impl IdleBound {
    /// Clamps a proposed fast-forward target to this bound: skipping
    /// past a timed wake would change results, skipping toward an
    /// external one cannot.
    pub fn clamp(self, target: u64) -> u64 {
        match self {
            IdleBound::Until(t) => target.min(t),
            IdleBound::External => target,
        }
    }
}

/// Machine-wide quiescence: the fold of every component's idle bound and
/// every queued message's due cycle.
///
/// The quantum-barrier driver widens a quantum only over a window it can
/// *prove* empty — every processor idle, no message due — because a
/// barrier whose exchange would have replayed a transaction or routed a
/// message cannot be skipped without changing what other shards observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quiescence {
    /// Some component can act right now: keep fixed quanta.
    Active,
    /// Nothing can happen before this cycle.
    Until(u64),
    /// Nothing can happen without external input at all.
    External,
}

impl Quiescence {
    /// Folds one component's idle bound in: an active component
    /// (`None`) pins the machine to [`Quiescence::Active`], a timed
    /// bound caps the quiet window, an external one leaves it alone.
    pub fn also_idle(self, idle: Option<IdleBound>) -> Quiescence {
        match idle {
            None => Quiescence::Active,
            Some(IdleBound::External) => self,
            Some(IdleBound::Until(t)) => self.cap(t),
        }
    }

    /// Folds one queue's earliest due cycle in: a pending message caps
    /// the quiet window at its delivery cycle.
    pub fn also_due(self, due: Option<u64>) -> Quiescence {
        match due {
            None => self,
            Some(t) => self.cap(t),
        }
    }

    fn cap(self, t: u64) -> Quiescence {
        match self {
            Quiescence::Active => Quiescence::Active,
            Quiescence::External => Quiescence::Until(t),
            Quiescence::Until(u) => Quiescence::Until(u.min(t)),
        }
    }
}

/// End of the next conservative quantum: one lookahead `hop` past `now`,
/// clipped to the next scheduled `boundary` (the warmup end or the
/// current validation chunk).
///
/// This is the single boundary clamp shared by the warmup and measured
/// loops of [`crate::QuantumSchedule`] — and by anything else that needs
/// to agree with them — so no driver can place a barrier the schedule
/// would not.
pub fn quantum_end(now: u64, hop: u64, boundary: u64) -> u64 {
    boundary.min(now.saturating_add(hop))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_respects_timed_bounds_only() {
        assert_eq!(IdleBound::Until(50).clamp(80), 50);
        assert_eq!(IdleBound::Until(90).clamp(80), 80);
        assert_eq!(IdleBound::External.clamp(80), 80);
    }

    #[test]
    fn quantum_end_clips_to_the_boundary() {
        assert_eq!(quantum_end(0, 80, 777), 80);
        assert_eq!(quantum_end(720, 80, 777), 777);
        assert_eq!(quantum_end(0, 80, 40), 40);
        assert_eq!(quantum_end(u64::MAX - 10, 80, u64::MAX), u64::MAX);
    }

    #[test]
    fn quiescence_folds_components_and_messages() {
        let q = Quiescence::External;
        assert_eq!(q.also_idle(Some(IdleBound::External)), Quiescence::External);
        assert_eq!(q.also_idle(Some(IdleBound::Until(300))), Quiescence::Until(300));
        assert_eq!(
            q.also_idle(Some(IdleBound::Until(300))).also_due(Some(250)),
            Quiescence::Until(250)
        );
        assert_eq!(q.also_due(None), Quiescence::External);
        // One active component spoils the whole machine, permanently.
        assert_eq!(q.also_idle(None), Quiescence::Active);
        assert_eq!(q.also_idle(None).also_idle(Some(IdleBound::Until(9))), Quiescence::Active);
        assert_eq!(q.also_idle(None).also_due(Some(9)), Quiescence::Active);
    }
}
