//! Deterministic cross-shard message fabric.
//!
//! Shards advancing on independent host threads exchange messages only
//! at quantum barriers; the fabric keeps delivery order a pure function
//! of simulated causality by totally ordering every message with a
//! [`MsgKey`]: due cycle first, then source lane, then a per-lane
//! sequence number. As long as each lane's sequence counter is
//! monotonic, no two messages share a key and delivery order is unique
//! regardless of which host thread routed what first.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Total-order key of a cross-shard message: `(due cycle, source lane,
/// per-lane sequence)`.
///
/// Lanes partition the key space between producers: a driver typically
/// gives each shard its own lane and reserves extra lanes for messages
/// synthesized at the barrier itself (e.g. coherence effects of replayed
/// transactions), so synthesized messages can never collide with
/// shard-generated ones.
pub type MsgKey = (u64, usize, u64);

/// A routed message: delivered to shard `dst`'s inbox at the barrier,
/// then applied when that shard's clock reaches `key.0`.
#[derive(Debug)]
pub struct Msg<P> {
    /// Total-order key (due cycle, source lane, per-lane sequence).
    pub key: MsgKey,
    /// Destination shard.
    pub dst: usize,
    /// What the message does on delivery.
    pub payload: P,
}

/// An inbox entry, ordered by key alone (keys are unique by
/// construction: one monotonic sequence counter per lane).
struct InMsg<P> {
    key: MsgKey,
    payload: P,
}

impl<P> PartialEq for InMsg<P> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<P> Eq for InMsg<P> {}
impl<P> PartialOrd for InMsg<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for InMsg<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// One shard's inbox: a min-heap delivering queued payloads in
/// [`MsgKey`] order as the shard's clock advances.
pub struct Inbox<P> {
    heap: BinaryHeap<Reverse<InMsg<P>>>,
}

impl<P> Default for Inbox<P> {
    fn default() -> Inbox<P> {
        Inbox { heap: BinaryHeap::new() }
    }
}

impl<P> Inbox<P> {
    /// An empty inbox.
    pub fn new() -> Inbox<P> {
        Inbox::default()
    }

    /// Accepts a message for later delivery.
    pub fn push(&mut self, key: MsgKey, payload: P) {
        self.heap.push(Reverse(InMsg { key, payload }));
    }

    /// Due cycle of the earliest queued message, if any (bounds how far
    /// idle cycles may be skipped).
    pub fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|m| m.0.key.0)
    }

    /// Pops the next message due at or before `now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<(MsgKey, P)> {
        if self.next_due()? <= now {
            interleave_obs::profile::mark("engine.router_pop");
            self.heap.pop().map(|Reverse(m)| (m.key, m.payload))
        } else {
            None
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<P> fmt::Debug for Inbox<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Inbox")
            .field("len", &self.len())
            .field("next_due", &self.next_due())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_key_order_regardless_of_arrival() {
        let mut inbox = Inbox::new();
        inbox.push((200, 1, 7), "late");
        inbox.push((100, 3, 1), "early-high-lane");
        inbox.push((100, 0, 9), "early-low-lane");
        assert_eq!(inbox.next_due(), Some(100));
        assert!(inbox.pop_due(99).is_none());
        assert_eq!(inbox.pop_due(100).unwrap().1, "early-low-lane");
        assert_eq!(inbox.pop_due(100).unwrap().1, "early-high-lane");
        assert!(inbox.pop_due(100).is_none(), "due 200 must wait");
        assert_eq!(inbox.pop_due(200).unwrap().1, "late");
        assert!(inbox.is_empty());
    }

    #[test]
    fn same_lane_delivers_in_sequence_order() {
        let mut inbox = Inbox::new();
        inbox.push((50, 2, 11), 'b');
        inbox.push((50, 2, 10), 'a');
        assert_eq!(inbox.pop_due(50).unwrap(), ((50, 2, 10), 'a'));
        assert_eq!(inbox.pop_due(50).unwrap(), ((50, 2, 11), 'b'));
    }
}
