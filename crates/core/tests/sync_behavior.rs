//! Tests of the processor's synchronization path (lock waits park the
//! context; wakes resume and re-execute the sync instruction) using a
//! scripted synchronization port.

use std::cell::RefCell;
use std::rc::Rc;

use interleave_core::{
    DataOutcome, InstOutcome, ProcConfig, Processor, Scheme, SyncOutcome, SystemPort, VecSource,
    WaitReason,
};
use interleave_isa::{Access, Instr, Reg, SyncKind, SyncRef};

/// A perfect memory with a single scripted lock shared by all contexts.
#[derive(Debug, Clone, Default)]
struct LockPort {
    state: Rc<RefCell<LockState>>,
}

#[derive(Debug, Default)]
struct LockState {
    holder: Option<usize>,
    waiters: Vec<usize>,
    grants: u32,
}

impl SystemPort for LockPort {
    fn data(&mut self, _: u64, _: u64, _: Access, _: usize) -> DataOutcome {
        DataOutcome::Hit
    }

    fn inst(&mut self, _: u64, _: u64) -> InstOutcome {
        InstOutcome::Hit
    }

    fn sync(&mut self, _now: u64, ctx: usize, op: SyncRef) -> SyncOutcome {
        let mut s = self.state.borrow_mut();
        match op.kind {
            SyncKind::LockAcquire => {
                if s.holder == Some(ctx) {
                    SyncOutcome::Proceed
                } else if s.holder.is_none() {
                    s.holder = Some(ctx);
                    s.grants += 1;
                    SyncOutcome::Proceed
                } else {
                    if !s.waiters.contains(&ctx) {
                        s.waiters.push(ctx);
                    }
                    SyncOutcome::Wait
                }
            }
            SyncKind::LockRelease => {
                if s.holder == Some(ctx) {
                    s.holder = None;
                }
                SyncOutcome::Proceed
            }
            SyncKind::BarrierArrive => SyncOutcome::Proceed,
        }
    }
}

fn alu(pc: u64) -> Instr {
    Instr::alu(pc, Some(Reg::int(1)), Some(Reg::int(2)), None)
}

/// A thread that acquires the lock, computes, and releases.
fn critical_thread(base: u64, work: u64) -> VecSource {
    let mut prog = vec![Instr::sync(base, SyncKind::LockAcquire, 0)];
    prog.extend((0..work).map(|i| alu(base + 4 + i * 4)));
    prog.push(Instr::sync(base + 4 + work * 4, SyncKind::LockRelease, 0));
    prog.push(alu(base + 8 + work * 4));
    VecSource::new(prog)
}

#[test]
fn contended_lock_parks_and_resumes_interleaved() {
    let port = LockPort::default();
    let state = port.state.clone();
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), port);
    cpu.attach(0, Box::new(critical_thread(0x100, 20)));
    cpu.attach(1, Box::new(critical_thread(0x1000, 20)));

    // Run until one context parks on the lock.
    let mut parked = None;
    for _ in 0..200 {
        cpu.tick();
        for c in 0..2 {
            if cpu.ctx_view(c).waiting_on == Some(WaitReason::Sync) {
                parked = Some(c);
            }
        }
        if parked.is_some() {
            break;
        }
    }
    let loser = parked.expect("one context must lose the lock race and park");

    // Drive to completion, waking the loser whenever the lock frees.
    let mut cycles = 0;
    while !cpu.is_done() && cycles < 10_000 {
        cpu.tick();
        cycles += 1;
        let free = state.borrow().holder.is_none();
        if free && cpu.ctx_view(loser).waiting_on == Some(WaitReason::Sync) {
            cpu.wake_context(loser);
        }
    }
    assert!(cpu.is_done(), "both critical sections must complete");
    assert_eq!(cpu.retired(0), 23);
    assert_eq!(cpu.retired(1), 23);
    assert_eq!(state.borrow().grants, 2, "each thread acquired once");
    assert!(
        cpu.breakdown().get(interleave_stats::Category::Sync) > 0,
        "the wait must be charged to the sync category"
    );
}

#[test]
fn single_context_spins_at_issue_until_granted() {
    // With the single scheme the sync instruction retries at the issue
    // stage; grant the lock externally after a while.
    let port = LockPort::default();
    let state = port.state.clone();
    state.borrow_mut().holder = Some(99); // held by "someone else"
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), port);
    cpu.attach(0, Box::new(critical_thread(0x100, 4)));

    cpu.run_cycles(50);
    assert_eq!(cpu.retired(0), 0, "the acquire must not pass while held");
    let sync_cycles = cpu.breakdown().get(interleave_stats::Category::Sync);
    assert!(sync_cycles >= 40, "spinning charges sync time, got {sync_cycles}");

    state.borrow_mut().holder = None; // release externally
    cpu.run_until_done(1_000);
    assert!(cpu.is_done());
    assert_eq!(cpu.retired(0), 7);
}

#[test]
fn blocked_scheme_switches_away_from_a_lock_wait() {
    let port = LockPort::default();
    let state = port.state.clone();
    state.borrow_mut().holder = Some(99);
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Blocked, 2), port);
    cpu.attach(0, Box::new(critical_thread(0x100, 4)));
    cpu.attach(1, Box::new(VecSource::new((0..30).map(|i| alu(0x1000 + i * 4)))));

    cpu.run_cycles(120);
    // Context 1 ran while context 0 waited.
    assert_eq!(cpu.retired(1), 30, "the blocked scheme must switch to runnable work");
    assert_eq!(cpu.retired(0), 0);

    state.borrow_mut().holder = None;
    if cpu.ctx_view(0).waiting_on == Some(WaitReason::Sync) {
        cpu.wake_context(0);
    }
    cpu.run_until_done(1_000);
    assert!(cpu.is_done());
    assert_eq!(cpu.retired(0), 7);
}
