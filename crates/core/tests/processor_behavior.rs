//! Behavioral tests for the multiple-context processor, including the
//! paper's Figure 2 (switch cost) and Figure 3 (four-thread timeline)
//! micro-experiments.

use interleave_core::{
    DataOutcome, InstOutcome, PerfectMemory, ProcConfig, Processor, Scheme, SystemPort, VecSource,
};
use interleave_isa::{Access, Instr, Op, Reg};
use interleave_stats::Category;

/// Addresses at or above this threshold miss (once) with a fixed service
/// time and then stay warm; everything else hits. Lets tests inject
/// misses deterministically while re-executed accesses hit as they would
/// after a real line fill.
#[derive(Debug, Clone, Default)]
struct FixedMissMemory {
    miss_latency: u64,
    warmed: std::collections::HashMap<u64, u64>,
}

const MISS_BASE: u64 = 0x8000_0000;

impl FixedMissMemory {
    fn new(miss_latency: u64) -> FixedMissMemory {
        FixedMissMemory { miss_latency, warmed: Default::default() }
    }
}

impl SystemPort for FixedMissMemory {
    fn data(&mut self, lookup_start: u64, addr: u64, _kind: Access, _ctx: usize) -> DataOutcome {
        if addr < MISS_BASE {
            return DataOutcome::Hit;
        }
        let line = addr >> 5;
        match self.warmed.get(&line) {
            Some(&ready) if lookup_start >= ready => DataOutcome::Hit,
            Some(&ready) => DataOutcome::Stall { ready_at: ready },
            None => {
                let ready = lookup_start + self.miss_latency;
                self.warmed.insert(line, ready);
                DataOutcome::Stall { ready_at: ready }
            }
        }
    }

    fn inst(&mut self, _: u64, _: u64) -> InstOutcome {
        InstOutcome::Hit
    }
}

fn alu(pc: u64) -> Instr {
    Instr::alu(pc, Some(Reg::int(1)), Some(Reg::int(2)), None)
}

fn run_to_completion<P: SystemPort>(cpu: &mut Processor<P>) -> u64 {
    let cycles = cpu.run_until_done(100_000);
    assert!(cpu.is_done(), "simulation did not complete");
    cycles
}

#[test]
fn single_context_straight_line_ipc_one() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    cpu.attach(0, Box::new(VecSource::new((0..100).map(|i| alu(i * 4)))));
    run_to_completion(&mut cpu);
    assert_eq!(cpu.retired(0), 100);
    // 100 busy cycles; everything else is pipeline fill/drain.
    assert_eq!(cpu.breakdown().get(Category::Busy), 100);
    assert_eq!(cpu.breakdown().instr_stall(), 0);
}

#[test]
fn load_use_stalls_two_cycles() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    let prog = vec![
        Instr::load(0, Reg::int(4), Reg::int(29), 0x100),
        Instr::alu(4, Some(Reg::int(5)), Some(Reg::int(4)), None),
    ];
    cpu.attach(0, Box::new(VecSource::new(prog)));
    run_to_completion(&mut cpu);
    // Load latency 3: a back-to-back consumer stalls 2 cycles (the two
    // delay slots of Section 4.1).
    assert_eq!(cpu.breakdown().get(Category::InstrShort), 2);
    assert_eq!(cpu.breakdown().get(Category::Busy), 2);
}

#[test]
fn fp_divide_consumer_is_long_stall() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    let prog = vec![
        Instr::arith(0, Op::FpDivDouble, Some(Reg::fp(1)), Some(Reg::fp(2)), Some(Reg::fp(3))),
        Instr::arith(4, Op::FpAdd, Some(Reg::fp(4)), Some(Reg::fp(1)), None),
    ];
    cpu.attach(0, Box::new(VecSource::new(prog)));
    run_to_completion(&mut cpu);
    assert_eq!(cpu.breakdown().get(Category::InstrLong), 60);
    assert_eq!(cpu.breakdown().get(Category::InstrShort), 0);
}

#[test]
fn mispredict_costs_three_cycles() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    let prog = vec![
        alu(0),
        Instr::branch(4, None, true, 0x100), // cold BTB: mispredicted
        alu(0x100),
        alu(0x104),
    ];
    cpu.attach(0, Box::new(VecSource::new(prog)));
    run_to_completion(&mut cpu);
    assert_eq!(cpu.retired(0), 4);
    // Three wrong-path bubbles charged as short instruction stalls.
    assert_eq!(cpu.breakdown().get(Category::InstrShort), 3);
}

#[test]
fn predicted_branch_is_free() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    // Same branch twice: first time trains the BTB, second is free.
    let prog = vec![
        Instr::branch(4, None, true, 0x100),
        alu(0x100),
        Instr::branch(4, None, true, 0x100),
        alu(0x100),
        alu(0x104),
    ];
    cpu.attach(0, Box::new(VecSource::new(prog)));
    run_to_completion(&mut cpu);
    assert_eq!(cpu.breakdown().get(Category::InstrShort), 3); // first only
}

#[test]
fn not_taken_branches_never_mispredict_cold() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    let prog: Vec<Instr> = (0..10).map(|i| Instr::branch(i * 4, None, false, 0x1000)).collect();
    cpu.attach(0, Box::new(VecSource::new(prog)));
    run_to_completion(&mut cpu);
    assert_eq!(cpu.breakdown().get(Category::InstrShort), 0);
    assert_eq!(cpu.breakdown().get(Category::Busy), 10);
}

/// Paper Figure 2: with four contexts, a cache miss costs the blocked
/// scheme ~7 cycles (full flush) but the interleaved scheme only the
/// missing context's pipeline occupancy (~2 cycles).
#[test]
fn figure2_switch_costs() {
    let build = |scheme: Scheme| {
        let mut cpu = Processor::new(ProcConfig::new(scheme, 4), FixedMissMemory::new(34));
        // Context 0: work, then a miss, then more work.
        let mut prog = vec![alu(0), alu(4)];
        prog.push(Instr::load(8, Reg::int(4), Reg::int(29), MISS_BASE));
        prog.extend((0..8).map(|i| alu(0x20 + i * 4)));
        cpu.attach(0, Box::new(VecSource::new(prog)));
        // Other contexts: plenty of independent work.
        for c in 1..4 {
            cpu.attach(
                c,
                Box::new(VecSource::new((0..40).map(move |i| alu(0x1000 * c as u64 + i * 4)))),
            );
        }
        cpu
    };

    let mut blocked = build(Scheme::Blocked);
    run_to_completion(&mut blocked);
    let blocked_switch = blocked.breakdown().get(Category::Switch);

    let mut interleaved = build(Scheme::Interleaved);
    run_to_completion(&mut interleaved);
    let interleaved_switch = interleaved.breakdown().get(Category::Switch);

    assert!(
        (6..=8).contains(&blocked_switch),
        "blocked switch cost should be ~7, got {blocked_switch}"
    );
    assert!(
        (1..=3).contains(&interleaved_switch),
        "interleaved switch cost should be ~2, got {interleaved_switch}"
    );
}

/// Paper Figure 3: four threads (A: 2 instrs; B: 3 with a 2-cycle
/// dependency; C: 4; D: 6), each ending with a cache miss. The interleaved
/// scheme finishes well before the blocked scheme.
#[test]
fn figure3_interleaved_beats_blocked() {
    let threads = || {
        let a = vec![alu(0x100), Instr::load(0x104, Reg::int(4), Reg::int(29), MISS_BASE)];
        let b = vec![
            Instr::load(0x200, Reg::int(4), Reg::int(29), 0x10), // hit, latency 3
            Instr::alu(0x204, Some(Reg::int(5)), Some(Reg::int(4)), None), // 2-cycle dep
            Instr::load(0x208, Reg::int(6), Reg::int(29), MISS_BASE + 0x40),
        ];
        let c = vec![
            alu(0x300),
            alu(0x304),
            alu(0x308),
            Instr::load(0x30C, Reg::int(4), Reg::int(29), MISS_BASE + 0x80),
        ];
        let d = vec![
            alu(0x400),
            alu(0x404),
            alu(0x408),
            alu(0x40C),
            alu(0x410),
            Instr::load(0x414, Reg::int(4), Reg::int(29), MISS_BASE + 0xC0),
        ];
        [a, b, c, d]
    };

    let run = |scheme: Scheme| {
        let mut cpu = Processor::new(ProcConfig::new(scheme, 4), FixedMissMemory::new(20));
        for (i, t) in threads().into_iter().enumerate() {
            cpu.attach(i, Box::new(VecSource::new(t)));
        }
        run_to_completion(&mut cpu)
    };

    let blocked = run(Scheme::Blocked);
    let interleaved = run(Scheme::Interleaved);
    assert!(
        interleaved < blocked,
        "interleaved ({interleaved}) should finish before blocked ({blocked})"
    );
}

/// The interleaved scheme hides pipeline dependencies by spacing out each
/// context's instructions (Section 3).
#[test]
fn interleaving_hides_pipeline_dependencies() {
    // A chain of dependent shifts: each stalls 1 cycle on a single context.
    let chain = |base: u64| {
        VecSource::new((0..50).map(move |i| {
            Instr::arith(base + i * 4, Op::Shift, Some(Reg::int(3)), Some(Reg::int(3)), None)
        }))
    };

    let mut single = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    single.attach(0, Box::new(chain(0)));
    run_to_completion(&mut single);
    let single_stall = single.breakdown().instr_stall();
    assert!(single_stall >= 49, "dependent shifts should stall a single context");

    let mut inter = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), PerfectMemory);
    inter.attach(0, Box::new(chain(0)));
    inter.attach(1, Box::new(chain(0x1000)));
    run_to_completion(&mut inter);
    // Interleaving two chains spaces dependent instructions apart.
    assert_eq!(inter.breakdown().instr_stall(), 0);
    assert_eq!(inter.breakdown().get(Category::Busy), 100);
}

#[test]
fn backoff_on_interleaved_yields_to_other_context() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), PerfectMemory);
    // Context 0 backs off for 30 cycles after one instruction.
    cpu.attach(0, Box::new(VecSource::new(vec![alu(0), Instr::backoff(4, 30), alu(8)])));
    cpu.attach(1, Box::new(VecSource::new((0..40).map(|i| alu(0x1000 + i * 4)))));
    run_to_completion(&mut cpu);
    // All work retires; backoff cost is a single switch cycle.
    assert_eq!(cpu.retired(0), 3);
    assert_eq!(cpu.retired(1), 40);
    assert_eq!(cpu.breakdown().get(Category::Switch), 1);
}

#[test]
fn backoff_on_single_is_a_nop() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    cpu.attach(0, Box::new(VecSource::new(vec![alu(0), Instr::backoff(4, 30), alu(8)])));
    let cycles = run_to_completion(&mut cpu);
    assert_eq!(cpu.retired(0), 3);
    assert!(cycles < 15, "backoff must not delay the single-context scheme");
}

#[test]
fn explicit_switch_on_blocked_costs_three() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Blocked, 2), PerfectMemory);
    cpu.attach(0, Box::new(VecSource::new(vec![alu(0), Instr::backoff(4, 40), alu(8)])));
    cpu.attach(1, Box::new(VecSource::new((0..30).map(|i| alu(0x1000 + i * 4)))));
    run_to_completion(&mut cpu);
    // Cost 3: the switch instruction's slot plus the two flushed fetch
    // stages behind it (Table 4).
    assert_eq!(cpu.breakdown().get(Category::Switch), 3);
    assert_eq!(cpu.retired(0), 3);
    assert_eq!(cpu.retired(1), 30);
}

#[test]
fn single_context_overlaps_independent_work_under_miss() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), FixedMissMemory::new(34));
    // Load misses; ten independent instructions follow, then a consumer.
    let mut prog = vec![Instr::load(0, Reg::int(4), Reg::int(29), MISS_BASE)];
    prog.extend((0..10).map(|i| alu(0x100 + i * 4)));
    prog.push(Instr::alu(0x200, Some(Reg::int(5)), Some(Reg::int(4)), None));
    cpu.attach(0, Box::new(VecSource::new(prog)));
    run_to_completion(&mut cpu);
    // The independent work overlapped with the miss; the consumer's wait is
    // charged to data memory.
    assert_eq!(cpu.breakdown().get(Category::Busy), 12);
    let data = cpu.breakdown().get(Category::DataMem);
    assert!((20..=32).contains(&data), "expected partial overlap, got {data} data-stall cycles");
}

#[test]
fn interleaved_with_one_thread_matches_single_on_clean_code() {
    let prog: Vec<Instr> = (0..200).map(|i| alu(i * 4)).collect();

    let mut single = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    single.attach(0, Box::new(VecSource::new(prog.clone())));
    let single_cycles = run_to_completion(&mut single);

    let mut inter = Processor::new(ProcConfig::new(Scheme::Interleaved, 4), PerfectMemory);
    inter.attach(0, Box::new(VecSource::new(prog)));
    let inter_cycles = run_to_completion(&mut inter);

    assert_eq!(
        single_cycles, inter_cycles,
        "an interleaved processor with one loaded context must match single-context performance"
    );
}

#[test]
fn retirement_is_exact_under_misses_and_squashes() {
    for scheme in [Scheme::Blocked, Scheme::Interleaved] {
        let mut cpu = Processor::new(ProcConfig::new(scheme, 3), FixedMissMemory::new(17));
        for c in 0..3 {
            let base = 0x1000 * (c as u64 + 1);
            let prog: Vec<Instr> = (0..60)
                .map(|i| {
                    if i % 7 == 3 {
                        Instr::load(base + i * 4, Reg::int(4), Reg::int(29), MISS_BASE + i * 64)
                    } else {
                        alu(base + i * 4)
                    }
                })
                .collect();
            cpu.attach(c, Box::new(VecSource::new(prog)));
        }
        run_to_completion(&mut cpu);
        for c in 0..3 {
            assert_eq!(cpu.retired(c), 60, "{scheme:?} context {c} retired count");
        }
    }
}

#[test]
fn breakdown_accounts_every_cycle() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), FixedMissMemory::new(21));
    cpu.attach(
        0,
        Box::new(VecSource::new(vec![
            alu(0),
            Instr::load(4, Reg::int(4), Reg::int(29), MISS_BASE),
            Instr::alu(8, Some(Reg::int(5)), Some(Reg::int(4)), None),
        ])),
    );
    cpu.attach(1, Box::new(VecSource::new((0..10).map(|i| alu(0x1000 + i * 4)))));
    let cycles = run_to_completion(&mut cpu);
    assert_eq!(
        cpu.breakdown().total() + cpu.drained_cycles(),
        cycles,
        "every cycle must be attributed exactly once"
    );
}

/// Paper Section 2.1: a fine-grained (HEP-like) processor without
/// pipeline interlocks issues one instruction per thread per pipeline
/// depth — single-thread performance is extremely poor.
#[test]
fn fine_grained_single_thread_is_pipeline_depth_limited() {
    let mut fine = Processor::new(ProcConfig::new(Scheme::FineGrained, 8), PerfectMemory);
    fine.attach(0, Box::new(VecSource::new((0..50).map(|i| alu(i * 4)))));
    let fine_cycles = run_to_completion(&mut fine);

    let mut single = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    single.attach(0, Box::new(VecSource::new((0..50).map(|i| alu(i * 4)))));
    let single_cycles = run_to_completion(&mut single);

    assert!(
        fine_cycles >= single_cycles * 5,
        "fine-grained single-thread ({fine_cycles}) should be several times slower than \
         the interlocked pipeline ({single_cycles})"
    );
}

/// With enough threads the fine-grained machine fills its pipeline again.
#[test]
fn fine_grained_needs_many_threads_to_fill_the_pipeline() {
    let run = |threads: usize| {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::FineGrained, 8), PerfectMemory);
        for c in 0..threads {
            let base = 0x1000 * c as u64;
            cpu.attach(c, Box::new(VecSource::new((0..50).map(move |i| alu(base + i * 4)))));
        }
        let cycles = run_to_completion(&mut cpu);
        (threads * 50) as f64 / cycles as f64
    };
    let two = run(2);
    let eight = run(8);
    assert!(eight > two * 2.5, "throughput should scale with threads ({two:.2} -> {eight:.2})");
    assert!(eight > 0.8, "eight threads should nearly fill the pipeline, got {eight:.2}");
}

/// Fine-grained contexts never have more than one instruction in flight.
#[test]
fn fine_grained_one_instruction_per_context() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::FineGrained, 4), PerfectMemory);
    cpu.set_trace(true);
    for c in 0..4 {
        let base = 0x1000 * c as u64;
        cpu.attach(c, Box::new(VecSource::new((0..20).map(move |i| alu(base + i * 4)))));
    }
    run_to_completion(&mut cpu);
    // Issues from one context must be at least 6 cycles apart (retire
    // before next fetch; fetch-to-issue adds the front-end depth).
    let mut last_issue = [None::<usize>; 4];
    for (cycle, record) in cpu.trace().iter().enumerate() {
        if let interleave_core::IssueRecord::Issued { ctx, .. } = record {
            if let Some(prev) = last_issue[*ctx] {
                assert!(cycle - prev >= 6, "ctx {ctx} issued at {prev} and {cycle}");
            }
            last_issue[*ctx] = Some(cycle);
        }
    }
}

#[test]
fn trace_records_issue_slots() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), PerfectMemory);
    cpu.set_trace(true);
    cpu.attach(0, Box::new(VecSource::new((0..5).map(|i| alu(i * 4)))));
    cpu.attach(1, Box::new(VecSource::new((0..5).map(|i| alu(0x100 + i * 4)))));
    run_to_completion(&mut cpu);
    let issues: Vec<usize> = cpu
        .trace()
        .iter()
        .filter_map(|r| match r {
            interleave_core::IssueRecord::Issued { ctx, .. } => Some(*ctx),
            _ => None,
        })
        .collect();
    assert_eq!(issues.len(), 10);
    // Round-robin: contexts alternate.
    for pair in issues.windows(2) {
        assert_ne!(pair[0], pair[1], "round-robin issue should alternate contexts");
    }
}

#[test]
fn prefetch_never_blocks_and_warms_the_line() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), FixedMissMemory::new(30));
    let prog = vec![Instr::prefetch(0, Reg::int(29), MISS_BASE), alu(4), alu(8), alu(12)];
    cpu.attach(0, Box::new(VecSource::new(prog)));
    let cycles = run_to_completion(&mut cpu);
    // The prefetch retires like a one-cycle op; nothing waits on it.
    assert!(cycles < 15, "prefetch must not block, took {cycles}");
    assert_eq!(cpu.breakdown().get(Category::DataMem), 0);
}

#[test]
fn write_buffer_policy_removes_store_switches() {
    let run = |policy| {
        let mut cfg = ProcConfig::new(Scheme::Interleaved, 2);
        cfg.store_policy = policy;
        let mut cpu = Processor::new(cfg, FixedMissMemory::new(25));
        let mut prog = vec![alu(0)];
        prog.push(Instr::store(4, Reg::int(2), Reg::int(29), MISS_BASE));
        prog.extend((0..6).map(|i| alu(8 + i * 4)));
        cpu.attach(0, Box::new(VecSource::new(prog)));
        cpu.attach(1, Box::new(VecSource::new((0..20).map(|i| alu(0x1000 + i * 4)))));
        run_to_completion(&mut cpu);
        cpu.breakdown().get(Category::Switch)
    };
    let switching = run(interleave_core::StorePolicy::SwitchOnMiss);
    let buffered = run(interleave_core::StorePolicy::WriteBuffer);
    assert!(switching > 0, "a store miss should switch under the default policy");
    assert_eq!(buffered, 0, "a buffered store must not switch");
}

#[test]
fn run_lengths_reflect_miss_spacing() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), FixedMissMemory::new(20));
    // Context 0: a miss every 5 instructions, three times.
    let mut prog = Vec::new();
    for burst in 0..3u64 {
        for i in 0..4u64 {
            prog.push(alu(burst * 0x40 + i * 4));
        }
        prog.push(Instr::load(
            burst * 0x40 + 16,
            Reg::int(4),
            Reg::int(29),
            MISS_BASE + burst * 64,
        ));
    }
    cpu.attach(0, Box::new(VecSource::new(prog)));
    cpu.attach(1, Box::new(VecSource::new((0..40).map(|i| alu(0x1000 + i * 4)))));
    run_to_completion(&mut cpu);
    let rl = cpu.run_lengths();
    assert_eq!(rl.count(), 3, "three unavailability events");
    // Slightly above 5: issues squashed at the miss are re-counted when
    // they re-execute (documented on Processor::run_lengths).
    assert!(rl.mean() >= 4.0 && rl.mean() <= 8.0, "mean run ~5-7, got {}", rl.mean());
}

#[test]
fn swap_unit_preserves_application_progress() {
    use interleave_core::FetchUnit;
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
    cpu.attach(0, Box::new(VecSource::new((0..30).map(|i| alu(i * 4)))));
    cpu.run_cycles(12); // partway through app A
    let a_done = cpu.retired(0);
    assert!(a_done > 0 && a_done < 30);
    // Swap in app B; park A.
    let parked_a = cpu.swap_unit(
        0,
        FetchUnit::new(Box::new(VecSource::new((0..10).map(|i| alu(0x1000 + i * 4))))),
    );
    cpu.run_cycles(40); // B finishes
    assert_eq!(cpu.retired(0), 10);
    // Swap A back; it must finish exactly its remaining instructions.
    let _parked_b = cpu.swap_unit(0, parked_a);
    run_to_completion(&mut cpu);
    assert_eq!(a_done + cpu.retired(0), 30, "no instruction lost or repeated across swaps");
}

#[test]
#[should_panic]
fn waking_a_non_sync_context_panics() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), PerfectMemory);
    cpu.attach(0, Box::new(VecSource::new(vec![alu(0)])));
    cpu.wake_context(0);
}

#[test]
fn blocked_runs_one_context_until_miss() {
    let mut cpu = Processor::new(ProcConfig::new(Scheme::Blocked, 2), PerfectMemory);
    cpu.set_trace(true);
    cpu.attach(0, Box::new(VecSource::new((0..6).map(|i| alu(i * 4)))));
    cpu.attach(1, Box::new(VecSource::new((0..6).map(|i| alu(0x100 + i * 4)))));
    run_to_completion(&mut cpu);
    let issues: Vec<usize> = cpu
        .trace()
        .iter()
        .filter_map(|r| match r {
            interleave_core::IssueRecord::Issued { ctx, .. } => Some(*ctx),
            _ => None,
        })
        .collect();
    // With no misses, the blocked scheme never leaves context 0 until its
    // stream ends.
    assert_eq!(&issues[..6], &[0, 0, 0, 0, 0, 0]);
}
