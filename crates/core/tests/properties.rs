//! Property-based tests: for random programs on any scheme, every
//! instruction retires exactly once, every cycle is attributed exactly
//! once, and no work is ever lost to a squash.

use interleave_core::{ProcConfig, Processor, Scheme, VecSource};
use interleave_isa::{Instr, Op, Reg};
use interleave_mem::{MemConfig, UniMemSystem};
use proptest::prelude::*;

/// A compact recipe for one synthetic instruction.
#[derive(Debug, Clone, Copy)]
enum Recipe {
    Alu { dst: u8, src: u8 },
    Shift { dst: u8, src: u8 },
    FpAdd { dst: u8, src: u8 },
    FpDiv { dst: u8, src: u8 },
    Load { dst: u8, addr: u16 },
    Store { src: u8, addr: u16 },
    Branch { taken: bool, target: u16 },
    Backoff { cycles: u8 },
    Nop,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (0u8..32, 0u8..32).prop_map(|(dst, src)| Recipe::Alu { dst, src }),
        (0u8..32, 0u8..32).prop_map(|(dst, src)| Recipe::Shift { dst, src }),
        (0u8..32, 0u8..32).prop_map(|(dst, src)| Recipe::FpAdd { dst, src }),
        (0u8..32, 0u8..32).prop_map(|(dst, src)| Recipe::FpDiv { dst, src }),
        (0u8..32, any::<u16>()).prop_map(|(dst, addr)| Recipe::Load { dst, addr }),
        (0u8..32, any::<u16>()).prop_map(|(src, addr)| Recipe::Store { src, addr }),
        (any::<bool>(), any::<u16>()).prop_map(|(taken, target)| Recipe::Branch { taken, target }),
        (1u8..60).prop_map(|cycles| Recipe::Backoff { cycles }),
        Just(Recipe::Nop),
    ]
}

fn materialize(recipes: &[Recipe], ctx: usize) -> Vec<Instr> {
    // Spread each context over its own address region so programs interact
    // through cache capacity, not false sharing of the same line.
    let code_base = 0x10_0000 * (ctx as u64 + 1);
    let data_base = 0x80_0000 * (ctx as u64 + 1);
    recipes
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let pc = code_base + i as u64 * 4;
            match *r {
                Recipe::Alu { dst, src } => {
                    Instr::alu(pc, Some(Reg::int(dst)), Some(Reg::int(src)), None)
                }
                Recipe::Shift { dst, src } => {
                    Instr::arith(pc, Op::Shift, Some(Reg::int(dst)), Some(Reg::int(src)), None)
                }
                Recipe::FpAdd { dst, src } => {
                    Instr::arith(pc, Op::FpAdd, Some(Reg::fp(dst)), Some(Reg::fp(src)), None)
                }
                Recipe::FpDiv { dst, src } => {
                    Instr::arith(pc, Op::FpDivSingle, Some(Reg::fp(dst)), Some(Reg::fp(src)), None)
                }
                Recipe::Load { dst, addr } => {
                    Instr::load(pc, Reg::int(dst), Reg::int(29), data_base + u64::from(addr))
                }
                Recipe::Store { src, addr } => {
                    Instr::store(pc, Reg::int(src), Reg::int(29), data_base + u64::from(addr))
                }
                Recipe::Branch { taken, target } => {
                    Instr::branch(pc, Some(Reg::int(1)), taken, code_base + u64::from(target) * 4)
                }
                Recipe::Backoff { cycles } => Instr::backoff(pc, u32::from(cycles)),
                Recipe::Nop => Instr::nop(pc),
            }
        })
        .collect()
}

fn scheme_strategy() -> impl Strategy<Value = (Scheme, usize)> {
    prop_oneof![
        Just((Scheme::Single, 1)),
        (1usize..=4).prop_map(|n| (Scheme::Blocked, n)),
        (1usize..=4).prop_map(|n| (Scheme::Interleaved, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conservation_and_accounting(
        (scheme, contexts) in scheme_strategy(),
        programs in proptest::collection::vec(
            proptest::collection::vec(recipe_strategy(), 1..60),
            1..=4,
        ),
    ) {
        let mut cpu = Processor::new(
            ProcConfig::new(scheme, contexts),
            UniMemSystem::new(MemConfig::workstation()),
        );
        let mut expected = vec![0u64; contexts];
        for (c, p) in programs.iter().take(contexts).enumerate() {
            let instrs = materialize(p, c);
            expected[c] = instrs.len() as u64;
            cpu.attach(c, Box::new(VecSource::new(instrs)));
        }

        let mut cycles = 0u64;
        while !cpu.is_done() && cycles < 200_000 {
            cpu.tick();
            cycles += 1;
            prop_assert_eq!(cpu.check_lost_work(), None, "work lost at cycle {}", cycles);
        }
        prop_assert!(cpu.is_done(), "did not finish within the cycle budget");

        for (c, &want) in expected.iter().enumerate() {
            prop_assert_eq!(cpu.retired(c), want, "retired count for context {}", c);
        }
        prop_assert_eq!(
            cpu.breakdown().total() + cpu.drained_cycles(),
            cycles,
            "cycle attribution must be exact"
        );
    }
}
