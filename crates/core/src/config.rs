use interleave_isa::TimingModel;

/// How the processor treats store misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorePolicy {
    /// A store miss makes the context unavailable until the line is owned
    /// (sequentially consistent behaviour; the paper's default — contexts
    /// switch "whenever a cache miss occurs").
    SwitchOnMiss,
    /// Stores retire into a write buffer and never block the context
    /// (release-consistent behaviour — one of the alternative latency
    /// tolerance techniques of the paper's introduction).
    WriteBuffer,
}

/// Context scheduling scheme (paper Sections 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Conventional single-context processor: the baseline. Stalls on use
    /// of missing data (lockup-free cache, no switching).
    Single,
    /// Blocked multiple contexts (Weber & Gupta, APRIL): run one context
    /// until it misses, then flush the whole pipeline and switch.
    Blocked,
    /// Interleaved multiple contexts (the paper's proposal): round-robin
    /// issue over available contexts with selective squash.
    Interleaved,
    /// Fine-grained multiple contexts (Denelcor HEP style, paper
    /// Section 2.1): cycle-by-cycle switching but with *no pipeline
    /// interlocks* — each context may have only one instruction active in
    /// the pipeline, so a single thread issues at best one instruction per
    /// pipeline depth.
    FineGrained,
}

impl Scheme {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Single => "single",
            Scheme::Blocked => "blocked",
            Scheme::Interleaved => "interleaved",
            Scheme::FineGrained => "fine-grained",
        }
    }
}

/// Processor configuration.
///
/// # Examples
///
/// ```
/// use interleave_core::{ProcConfig, Scheme};
///
/// let cfg = ProcConfig::new(Scheme::Interleaved, 4);
/// assert_eq!(cfg.contexts, 4);
/// assert_eq!(cfg.btb_entries, 2048);
/// ```
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// Scheduling scheme.
    pub scheme: Scheme,
    /// Number of hardware contexts.
    pub contexts: usize,
    /// Operation timings (paper Table 3).
    pub timing: TimingModel,
    /// Branch target buffer entries (2048 in the paper; 0 disables it).
    pub btb_entries: usize,
    /// Store-miss handling policy.
    pub store_policy: StorePolicy,
    /// Fast-forward over cycles in which the processor can only idle
    /// (empty pipe, every context waiting). Purely a host-throughput
    /// optimisation: results are bit-identical with it on or off. Disable
    /// to force cycle-by-cycle simulation, e.g. when debugging the hot
    /// loop itself.
    pub idle_skip: bool,
    /// Run the structural invariant checkers every tick (scoreboard
    /// hazards, cycle-accounting identity, memory-system structure; see
    /// DESIGN.md "Validation"). Defaults to
    /// [`interleave_obs::validate::default_enabled`]: on under the
    /// `validate` cargo feature or `INTERLEAVE_VALIDATE=1`, off
    /// otherwise. Note this is a field — [`ProcConfig::validate`] the
    /// *method* checks the configuration itself.
    pub validate: bool,
}

impl ProcConfig {
    /// Standard configuration for a scheme and context count.
    ///
    /// # Panics
    ///
    /// Panics if `contexts` is zero, or if a [`Scheme::Single`] processor
    /// is given more than one context.
    pub fn new(scheme: Scheme, contexts: usize) -> ProcConfig {
        let cfg = ProcConfig {
            scheme,
            contexts,
            timing: TimingModel::r4000_like(),
            btb_entries: 2048,
            store_policy: StorePolicy::SwitchOnMiss,
            idle_skip: true,
            validate: interleave_obs::validate::default_enabled(),
        };
        cfg.validate();
        cfg
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistency (see [`ProcConfig::new`]).
    pub fn validate(&self) {
        assert!(self.contexts >= 1, "need at least one context");
        assert!(
            self.scheme != Scheme::Single || self.contexts == 1,
            "the single-context scheme supports exactly one context"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Scheme::Single.name(), "single");
        assert_eq!(Scheme::Blocked.name(), "blocked");
        assert_eq!(Scheme::Interleaved.name(), "interleaved");
        assert_eq!(Scheme::FineGrained.name(), "fine-grained");
    }

    #[test]
    fn valid_configs() {
        ProcConfig::new(Scheme::Single, 1).validate();
        ProcConfig::new(Scheme::Blocked, 8).validate();
        ProcConfig::new(Scheme::Interleaved, 4).validate();
        ProcConfig::new(Scheme::FineGrained, 16).validate();
    }

    #[test]
    #[should_panic]
    fn single_with_many_contexts_rejected() {
        let _ = ProcConfig::new(Scheme::Single, 2);
    }

    #[test]
    #[should_panic]
    fn zero_contexts_rejected() {
        let _ = ProcConfig::new(Scheme::Blocked, 0);
    }
}
