use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use interleave_isa::Instr;

/// A producer of one context's instruction stream.
///
/// Sources are pull-based generators: the fetch unit asks for the next
/// instruction in program order. Returning `None` ends the stream (the
/// context is done once everything retires). Workload models in
/// `interleave-workloads` and `interleave-mp` implement this trait.
///
/// Sources are `Send` so a whole [`Processor`](crate::Processor) can be
/// moved onto a worker thread — the multiprocessor driver advances each
/// node on its own host thread between conservative quantum barriers.
pub trait InstrSource: Send {
    /// Produces the next instruction in program order, or `None` at end of
    /// stream.
    fn next_instr(&mut self) -> Option<Instr>;

    /// Appends up to `max` further instructions of the stream to `out`
    /// (program order, nothing cleared) and returns how many were
    /// produced. Fewer than `max` — including zero — means end of
    /// stream.
    ///
    /// The default loops [`InstrSource::next_instr`]; batch-aware
    /// sources (the synthetic generator) override it to amortize
    /// per-call bookkeeping across a whole run. Implementations must
    /// produce the identical stream either way: a caller may freely mix
    /// call granularities.
    fn next_run(&mut self, out: &mut Vec<Instr>, max: usize) -> usize {
        let mut produced = 0;
        while produced < max {
            match self.next_instr() {
                Some(instr) => {
                    out.push(instr);
                    produced += 1;
                }
                None => break,
            }
        }
        produced
    }
}

/// An [`InstrSource`] backed by a fixed vector — handy for tests and the
/// paper's Figure 2/3 micro-examples.
///
/// # Examples
///
/// ```
/// use interleave_core::{InstrSource, VecSource};
/// use interleave_isa::Instr;
///
/// let mut s = VecSource::new([Instr::nop(0), Instr::nop(4)]);
/// assert!(s.next_instr().is_some());
/// assert!(s.next_instr().is_some());
/// assert!(s.next_instr().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct VecSource {
    items: VecDeque<Instr>,
}

impl VecSource {
    /// Creates a source yielding `items` in order.
    pub fn new(items: impl IntoIterator<Item = Instr>) -> VecSource {
        VecSource { items: items.into_iter().collect() }
    }
}

impl InstrSource for VecSource {
    fn next_instr(&mut self) -> Option<Instr> {
        self.items.pop_front()
    }
}

/// Per-context fetch unit: buffers the instruction stream between fetch
/// and retirement so that squashed instructions can be re-fetched.
///
/// Instructions are identified by their *fetch index* (position in the
/// stream). The buffer holds every fetched-but-not-retired instruction;
/// a squash simply rolls the fetch cursor back to the oldest squashed
/// index. Because integer and FP instructions retire up to two cycles
/// apart, retirement may arrive out of index order; the buffer only
/// releases a contiguous retired prefix.
///
/// The unit eagerly normalizes after every mutation (cursor clamped past
/// the retired prefix, buffer filled through the cursor), so the hot
/// read-side queries — [`FetchUnit::peek`], [`FetchUnit::cursor`],
/// [`FetchUnit::is_done`] — take `&self`. Sources are self-contained
/// deterministic generators, so pulling one instruction early never
/// changes the stream.
pub struct FetchUnit {
    source: Box<dyn InstrSource>,
    /// buffer[i] holds the instruction at index `base + i`.
    buffer: VecDeque<Instr>,
    /// Fetch index of `buffer[0]`.
    base: u64,
    /// Index of the next instruction to fetch.
    cursor: u64,
    /// Out-of-order retired indices not yet absorbed into `base`.
    retired: BTreeSet<u64>,
    /// Set once the source reports end of stream.
    exhausted: bool,
    /// Reused staging area for batched refills.
    scratch: Vec<Instr>,
}

/// Instructions pulled per source round-trip when the buffer runs dry.
/// Sized to a typical basic-block run so the generator amortizes its
/// per-batch bookkeeping without buffering far past what a squash window
/// ever needs.
const REFILL_RUN: usize = 32;

impl fmt::Debug for FetchUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FetchUnit")
            .field("base", &self.base)
            .field("cursor", &self.cursor)
            .field("buffered", &self.buffer.len())
            .field("exhausted", &self.exhausted)
            .finish()
    }
}

impl FetchUnit {
    /// Wraps an instruction source.
    pub fn new(source: Box<dyn InstrSource>) -> FetchUnit {
        let mut unit = FetchUnit {
            source,
            buffer: VecDeque::new(),
            base: 0,
            cursor: 0,
            retired: BTreeSet::new(),
            exhausted: false,
            scratch: Vec::with_capacity(REFILL_RUN),
        };
        unit.normalize();
        unit
    }

    /// Restores the cursor/buffer invariant after a mutation: the cursor
    /// sits at or past `base`, skips over instructions that already
    /// retired (a rollback target can precede out-of-order-retired
    /// younger instructions; those must not execute twice — and
    /// absorbing a retired prefix can move `base` past a rolled-back
    /// cursor), and the buffer covers the cursor unless the source is
    /// exhausted.
    fn normalize(&mut self) {
        self.cursor = self.cursor.max(self.base);
        while self.retired.contains(&self.cursor) {
            self.cursor += 1;
        }
        while !self.exhausted && self.base + self.buffer.len() as u64 <= self.cursor {
            // Pull a whole run per source round-trip: sources are
            // self-contained deterministic generators, so buffering past
            // the cursor never changes the stream, and batch-aware
            // sources amortize their per-batch bookkeeping across the
            // run.
            let need = (self.cursor + 1 - (self.base + self.buffer.len() as u64)) as usize;
            let want = need.max(REFILL_RUN);
            self.scratch.clear();
            let got = self.source.next_run(&mut self.scratch, want);
            self.buffer.extend(self.scratch.drain(..));
            if got < want {
                self.exhausted = true;
            }
        }
    }

    /// The instruction at the fetch cursor. `None` once the stream is
    /// exhausted.
    pub fn peek(&self) -> Option<Instr> {
        self.buffer.get((self.cursor - self.base) as usize).copied()
    }

    /// Index of the instruction the cursor points at.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Consumes the instruction at the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the stream is exhausted at the cursor; call
    /// [`FetchUnit::peek`] first.
    pub fn advance(&mut self) {
        assert!(self.peek().is_some(), "advance past end of stream");
        self.cursor += 1;
        self.normalize();
    }

    /// Rolls the cursor back to `index` so squashed instructions are
    /// re-fetched.
    ///
    /// # Panics
    ///
    /// Panics if `index` has already been released by retirement or lies
    /// ahead of the cursor.
    pub fn rollback(&mut self, index: u64) {
        assert!(index >= self.base, "cannot roll back before retired prefix");
        assert!(index <= self.cursor, "cannot roll forward");
        self.cursor = index;
        self.normalize();
    }

    /// Rolls the cursor back to the oldest unretired instruction, so that
    /// everything in flight is re-fetched (used when an OS scheduler swap
    /// squashes the whole context).
    pub fn rollback_to_base(&mut self) {
        self.cursor = self.base;
        self.normalize();
    }

    /// Marks the instruction at `index` retired, releasing buffer space
    /// once the retired prefix is contiguous.
    ///
    /// # Panics
    ///
    /// Panics if `index` was never fetched, was already retired, or is at
    /// or ahead of the cursor.
    pub fn retire(&mut self, index: u64) {
        assert!(index >= self.base, "double retirement of index {index}");
        assert!(index < self.cursor, "retiring unfetched index {index}");
        let inserted = self.retired.insert(index);
        assert!(inserted, "double retirement of index {index}");
        while self.retired.remove(&self.base) {
            self.buffer.pop_front();
            self.base += 1;
        }
        self.normalize();
    }

    /// Whether every fetched instruction has retired and the stream is
    /// exhausted.
    pub fn is_done(&self) -> bool {
        self.peek().is_none() && self.base == self.cursor
    }

    /// Number of fetched-but-unretired instructions.
    pub fn outstanding(&self) -> u64 {
        (self.cursor - self.base).saturating_sub(self.retired.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(n: u64) -> FetchUnit {
        FetchUnit::new(Box::new(VecSource::new((0..n).map(|i| Instr::nop(i * 4)))))
    }

    #[test]
    fn fetch_in_order() {
        let mut f = unit(3);
        assert_eq!(f.peek().unwrap().pc, 0);
        f.advance();
        assert_eq!(f.peek().unwrap().pc, 4);
        f.advance();
        f.advance();
        assert!(f.peek().is_none());
    }

    #[test]
    fn rollback_refetches() {
        let mut f = unit(5);
        for _ in 0..3 {
            f.advance();
        }
        f.rollback(1);
        assert_eq!(f.peek().unwrap().pc, 4);
        assert_eq!(f.cursor(), 1);
    }

    #[test]
    fn retirement_releases_prefix() {
        let mut f = unit(5);
        for _ in 0..3 {
            f.advance();
        }
        f.retire(0);
        f.retire(1);
        assert_eq!(f.outstanding(), 1);
        // Index 0 and 1 are gone; rollback to 2 still works.
        f.rollback(2);
        assert_eq!(f.peek().unwrap().pc, 8);
    }

    #[test]
    fn out_of_order_retirement_absorbed_when_prefix_completes() {
        let mut f = unit(5);
        for _ in 0..3 {
            f.advance();
        }
        f.retire(1);
        assert_eq!(f.outstanding(), 2);
        f.retire(0);
        // Both absorbed once the prefix is contiguous.
        assert_eq!(f.outstanding(), 1);
        f.rollback(2);
        assert_eq!(f.peek().unwrap().pc, 8);
    }

    #[test]
    fn rollback_across_retired_instruction_skips_it() {
        let mut f = unit(5);
        for _ in 0..3 {
            f.advance();
        }
        f.retire(1);
        // Index 1 already committed; a rollback to 0 re-fetches 0 and
        // then skips straight to 2.
        f.rollback(0);
        assert_eq!(f.peek().unwrap().pc, 0);
        f.advance();
        assert_eq!(f.peek().unwrap().pc, 8);
    }

    #[test]
    #[should_panic]
    fn rollback_past_retired_prefix_panics() {
        let mut f = unit(5);
        f.advance();
        f.retire(0);
        f.rollback(0);
    }

    #[test]
    #[should_panic]
    fn double_retire_panics() {
        let mut f = unit(5);
        f.advance();
        f.advance();
        f.retire(1);
        f.retire(1);
    }

    #[test]
    fn done_when_all_retired() {
        let mut f = unit(2);
        f.advance();
        f.advance();
        assert!(!f.is_done());
        f.retire(0);
        f.retire(1);
        assert!(f.is_done());
    }

    #[test]
    fn rollback_to_base_refetches_all_unretired() {
        let mut f = unit(6);
        for _ in 0..5 {
            f.advance();
        }
        f.retire(0);
        f.retire(1);
        f.rollback_to_base();
        // Indices 2..5 re-fetch; 0 and 1 stay retired.
        assert_eq!(f.peek().unwrap().pc, 8);
        assert_eq!(f.cursor(), 2);
    }

    #[test]
    fn cursor_clamps_to_base_after_absorption() {
        let mut f = unit(6);
        for _ in 0..3 {
            f.advance();
        }
        // Out-of-order retire then rollback to 0, then absorb the prefix.
        f.retire(1);
        f.retire(2);
        f.rollback(0);
        f.advance(); // re-executes 0
        f.retire(0); // base jumps to 3 while cursor sits at 1
        assert_eq!(f.peek().unwrap().pc, 12, "cursor must catch up to base");
        assert_eq!(f.outstanding(), 0);
    }

    #[test]
    fn empty_source_is_done() {
        let f = unit(0);
        assert!(f.is_done());
        assert!(f.peek().is_none());
    }
}
