use interleave_isa::{Access, Instr, Op};
use interleave_obs::chrome::ChromeTrace;
use interleave_obs::profile;
use interleave_obs::validate::Violation;
use interleave_obs::{Counter, Histogram, Registry};
use interleave_pipeline::{
    Btb, BubbleCause, FrontEnd, FrontSlot, InFlight, IssueWindow, Scoreboard, Slot,
    FP_ISSUE_TO_RETIRE, INT_ISSUE_TO_RETIRE,
};
use interleave_stats::{Breakdown, Category};

use crate::context::{ContextTable, CtxState};
use crate::events::{Event, EventQueue};
use crate::{
    CtxView, DataOutcome, FetchUnit, InstOutcome, InstrSource, ProcConfig, Scheme, StorePolicy,
    SyncOutcome, SystemPort, WaitReason,
};

/// Context-switch event counters, by the cause that made the context
/// unavailable (paper Section 5: data misses, failed synchronization,
/// and explicit backoff/switch instructions).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStats {
    /// Switches triggered by a detected data-cache miss.
    pub data: Counter,
    /// Switches triggered by a failed synchronization attempt.
    pub sync: Counter,
    /// Switches triggered by an explicit backoff / switch-hint
    /// instruction.
    pub backoff: Counter,
}

/// What happened in the issue slot of one cycle (optional trace for the
/// Figure 2/3 illustrations and the Chrome-trace export).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueRecord {
    /// Context `ctx` issued an instruction of class `op`; the cycle was
    /// charged to `category` (busy for useful work, switch for
    /// latency-tolerance ops and issue slots later squashed).
    Issued {
        /// Issuing context.
        ctx: usize,
        /// Operation class.
        op: Op,
        /// Category the issue slot is charged to. Normally
        /// [`Category::Busy`]; [`Category::Switch`] for
        /// backoff/switch-hint ops, and re-attributed to switch in place
        /// when the slot is squashed (keeping the trace in agreement
        /// with the [`Breakdown`]'s busy→switch transfer).
        category: Category,
    },
    /// The RF occupant of context `ctx` stalled; cycle charged to
    /// `category`.
    Stalled {
        /// Stalling context.
        ctx: usize,
        /// Category charged.
        category: Category,
    },
    /// A bubble reached the issue point; cycle charged to `category`
    /// (`None` for drained cycles, which are not charged).
    Bubble(Option<Category>),
}

/// Stable snake-case metric-name suffix for a breakdown category
/// (`Category::label` uses display punctuation unsuitable for metric
/// names).
fn metric_name(category: Category) -> &'static str {
    match category {
        Category::Busy => "busy",
        Category::InstrShort => "instr_short",
        Category::InstrLong => "instr_long",
        Category::InstMem => "inst_mem",
        Category::DataMem => "data_mem",
        Category::Sync => "sync",
        Category::Switch => "switch",
    }
}

/// Coarse Chrome-trace category (`cat` field) for viewer filtering.
fn span_class(category: Category) -> &'static str {
    match category {
        Category::Busy => "issue",
        Category::Switch => "switch",
        _ => "stall",
    }
}

/// Breakdown category a bubble reaching the issue point is charged to
/// (`None` for drained cycles, which are uncharged).
fn bubble_category(cause: BubbleCause) -> Option<Category> {
    match cause {
        BubbleCause::Switch => Some(Category::Switch),
        BubbleCause::Mispredict => Some(Category::InstrShort),
        BubbleCause::InstMem => Some(Category::InstMem),
        BubbleCause::DataWait => Some(Category::DataMem),
        BubbleCause::SyncWait => Some(Category::Sync),
        BubbleCause::BackoffWait => Some(Category::InstrLong),
        BubbleCause::Drained => None,
    }
}

/// How long the processor will stay idle (see [`Processor::idle_bound`]);
/// defined by the shared engine substrate so the multiprocessor driver can
/// fold per-processor bounds into machine-wide quiescence.
pub use interleave_engine::IdleBound;

/// A multiple-context processor attached to a memory system.
///
/// Composes the `interleave-pipeline` building blocks (front end, issue
/// window, scoreboard, BTB) with per-context fetch units and the
/// scheduling scheme. Drive it with [`Processor::tick`] /
/// [`Processor::run_cycles`] / [`Processor::run_until_done`]; read results
/// from [`Processor::breakdown`] and [`Processor::retired`].
///
/// See the crate-level documentation for an end-to-end example.
pub struct Processor<P: SystemPort> {
    cfg: ProcConfig,
    port: P,
    front: FrontEnd,
    window: IssueWindow,
    scoreboard: Scoreboard,
    btb: Btb,
    units: Vec<Option<FetchUnit>>,
    /// Per-context scheduling state in struct-of-arrays layout: the
    /// hot scans (context select, idle bound, metrics) each stride one
    /// contiguous column instead of whole per-context records.
    ctx: ContextTable,
    events: EventQueue,
    now: u64,
    /// Round-robin fetch pointer (interleaved scheme).
    rr: usize,
    /// Running context (blocked / single schemes).
    current: Option<usize>,
    /// Fetch blocked on the (blocking) instruction cache until this cycle.
    fetch_stall_until: u64,
    /// Category the current RF occupant's stall was classified as.
    rf_stall_class: Option<Category>,
    breakdown: Breakdown,
    drained_cycles: u64,
    /// Cycle the breakdown last restarted at ([`Processor::reset_breakdown`]);
    /// the validation pass checks `breakdown + drained == now - accounted_since`.
    accounted_since: u64,
    trace: Option<Vec<IssueRecord>>,
    /// Cycle at which the current trace buffer started (for mapping an
    /// in-flight instruction's issue cycle back to its trace record).
    trace_start: u64,
    run_lengths: Histogram,
    /// Instructions issued per context since it last became unavailable.
    current_run: Vec<u64>,
    switches: SwitchStats,
    /// Attached units whose `done` flag is latched (stream exhausted,
    /// everything retired); completion is `done_units == attached_units`.
    done_units: usize,
    attached_units: usize,
    /// Reusable buffers for the per-cycle retire and squash paths, so the
    /// hot loop allocates nothing in steady state.
    retired_scratch: Vec<InFlight>,
    squash_scratch: Vec<InFlight>,
    mins_scratch: Vec<(usize, u64)>,
}

impl<P: SystemPort> Processor<P> {
    /// Creates a processor over `port` with no streams attached.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ProcConfig::validate`].
    pub fn new(cfg: ProcConfig, port: P) -> Processor<P> {
        cfg.validate();
        Processor {
            front: FrontEnd::new(),
            window: IssueWindow::new(),
            scoreboard: Scoreboard::new(cfg.contexts),
            btb: Btb::new(cfg.btb_entries),
            units: (0..cfg.contexts).map(|_| None).collect(),
            ctx: ContextTable::new(cfg.contexts),
            events: EventQueue::new(),
            now: 0,
            rr: 0,
            current: None,
            fetch_stall_until: 0,
            rf_stall_class: None,
            breakdown: Breakdown::new(),
            drained_cycles: 0,
            accounted_since: 0,
            trace: None,
            trace_start: 0,
            run_lengths: Histogram::new(),
            current_run: vec![0; cfg.contexts],
            switches: SwitchStats::default(),
            done_units: 0,
            attached_units: 0,
            retired_scratch: Vec::new(),
            squash_scratch: Vec::new(),
            mins_scratch: Vec::new(),
            cfg,
            port,
        }
    }

    /// Attaches an instruction stream to context `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` is out of range or already has a stream attached.
    pub fn attach(&mut self, ctx: usize, source: Box<dyn InstrSource>) {
        assert!(self.units[ctx].is_none(), "context {ctx} already attached");
        let unit = FetchUnit::new(source);
        let done = unit.is_done();
        self.units[ctx] = Some(unit);
        self.ctx.attached[ctx] = true;
        self.ctx.state[ctx] = CtxState::Ready;
        self.attached_units += 1;
        self.ctx.done[ctx] = done;
        if done {
            self.done_units += 1;
        }
    }

    /// Replaces the fetch unit of `ctx` (the OS scheduler swapping resident
    /// applications), squashing any of its in-flight work and returning the
    /// outgoing unit so its application can be resumed later.
    ///
    /// # Panics
    ///
    /// Panics if `ctx` has no unit attached.
    pub fn swap_unit(&mut self, ctx: usize, incoming: FetchUnit) -> FetchUnit {
        assert!(self.units[ctx].is_some(), "context {ctx} has no unit to swap");
        self.squash_context(ctx);
        if self.ctx.done[ctx] {
            self.ctx.done[ctx] = false;
            self.done_units -= 1;
        }
        let mut outgoing = self.units[ctx].replace(incoming).expect("checked above");
        // Re-fetch everything unretired when this unit runs again.
        outgoing.rollback_to_base();
        self.ctx.state[ctx] = CtxState::Ready;
        self.ctx.retired[ctx] = 0;
        if self.units[ctx].as_ref().expect("just replaced").is_done() {
            self.ctx.done[ctx] = true;
            self.done_units += 1;
        }
        outgoing
    }

    /// Enables or disables the per-cycle issue trace.
    pub fn set_trace(&mut self, enabled: bool) {
        self.trace = if enabled { Some(Vec::new()) } else { None };
        self.trace_start = self.now;
    }

    /// The issue trace collected so far (empty when tracing is disabled).
    pub fn trace(&self) -> &[IssueRecord] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The processor configuration.
    pub fn config(&self) -> &ProcConfig {
        &self.cfg
    }

    /// Execution-time breakdown accumulated so far.
    pub fn breakdown(&self) -> &Breakdown {
        &self.breakdown
    }

    /// Cycles in which nothing remained to execute (excluded from the
    /// breakdown).
    pub fn drained_cycles(&self) -> u64 {
        self.drained_cycles
    }

    /// Run-length histogram: instructions a context issues between
    /// successive unavailability events (paper Section 5.1 — run lengths
    /// govern how a strict round-robin shares the machine among
    /// applications).
    ///
    /// Issue slots later squashed by the unavailability event are
    /// counted in the run they issued in *and* again when re-executed,
    /// so means run a cycle or two above the pure useful-instruction
    /// spacing.
    pub fn run_lengths(&self) -> &Histogram {
        &self.run_lengths
    }

    /// Context-switch event counters by cause.
    pub fn switch_stats(&self) -> &SwitchStats {
        &self.switches
    }

    /// Instructions retired by context `ctx`.
    pub fn retired(&self, ctx: usize) -> u64 {
        self.ctx.retired[ctx]
    }

    /// Resets `ctx`'s retired-instruction counter (per-slice accounting).
    pub fn reset_retired(&mut self, ctx: usize) {
        self.ctx.retired[ctx] = 0;
    }

    /// Clears the accumulated breakdown, drained-cycle count, and trace
    /// (used to discard warmup before measurement).
    pub fn reset_breakdown(&mut self) {
        self.breakdown = Breakdown::new();
        self.drained_cycles = 0;
        self.accounted_since = self.now;
        if let Some(trace) = self.trace.as_mut() {
            trace.clear();
        }
        self.trace_start = self.now;
    }

    /// Registers the processor's metrics: the run-length histogram and
    /// switch counters under `core.*`, the cycle breakdown under
    /// `cycles.*`, retired instructions, and the pipeline structures'
    /// counters (`pipeline.*`).
    pub fn collect_metrics(&self, reg: &mut Registry) {
        reg.histogram("core.run_length", &self.run_lengths);
        reg.counter("core.switches.data", self.switches.data.get());
        reg.counter("core.switches.sync", self.switches.sync.get());
        reg.counter("core.switches.backoff", self.switches.backoff.get());
        for category in Category::ALL {
            reg.counter(&format!("cycles.{}", metric_name(category)), self.breakdown.get(category));
        }
        reg.counter("cycles.drained", self.drained_cycles);
        reg.counter("instructions.retired", self.ctx.retired.iter().sum());
        self.btb.collect_metrics(reg);
        self.window.collect_metrics(reg);
        self.front.collect_metrics(reg);
    }

    /// Exports the collected issue trace as a Chrome trace-event
    /// document: one track per hardware context carrying its issue and
    /// stall spans (issue slots later squashed appear as `switch`
    /// spans), plus a `machine` track for bubbles that reached the issue
    /// point unattributed to any context. One trace microsecond equals
    /// one simulated cycle, and drained (uncharged) cycles leave gaps,
    /// so per-category span totals reconcile exactly with
    /// [`Processor::breakdown`] over the traced interval.
    ///
    /// Returns an empty trace when tracing is disabled.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let mut t = ChromeTrace::new();
        if self.trace().is_empty() {
            return t;
        }
        t.process_name(0, "interleave-sim");
        for c in 0..self.cfg.contexts {
            t.thread_name(0, c as u64, &format!("ctx{c}"));
        }
        let machine = self.cfg.contexts as u64;
        t.thread_name(0, machine, "machine");

        // Merge consecutive identical (track, category) cycles into one
        // span; drained cycles close any open span and emit nothing.
        let mut open: Option<(u64, Category, u64, u64)> = None; // tid, cat, start, len
        for (i, rec) in self.trace().iter().enumerate() {
            let cur = match *rec {
                IssueRecord::Issued { ctx, category, .. } => Some((ctx as u64, category)),
                IssueRecord::Stalled { ctx, category } => Some((ctx as u64, category)),
                IssueRecord::Bubble(Some(category)) => Some((machine, category)),
                IssueRecord::Bubble(None) => None,
            };
            match (open, cur) {
                (Some((tid, cat, start, len)), Some((tid2, cat2)))
                    if tid == tid2 && cat == cat2 =>
                {
                    open = Some((tid, cat, start, len + 1));
                }
                (prev, cur) => {
                    if let Some((tid, cat, start, len)) = prev {
                        t.span(0, tid, start, len, cat.label(), span_class(cat));
                    }
                    open = cur.map(|(tid, cat)| (tid, cat, i as u64, 1));
                }
            }
        }
        if let Some((tid, cat, start, len)) = open {
            t.span(0, tid, start, len, cat.label(), span_class(cat));
        }
        t
    }

    /// Snapshot of a context's scheduling state.
    pub fn ctx_view(&self, ctx: usize) -> CtxView {
        self.ctx.view(ctx)
    }

    /// Immutable access to the memory system.
    pub fn port(&self) -> &P {
        &self.port
    }

    /// Mutable access to the memory system (OS interference, statistics).
    pub fn port_mut(&mut self) -> &mut P {
        &mut self.port
    }

    /// Wakes a context waiting on synchronization.
    ///
    /// # Panics
    ///
    /// Panics if the context is not sync-waiting.
    pub fn wake_context(&mut self, ctx: usize) {
        match self.ctx.state[ctx] {
            CtxState::Waiting { reason: WaitReason::Sync, .. } => {
                self.ctx.state[ctx] = CtxState::Ready;
            }
            other => panic!("context {ctx} not sync-waiting (state {other:?})"),
        }
    }

    /// Whether every attached stream is exhausted and the pipeline drained.
    ///
    /// O(1): stream completion is latched per context at retire time, so
    /// the run loops do not rescan every fetch unit each cycle.
    pub fn is_done(&self) -> bool {
        self.done_units == self.attached_units
            && self.window.is_empty()
            && self.front.occupancy() == 0
    }

    /// Runs `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        let _run = profile::enter("core.run");
        let end = self.now.saturating_add(n);
        while self.now < end {
            if let Some(target) = self.skip_target(end) {
                self.skip_idle_to(target);
                continue;
            }
            self.tick();
        }
    }

    /// Runs until every stream completes or `max_cycles` elapse; returns
    /// the cycles executed.
    pub fn run_until_done(&mut self, max_cycles: u64) -> u64 {
        let _run = profile::enter("core.run");
        let start = self.now;
        let end = start.saturating_add(max_cycles);
        while !self.is_done() && self.now < end {
            if let Some(target) = self.skip_target(end) {
                self.skip_idle_to(target);
                continue;
            }
            self.tick();
        }
        self.now - start
    }

    /// Checks the no-lost-work invariant: a ready context whose stream is
    /// exhausted at the cursor must either be done or still have work in
    /// the pipe (debug aid).
    pub fn check_lost_work(&self) -> Option<usize> {
        for c in 0..self.cfg.contexts {
            if !self.ctx.attached[c] || !self.ctx.is_ready(c) {
                continue;
            }
            let in_pipe = self.window.count_ctx(c) + self.front.count_ctx(c);
            let unit = self.unit(c);
            if unit.peek().is_none() && unit.outstanding() > 0 && in_pipe == 0 {
                return Some(c);
            }
        }
        None
    }

    /// Checks the processor's structural invariants at the current cycle
    /// (see DESIGN.md "Validation"): cycle accounting (breakdown
    /// categories plus drained cycles sum exactly to the cycles elapsed
    /// since the last [`Processor::reset_breakdown`]), per-context done
    /// latches agreeing with fetch-unit exhaustion, no lost in-flight
    /// work, no overdue events, plus the scoreboard's and the memory
    /// port's own standing invariants.
    ///
    /// Runs automatically after every [`Processor::tick`] and
    /// [`Processor::skip_idle_to`] when `ProcConfig.validate` is set
    /// (panicking with the [`Violation`] report); callable directly from
    /// tests and drivers either way. O(contexts) per call.
    pub fn check_invariants(&self) -> Result<(), Violation> {
        let now = self.now;
        let accounted = self.breakdown.total() + self.drained_cycles;
        let elapsed = now - self.accounted_since;
        if accounted != elapsed {
            return Err(Violation::new(
                "core.breakdown",
                "cycle categories do not sum to elapsed cycles",
                now,
                format!(
                    "breakdown {} + drained {} != {elapsed} elapsed since cycle {}",
                    self.breakdown.total(),
                    self.drained_cycles,
                    self.accounted_since
                ),
            ));
        }
        let mut latched = 0;
        for c in 0..self.cfg.contexts {
            if !self.ctx.attached[c] {
                continue;
            }
            if self.ctx.done[c] {
                latched += 1;
                if !self.unit(c).is_done() {
                    return Err(Violation::new(
                        "core.done_latch",
                        "done latch set but the fetch unit still has work",
                        now,
                        format!("outstanding {}", self.unit(c).outstanding()),
                    )
                    .with_context(c));
                }
            }
        }
        if latched != self.done_units {
            return Err(Violation::new(
                "core.done_latch",
                "done-unit count disagrees with per-context latches",
                now,
                format!("count {} but {latched} latched", self.done_units),
            ));
        }
        if let Some(c) = self.check_lost_work() {
            return Err(Violation::new(
                "core.fetch",
                "ready context lost its in-flight work",
                now,
                "stream exhausted at cursor with outstanding work and an empty pipe".into(),
            )
            .with_context(c));
        }
        if let Some(due) = self.events.next_due() {
            if due < now {
                return Err(Violation::new(
                    "core.events",
                    "event left overdue in the queue",
                    now,
                    format!("next event due at cycle {due}"),
                ));
            }
        }
        self.scoreboard.check_invariants(now)?;
        self.port.check_invariants(now)
    }

    /// Panics with the [`Violation`] report if a structural invariant is
    /// broken (the enforcement arm of [`Processor::check_invariants`]).
    #[cold]
    fn validation_failed(v: Violation) -> ! {
        panic!("{v}");
    }

    fn assert_valid(&self) {
        if let Err(v) = self.check_invariants() {
            Self::validation_failed(v);
        }
    }

    /// Asserts that a squash removed exactly `ctx`'s scoreboard slots
    /// (called right after `clear_context` when validation is on).
    fn checked_cleared(&self, ctx: usize, now: u64) {
        if let Err(v) = self.scoreboard.check_cleared(ctx, now) {
            Self::validation_failed(v);
        }
    }

    /// How long the processor will stay idle, or `None` if it can make
    /// progress this cycle.
    ///
    /// Idle means: nothing in the issue window, nothing in the front end,
    /// and no attached context able to fetch — every context is waiting
    /// or has completed its stream, or instruction fetch itself is
    /// stalled on a miss (which blocks every context until it clears).
    /// Until the returned bound, a tick can only charge one bubble cycle,
    /// so [`Processor::skip_idle_to`] may fast-forward there with
    /// bit-identical results.
    pub fn idle_bound(&self) -> Option<IdleBound> {
        if !self.window.is_empty() || self.front.occupancy() != 0 {
            return None;
        }
        // While an instruction fetch is stalled on the (blocking) i-cache,
        // fetch emits inst-mem bubbles no matter what the contexts could
        // do, so the processor idles until the stall clears at the latest.
        let stalled = self.fetch_stall_until > self.now;
        let mut bound = self.events.next_due();
        if stalled {
            bound = Some(bound.map_or(self.fetch_stall_until, |b| b.min(self.fetch_stall_until)));
        }
        for c in 0..self.ctx.len() {
            if !self.ctx.attached[c] {
                continue;
            }
            match self.ctx.state[c] {
                CtxState::Waiting { until: Some(t), .. } => {
                    bound = Some(bound.map_or(t, |b| b.min(t)));
                }
                CtxState::Waiting { until: None, .. } => {}
                CtxState::Ready => {
                    // Absent a fetch stall, a ready context idles only
                    // once its stream is done (wrong-path or
                    // pending-backoff contexts still fetch or hold fetch
                    // slots).
                    if !stalled
                        && (!self.ctx.done[c]
                            || self.ctx.wrong_path[c]
                            || self.ctx.pending_backoff[c])
                    {
                        return None;
                    }
                }
            }
        }
        Some(match bound {
            Some(t) => IdleBound::Until(t),
            None => IdleBound::External,
        })
    }

    /// Where to fast-forward to within a run bounded by `end`, if idle
    /// skipping is enabled, possible, and worth more than a plain tick.
    fn skip_target(&self, end: u64) -> Option<u64> {
        if !self.cfg.idle_skip {
            return None;
        }
        let target = match self.idle_bound()? {
            IdleBound::Until(t) => t.min(end),
            IdleBound::External => end,
        };
        (target > self.now + 1).then_some(target)
    }

    /// Fast-forwards an idle processor to `target`, charging the skipped
    /// cycles exactly as ticking them one by one would: same breakdown
    /// categories, same drained-cycle count, same front-end bubble
    /// counters, same trace.
    ///
    /// The bulk path applies only while the trace is off and the front
    /// end is uniformly filled with the bubble cause that would be
    /// fetched anyway (so shifting is the identity); otherwise it falls
    /// back to plain ticks, which the idle precondition makes cheap.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `target` does not cross the bound reported by
    /// [`Processor::idle_bound`] — skipping past an event due cycle or a
    /// context wake would change results.
    pub fn skip_idle_to(&mut self, target: u64) {
        if target <= self.now {
            return;
        }
        let _skip = profile::enter("core.idle_skip");
        debug_assert!(
            match self.idle_bound() {
                Some(IdleBound::Until(t)) => target <= t,
                Some(IdleBound::External) => true,
                None => false,
            },
            "skip_idle_to past the idle bound"
        );
        while self.now < target {
            let now = self.now;
            let stalled = self.fetch_stall_until > now;
            let incoming = if stalled { BubbleCause::InstMem } else { self.no_context_cause() };
            if self.trace.is_none() && self.front.uniform_bubble() == Some(incoming) {
                // The fetch cause holds until `until`; charge those cycles
                // in one step.
                let until = if stalled { target.min(self.fetch_stall_until) } else { target };
                let n = until - now;
                match bubble_category(incoming) {
                    Some(c) => self.breakdown.record(c, n),
                    None => self.drained_cycles += n,
                }
                self.front.record_bubbles(incoming, n);
                self.now = until;
            } else {
                // Mixed bubbles still in the pipe (or tracing): replay the
                // exact per-cycle path.
                self.tick();
            }
        }
        if self.cfg.validate {
            self.assert_valid();
        }
    }

    /// Register ready cycle as tracked by the scoreboard (debug aid).
    pub fn debug_reg_ready(&self, ctx: usize, reg: interleave_isa::Reg) -> u64 {
        self.scoreboard.ready_at(ctx, reg)
    }

    /// Dumps internal scheduling state (debug aid; unstable format).
    pub fn debug_state(&self) -> String {
        let mut s = format!(
            "now={} current={:?} rr={} window={} front_occ={} events={:?} fetch_stall={} rf={:?}\n",
            self.now,
            self.current,
            self.rr,
            self.window.len(),
            self.front.occupancy(),
            self.events,
            self.fetch_stall_until,
            self.front.rf(),
        );
        for i in 0..self.ctx.len() {
            s += &format!(
                "  ctx{i}: state={:?} wp={} pend_bo={} epoch={} bound={:?} bifetch={:?} win={} front={}\n",
                self.ctx.state[i],
                self.ctx.wrong_path[i],
                self.ctx.pending_backoff[i],
                self.ctx.epoch[i],
                self.ctx.bound_fills[i],
                self.ctx.bound_ifetch[i],
                self.window.count_ctx(i),
                self.front.count_ctx(i),
            );
        }
        s
    }

    /// Advances the processor one cycle.
    pub fn tick(&mut self) {
        profile::mark("core.tick");
        let now = self.now;
        self.process_events(now);
        self.wake_contexts(now);

        let record = self.issue_stage(now);
        if let Some(trace) = self.trace.as_mut() {
            trace.push(record);
        }

        let mut retired = std::mem::take(&mut self.retired_scratch);
        self.window.retire_due_into(now, &mut retired);
        for r in &retired {
            let unit = self.units[r.ctx].as_mut().expect("retiring context has a unit");
            unit.retire(r.fetch_index);
            self.ctx.retired[r.ctx] += 1;
            // Retirement is the only place a unit can become done (eager
            // normalization discovers stream exhaustion here).
            if !self.ctx.done[r.ctx] && unit.is_done() {
                self.ctx.done[r.ctx] = true;
                self.done_units += 1;
            }
        }
        self.retired_scratch = retired;

        self.now += 1;
        if self.cfg.validate {
            self.assert_valid();
        }
    }

    // ----- cycle phases -------------------------------------------------

    fn process_events(&mut self, now: u64) {
        // The queue pops due events misses-first (they bump epochs that
        // invalidate same-cycle branch resolves), then scheduling order.
        // Handlers never schedule same-cycle events, so draining as we
        // pop matches draining up front.
        while let Some(e) = self.events.pop_due(now) {
            match e {
                Event::MissDetect { ctx, epoch, fetch_index, ready_at, addr, .. } => {
                    self.on_miss_detect(now, ctx, epoch, fetch_index, ready_at, addr);
                }
                Event::BranchResolve { ctx, epoch, pc, taken, target, .. } => {
                    if self.ctx.epoch[ctx] == epoch {
                        self.btb.update(pc, taken, target);
                        self.front.squash_wrong_path(ctx);
                        self.ctx.wrong_path[ctx] = false;
                    }
                }
            }
        }
    }

    fn on_miss_detect(
        &mut self,
        now: u64,
        ctx: usize,
        epoch: u64,
        fetch_index: u64,
        ready_at: u64,
        addr: u64,
    ) {
        if self.ctx.epoch[ctx] != epoch {
            return; // squashed in the meantime; the re-executed access re-reports
        }
        self.switches.data.inc();
        self.end_run(ctx);
        // The fill is delivered to this context by the MSHR; its
        // re-executed access completes without re-probing the cache.
        let bounds = &mut self.ctx.bound_fills[ctx];
        if !bounds.contains((fetch_index, addr)) {
            bounds.push_evicting((fetch_index, addr));
        }
        match self.cfg.scheme {
            Scheme::Single => unreachable!("single scheme schedules no miss events"),
            Scheme::Interleaved | Scheme::FineGrained => {
                let mut squashed = std::mem::take(&mut self.squash_scratch);
                self.window.squash_ctx_into(ctx, &mut squashed);
                let min_index = squashed
                    .iter()
                    .map(|i| i.fetch_index)
                    .chain(std::iter::once(fetch_index))
                    .min()
                    .expect("nonempty");
                self.transfer_squashed(&squashed);
                self.squash_scratch = squashed;
                self.front.squash_ctx(ctx);
                self.scoreboard.clear_context(ctx, now);
                if self.cfg.validate {
                    self.checked_cleared(ctx, now);
                }
                // Front slots of this context are younger than everything
                // in the window, so the window minimum covers them.
                self.unit_mut(ctx).rollback(min_index);
                self.ctx.state[ctx] =
                    CtxState::Waiting { reason: WaitReason::Data, until: Some(ready_at) };
                self.ctx.epoch[ctx] += 1;
                self.ctx.wrong_path[ctx] = false;
                self.ctx.pending_backoff[ctx] = false;
            }
            Scheme::Blocked => {
                // Full pipeline flush: every context's in-flight work dies,
                // including fetched-but-unissued instructions of contexts
                // with nothing in the window — those must be rolled back
                // too, or their instructions would be lost.
                let mut squashed = std::mem::take(&mut self.squash_scratch);
                self.window.squash_all_into(&mut squashed);
                self.transfer_squashed(&squashed);
                let front_squashed = self.front.squash_all();
                let mut mins = std::mem::take(&mut self.mins_scratch);
                mins.clear();
                let indices = squashed.iter().map(|s| (s.ctx, s.fetch_index)).chain(
                    front_squashed.iter().filter(|s| !s.wrong_path).map(|s| (s.ctx, s.fetch_index)),
                );
                for (c, idx) in indices {
                    match mins.iter_mut().find(|(mc, _)| *mc == c) {
                        Some((_, m)) => *m = (*m).min(idx),
                        None => mins.push((c, idx)),
                    }
                }
                self.squash_scratch = squashed;
                match mins.iter_mut().find(|(c, _)| *c == ctx) {
                    Some((_, m)) => *m = (*m).min(fetch_index),
                    None => mins.push((ctx, fetch_index)),
                }
                for &(c, min_index) in &mins {
                    self.scoreboard.clear_context(c, now);
                    if self.cfg.validate {
                        self.checked_cleared(c, now);
                    }
                    self.unit_mut(c).rollback(min_index);
                    self.ctx.epoch[c] += 1;
                    self.ctx.wrong_path[c] = false;
                    self.ctx.pending_backoff[c] = false;
                }
                self.mins_scratch = mins;
                self.ctx.state[ctx] =
                    CtxState::Waiting { reason: WaitReason::Data, until: Some(ready_at) };
                self.pick_next_current(ctx);
            }
        }
    }

    fn wake_contexts(&mut self, now: u64) {
        for state in self.ctx.state.iter_mut() {
            if let CtxState::Waiting { until: Some(t), .. } = *state {
                if t <= now {
                    *state = CtxState::Ready;
                }
            }
        }
    }

    /// The issue stage: examine RF, charge the cycle, maybe issue, and
    /// advance the front end.
    fn issue_stage(&mut self, now: u64) -> IssueRecord {
        let rf = *self.front.rf();
        match rf {
            FrontSlot::Bubble(cause) => {
                let category = self.charge_bubble(cause);
                self.advance_front(now);
                IssueRecord::Bubble(category)
            }
            FrontSlot::Instr(slot) if slot.wrong_path => {
                // Should be squashed before reaching issue; if timing
                // conspires, treat as a mispredict bubble.
                self.breakdown.record(Category::InstrShort, 1);
                self.advance_front(now);
                IssueRecord::Bubble(Some(Category::InstrShort))
            }
            FrontSlot::Instr(slot) => self.issue_instr(now, slot),
        }
    }

    fn issue_instr(&mut self, now: u64, slot: Slot) -> IssueRecord {
        let ex = now + 1;
        let earliest = self.scoreboard.earliest_issue(slot.ctx, &slot.instr, &self.cfg.timing, ex);
        if earliest > ex {
            let category = match self.rf_stall_class {
                Some(c) => c,
                None => {
                    let c = if self.scoreboard.blocked_on_memory(slot.ctx, &slot.instr, now) {
                        Category::DataMem
                    } else if earliest - ex <= 4 {
                        Category::InstrShort
                    } else {
                        Category::InstrLong
                    };
                    self.rf_stall_class = Some(c);
                    c
                }
            };
            self.breakdown.record(category, 1);
            return IssueRecord::Stalled { ctx: slot.ctx, category };
        }

        // Synchronization check happens at issue (the port decides).
        if let Some(sync) = slot.instr.sync {
            if self.port.sync(now, slot.ctx, sync) == SyncOutcome::Wait {
                return self.handle_sync_wait(now, slot);
            }
        }

        // Scheme-dependent latency-tolerance instructions.
        let tolerance = matches!(slot.instr.op, Op::Backoff | Op::SwitchHint);
        if tolerance {
            match self.cfg.scheme {
                Scheme::Single => { /* retires as a no-op */ }
                Scheme::Interleaved | Scheme::FineGrained if slot.instr.op == Op::Backoff => {
                    return self.handle_backoff(now, slot);
                }
                Scheme::Interleaved | Scheme::FineGrained => { /* explicit switch: no-op */ }
                Scheme::Blocked => return self.handle_explicit_switch(now, slot),
            }
        }

        // Plain issue.
        self.current_run[slot.ctx] += 1;
        if self.cfg.validate {
            if let Err(v) = self.scoreboard.check_issue(slot.ctx, &slot.instr, &self.cfg.timing, ex)
            {
                Self::validation_failed(v);
            }
        }
        self.scoreboard.issue(slot.ctx, &slot.instr, &self.cfg.timing, ex);
        let retires_at =
            ex + if slot.instr.op.is_fp() { FP_ISSUE_TO_RETIRE } else { INT_ISSUE_TO_RETIRE };
        self.window.issue(InFlight {
            ctx: slot.ctx,
            fetch_index: slot.fetch_index,
            instr: slot.instr,
            issued_at: ex,
            retires_at,
        });
        self.breakdown.record(Category::Busy, 1);

        if let Some(mem) = slot.instr.mem {
            self.issue_mem(now, &slot, mem.addr, mem.kind);
        }
        if let Some(branch) = slot.instr.branch {
            if slot.mispredicted {
                // The condition is evaluated in EX; the squash signal kills
                // wrong-path fetches at the start of the EX cycle, leaving
                // the three-cycle penalty of Section 4.1.
                self.events.push(Event::BranchResolve {
                    due: ex,
                    ctx: slot.ctx,
                    epoch: self.ctx.epoch[slot.ctx],
                    pc: slot.instr.pc,
                    taken: branch.taken,
                    target: branch.target,
                });
            }
        }

        self.advance_front(now);
        IssueRecord::Issued { ctx: slot.ctx, op: slot.instr.op, category: Category::Busy }
    }

    fn issue_mem(&mut self, now: u64, slot: &Slot, addr: u64, kind: Access) {
        let ex = now + 1;
        if slot.instr.op == Op::Prefetch {
            // Non-binding: start the fill and forget; the access never
            // makes the context unavailable.
            let _ = self.port.data(ex + 1, addr, kind, slot.ctx);
            return;
        }
        // A re-executed access whose fill was bound by the MSHR completes
        // without re-probing the cache.
        if self.ctx.bound_fills[slot.ctx].take((slot.fetch_index, addr)) {
            return;
        }
        let lookup = ex + 1; // DF1
        match self.port.data(lookup, addr, kind, slot.ctx) {
            DataOutcome::Hit => {}
            DataOutcome::Stall { ready_at } => match self.cfg.scheme {
                Scheme::Single => {
                    // Stall-on-use: dependents wait for the bound fill.
                    if let Some(dst) = slot.instr.dest() {
                        self.scoreboard.set_mem_pending(slot.ctx, dst, ready_at);
                    }
                }
                Scheme::Blocked | Scheme::Interleaved | Scheme::FineGrained => {
                    if kind == Access::Write && self.cfg.store_policy == StorePolicy::WriteBuffer {
                        // Release-consistent write buffering: the store
                        // retires; the fill proceeds in the background.
                        return;
                    }
                    // Miss determined in WB; the context becomes
                    // unavailable there and re-executes from this load.
                    if let Some(dst) = slot.instr.dest() {
                        self.scoreboard.set_mem_pending(slot.ctx, dst, ready_at);
                    }
                    self.events.push(Event::MissDetect {
                        due: ex + INT_ISSUE_TO_RETIRE,
                        ctx: slot.ctx,
                        epoch: self.ctx.epoch[slot.ctx],
                        fetch_index: slot.fetch_index,
                        ready_at,
                        addr,
                    });
                }
            },
        }
    }

    fn handle_sync_wait(&mut self, now: u64, slot: Slot) -> IssueRecord {
        self.breakdown.record(Category::Sync, 1);
        match self.cfg.scheme {
            Scheme::Single => {
                // Spin at RF: retry the port every cycle until granted.
                IssueRecord::Stalled { ctx: slot.ctx, category: Category::Sync }
            }
            Scheme::Blocked | Scheme::Interleaved | Scheme::FineGrained => {
                let ctx = slot.ctx;
                self.switches.sync.inc();
                self.end_run(ctx);
                // The sync instruction has not issued; squash it (it sits
                // in RF) and everything younger, then sleep until woken.
                self.front.squash_ctx(ctx);
                self.unit_mut(ctx).rollback(slot.fetch_index);
                self.scoreboard.clear_context(ctx, now);
                if self.cfg.validate {
                    self.checked_cleared(ctx, now);
                }
                self.ctx.state[ctx] = CtxState::Waiting { reason: WaitReason::Sync, until: None };
                self.ctx.epoch[ctx] += 1;
                self.ctx.wrong_path[ctx] = false;
                self.ctx.pending_backoff[ctx] = false;
                if self.cfg.scheme == Scheme::Blocked {
                    self.pick_next_current(ctx);
                }
                self.advance_front(now);
                IssueRecord::Bubble(Some(Category::Sync))
            }
        }
    }

    /// Interleaved backoff: cost 1 (this issue slot), context unavailable
    /// for the encoded duration.
    fn handle_backoff(&mut self, now: u64, slot: Slot) -> IssueRecord {
        self.issue_tolerance_op(now, &slot);
        IssueRecord::Issued { ctx: slot.ctx, op: Op::Backoff, category: Category::Switch }
    }

    /// Blocked explicit switch: cost 3 (this slot + the two suppressed
    /// fetch slots behind it), context unavailable for the encoded
    /// duration.
    fn handle_explicit_switch(&mut self, now: u64, slot: Slot) -> IssueRecord {
        let ctx = slot.ctx;
        self.issue_tolerance_op(now, &slot);
        self.pick_next_current(ctx);
        IssueRecord::Issued { ctx, op: Op::SwitchHint, category: Category::Switch }
    }

    /// Ends a context's current run (it is becoming unavailable).
    fn end_run(&mut self, ctx: usize) {
        let length = std::mem::take(&mut self.current_run[ctx]);
        if length > 0 {
            self.run_lengths.record(length);
        }
    }

    /// Common backoff/explicit-switch issue path: the slot is switch
    /// overhead, the instruction stays in the pipe (so an older miss can
    /// still squash and re-execute it), and the context sleeps.
    fn issue_tolerance_op(&mut self, now: u64, slot: &Slot) {
        let ctx = slot.ctx;
        self.switches.backoff.inc();
        self.end_run(ctx);
        let ex = now + 1;
        self.breakdown.record(Category::Switch, 1);
        self.window.issue(InFlight {
            ctx,
            fetch_index: slot.fetch_index,
            instr: slot.instr,
            issued_at: ex,
            retires_at: ex + INT_ISSUE_TO_RETIRE,
        });
        self.front.squash_ctx(ctx);
        let duration = u64::from(slot.instr.backoff.max(1));
        self.ctx.state[ctx] =
            CtxState::Waiting { reason: WaitReason::Backoff, until: Some(now + duration) };
        self.ctx.wrong_path[ctx] = false;
        self.ctx.pending_backoff[ctx] = false;
        self.advance_front(now);
    }

    fn charge_bubble(&mut self, cause: BubbleCause) -> Option<Category> {
        let category = bubble_category(cause);
        match category {
            Some(c) => self.breakdown.record(c, 1),
            None => self.drained_cycles += 1,
        }
        category
    }

    /// Move squashed instructions' issue slots from busy to switch
    /// overhead (the paper's context-switch cost accounting).
    fn transfer_squashed(&mut self, squashed: &[InFlight]) {
        for inflight in squashed {
            // Only slots that were charged busy at issue. Saturating: the
            // busy charge may have been cleared by a statistics reset
            // while the instruction was in flight.
            if !matches!(inflight.instr.op, Op::Backoff | Op::SwitchHint) {
                let moved = self.breakdown.transfer_upto(Category::Busy, Category::Switch, 1);
                if moved == 1 {
                    self.reattribute_trace(inflight.issued_at);
                }
            }
        }
    }

    /// Re-marks the trace record of the issue slot at `issued_at` as
    /// switch overhead, keeping the trace cycle-for-cycle consistent
    /// with the breakdown's busy→switch transfer. The record was pushed
    /// the cycle before the instruction entered EX.
    fn reattribute_trace(&mut self, issued_at: u64) {
        let start = self.trace_start;
        if let Some(trace) = self.trace.as_mut() {
            if issued_at > start {
                if let Some(IssueRecord::Issued { category, .. }) =
                    trace.get_mut((issued_at - 1 - start) as usize)
                {
                    *category = Category::Switch;
                }
            }
        }
    }

    /// Advances the front end, fetching into IF1. Clears the RF stall
    /// classification because the RF occupant changes.
    fn advance_front(&mut self, now: u64) {
        self.rf_stall_class = None;
        let incoming = self.fetch_slot(now);
        self.front.shift(incoming);
    }

    // ----- fetch --------------------------------------------------------

    fn fetch_slot(&mut self, now: u64) -> FrontSlot {
        if self.fetch_stall_until > now {
            return FrontSlot::Bubble(BubbleCause::InstMem);
        }
        // A blocked processor that has decoded an explicit switch stops
        // fetching until the switch issues (it may not run another context
        // yet) — the two bubbles of the three-cycle cost in Table 4.
        if self.cfg.scheme == Scheme::Blocked {
            if let Some(c) = self.current {
                if self.ctx.is_ready(c) && self.ctx.pending_backoff[c] {
                    return FrontSlot::Bubble(BubbleCause::Switch);
                }
            }
        }
        let Some(ctx) = self.select_context(now) else {
            return FrontSlot::Bubble(self.no_context_cause());
        };

        if self.ctx.wrong_path[ctx] {
            let index = self.unit(ctx).cursor();
            return FrontSlot::Instr(Slot {
                ctx,
                fetch_index: index,
                instr: Instr::nop(u64::MAX),
                wrong_path: true,
                mispredicted: false,
            });
        }

        let instr = self.unit(ctx).peek().expect("select_context verified the stream is non-empty");
        let cursor = self.unit(ctx).cursor();
        if self.ctx.bound_ifetch[ctx] == Some(cursor) {
            // The outstanding I-fill delivers this fetch directly.
            self.ctx.bound_ifetch[ctx] = None;
        } else {
            self.ctx.bound_ifetch[ctx] = None; // any older binding is stale
            match self.port.inst(now, instr.pc) {
                InstOutcome::Hit => {}
                InstOutcome::Stall { ready_at } => {
                    self.fetch_stall_until = ready_at;
                    self.ctx.bound_ifetch[ctx] = Some(cursor);
                    return FrontSlot::Bubble(BubbleCause::InstMem);
                }
            }
        }

        let mut mispredicted = false;
        if let Some(branch) = instr.branch {
            if !self.btb.check(instr.pc, branch.taken, branch.target) {
                // The prediction is bound at fetch: the shared BTB may be
                // retrained by other contexts before this branch issues.
                self.ctx.wrong_path[ctx] = true;
                mispredicted = true;
            }
        }
        if matches!(instr.op, Op::Backoff | Op::SwitchHint) && self.cfg.scheme != Scheme::Single {
            self.ctx.pending_backoff[ctx] = true;
        }

        let fetch_index = self.unit(ctx).cursor();
        self.unit_mut(ctx).advance();
        FrontSlot::Instr(Slot { ctx, fetch_index, instr, wrong_path: false, mispredicted })
    }

    /// Picks the context to fetch from this cycle.
    fn select_context(&mut self, _now: u64) -> Option<usize> {
        match self.cfg.scheme {
            Scheme::Interleaved | Scheme::FineGrained => {
                let n = self.cfg.contexts;
                for offset in 0..n {
                    let c = (self.rr + offset) % n;
                    if self.fetchable(c) {
                        self.rr = (c + 1) % n;
                        return Some(c);
                    }
                }
                None
            }
            Scheme::Blocked | Scheme::Single => {
                if let Some(c) = self.current {
                    if self.fetchable(c) {
                        return Some(c);
                    }
                }
                // Current missing or unavailable: adopt any ready context.
                let n = self.cfg.contexts;
                for offset in 0..n {
                    let c = (self.rr + offset) % n;
                    if self.fetchable(c) {
                        self.rr = (c + 1) % n;
                        self.current = Some(c);
                        return Some(c);
                    }
                }
                None
            }
        }
    }

    fn fetchable(&self, ctx: usize) -> bool {
        if !self.ctx.attached[ctx] || !self.ctx.is_ready(ctx) || self.ctx.pending_backoff[ctx] {
            return false;
        }
        // The fine-grained (HEP-like) pipeline has no interlocks: a
        // context may have only one instruction active at a time.
        if self.cfg.scheme == Scheme::FineGrained
            && self.window.count_ctx(ctx) + self.front.count_ctx(ctx) > 0
        {
            return false;
        }
        if self.ctx.wrong_path[ctx] {
            return true;
        }
        self.unit(ctx).peek().is_some()
    }

    /// After `exclude` becomes unavailable, pick the blocked scheme's next
    /// running context in round-robin order.
    fn pick_next_current(&mut self, exclude: usize) {
        let n = self.cfg.contexts;
        for offset in 1..=n {
            let c = (exclude + offset) % n;
            if c != exclude && self.ctx.attached[c] && self.ctx.is_ready(c) {
                self.current = Some(c);
                return;
            }
        }
        self.current = None;
    }

    /// Attribution when no context can fetch: the reason of the context
    /// that resumes soonest (sync waits count as farthest).
    fn no_context_cause(&self) -> BubbleCause {
        let mut best: Option<(u64, WaitReason)> = None;
        for c in 0..self.ctx.len() {
            if !self.ctx.attached[c] {
                continue;
            }
            if let CtxState::Waiting { reason, until } = self.ctx.state[c] {
                let at = until.unwrap_or(u64::MAX);
                if best.is_none_or(|(b, _)| at < b) {
                    best = Some((at, reason));
                }
            }
        }
        match best {
            Some((_, WaitReason::Data)) => BubbleCause::DataWait,
            Some((_, WaitReason::Sync)) => BubbleCause::SyncWait,
            Some((_, WaitReason::Backoff)) => BubbleCause::BackoffWait,
            // No context is waiting: either every ready context has a
            // decoded backoff in flight (switch overhead) or the streams
            // are exhausted (drained, uncharged).
            None if (0..self.ctx.len()).any(|c| {
                self.ctx.attached[c] && self.ctx.is_ready(c) && self.ctx.pending_backoff[c]
            }) =>
            {
                BubbleCause::Switch
            }
            None => BubbleCause::Drained,
        }
    }

    fn unit(&self, ctx: usize) -> &FetchUnit {
        self.units[ctx].as_ref().expect("context has a unit attached")
    }

    fn unit_mut(&mut self, ctx: usize) -> &mut FetchUnit {
        self.units[ctx].as_mut().expect("context has a unit attached")
    }

    /// Squashes everything a context has in the machine (used by
    /// [`Processor::swap_unit`]).
    fn squash_context(&mut self, ctx: usize) {
        let squashed = self.window.squash_ctx(ctx);
        self.transfer_squashed(&squashed);
        self.front.squash_ctx(ctx);
        self.scoreboard.clear_context(ctx, self.now);
        if self.cfg.validate {
            self.checked_cleared(ctx, self.now);
        }
        self.ctx.epoch[ctx] += 1;
        self.ctx.wrong_path[ctx] = false;
        self.ctx.pending_backoff[ctx] = false;
        self.ctx.bound_fills[ctx].clear();
    }
}

impl<P: SystemPort + std::fmt::Debug> std::fmt::Debug for Processor<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Processor")
            .field("scheme", &self.cfg.scheme)
            .field("contexts", &self.cfg.contexts)
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PerfectMemory, VecSource};
    use interleave_isa::Reg;

    #[test]
    fn run_length_histogram_starts_empty() {
        let cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
        assert_eq!(cpu.run_lengths().mean(), 0.0);
        assert_eq!(cpu.run_lengths().count(), 0);
    }

    #[test]
    fn collect_metrics_reports_cycles_and_structures() {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
        cpu.attach(0, Box::new(VecSource::new((0..10).map(Instr::nop))));
        cpu.run_cycles(20);
        let mut reg = Registry::new();
        cpu.collect_metrics(&mut reg);
        assert_eq!(reg.counter_value("cycles.busy"), Some(cpu.breakdown().get(Category::Busy)));
        assert_eq!(reg.counter_value("instructions.retired"), Some(cpu.retired(0)));
        assert!(reg.get("core.run_length").is_some());
        assert!(reg.get("pipeline.btb.lookups").is_some());
        assert!(reg.get("pipeline.front.bubbles.switch").is_some());
    }

    #[test]
    fn chrome_trace_reconciles_with_breakdown() {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
        cpu.set_trace(true);
        cpu.attach(0, Box::new(VecSource::new((0..25).map(Instr::nop))));
        cpu.run_cycles(60);
        let json = cpu.chrome_trace().to_json();
        let summary = interleave_obs::chrome::validate(&json).expect("valid trace");
        for category in Category::ALL {
            let spans = summary.dur_by_name.get(category.label()).copied().unwrap_or(0);
            assert_eq!(
                spans,
                cpu.breakdown().get(category),
                "span total for {} disagrees with breakdown",
                category.label()
            );
        }
    }

    #[test]
    fn disabled_trace_exports_empty() {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
        cpu.attach(0, Box::new(VecSource::new((0..5).map(Instr::nop))));
        cpu.run_cycles(10);
        assert!(cpu.chrome_trace().is_empty());
    }

    #[test]
    fn debug_state_is_nonempty() {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
        cpu.attach(0, Box::new(VecSource::new(vec![Instr::alu(0, Some(Reg::int(1)), None, None)])));
        cpu.run_cycles(3);
        let s = cpu.debug_state();
        assert!(s.contains("now=3"));
        assert!(s.contains("ctx0"));
    }

    #[test]
    fn reset_breakdown_clears_counts_and_trace() {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
        cpu.set_trace(true);
        cpu.attach(0, Box::new(VecSource::new((0..10).map(Instr::nop))));
        cpu.run_cycles(20);
        assert!(cpu.breakdown().total() > 0);
        cpu.reset_breakdown();
        assert_eq!(cpu.breakdown().total(), 0);
        assert_eq!(cpu.drained_cycles(), 0);
        assert!(cpu.trace().is_empty());
    }

    #[test]
    #[should_panic]
    fn double_attach_panics() {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::Single, 1), PerfectMemory);
        cpu.attach(0, Box::new(VecSource::new(vec![])));
        cpu.attach(0, Box::new(VecSource::new(vec![])));
    }

    #[test]
    fn ctx_view_reports_attachment() {
        let mut cpu = Processor::new(ProcConfig::new(Scheme::Interleaved, 2), PerfectMemory);
        assert!(!cpu.ctx_view(0).attached);
        cpu.attach(0, Box::new(VecSource::new(vec![])));
        assert!(cpu.ctx_view(0).attached);
        assert!(cpu.ctx_view(0).ready);
        assert!(!cpu.ctx_view(1).attached);
    }
}
