//! Multiple-context processor models: single, blocked, and interleaved.
//!
//! This crate implements the paper's primary contribution (Section 3): a
//! cycle-level model of a processor that multiplexes several hardware
//! contexts over the seven-stage integer / nine-stage FP pipeline of
//! `interleave-pipeline`, connected to a memory system through the
//! [`SystemPort`] trait (implemented by the workstation hierarchy in
//! `interleave-mem` and by the multiprocessor node in `interleave-mp`).
//!
//! Three scheduling schemes are provided ([`Scheme`]):
//!
//! * **Single** — a conventional single-context processor (the baseline all
//!   speedups are measured against). Lockup-free cache semantics: it stalls
//!   on *use* of a missing value, attributing the wait to data memory.
//! * **Blocked** — Weber & Gupta / APRIL style: one context owns the
//!   pipeline until it takes a cache miss (detected late, in WB), at which
//!   point the *entire* pipeline is flushed (≈7-cycle switch cost) and the
//!   next ready context starts. An explicit switch instruction (cost 3)
//!   tolerates non-miss latencies.
//! * **Interleaved** — the paper's proposal: issue round-robins
//!   cycle-by-cycle over *available* contexts; a context that misses has
//!   only its own instructions squashed (cost = its pipeline occupancy,
//!   1–4 cycles), and a backoff instruction (cost 1) tolerates long
//!   instruction latencies. With one loaded context it behaves exactly
//!   like the single-context pipeline.
//!
//! Every processor cycle is attributed to an execution-time category
//! ([`interleave_stats::Category`]), reproducing the paper's Figures 6–9
//! breakdowns.
//!
//! # Examples
//!
//! ```
//! use interleave_core::{ProcConfig, Processor, Scheme, VecSource};
//! use interleave_isa::{Instr, Reg};
//! use interleave_mem::{MemConfig, UniMemSystem};
//!
//! let cfg = ProcConfig::new(Scheme::Interleaved, 2);
//! let mem = UniMemSystem::new(MemConfig::workstation());
//! let mut cpu = Processor::new(cfg, mem);
//! let thread = |base: u64| {
//!     VecSource::new((0..100).map(|i| Instr::alu(base + i * 4, Some(Reg::int(1)), None, None)))
//! };
//! cpu.attach(0, Box::new(thread(0x1000)));
//! cpu.attach(1, Box::new(thread(0x2000)));
//! cpu.run_until_done(10_000);
//! assert_eq!(cpu.retired(0) + cpu.retired(1), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod context;
mod events;
mod fetch;
mod ports;
mod processor;

pub use config::{ProcConfig, Scheme, StorePolicy};
pub use context::{CtxView, WaitReason};
pub use fetch::{FetchUnit, InstrSource, VecSource};
pub use ports::{DataOutcome, InstOutcome, PerfectMemory, SyncOutcome, SystemPort};
pub use processor::{IdleBound, IssueRecord, Processor, SwitchStats};
