use std::fmt;

/// Capacity of the per-context fill-binding ring — one entry per
/// outstanding fill, capped at the MSHR count.
const FILL_RING_CAP: usize = 8;

/// Fixed-capacity FIFO of `(fetch_index, addr)` fill bindings.
///
/// Replaces a `Vec` with `remove(0)` eviction in the miss path: same
/// first-in-first-out semantics (oldest binding evicted when an
/// insertion finds the ring full, match removal preserves order), no
/// heap traffic.
#[derive(Clone, Copy)]
pub(crate) struct FillRing {
    slots: [(u64, u64); FILL_RING_CAP],
    /// Index of the oldest entry.
    head: usize,
    len: usize,
}

impl FillRing {
    pub fn new() -> FillRing {
        FillRing { slots: [(0, 0); FILL_RING_CAP], head: 0, len: 0 }
    }

    fn at(&self, i: usize) -> (u64, u64) {
        self.slots[(self.head + i) % FILL_RING_CAP]
    }

    /// Entries in insertion (oldest-first) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..self.len).map(|i| self.at(i))
    }

    pub fn contains(&self, entry: (u64, u64)) -> bool {
        self.iter().any(|e| e == entry)
    }

    /// Appends `entry`, evicting the oldest binding if the ring is full
    /// (the MSHR being reused).
    pub fn push_evicting(&mut self, entry: (u64, u64)) {
        if self.len == FILL_RING_CAP {
            self.head = (self.head + 1) % FILL_RING_CAP;
            self.len -= 1;
        }
        self.slots[(self.head + self.len) % FILL_RING_CAP] = entry;
        self.len += 1;
    }

    /// Removes the first entry equal to `entry`, preserving the order of
    /// the rest; returns whether a match was found.
    pub fn take(&mut self, entry: (u64, u64)) -> bool {
        let Some(pos) = (0..self.len).find(|&i| self.at(i) == entry) else {
            return false;
        };
        for i in pos..self.len - 1 {
            self.slots[(self.head + i) % FILL_RING_CAP] = self.at(i + 1);
        }
        self.len -= 1;
        true
    }

    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

impl fmt::Debug for FillRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Why a context is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Waiting for an outstanding data reference (cache or TLB miss).
    Data,
    /// Waiting on a lock or barrier.
    Sync,
    /// Backing off a long instruction latency (backoff / explicit switch).
    Backoff,
}

/// Availability of one hardware context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtxState {
    /// Eligible to fetch and issue.
    Ready,
    /// Unavailable. `until: Some(c)` resumes at cycle `c`; `None` waits for
    /// an external wake (synchronization grant).
    Waiting { reason: WaitReason, until: Option<u64> },
}

/// Per-context scheduling state in struct-of-arrays layout: one
/// fixed-capacity, arena-backed column per field, indexed by context id.
///
/// The processor's hot loops scan one field across every context (the
/// select scan reads `state`, the idle bound reads `state` and `done`,
/// metrics sum `retired`); laying each field out contiguously keeps
/// those scans on a handful of cache lines instead of striding over
/// whole per-context records. Columns are allocated once at
/// construction (`Box<[_]>`, no spare capacity) and never resized —
/// context count is a hardware parameter.
#[derive(Debug)]
pub(crate) struct ContextTable {
    /// Availability of each context.
    pub state: Box<[CtxState]>,
    /// Set while fetching down a mispredicted path.
    pub wrong_path: Box<[bool]>,
    /// Bumped on every squash; pending events carry the epoch at which they
    /// were scheduled and are dropped if stale.
    pub epoch: Box<[u64]>,
    /// A backoff/switch instruction has been fetched but not yet issued:
    /// fetch from this context is suppressed (the hardware detects these
    /// at decode, Table 4).
    pub pending_backoff: Box<[bool]>,
    /// Miss fills bound to each context's re-executed accesses: the
    /// lockup-free cache's MSHRs deliver the data directly, so when the
    /// instruction at a bound fetch index re-executes it completes without
    /// re-probing the cache (guarantees forward progress under conflict
    /// eviction). One entry per outstanding fill, capped at the MSHR
    /// count.
    pub bound_fills: Box<[FillRing]>,
    /// An instruction fetch bound to an outstanding I-fill: when fetch
    /// resumes at this cursor index, the instruction is delivered without
    /// re-probing the I-cache (forward progress under I-TLB/I-cache
    /// conflict eviction by other contexts).
    pub bound_ifetch: Box<[Option<u64>]>,
    /// Retired instruction count (resettable).
    pub retired: Box<[u64]>,
    /// Whether a stream is attached.
    pub attached: Box<[bool]>,
    /// Latched when the context's fetch unit completes (stream exhausted,
    /// everything retired); maintained incrementally so the run loops can
    /// test completion in O(1) instead of scanning every unit per cycle.
    pub done: Box<[bool]>,
}

impl ContextTable {
    pub fn new(contexts: usize) -> ContextTable {
        ContextTable {
            state: vec![CtxState::Ready; contexts].into_boxed_slice(),
            wrong_path: vec![false; contexts].into_boxed_slice(),
            epoch: vec![0; contexts].into_boxed_slice(),
            pending_backoff: vec![false; contexts].into_boxed_slice(),
            bound_fills: vec![FillRing::new(); contexts].into_boxed_slice(),
            bound_ifetch: vec![None; contexts].into_boxed_slice(),
            retired: vec![0; contexts].into_boxed_slice(),
            attached: vec![false; contexts].into_boxed_slice(),
            done: vec![false; contexts].into_boxed_slice(),
        }
    }

    /// Number of hardware contexts.
    pub fn len(&self) -> usize {
        self.state.len()
    }

    #[inline]
    pub fn is_ready(&self, ctx: usize) -> bool {
        matches!(self.state[ctx], CtxState::Ready)
    }

    /// Read-only snapshot of one context's scheduling state.
    pub fn view(&self, ctx: usize) -> CtxView {
        let (waiting_on, resumes_at) = match self.state[ctx] {
            CtxState::Ready => (None, None),
            CtxState::Waiting { reason, until } => (Some(reason), until),
        };
        CtxView {
            ready: self.is_ready(ctx),
            waiting_on,
            resumes_at,
            retired: self.retired[ctx],
            attached: self.attached[ctx],
        }
    }
}

/// A read-only snapshot of one context's scheduling state, for tests and
/// simulation drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtxView {
    /// Whether the context is currently available for fetch/issue.
    pub ready: bool,
    /// Why it is waiting, if it is.
    pub waiting_on: Option<WaitReason>,
    /// Cycle at which it resumes, when known.
    pub resumes_at: Option<u64>,
    /// Retired instruction count.
    pub retired: u64,
    /// Whether an instruction stream is attached.
    pub attached: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_contexts_are_ready() {
        let t = ContextTable::new(2);
        assert_eq!(t.len(), 2);
        for ctx in 0..2 {
            assert!(t.is_ready(ctx));
            let v = t.view(ctx);
            assert!(v.ready);
            assert_eq!(v.waiting_on, None);
            assert_eq!(v.retired, 0);
            assert!(!v.attached);
        }
    }

    #[test]
    fn waiting_view() {
        let mut t = ContextTable::new(2);
        t.state[1] = CtxState::Waiting { reason: WaitReason::Data, until: Some(42) };
        let v = t.view(1);
        assert!(!v.ready);
        assert_eq!(v.waiting_on, Some(WaitReason::Data));
        assert_eq!(v.resumes_at, Some(42));
        assert!(t.view(0).ready, "columns are per-context");
    }

    #[test]
    fn fill_ring_is_fifo_with_eviction() {
        let mut r = FillRing::new();
        for i in 0..FILL_RING_CAP as u64 {
            r.push_evicting((i, i * 8));
        }
        assert!(r.contains((0, 0)));
        // Full: the next insertion evicts the oldest binding.
        r.push_evicting((99, 99));
        assert!(!r.contains((0, 0)));
        assert!(r.contains((99, 99)));
        assert_eq!(r.iter().next(), Some((1, 8)));
    }

    #[test]
    fn fill_ring_take_removes_match_preserving_order() {
        let mut r = FillRing::new();
        r.push_evicting((1, 1));
        r.push_evicting((2, 2));
        r.push_evicting((3, 3));
        assert!(r.take((2, 2)));
        assert!(!r.take((2, 2)));
        assert_eq!(r.iter().collect::<Vec<_>>(), [(1, 1), (3, 3)]);
        r.clear();
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn sync_wait_has_no_resume_cycle() {
        let mut t = ContextTable::new(1);
        t.state[0] = CtxState::Waiting { reason: WaitReason::Sync, until: None };
        assert_eq!(t.view(0).resumes_at, None);
        assert_eq!(t.view(0).waiting_on, Some(WaitReason::Sync));
    }
}
