/// Why a context is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitReason {
    /// Waiting for an outstanding data reference (cache or TLB miss).
    Data,
    /// Waiting on a lock or barrier.
    Sync,
    /// Backing off a long instruction latency (backoff / explicit switch).
    Backoff,
}

/// Availability of one hardware context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CtxState {
    /// Eligible to fetch and issue.
    Ready,
    /// Unavailable. `until: Some(c)` resumes at cycle `c`; `None` waits for
    /// an external wake (synchronization grant).
    Waiting { reason: WaitReason, until: Option<u64> },
}

/// Bookkeeping for one hardware context.
#[derive(Debug)]
pub(crate) struct Context {
    pub state: CtxState,
    /// Set while fetching down a mispredicted path.
    pub wrong_path: bool,
    /// Bumped on every squash; pending events carry the epoch at which they
    /// were scheduled and are dropped if stale.
    pub epoch: u64,
    /// A backoff/switch instruction has been fetched but not yet issued:
    /// fetch from this context is suppressed (the hardware detects these
    /// at decode, Table 4).
    pub pending_backoff: bool,
    /// Miss fills bound to this context's re-executed accesses: the
    /// lockup-free cache's MSHRs deliver the data directly, so when the
    /// instruction at a bound fetch index re-executes it completes without
    /// re-probing the cache (guarantees forward progress under conflict
    /// eviction). One entry per outstanding fill, capped at the MSHR
    /// count.
    pub bound_fills: Vec<(u64, u64)>,
    /// An instruction fetch bound to an outstanding I-fill: when fetch
    /// resumes at this cursor index, the instruction is delivered without
    /// re-probing the I-cache (forward progress under I-TLB/I-cache
    /// conflict eviction by other contexts).
    pub bound_ifetch: Option<u64>,
    /// Retired instruction count (resettable).
    pub retired: u64,
    /// Whether a stream is attached.
    pub attached: bool,
}

impl Context {
    pub fn new() -> Context {
        Context {
            state: CtxState::Ready,
            wrong_path: false,
            epoch: 0,
            pending_backoff: false,
            bound_fills: Vec::new(),
            bound_ifetch: None,
            retired: 0,
            attached: false,
        }
    }

    pub fn is_ready(&self) -> bool {
        matches!(self.state, CtxState::Ready)
    }
}

/// A read-only snapshot of one context's scheduling state, for tests and
/// simulation drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtxView {
    /// Whether the context is currently available for fetch/issue.
    pub ready: bool,
    /// Why it is waiting, if it is.
    pub waiting_on: Option<WaitReason>,
    /// Cycle at which it resumes, when known.
    pub resumes_at: Option<u64>,
    /// Retired instruction count.
    pub retired: u64,
    /// Whether an instruction stream is attached.
    pub attached: bool,
}

impl Context {
    pub fn view(&self) -> CtxView {
        let (waiting_on, resumes_at) = match self.state {
            CtxState::Ready => (None, None),
            CtxState::Waiting { reason, until } => (Some(reason), until),
        };
        CtxView {
            ready: self.is_ready(),
            waiting_on,
            resumes_at,
            retired: self.retired,
            attached: self.attached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_context_is_ready() {
        let c = Context::new();
        assert!(c.is_ready());
        let v = c.view();
        assert!(v.ready);
        assert_eq!(v.waiting_on, None);
        assert_eq!(v.retired, 0);
        assert!(!v.attached);
    }

    #[test]
    fn waiting_view() {
        let mut c = Context::new();
        c.state = CtxState::Waiting { reason: WaitReason::Data, until: Some(42) };
        let v = c.view();
        assert!(!v.ready);
        assert_eq!(v.waiting_on, Some(WaitReason::Data));
        assert_eq!(v.resumes_at, Some(42));
    }

    #[test]
    fn sync_wait_has_no_resume_cycle() {
        let mut c = Context::new();
        c.state = CtxState::Waiting { reason: WaitReason::Sync, until: None };
        assert_eq!(c.view().resumes_at, None);
        assert_eq!(c.view().waiting_on, Some(WaitReason::Sync));
    }
}
