use interleave_isa::{Access, SyncRef};
use interleave_mem::{DataAccess, InstAccess, UniMemSystem};
use interleave_obs::validate::Violation;

/// Outcome of a data access as seen by the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataOutcome {
    /// Primary hit: the load's normal latency (Table 3) applies.
    Hit,
    /// The access stalls the issuing context; the data itself is bound to
    /// the requester and available at `ready_at` (line fills are delivered
    /// to the destination register by the lockup-free cache's MSHRs, so a
    /// re-executed access never depends on the line still being cached).
    Stall {
        /// Absolute cycle at which the data is available.
        ready_at: u64,
    },
}

/// Outcome of an instruction fetch as seen by the processor.
///
/// Fetch stalls always retry (the fetch unit simply re-attempts the same
/// PC once `ready_at` passes), so no retry flag is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstOutcome {
    /// Primary I-cache hit.
    Hit,
    /// Fetch stalls until `ready_at` (blocking I-cache: no context switch).
    Stall {
        /// Absolute cycle at which fetch may resume.
        ready_at: u64,
    },
}

/// Outcome of a synchronization operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The operation completed (lock granted / released, barrier passed).
    Proceed,
    /// The context must wait; the simulation driver wakes it via
    /// [`crate::Processor::wake_context`] when the operation is granted,
    /// after which the re-executed instruction will receive `Proceed`.
    Wait,
}

/// The processor's view of the memory system and synchronization substrate.
///
/// Implemented by [`interleave_mem::UniMemSystem`] for the workstation
/// study and by the multiprocessor node port in `interleave-mp`. All
/// timing methods take absolute cycles and fold contention into the
/// returned completion cycles.
pub trait SystemPort {
    /// Data access whose primary lookup starts at `lookup_start` (the DF1
    /// stage, one cycle after issue).
    fn data(&mut self, lookup_start: u64, addr: u64, kind: Access, ctx: usize) -> DataOutcome;

    /// Instruction fetch at `pc`, looked up at `lookup_start` (the IF1
    /// stage).
    fn inst(&mut self, lookup_start: u64, pc: u64) -> InstOutcome;

    /// Synchronization operation issued at `now` by context `ctx`.
    ///
    /// The default implementation always proceeds (uniprocessor workloads
    /// do not synchronize).
    fn sync(&mut self, now: u64, ctx: usize, op: SyncRef) -> SyncOutcome {
        let _ = (now, ctx, op);
        SyncOutcome::Proceed
    }

    /// Checks the port's structural invariants at cycle `now`; called by
    /// the processor's validation pass when `ProcConfig.validate` is on.
    ///
    /// Defaults to no checks. Ports whose per-tick checks would be too
    /// expensive (the multiprocessor node port shares one directory
    /// across all nodes) keep the default and are validated by their
    /// simulation driver at coarser boundaries instead.
    fn check_invariants(&self, now: u64) -> Result<(), Violation> {
        let _ = now;
        Ok(())
    }
}

impl SystemPort for UniMemSystem {
    fn data(&mut self, lookup_start: u64, addr: u64, kind: Access, ctx: usize) -> DataOutcome {
        match self.access_data(lookup_start, addr, kind, ctx) {
            DataAccess::Hit => DataOutcome::Hit,
            DataAccess::TlbMiss { ready_at } | DataAccess::Miss { ready_at, .. } => {
                DataOutcome::Stall { ready_at }
            }
        }
    }

    fn inst(&mut self, lookup_start: u64, pc: u64) -> InstOutcome {
        match self.access_inst(lookup_start, pc) {
            InstAccess::Hit => InstOutcome::Hit,
            InstAccess::TlbMiss { ready_at } | InstAccess::Miss { ready_at, .. } => {
                InstOutcome::Stall { ready_at }
            }
        }
    }

    fn check_invariants(&self, now: u64) -> Result<(), Violation> {
        UniMemSystem::check_invariants(self, now)
    }
}

/// A perfect memory system: every access hits. Useful for pipeline-focused
/// tests and the paper's Figure 2/3 illustrations (where misses are
/// injected explicitly).
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectMemory;

impl SystemPort for PerfectMemory {
    fn data(&mut self, _: u64, _: u64, _: Access, _: usize) -> DataOutcome {
        DataOutcome::Hit
    }

    fn inst(&mut self, _: u64, _: u64) -> InstOutcome {
        InstOutcome::Hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave_mem::MemConfig;

    #[test]
    fn uni_mem_port_maps_outcomes() {
        let mut cfg = MemConfig::workstation();
        cfg.tlbs_enabled = false;
        let mut mem = UniMemSystem::new(cfg);
        match mem.data(0, 0x8000, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => assert_eq!(ready_at, 34),
            other => panic!("expected stall, got {other:?}"),
        }
        mem.preload_data(0x100);
        assert_eq!(mem.data(40, 0x100, Access::Read, 0), DataOutcome::Hit);
    }

    #[test]
    fn tlb_penalty_composes_into_stall() {
        let mut mem = UniMemSystem::new(MemConfig::workstation());
        match mem.data(0, 0x8000, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => assert_eq!(ready_at, 25 + 34),
            other => panic!("expected composed stall, got {other:?}"),
        }
    }

    #[test]
    fn perfect_memory_always_hits() {
        let mut p = PerfectMemory;
        assert_eq!(p.data(0, 0xDEAD, Access::Write, 3), DataOutcome::Hit);
        assert_eq!(p.inst(0, 0xBEEF), InstOutcome::Hit);
        assert_eq!(
            p.sync(0, 0, SyncRef { kind: interleave_isa::SyncKind::LockAcquire, id: 0 }),
            SyncOutcome::Proceed
        );
    }
}
