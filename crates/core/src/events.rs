//! Pipeline micro-events for the processor hot loop, queued on the
//! shared [`interleave_engine::EventQueue`] substrate.
//!
//! The processor schedules a handful of future micro-events per miss or
//! mispredicted branch; the engine's min-heap keyed `(due, class, seq)`
//! means a cycle with no due event costs one peek and a cycle with due
//! events pops exactly those.
//!
//! The [`Sequenced`] impl preserves the historical processing order
//! exactly: events are handled at their due cycle with misses before
//! branch resolves (a miss bumps the context epoch, invalidating
//! same-cycle branch resolves) and scheduling order within each class.

use interleave_engine::Sequenced;

/// A scheduled pipeline event (internal to the processor).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A data miss is detected in WB at `due`; the context re-executes
    /// from `fetch_index` once the fill lands at `ready_at`.
    MissDetect { due: u64, ctx: usize, epoch: u64, fetch_index: u64, ready_at: u64, addr: u64 },
    /// A mispredicted branch resolves in EX at `due`.
    BranchResolve { due: u64, ctx: usize, epoch: u64, pc: u64, taken: bool, target: u64 },
}

impl Event {
    pub(crate) fn due(&self) -> u64 {
        match *self {
            Event::MissDetect { due, .. } | Event::BranchResolve { due, .. } => due,
        }
    }
}

impl Sequenced for Event {
    fn due(&self) -> u64 {
        Event::due(self)
    }

    /// Same-cycle ordering class: misses before branch resolves.
    fn class(&self) -> u8 {
        match self {
            Event::MissDetect { .. } => 0,
            Event::BranchResolve { .. } => 1,
        }
    }
}

/// Min-heap of pending [`Event`]s ordered by `(due, class, seq)`.
pub(crate) type EventQueue = interleave_engine::EventQueue<Event>;

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(due: u64) -> Event {
        Event::MissDetect { due, ctx: 0, epoch: 0, fetch_index: 0, ready_at: due + 10, addr: 0 }
    }

    fn branch(due: u64, pc: u64) -> Event {
        Event::BranchResolve { due, ctx: 0, epoch: 0, pc, taken: true, target: 0 }
    }

    #[test]
    fn misses_pop_before_same_cycle_branches() {
        let mut q = EventQueue::new();
        q.push(branch(5, 0x10));
        q.push(miss(5));
        assert!(matches!(q.pop_due(5), Some(Event::MissDetect { .. })));
        assert!(matches!(q.pop_due(5), Some(Event::BranchResolve { .. })));
    }

    #[test]
    fn same_class_pops_in_scheduling_order() {
        let mut q = EventQueue::new();
        q.push(branch(5, 0x10));
        q.push(branch(5, 0x20));
        q.push(branch(5, 0x30));
        let pcs: Vec<u64> = std::iter::from_fn(|| q.pop_due(5))
            .map(|e| match e {
                Event::BranchResolve { pc, .. } => pc,
                Event::MissDetect { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, [0x10, 0x20, 0x30]);
    }
}
