//! Cycle-indexed event queue for the processor hot loop.
//!
//! The processor schedules a handful of future micro-events per miss or
//! mispredicted branch. The old implementation kept them in a `Vec` and
//! repartitioned it every cycle; the [`EventQueue`] here is a binary
//! min-heap keyed on `(due, class, seq)`, so a cycle with no due event
//! costs one peek and a cycle with due events pops exactly those.
//!
//! The key preserves the historical processing order exactly: events are
//! handled at their due cycle with misses before branch resolves (a miss
//! bumps the context epoch, invalidating same-cycle branch resolves) and
//! scheduling order within each class.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// A scheduled pipeline event (internal to the processor).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Event {
    /// A data miss is detected in WB at `due`; the context re-executes
    /// from `fetch_index` once the fill lands at `ready_at`.
    MissDetect { due: u64, ctx: usize, epoch: u64, fetch_index: u64, ready_at: u64, addr: u64 },
    /// A mispredicted branch resolves in EX at `due`.
    BranchResolve { due: u64, ctx: usize, epoch: u64, pc: u64, taken: bool, target: u64 },
}

impl Event {
    pub(crate) fn due(&self) -> u64 {
        match *self {
            Event::MissDetect { due, .. } | Event::BranchResolve { due, .. } => due,
        }
    }

    /// Same-cycle ordering class: misses before branch resolves.
    fn class(&self) -> u8 {
        match self {
            Event::MissDetect { .. } => 0,
            Event::BranchResolve { .. } => 1,
        }
    }
}

struct Entry {
    /// (due, class, scheduling sequence) — the pop order.
    key: (u64, u8, u64),
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Entry) -> bool {
        self.key == other.key
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Entry) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Entry) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the smallest key.
        other.key.cmp(&self.key)
    }
}

/// Min-heap of pending [`Event`]s ordered by `(due, class, seq)`.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedules `event`; later pushes with an equal `(due, class)` pop
    /// after earlier ones.
    pub(crate) fn push(&mut self, event: Event) {
        let key = (event.due(), event.class(), self.seq);
        self.seq += 1;
        self.heap.push(Entry { key, event });
    }

    /// Due cycle of the earliest pending event.
    pub(crate) fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.key.0)
    }

    /// Pops the next event due at or before `now`, if any.
    pub(crate) fn pop_due(&mut self, now: u64) -> Option<Event> {
        if self.next_due()? <= now {
            self.heap.pop().map(|e| e.event)
        } else {
            None
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

impl fmt::Debug for EventQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("next_due", &self.next_due())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(due: u64) -> Event {
        Event::MissDetect { due, ctx: 0, epoch: 0, fetch_index: 0, ready_at: due + 10, addr: 0 }
    }

    fn branch(due: u64, pc: u64) -> Event {
        Event::BranchResolve { due, ctx: 0, epoch: 0, pc, taken: true, target: 0 }
    }

    #[test]
    fn pops_in_due_order() {
        let mut q = EventQueue::new();
        q.push(miss(9));
        q.push(miss(3));
        q.push(miss(6));
        assert_eq!(q.next_due(), Some(3));
        assert!(q.pop_due(2).is_none());
        assert_eq!(q.pop_due(9).unwrap().due(), 3);
        assert_eq!(q.pop_due(9).unwrap().due(), 6);
        assert_eq!(q.pop_due(9).unwrap().due(), 9);
        assert!(q.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn misses_pop_before_same_cycle_branches() {
        let mut q = EventQueue::new();
        q.push(branch(5, 0x10));
        q.push(miss(5));
        assert!(matches!(q.pop_due(5), Some(Event::MissDetect { .. })));
        assert!(matches!(q.pop_due(5), Some(Event::BranchResolve { .. })));
    }

    #[test]
    fn same_class_pops_in_scheduling_order() {
        let mut q = EventQueue::new();
        q.push(branch(5, 0x10));
        q.push(branch(5, 0x20));
        q.push(branch(5, 0x30));
        let pcs: Vec<u64> = std::iter::from_fn(|| q.pop_due(5))
            .map(|e| match e {
                Event::BranchResolve { pc, .. } => pc,
                Event::MissDetect { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, [0x10, 0x20, 0x30]);
    }

    #[test]
    fn empty_queue_reports_nothing_due() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_due(), None);
        assert!(q.pop_due(100).is_none());
        assert_eq!(q.len(), 0);
    }
}
