use std::collections::{HashMap, HashSet, VecDeque};

use interleave_core::SyncOutcome;
use interleave_isa::{SyncKind, SyncRef};
use interleave_obs::validate::Violation;

/// A thread identity: (node, hardware context).
pub type Who = (usize, usize);

#[derive(Debug, Default)]
struct Lock {
    holder: Option<Who>,
    /// Released-but-handed-off: the next holder has been chosen and woken
    /// but has not re-executed its acquire yet.
    reserved: Option<Who>,
    queue: VecDeque<Who>,
}

#[derive(Debug)]
struct Barrier {
    expected: u32,
    arrived: HashSet<Who>,
    passed: HashSet<Who>,
}

/// Centralized lock and barrier state for the multiprocessor.
///
/// Operations are *idempotent per thread*, because the processor may
/// squash and re-execute a synchronization instruction (e.g. when an
/// older load of the same context misses): re-acquiring a lock you hold,
/// re-releasing a lock you no longer hold, and re-arriving at a barrier
/// instance you already passed are all harmless.
///
/// Waiting threads are parked (the context becomes unavailable, charged
/// to the sync category) and woken through [`SyncController::take_wakes`]
/// by the simulation driver; a woken thread's re-executed operation is
/// then granted via a reservation, so no other thread can steal the lock
/// between release and re-execution.
///
/// Barrier identifiers are *instance* numbers: each workload thread
/// numbers its barrier arrivals sequentially, and an instance releases
/// when `expected` distinct threads arrive at it.
#[derive(Debug)]
pub struct SyncController {
    expected: u32,
    locks: HashMap<u32, Lock>,
    barriers: HashMap<u32, Barrier>,
    wakes: Vec<Who>,
    /// Operations that had to wait (statistics).
    waits: u64,
    /// Lock grants performed (statistics).
    grants: u64,
}

impl SyncController {
    /// Creates a controller for `threads` participating threads (the
    /// barrier arity).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: u32) -> SyncController {
        assert!(threads >= 1, "need at least one thread");
        SyncController {
            expected: threads,
            locks: HashMap::new(),
            barriers: HashMap::new(),
            wakes: Vec::new(),
            waits: 0,
            grants: 0,
        }
    }

    /// Handles a synchronization operation issued by `who`.
    pub fn sync(&mut self, who: Who, op: SyncRef) -> SyncOutcome {
        match op.kind {
            SyncKind::LockAcquire => self.acquire(op.id, who),
            SyncKind::LockRelease => {
                self.release(op.id, who);
                SyncOutcome::Proceed
            }
            SyncKind::BarrierArrive => self.barrier(op.id, who),
        }
    }

    fn acquire(&mut self, id: u32, who: Who) -> SyncOutcome {
        let lock = self.locks.entry(id).or_default();
        if lock.holder == Some(who) {
            return SyncOutcome::Proceed; // re-executed acquire
        }
        if lock.reserved == Some(who) {
            lock.reserved = None;
            lock.holder = Some(who);
            self.grants += 1;
            return SyncOutcome::Proceed;
        }
        if lock.holder.is_none() && lock.reserved.is_none() {
            lock.holder = Some(who);
            self.grants += 1;
            return SyncOutcome::Proceed;
        }
        if !lock.queue.contains(&who) {
            lock.queue.push_back(who);
            self.waits += 1;
        }
        SyncOutcome::Wait
    }

    fn release(&mut self, id: u32, who: Who) {
        let lock = self.locks.entry(id).or_default();
        if lock.holder != Some(who) {
            return; // re-executed release
        }
        lock.holder = None;
        if let Some(next) = lock.queue.pop_front() {
            lock.reserved = Some(next);
            self.wakes.push(next);
        }
    }

    fn barrier(&mut self, instance: u32, who: Who) -> SyncOutcome {
        let expected = self.expected;
        let barrier = self.barriers.entry(instance).or_insert_with(|| Barrier {
            expected,
            arrived: HashSet::new(),
            passed: HashSet::new(),
        });
        if barrier.passed.contains(&who) {
            return SyncOutcome::Proceed; // re-executed arrival
        }
        barrier.arrived.insert(who);
        if barrier.arrived.len() as u32 >= barrier.expected {
            // Last arriver: release everyone.
            let arrived = std::mem::take(&mut barrier.arrived);
            for w in arrived {
                barrier.passed.insert(w);
                if w != who {
                    self.wakes.push(w);
                }
            }
            // Full instances are complete; drop old ones to bound memory.
            if self.barriers.len() > 8 {
                let done: Vec<u32> = self
                    .barriers
                    .iter()
                    .filter(|(k, b)| **k + 4 < instance && b.passed.len() as u32 >= b.expected)
                    .map(|(k, _)| *k)
                    .collect();
                for k in done {
                    self.barriers.remove(&k);
                }
            }
            SyncOutcome::Proceed
        } else {
            self.waits += 1;
            SyncOutcome::Wait
        }
    }

    /// Drains the threads that must be woken (lock grants and barrier
    /// releases since the last call).
    pub fn take_wakes(&mut self) -> Vec<Who> {
        std::mem::take(&mut self.wakes)
    }

    /// Number of operations that had to wait.
    pub fn waits(&self) -> u64 {
        self.waits
    }

    /// Number of lock grants.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Checks the controller's structural invariants at `cycle`: a lock
    /// is never simultaneously held and reserved (a reservation exists
    /// only between release and the grantee's re-execution), waiters
    /// queue at most once and never while holding or being granted the
    /// lock (so every NACKed retry stays drainable — a queued thread is
    /// always eventually reachable by a hand-off), barrier arrivals
    /// never exceed the arity and never overlap the released set, and
    /// pending wakes are distinct (grants ≤ waiters).
    pub fn check_invariants(&self, cycle: u64) -> Result<(), Violation> {
        for (&id, lock) in &self.locks {
            if let (Some(h), Some(r)) = (lock.holder, lock.reserved) {
                return Err(Violation::new(
                    "mp.sync",
                    "lock simultaneously held and reserved",
                    cycle,
                    format!("lock {id} held by {h:?}, reserved for {r:?}"),
                )
                .with_context(h.0));
            }
            for (i, who) in lock.queue.iter().enumerate() {
                if lock.queue.iter().skip(i + 1).any(|w| w == who) {
                    return Err(Violation::new(
                        "mp.sync",
                        "thread queued twice on one lock",
                        cycle,
                        format!("lock {id}, thread {who:?}"),
                    )
                    .with_context(who.0));
                }
                if lock.holder == Some(*who) || lock.reserved == Some(*who) {
                    return Err(Violation::new(
                        "mp.sync",
                        "lock holder or grantee is also queued waiting",
                        cycle,
                        format!("lock {id}, thread {who:?}"),
                    )
                    .with_context(who.0));
                }
            }
        }
        for (&instance, barrier) in &self.barriers {
            if barrier.arrived.len() as u32 >= barrier.expected {
                return Err(Violation::new(
                    "mp.sync",
                    "barrier instance at arity but never released",
                    cycle,
                    format!(
                        "instance {instance}: {} arrived of {} expected",
                        barrier.arrived.len(),
                        barrier.expected
                    ),
                ));
            }
            if let Some(who) = barrier.arrived.intersection(&barrier.passed).next() {
                return Err(Violation::new(
                    "mp.sync",
                    "thread both waiting at and released from a barrier",
                    cycle,
                    format!("instance {instance}, thread {who:?}"),
                )
                .with_context(who.0));
            }
        }
        for (i, who) in self.wakes.iter().enumerate() {
            if self.wakes.iter().skip(i + 1).any(|w| w == who) {
                return Err(Violation::new(
                    "mp.sync",
                    "thread has more pending wakes than waits",
                    cycle,
                    format!("thread {who:?} woken twice"),
                )
                .with_context(who.0));
            }
        }
        Ok(())
    }
}

/// Home-side synchronization shard for the parallel driver.
///
/// Lock and barrier identifiers are partitioned across nodes (`id %
/// nodes` picks the home); each home owns one `SyncShard` wrapping a
/// [`SyncController`] that only ever sees its own identifiers.
/// Cross-node lock/barrier traffic arrives as messages: a request is
/// processed at its delivery cycle, and every thread the controller
/// grants or releases is returned so the caller can send grant tokens
/// back through the same deterministic message queues.
#[derive(Debug)]
pub struct SyncShard {
    inner: SyncController,
    /// Threads whose request NACKed, keyed to the operation they will
    /// re-execute once granted.
    waiting: HashMap<Who, SyncRef>,
}

impl SyncShard {
    /// Creates a shard whose barriers expect `threads` arrivals.
    pub fn new(threads: u32) -> SyncShard {
        SyncShard { inner: SyncController::new(threads), waiting: HashMap::new() }
    }

    /// Processes one request from `who` and appends every `(thread,
    /// operation)` pair that must receive a grant token to `grants` (the
    /// requester itself when the operation proceeds immediately, plus any
    /// threads the controller wakes). Wakes are consumed here — the
    /// controller's reservation or barrier pass is claimed on the woken
    /// thread's behalf — so a token is an unconditional go-ahead; the
    /// paired operation lets the receiver match the token against its
    /// pending request and ignore anything stale. Releases produce no
    /// token for the requester (the releasing thread never waits).
    pub fn request(&mut self, who: Who, op: SyncRef, grants: &mut Vec<(Who, SyncRef)>) {
        match op.kind {
            SyncKind::LockRelease => {
                self.inner.sync(who, op);
            }
            SyncKind::LockAcquire | SyncKind::BarrierArrive => match self.inner.sync(who, op) {
                SyncOutcome::Proceed => grants.push((who, op)),
                SyncOutcome::Wait => {
                    self.waiting.insert(who, op);
                }
            },
        }
        let mut woken = self.inner.take_wakes();
        // The controller releases barrier arrivers in hash order; sort so
        // grant-token sequence numbers are run-to-run deterministic.
        woken.sort_unstable();
        for w in woken {
            let pending = self.waiting.remove(&w).expect("woken thread has a pending request");
            let outcome = self.inner.sync(w, pending);
            debug_assert_eq!(outcome, SyncOutcome::Proceed, "wake without a claimable grant");
            grants.push((w, pending));
        }
    }

    /// Number of operations that had to wait.
    pub fn waits(&self) -> u64 {
        self.inner.waits()
    }

    /// Number of lock grants.
    pub fn grants(&self) -> u64 {
        self.inner.grants()
    }

    /// Structural invariants of the wrapped controller (wakes are always
    /// drained inside [`SyncShard::request`], so the shard adds no state
    /// of its own beyond the pending-operation map).
    pub fn check_invariants(&self, cycle: u64) -> Result<(), Violation> {
        self.inner.check_invariants(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acq(id: u32) -> SyncRef {
        SyncRef { kind: SyncKind::LockAcquire, id }
    }
    fn rel(id: u32) -> SyncRef {
        SyncRef { kind: SyncKind::LockRelease, id }
    }
    fn bar(id: u32) -> SyncRef {
        SyncRef { kind: SyncKind::BarrierArrive, id }
    }

    #[test]
    fn uncontended_lock_proceeds() {
        let mut c = SyncController::new(2);
        assert_eq!(c.sync((0, 0), acq(1)), SyncOutcome::Proceed);
        c.sync((0, 0), rel(1));
        assert_eq!(c.sync((1, 0), acq(1)), SyncOutcome::Proceed);
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let mut c = SyncController::new(4);
        assert_eq!(c.sync((0, 0), acq(1)), SyncOutcome::Proceed);
        assert_eq!(c.sync((1, 0), acq(1)), SyncOutcome::Wait);
        assert_eq!(c.sync((2, 0), acq(1)), SyncOutcome::Wait);
        c.sync((0, 0), rel(1));
        assert_eq!(c.take_wakes(), vec![(1, 0)]);
        // The reservation protects the grantee from stealers.
        assert_eq!(c.sync((3, 0), acq(1)), SyncOutcome::Wait);
        assert_eq!(c.sync((1, 0), acq(1)), SyncOutcome::Proceed);
    }

    #[test]
    fn reacquire_is_idempotent() {
        let mut c = SyncController::new(2);
        assert_eq!(c.sync((0, 0), acq(1)), SyncOutcome::Proceed);
        assert_eq!(c.sync((0, 0), acq(1)), SyncOutcome::Proceed);
    }

    #[test]
    fn stale_release_ignored() {
        let mut c = SyncController::new(2);
        c.sync((0, 0), acq(1));
        c.sync((0, 0), rel(1));
        c.sync((1, 0), acq(1));
        // Thread 0's re-executed release must not free thread 1's lock.
        c.sync((0, 0), rel(1));
        assert_eq!(c.sync((0, 0), acq(1)), SyncOutcome::Wait);
    }

    #[test]
    fn barrier_releases_all_at_arity() {
        let mut c = SyncController::new(3);
        assert_eq!(c.sync((0, 0), bar(0)), SyncOutcome::Wait);
        assert_eq!(c.sync((1, 0), bar(0)), SyncOutcome::Wait);
        assert_eq!(c.sync((2, 0), bar(0)), SyncOutcome::Proceed);
        let mut wakes = c.take_wakes();
        wakes.sort_unstable();
        assert_eq!(wakes, vec![(0, 0), (1, 0)]);
        // Re-executed arrivals at the released instance proceed.
        assert_eq!(c.sync((0, 0), bar(0)), SyncOutcome::Proceed);
        assert_eq!(c.sync((1, 0), bar(0)), SyncOutcome::Proceed);
    }

    #[test]
    fn barrier_instances_are_independent() {
        let mut c = SyncController::new(2);
        assert_eq!(c.sync((0, 0), bar(0)), SyncOutcome::Wait);
        // Thread 1 arrives at the *next* instance early — does not release
        // instance 0.
        assert_eq!(c.sync((1, 0), bar(1)), SyncOutcome::Wait);
        assert!(c.take_wakes().is_empty());
        assert_eq!(c.sync((1, 0), bar(0)), SyncOutcome::Proceed);
        assert_eq!(c.take_wakes(), vec![(0, 0)]);
    }

    #[test]
    fn reservation_survives_until_consumed() {
        let mut c = SyncController::new(3);
        c.sync((0, 0), acq(5));
        assert_eq!(c.sync((1, 0), acq(5)), SyncOutcome::Wait);
        c.sync((0, 0), rel(5));
        assert_eq!(c.take_wakes(), vec![(1, 0)]);
        // Multiple stealers try before the grantee re-executes.
        for _ in 0..3 {
            assert_eq!(c.sync((2, 0), acq(5)), SyncOutcome::Wait);
        }
        assert_eq!(c.sync((1, 0), acq(5)), SyncOutcome::Proceed);
        // The stealer is queued and gets it next.
        c.sync((1, 0), rel(5));
        assert_eq!(c.take_wakes(), vec![(2, 0)]);
        assert_eq!(c.sync((2, 0), acq(5)), SyncOutcome::Proceed);
    }

    #[test]
    fn distinct_locks_are_independent() {
        let mut c = SyncController::new(2);
        assert_eq!(c.sync((0, 0), acq(1)), SyncOutcome::Proceed);
        assert_eq!(c.sync((1, 0), acq(2)), SyncOutcome::Proceed);
        assert_eq!(c.sync((1, 0), acq(1)), SyncOutcome::Wait);
    }

    #[test]
    fn barrier_rearrival_while_waiting_stays_waiting() {
        let mut c = SyncController::new(2);
        assert_eq!(c.sync((0, 0), bar(3)), SyncOutcome::Wait);
        // A squash re-executes the arrival before release: still waiting.
        assert_eq!(c.sync((0, 0), bar(3)), SyncOutcome::Wait);
        assert_eq!(c.sync((1, 0), bar(3)), SyncOutcome::Proceed);
    }

    #[test]
    fn invariants_hold_through_contention() {
        let mut c = SyncController::new(4);
        c.sync((0, 0), acq(1));
        c.sync((1, 0), acq(1));
        c.sync((2, 0), acq(1));
        c.sync((0, 0), rel(1));
        assert!(c.check_invariants(50).is_ok());
        c.take_wakes();
        c.sync((1, 0), acq(1));
        for node in 0..3 {
            c.sync((node, 0), bar(0));
        }
        assert!(c.check_invariants(99).is_ok());
    }

    #[test]
    fn wait_and_grant_counters() {
        let mut c = SyncController::new(2);
        c.sync((0, 0), acq(1));
        c.sync((1, 0), acq(1));
        assert_eq!(c.waits(), 1);
        assert_eq!(c.grants(), 1);
    }

    #[test]
    fn shard_grants_uncontended_acquire_immediately() {
        let mut s = SyncShard::new(2);
        let mut grants = vec![];
        s.request((0, 0), acq(1), &mut grants);
        assert_eq!(grants, vec![((0, 0), acq(1))]);
    }

    #[test]
    fn shard_hands_off_contended_lock_on_release() {
        let mut s = SyncShard::new(4);
        let mut grants = vec![];
        s.request((0, 0), acq(1), &mut grants);
        s.request((1, 0), acq(1), &mut grants);
        s.request((2, 0), acq(1), &mut grants);
        assert_eq!(grants, vec![((0, 0), acq(1))]); // 1 and 2 queue
        grants.clear();
        // Release consumes the hand-off on the waiter's behalf: the token
        // is an unconditional grant, no re-request needed.
        s.request((0, 0), rel(1), &mut grants);
        assert_eq!(grants, vec![((1, 0), acq(1))]);
        grants.clear();
        s.request((1, 0), rel(1), &mut grants);
        assert_eq!(grants, vec![((2, 0), acq(1))]);
        assert!(s.check_invariants(10).is_ok());
    }

    #[test]
    fn shard_releases_barrier_to_all_arrivers_in_order() {
        let mut s = SyncShard::new(3);
        let mut grants = vec![];
        s.request((2, 0), bar(0), &mut grants);
        s.request((0, 1), bar(0), &mut grants);
        assert!(grants.is_empty());
        s.request((1, 0), bar(0), &mut grants);
        // Last arriver first (its own proceed), then the waiters sorted.
        assert_eq!(grants, vec![((1, 0), bar(0)), ((0, 1), bar(0)), ((2, 0), bar(0))]);
        assert!(s.check_invariants(20).is_ok());
    }

    #[test]
    fn shard_release_produces_no_token_for_requester() {
        let mut s = SyncShard::new(2);
        let mut grants = vec![];
        s.request((0, 0), acq(7), &mut grants);
        grants.clear();
        s.request((0, 0), rel(7), &mut grants);
        assert!(grants.is_empty());
    }
}
