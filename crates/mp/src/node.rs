//! Per-node shard state and the message fabric of the parallel
//! multiprocessor driver.
//!
//! Each node's processor, primary cache, and cache port advance
//! independently on a host thread for one conservative quantum (at most
//! [`crate::LatencyModel::lookahead`] cycles). During a quantum a shard
//! classifies its misses against the *frozen* master directory (read-only)
//! and logs the mutating transaction; at the quantum barrier the driver
//! replays all logged transactions on the master in the deterministic
//! order `(cycle, node, seq)` and converts the resulting coherence
//! traffic into messages delivered to the target shards in later
//! quanta. Because every cross-node message is due at least one full
//! lookahead after it is sent, no message can arrive inside the quantum
//! in which it was generated — the conservative guarantee that makes the
//! parallel schedule independent of host thread interleaving.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use interleave_core::{DataOutcome, InstOutcome, SyncOutcome, SystemPort};
use interleave_engine::{IdleBound, Inbox};
use interleave_isa::{Access, SyncKind, SyncRef};
use interleave_mem::{CacheParams, DirectCache, Resource};
use interleave_obs::{profile, Histogram};

use crate::sync::Who;
use crate::{Directory, LatencyModel, MissClass, SyncShard};

/// What a delivered message does at its destination shard.
///
/// Messages travel on the engine's router keyed `(due cycle, source
/// lane, per-lane sequence)`. Lanes `0..nodes` are the shards
/// themselves; lane `nodes + n` carries coherence effects attributed to
/// node `n`'s replayed transactions, so effect messages can never
/// collide with shard-generated ones.
#[derive(Debug, Clone)]
pub(crate) enum Payload {
    /// Drop the line (coherence invalidation) unless it was refilled at
    /// or after the causing transaction's cycle.
    Invalidate {
        /// Address inside the invalidated line.
        addr: u64,
        /// Cycle of the transaction that caused the invalidation.
        txn_cycle: u64,
    },
    /// Surrender exclusivity (read intervention): the copy stays but its
    /// local dirty bit clears, and the port is briefly busy supplying the
    /// data.
    Downgrade {
        /// Address inside the downgraded line.
        addr: u64,
        /// Cycle of the read that intervened.
        txn_cycle: u64,
    },
    /// Lock/barrier request arriving at its home shard.
    SyncReq {
        /// Requesting thread.
        who: Who,
        /// The operation to apply at the home controller.
        op: SyncRef,
    },
    /// Unconditional go-ahead for `ctx`'s pending `op` (the home already
    /// consumed the reservation or barrier pass on the waiter's behalf).
    SyncToken {
        /// Destination hardware context on the receiving node.
        ctx: usize,
        /// The granted operation.
        op: SyncRef,
    },
}

/// A routed message: delivered to `dst`'s inbox at the barrier, then
/// applied when the shard clock reaches `key.0`.
pub(crate) type Msg = interleave_engine::Msg<Payload>;

/// One logged directory transaction, replayed on the master at the next
/// quantum barrier in `(cycle, node, seq)` order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TxnRecord {
    /// Lookup cycle of the access.
    pub(crate) cycle: u64,
    /// Tie-break among same-cycle transactions of one node.
    pub(crate) seq: u64,
    /// Accessed address.
    pub(crate) addr: u64,
    /// Store (true) or load (false).
    pub(crate) write: bool,
    /// Whether the node held the line when the access was issued (an
    /// upgrade rather than a fill).
    pub(crate) cached: bool,
    /// Victim displaced by the fill: `(line address, dirty)`.
    pub(crate) evicted: Option<(u64, bool)>,
}

/// One node's mutable state: cache, port, home-side synchronization
/// shard, message queues, and the transaction log of the current
/// quantum. Locked per shard — the driver only touches it at barriers
/// (and for the done-check), the owning worker on every cycle.
#[derive(Debug)]
pub(crate) struct ShardState {
    node: usize,
    hop: u64,
    /// The node's primary data cache.
    pub(crate) cache: DirectCache,
    port: Resource,
    /// Home-side lock/barrier state for identifiers homed on this node.
    pub(crate) sync: SyncShard,
    inbox: Inbox<Payload>,
    /// Messages generated this quantum, routed at the barrier.
    pub(crate) outbox: Vec<Msg>,
    /// Directory transactions logged this quantum.
    pub(crate) txns: Vec<TxnRecord>,
    seq: u64,
    draws: u64,
    /// Last cycle each line was (re)filled or upgraded locally; an
    /// incoming invalidation older than the stamp is stale.
    fill_stamp: HashMap<u64, u64>,
    sync_pending: Vec<Option<SyncRef>>,
    sync_token: Vec<Option<SyncRef>>,
    sync_done: Vec<Option<SyncRef>>,
    /// Retired-instruction counts published by the owning worker at each
    /// segment end (the driver's done-check reads these at barriers).
    pub(crate) retired: Vec<u64>,
    /// The node processor's idle bound, published at each segment end.
    /// `None` means the processor can act without external input; the
    /// adaptive schedule folds these into machine-wide quiescence.
    pub(crate) cpu_idle: Option<IdleBound>,
    /// Sampled unloaded latency per miss class, indexed by
    /// [`MissClass::index`].
    pub(crate) latencies: [Histogram; 4],
    mlp_outstanding: Vec<u64>,
    /// (sum of concurrent misses at miss time, samples).
    pub(crate) mlp_accum: (u64, u64),
}

impl ShardState {
    /// Creates node `node`'s shard for a machine of `contexts` hardware
    /// contexts per node and `threads` total threads, with cross-node
    /// message latency `hop`.
    pub(crate) fn new(node: usize, contexts: usize, threads: u32, hop: u64) -> ShardState {
        ShardState {
            node,
            hop,
            cache: DirectCache::new(CacheParams::primary_data()),
            port: Resource::new(),
            sync: SyncShard::new(threads),
            inbox: Inbox::new(),
            outbox: Vec::new(),
            txns: Vec::new(),
            seq: 0,
            draws: 0,
            fill_stamp: HashMap::new(),
            sync_pending: vec![None; contexts],
            sync_token: vec![None; contexts],
            sync_done: vec![None; contexts],
            retired: vec![0; contexts],
            cpu_idle: None,
            latencies: Default::default(),
            mlp_outstanding: Vec::new(),
            mlp_accum: (0, 0),
        }
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Accepts a barrier-routed message.
    pub(crate) fn enqueue(&mut self, msg: Msg) {
        debug_assert_eq!(msg.dst, self.node);
        self.inbox.push(msg.key, msg.payload);
    }

    /// Due cycle of the earliest queued message, if any (bounds how far
    /// idle cycles may be skipped).
    pub(crate) fn next_due(&self) -> Option<u64> {
        self.inbox.next_due()
    }

    /// Applies every queued message due at or before `now`; contexts that
    /// received a grant token are appended to `wakes`.
    pub(crate) fn deliver_due(&mut self, now: u64, wakes: &mut Vec<usize>) {
        while let Some((key, payload)) = self.inbox.pop_due(now) {
            let due = key.0;
            match payload {
                Payload::Invalidate { addr, txn_cycle } => {
                    if !self.refilled_since(addr, txn_cycle) {
                        self.cache.invalidate(addr);
                    }
                    let occ = self.cache.params().invalidate_occupancy;
                    self.port.acquire(due, occ);
                }
                Payload::Downgrade { addr, txn_cycle } => {
                    if self.cache.probe(addr) && !self.refilled_since(addr, txn_cycle) {
                        // Refill of the resident line: keeps the copy,
                        // clears the dirty bit, evicts nothing.
                        self.cache.fill(addr, false);
                    }
                    let occ = self.cache.params().invalidate_occupancy;
                    self.port.acquire(due, occ);
                }
                Payload::SyncReq { who, op } => {
                    let mut grants = Vec::new();
                    self.sync.request(who, op, &mut grants);
                    self.route_grants(due, grants);
                }
                Payload::SyncToken { ctx, op } => {
                    self.sync_token[ctx] = Some(op);
                    wakes.push(ctx);
                }
            }
        }
    }

    /// Whether the line holding `addr` was locally filled or upgraded at
    /// or after `txn_cycle` — in which case a coherence effect of that
    /// older transaction is stale and must not be applied.
    fn refilled_since(&self, addr: u64, txn_cycle: u64) -> bool {
        let line = self.cache.line_addr(addr);
        self.fill_stamp.get(&line).is_some_and(|&stamp| stamp >= txn_cycle)
    }

    /// Turns controller grants into tokens: a token for one of this
    /// node's own contexts is self-delivered next cycle (matching the
    /// serial driver's wake-at-`now + 1` timing), a remote waiter's token
    /// travels a full hop through the barrier exchange.
    fn route_grants(&mut self, now: u64, grants: Vec<(Who, SyncRef)>) {
        for ((dst, ctx), op) in grants {
            let payload = Payload::SyncToken { ctx, op };
            if dst == self.node {
                let key = (now + 1, self.node, self.next_seq());
                self.inbox.push(key, payload);
            } else {
                let key = (now + self.hop, self.node, self.next_seq());
                self.outbox.push(Msg { key, dst, payload });
            }
        }
    }
}

/// One node's view of the machine: implements [`SystemPort`] for the
/// node's processor over its own shard plus the read-frozen master
/// directory.
///
/// The instruction cache is ideal (100% hit rate, paper Section 5.2), and
/// TLBs are not modeled in the multiprocessor study.
#[derive(Debug)]
pub(crate) struct ShardPort {
    node: usize,
    nodes: usize,
    hop: u64,
    seed: u64,
    latency: LatencyModel,
    state: Arc<Mutex<ShardState>>,
    master: Arc<RwLock<Directory>>,
}

impl ShardPort {
    /// Creates node `node`'s port.
    pub(crate) fn new(
        node: usize,
        nodes: usize,
        seed: u64,
        latency: LatencyModel,
        state: Arc<Mutex<ShardState>>,
        master: Arc<RwLock<Directory>>,
    ) -> ShardPort {
        latency.validate();
        ShardPort { node, nodes, hop: latency.lookahead(), seed, latency, state, master }
    }
}

impl SystemPort for ShardPort {
    fn data(&mut self, lookup_start: u64, addr: u64, kind: Access, _ctx: usize) -> DataOutcome {
        let mut guard = self.state.lock().expect("shard state");
        let st = &mut *guard;
        let cached = st.cache.probe(addr);
        match kind {
            Access::Read if cached => return DataOutcome::Hit,
            // A store to a line we already hold dirty is silent: the
            // master recorded our exclusivity when the dirtying
            // transaction replayed, so there is nothing to log.
            Access::Write if cached && st.cache.is_dirty(addr) => return DataOutcome::Hit,
            _ => {}
        }

        // Classify against the frozen master (read-only during the
        // quantum; the driver write-locks it only at barriers while
        // every shard is parked).
        let (class, home) = {
            let dir = self.master.read().expect("master directory");
            let class = match kind {
                Access::Read => dir.classify_read(self.node, addr),
                Access::Write => dir.classify_write(self.node, addr, cached),
            };
            (class, dir.home(addr))
        };

        // Install locally and log the transaction for barrier replay.
        let evicted = if cached {
            st.cache.mark_dirty(addr); // write to a shared copy (upgrade)
            None
        } else {
            st.cache.fill(addr, kind == Access::Write).map(|v| (v.addr, v.dirty))
        };
        let line = st.cache.line_addr(addr);
        st.fill_stamp.insert(line, lookup_start);
        let seq = st.next_seq();
        st.txns.push(TxnRecord {
            cycle: lookup_start,
            seq,
            addr,
            write: kind == Access::Write,
            cached,
            evicted,
        });

        // Timing: sampled unloaded latency plus our own port occupancy.
        let range = match class {
            // E.g. a re-read of a line the master still records as our
            // dirty copy (we evicted it locally): logged for replay, but
            // no latency applies.
            MissClass::Hit => return DataOutcome::Hit,
            MissClass::LocalMem => self.latency.local,
            MissClass::RemoteMem => self.latency.remote,
            MissClass::RemoteCache => self.latency.remote_cache,
            // Upgrades travel to the home (and possibly sharers): sample
            // local or remote by home placement.
            MissClass::Upgrade => {
                if home == self.node {
                    self.latency.local
                } else {
                    self.latency.remote
                }
            }
        };
        let draw = st.draws;
        st.draws += 1;
        let base = self.latency.sample_hashed(range, self.seed, self.node, draw);
        st.latencies[class.index()].record(base);
        let fill_occ = st.cache.params().fill_occupancy;
        let arrival = lookup_start + base;
        let start = st.port.acquire(arrival, fill_occ);
        let ready = start + fill_occ;
        st.mlp_outstanding.retain(|&t| t > lookup_start);
        st.mlp_outstanding.push(ready);
        st.mlp_accum.0 += st.mlp_outstanding.len() as u64;
        st.mlp_accum.1 += 1;
        DataOutcome::Stall { ready_at: ready }
    }

    fn inst(&mut self, _lookup_start: u64, _pc: u64) -> InstOutcome {
        InstOutcome::Hit // ideal instruction cache
    }

    fn sync(&mut self, now: u64, ctx: usize, op: SyncRef) -> SyncOutcome {
        let mut guard = self.state.lock().expect("shard state");
        let st = &mut *guard;
        if st.sync_done[ctx] == Some(op) {
            // Squashed and re-executed after completing: idempotent, like
            // the serial controller's re-acquire of a held lock.
            return SyncOutcome::Proceed;
        }
        if st.sync_token[ctx] == Some(op) {
            st.sync_token[ctx] = None;
            st.sync_pending[ctx] = None;
            st.sync_done[ctx] = Some(op);
            return SyncOutcome::Proceed;
        }
        if st.sync_pending[ctx] == Some(op) {
            return SyncOutcome::Wait; // re-executed while the request is in flight
        }
        let who = (self.node, ctx);
        let home = op.id as usize % self.nodes;
        if home == self.node {
            // Our own home: process inline, so an uncontended local
            // acquire stays free exactly as in the serial driver.
            let mut grants = Vec::new();
            st.sync.request(who, op, &mut grants);
            let mut proceed = op.kind == SyncKind::LockRelease;
            grants.retain(|&(w, gop)| {
                let own = w == who && gop == op;
                proceed |= own;
                !own
            });
            st.route_grants(now, grants);
            if proceed {
                st.sync_done[ctx] = Some(op);
                SyncOutcome::Proceed
            } else {
                st.sync_pending[ctx] = Some(op);
                SyncOutcome::Wait
            }
        } else {
            let key = (now + self.hop, self.node, st.next_seq());
            st.outbox.push(Msg { key, dst: home, payload: Payload::SyncReq { who, op } });
            if op.kind == SyncKind::LockRelease {
                st.sync_done[ctx] = Some(op);
                SyncOutcome::Proceed // fire-and-forget: applied on delivery
            } else {
                st.sync_pending[ctx] = Some(op);
                SyncOutcome::Wait
            }
        }
    }
}

/// The quantum barrier's merge step: drains every shard's transaction
/// log and outbox, replays the logs on the master directory in
/// `(cycle, node, seq)` order, converts the replay's coherence traffic
/// into effect messages (due one hop after the causing transaction), and
/// routes everything to the destination inboxes.
///
/// `eff_seq` is the persistent sequence counter of the effect lanes; it
/// must live across barriers so effect keys never repeat while earlier
/// effects are still queued.
pub(crate) fn barrier_exchange(
    master: &RwLock<Directory>,
    states: &[Arc<Mutex<ShardState>>],
    hop: u64,
    eff_seq: &mut u64,
) {
    let nodes = states.len();
    let mut txns: Vec<(usize, TxnRecord)> = Vec::new();
    let mut routed: Vec<Msg> = Vec::new();
    for (node, state) in states.iter().enumerate() {
        let mut st = state.lock().expect("shard state");
        txns.extend(st.txns.drain(..).map(|t| (node, t)));
        routed.append(&mut st.outbox);
    }
    txns.sort_unstable_by_key(|&(node, t)| (t.cycle, node, t.seq));
    {
        let _directory = profile::enter("mp.directory");
        let mut dir = master.write().expect("master directory");
        for (node, t) in txns {
            if let Some((victim, dirty)) = t.evicted {
                dir.evict(node, victim, dirty);
            }
            let tx =
                if t.write { dir.write(node, t.addr, t.cached) } else { dir.read(node, t.addr) };
            for &target in &tx.invalidate {
                if target == node {
                    continue;
                }
                *eff_seq += 1;
                routed.push(Msg {
                    key: (t.cycle + hop, nodes + node, *eff_seq),
                    dst: target,
                    payload: Payload::Invalidate { addr: t.addr, txn_cycle: t.cycle },
                });
            }
            if let Some(owner) = tx.intervene {
                if owner != node {
                    *eff_seq += 1;
                    routed.push(Msg {
                        key: (t.cycle + hop, nodes + node, *eff_seq),
                        dst: owner,
                        payload: Payload::Downgrade { addr: t.addr, txn_cycle: t.cycle },
                    });
                }
            }
        }
    }
    for msg in routed {
        states[msg.dst].lock().expect("shard state").enqueue(msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Machine {
        master: Arc<RwLock<Directory>>,
        states: Vec<Arc<Mutex<ShardState>>>,
        eff_seq: u64,
        hop: u64,
    }

    impl Machine {
        fn new(nodes: usize, latency: LatencyModel) -> (Machine, Vec<ShardPort>) {
            let hop = latency.lookahead();
            let params = CacheParams::primary_data();
            let master = Arc::new(RwLock::new(Directory::new(nodes, params.line)));
            let states: Vec<_> = (0..nodes)
                .map(|n| Arc::new(Mutex::new(ShardState::new(n, 1, nodes as u32, hop))))
                .collect();
            let ports = (0..nodes)
                .map(|n| ShardPort::new(n, nodes, 1, latency, states[n].clone(), master.clone()))
                .collect();
            (Machine { master, states, eff_seq: 0, hop }, ports)
        }

        fn exchange(&mut self) {
            barrier_exchange(&self.master, &self.states, self.hop, &mut self.eff_seq);
        }

        /// Delivers everything due up to `now` on `node`, returning the
        /// contexts to wake.
        fn deliver(&self, node: usize, now: u64) -> Vec<usize> {
            let mut wakes = Vec::new();
            self.states[node].lock().unwrap().deliver_due(now, &mut wakes);
            wakes
        }
    }

    fn dash() -> LatencyModel {
        LatencyModel::dash_like()
    }

    fn acq(id: u32) -> SyncRef {
        SyncRef { kind: SyncKind::LockAcquire, id }
    }
    fn rel(id: u32) -> SyncRef {
        SyncRef { kind: SyncKind::LockRelease, id }
    }

    #[test]
    fn local_miss_then_hit() {
        let (_m, mut ports) = Machine::new(4, dash());
        // 0x00 is homed on node 0.
        match ports[0].data(10, 0x00, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => {
                let lat = ready_at - 10;
                assert!((23..=40).contains(&lat), "local latency {lat}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(ports[0].data(100, 0x00, Access::Read, 0), DataOutcome::Hit);
    }

    #[test]
    fn remote_miss_is_slower() {
        let (_m, mut ports) = Machine::new(4, dash());
        match ports[1].data(10, 0x00, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => {
                let lat = ready_at - 10;
                assert!(lat >= 81, "remote latency {lat}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dirty_remote_intervention_after_exchange() {
        let (mut m, mut ports) = Machine::new(4, dash());
        ports[0].data(0, 0x00, Access::Write, 0);
        m.exchange(); // master learns node 0's exclusive copy
        match ports[1].data(100, 0x00, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => {
                let lat = ready_at - 100;
                assert!(lat >= 101, "remote-cache latency {lat}");
            }
            other => panic!("{other:?}"),
        }
        m.exchange(); // replay node 1's read
        assert_eq!(m.master.read().unwrap().stats().remote_cache, 1);
        // The read intervention downgraded node 0's copy in place.
        let st0 = m.states[0].lock().unwrap();
        assert!(st0.cache.probe(0x00));
    }

    #[test]
    fn write_invalidates_other_copies_via_messages() {
        let (mut m, mut ports) = Machine::new(2, dash());
        ports[0].data(0, 0x40, Access::Read, 0);
        ports[1].data(0, 0x40, Access::Read, 0);
        m.exchange();
        // Node 1 writes its shared copy: an upgrade whose invalidation
        // reaches node 0 as a message one hop later.
        match ports[1].data(200, 0x40, Access::Write, 0) {
            DataOutcome::Stall { .. } => {}
            other => panic!("upgrade with another sharer cannot be free, got {other:?}"),
        }
        m.exchange();
        m.deliver(0, 200 + m.hop);
        assert!(!m.states[0].lock().unwrap().cache.probe(0x40));
        match ports[0].data(500, 0x40, Access::Read, 0) {
            DataOutcome::Stall { .. } => {}
            other => panic!("node 0 should re-miss after invalidation, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_on_owned_line_is_free() {
        let (_m, mut ports) = Machine::new(2, dash());
        ports[0].data(0, 0x00, Access::Write, 0);
        assert_eq!(ports[0].data(100, 0x00, Access::Write, 0), DataOutcome::Hit);
        assert_eq!(ports[0].data(101, 0x00, Access::Read, 0), DataOutcome::Hit);
    }

    #[test]
    fn inst_cache_is_ideal() {
        let (_m, mut ports) = Machine::new(2, dash());
        assert_eq!(ports[0].inst(0, 0xDEAD_BEE0), InstOutcome::Hit);
    }

    #[test]
    fn shared_write_after_read_upgrades() {
        let (mut m, mut ports) = Machine::new(2, dash());
        ports[0].data(0, 0x40, Access::Read, 0);
        ports[1].data(0, 0x40, Access::Read, 0);
        m.exchange();
        // Node 0 writes its cached shared copy: an upgrade, not a refill.
        match ports[0].data(500, 0x40, Access::Write, 0) {
            DataOutcome::Stall { ready_at } => assert!(ready_at > 500),
            DataOutcome::Hit => panic!("upgrade with other sharers cannot be free"),
        }
        m.exchange();
        let dir = m.master.read().unwrap();
        assert_eq!(dir.stats().upgrades, 1);
        assert_eq!(dir.stats().invalidations, 1);
    }

    #[test]
    fn stale_invalidation_spares_a_refilled_line() {
        let (mut m, mut ports) = Machine::new(2, dash());
        ports[0].data(0, 0x40, Access::Read, 0);
        ports[1].data(0, 0x40, Access::Read, 0);
        m.exchange();
        // Node 1 upgrades at cycle 100; in the same quantum node 0 drops
        // and refills the line at cycle 150 (after the causing write).
        ports[1].data(100, 0x40, Access::Write, 0);
        {
            let mut st0 = m.states[0].lock().unwrap();
            st0.cache.invalidate(0x40);
        }
        ports[0].data(150, 0x40, Access::Read, 0);
        m.exchange();
        m.deliver(0, 100 + m.hop);
        // The invalidation (txn cycle 100) is stale against the refill
        // stamp (150): node 0 keeps the copy the master now tracks.
        assert!(m.states[0].lock().unwrap().cache.probe(0x40));
    }

    #[test]
    fn incoming_invalidations_occupy_the_victim_port() {
        // Degenerate latency ranges: sampling noise cannot mask the
        // queueing delay under comparison.
        let fixed =
            LatencyModel { hit: 1, local: (30, 30), remote: (100, 100), remote_cache: (130, 130) };
        let run = |invalidate_burst: bool| {
            let (mut m, mut ports) = Machine::new(2, fixed);
            if invalidate_burst {
                // Node 0 caches many lines that node 1 then writes: node
                // 0's port absorbs the invalidation messages, delaying
                // its own subsequent fill.
                for i in 0..24u64 {
                    ports[0].data(i, 0x1000 + i * 32, Access::Read, 0);
                }
                m.exchange();
                for i in 0..24u64 {
                    ports[1].data(1000, 0x1000 + i * 32, Access::Write, 0);
                }
                m.exchange();
                m.deliver(0, 1000 + m.hop);
            }
            let t = 1000 + m.hop;
            match ports[0].data(t, 0x9000, Access::Read, 0) {
                DataOutcome::Stall { ready_at } => ready_at,
                DataOutcome::Hit => panic!("cold line cannot hit"),
            }
        };
        let busy = run(true);
        let quiet = run(false);
        assert!(
            busy > quiet,
            "the fill should queue behind the invalidation burst ({busy} vs {quiet})"
        );
    }

    #[test]
    fn deterministic_latencies_per_seed() {
        let run = || {
            let (_m, mut ports) = Machine::new(4, dash());
            (0..20)
                .map(|i| match ports[1].data(i * 1000, 0x1000 + i * 32, Access::Read, 0) {
                    DataOutcome::Stall { ready_at } => ready_at,
                    DataOutcome::Hit => 0,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn same_home_lock_is_inline_and_free() {
        let (_m, mut ports) = Machine::new(2, dash());
        // Lock 0 homes on node 0: its own acquire never leaves the shard.
        assert_eq!(ports[0].sync(10, 0, acq(0)), SyncOutcome::Proceed);
        assert_eq!(ports[0].sync(20, 0, rel(0)), SyncOutcome::Proceed);
    }

    #[test]
    fn remote_lock_round_trips_through_home() {
        let (mut m, mut ports) = Machine::new(2, dash());
        // Lock 1 homes on node 1; node 0 must message the home and wait
        // for the token, two hops in total.
        assert_eq!(ports[0].sync(10, 0, acq(1)), SyncOutcome::Wait);
        m.exchange();
        assert!(m.deliver(1, 10 + m.hop).is_empty()); // home grants, token routed
        m.exchange();
        let wakes = m.deliver(0, 10 + 2 * m.hop);
        assert_eq!(wakes, vec![0]);
        // The re-executed acquire consumes the token unconditionally.
        assert_eq!(ports[0].sync(10 + 2 * m.hop, 0, acq(1)), SyncOutcome::Proceed);
        // And a squashed re-execution after completion stays granted.
        assert_eq!(ports[0].sync(10 + 2 * m.hop + 5, 0, acq(1)), SyncOutcome::Proceed);
    }

    #[test]
    fn contended_remote_lock_hands_off_on_release() {
        let (mut m, mut ports) = Machine::new(3, dash());
        // Lock 1 homes on node 1, held by node 1 itself; node 2 queues.
        assert_eq!(ports[1].sync(0, 0, acq(1)), SyncOutcome::Proceed);
        assert_eq!(ports[2].sync(0, 0, acq(1)), SyncOutcome::Wait);
        m.exchange();
        m.deliver(1, m.hop); // request queues at the home
                             // The home-side release wakes the waiter; its token crosses back.
        assert_eq!(ports[1].sync(200, 0, rel(1)), SyncOutcome::Proceed);
        m.exchange();
        let wakes = m.deliver(2, 200 + m.hop);
        assert_eq!(wakes, vec![0]);
        assert_eq!(ports[2].sync(200 + m.hop, 0, acq(1)), SyncOutcome::Proceed);
    }

    #[test]
    fn message_due_exactly_at_delivery_cycle_applies() {
        let (mut m, mut ports) = Machine::new(2, dash());
        ports[0].data(0, 0x40, Access::Read, 0);
        ports[1].data(0, 0x40, Access::Read, 0);
        m.exchange();
        ports[1].data(100, 0x40, Access::Write, 0);
        m.exchange();
        // Due cycle is exactly 100 + hop; delivering at precisely that
        // cycle (a quantum boundary in the driver) must apply it, and
        // one cycle earlier must not.
        assert!(m.states[0].lock().unwrap().next_due() == Some(100 + m.hop));
        m.deliver(0, 100 + m.hop - 1);
        assert!(m.states[0].lock().unwrap().cache.probe(0x40));
        m.deliver(0, 100 + m.hop);
        assert!(!m.states[0].lock().unwrap().cache.probe(0x40));
    }
}
