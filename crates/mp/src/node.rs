use std::cell::RefCell;
use std::rc::Rc;

use interleave_core::{DataOutcome, InstOutcome, SyncOutcome, SystemPort};
use interleave_isa::{Access, SyncRef};
use interleave_mem::{CacheParams, DirectCache, Resource};
use interleave_obs::validate::Violation;
use interleave_obs::{Histogram, Registry};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::{Directory, LatencyModel, MissClass, SyncController};

/// State shared by every node of the simulated multiprocessor: the
/// per-node data caches, the directory, the latency model, and the
/// synchronization controller.
///
/// Per the paper's methodology, the caches are the only contended
/// resource (each has a port [`Resource`]); the interconnect and memories
/// are contentionless, with unloaded latencies sampled per miss class.
#[derive(Debug)]
pub struct MpShared {
    nodes: usize,
    caches: Vec<DirectCache>,
    ports: Vec<Resource>,
    directory: Directory,
    latency: LatencyModel,
    rng: SmallRng,
    /// Seed the machine was built with, attached to violation reports so
    /// a failing run can be replayed.
    seed: u64,
    /// Lock/barrier state.
    pub sync: SyncController,
    /// Completion times of recent misses (memory-level-parallelism probe).
    mlp_outstanding: Vec<u64>,
    /// (sum of concurrent misses at miss time, samples).
    mlp_accum: (u64, u64),
    /// Sampled unloaded latency per miss class, indexed by
    /// [`MissClass::index`] (local, remote, remote-cache, upgrade).
    latencies: [Histogram; 4],
}

impl MpShared {
    /// Builds the shared machine state.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the latency model is invalid.
    pub fn new(nodes: usize, threads: u32, latency: LatencyModel, seed: u64) -> MpShared {
        latency.validate();
        let params = CacheParams::primary_data();
        MpShared {
            nodes,
            caches: (0..nodes).map(|_| DirectCache::new(params)).collect(),
            ports: vec![Resource::new(); nodes],
            directory: Directory::new(nodes, params.line),
            latency,
            rng: SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
            seed,
            sync: SyncController::new(threads),
            mlp_outstanding: Vec::new(),
            mlp_accum: (0, 0),
            latencies: Default::default(),
        }
    }

    /// The directory (protocol statistics, classification).
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// Mutable directory access. Exists for the validation layer's
    /// fault-injection tests; protocol traffic goes through
    /// [`MpShared::access`] only.
    #[doc(hidden)]
    pub fn directory_mut(&mut self) -> &mut Directory {
        &mut self.directory
    }

    /// Checks the machine's coherence invariants at `cycle`: directory
    /// state-machine legality, directory↔cache agreement (every copy the
    /// directory tracks is actually cached by that node, with a dirty
    /// line's owner holding it exclusively by construction of the
    /// full-bit-vector representation), and the synchronization
    /// controller's lock/barrier structure. O(tracked lines) — run at
    /// chunk boundaries, not per tick. Violations carry the machine seed
    /// for replay.
    pub fn check_invariants(&self, cycle: u64) -> Result<(), Violation> {
        let attach = |v: Violation| v.with_seed(self.seed);
        self.directory.check_invariants(cycle).map_err(attach)?;
        let mut mismatch = None;
        self.directory.for_each_cached_copy(|line, node, dirty| {
            if mismatch.is_none() && (node >= self.nodes || !self.caches[node].probe(line)) {
                mismatch = Some((line, node, dirty));
            }
        });
        if let Some((line, node, dirty)) = mismatch {
            return Err(attach(
                Violation::new(
                    "mp.directory",
                    "directory tracks a copy the node does not cache",
                    cycle,
                    format!(
                        "line {line:#x} recorded {} by node {node}",
                        if dirty { "dirty" } else { "shared" }
                    ),
                )
                .with_context(node),
            ));
        }
        self.sync.check_invariants(cycle).map_err(attach)
    }

    /// Resets protocol statistics (after warmup). Latency histograms are
    /// cleared too, so they describe the measured region only.
    pub fn reset_stats(&mut self) {
        self.directory.reset_stats();
        for h in &mut self.latencies {
            h.reset();
        }
    }

    /// Sampled unloaded-latency distribution for one miss class.
    ///
    /// # Panics
    ///
    /// Panics on [`MissClass::Hit`].
    pub fn latency_histogram(&self, class: MissClass) -> &Histogram {
        &self.latencies[class.index()]
    }

    /// Registers machine-level metrics: directory protocol counters
    /// (`mp.dir.*`), per-class unloaded-latency histograms
    /// (`mp.latency.*`), and synchronization episodes (`mp.sync.*`).
    pub fn collect_metrics(&self, reg: &mut Registry) {
        let d = self.directory.stats();
        reg.counter("mp.dir.local", d.local);
        reg.counter("mp.dir.remote", d.remote);
        reg.counter("mp.dir.remote_cache", d.remote_cache);
        reg.counter("mp.dir.upgrades", d.upgrades);
        reg.counter("mp.dir.invalidations", d.invalidations);
        reg.counter("mp.dir.writebacks", d.writebacks);
        for class in MissClass::MISSES {
            let h = &self.latencies[class.index()];
            if !h.is_empty() {
                reg.histogram(&format!("mp.latency.{}", class.label()), h);
            }
        }
        reg.counter("mp.sync.waits", self.sync.waits());
        reg.counter("mp.sync.grants", self.sync.grants());
    }

    /// Performs node `node`'s data access and returns when it completes.
    fn access(&mut self, node: usize, lookup: u64, addr: u64, kind: Access) -> DataOutcome {
        let cached = self.caches[node].probe(addr);
        let tx = match kind {
            Access::Read if cached => return DataOutcome::Hit,
            Access::Read => self.directory.read(node, addr),
            Access::Write => {
                if cached {
                    let tx = self.directory.write(node, addr, true);
                    if tx.class == MissClass::Hit {
                        self.caches[node].mark_dirty(addr);
                        return DataOutcome::Hit;
                    }
                    tx
                } else {
                    self.directory.write(node, addr, false)
                }
            }
        };

        // Coherence traffic: invalidations and interventions occupy the
        // target caches' ports and drop their copies.
        let inv_occ = self.caches[node].params().invalidate_occupancy;
        for &target in &tx.invalidate {
            self.caches[target].invalidate(addr);
            self.ports[target].acquire(lookup, inv_occ);
        }
        if let Some(owner) = tx.intervene {
            // The owner supplies the data (read) or hands the line over
            // (write); either way its port is busy briefly. For reads it
            // keeps a shared copy.
            if kind == Access::Write {
                self.caches[owner].invalidate(addr);
            }
            self.ports[owner].acquire(lookup, inv_occ);
        }

        // Fill our own cache (unless this was a pure upgrade).
        if !cached {
            if let Some(victim) = self.caches[node].fill(addr, kind == Access::Write) {
                self.directory.evict(node, victim.addr, victim.dirty);
            }
        } else if kind == Access::Write {
            self.caches[node].mark_dirty(addr);
        }

        // Timing: sampled unloaded latency plus our own port occupancy.
        let base = match tx.class {
            MissClass::Hit => return DataOutcome::Hit,
            MissClass::LocalMem => self.latency.sample(self.latency.local, &mut self.rng),
            MissClass::RemoteMem => self.latency.sample(self.latency.remote, &mut self.rng),
            MissClass::RemoteCache => self.latency.sample(self.latency.remote_cache, &mut self.rng),
            // Upgrades travel to the home (and possibly sharers): sample
            // local or remote by home placement.
            MissClass::Upgrade => {
                let range = if self.directory.home(addr) == node {
                    self.latency.local
                } else {
                    self.latency.remote
                };
                self.latency.sample(range, &mut self.rng)
            }
        };
        self.latencies[tx.class.index()].record(base);
        let fill_occ = self.caches[node].params().fill_occupancy;
        let arrival = lookup + base;
        let start = self.ports[node].acquire(arrival, fill_occ);
        let ready = start + fill_occ;
        self.mlp_outstanding.retain(|&t| t > lookup);
        self.mlp_outstanding.push(ready);
        self.mlp_accum.0 += self.mlp_outstanding.len() as u64;
        self.mlp_accum.1 += 1;
        DataOutcome::Stall { ready_at: ready }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Average number of outstanding misses observed at miss-request time
    /// (a memory-level-parallelism indicator reported by `MpSim`).
    pub fn avg_mlp(&self) -> f64 {
        if self.mlp_accum.1 == 0 {
            0.0
        } else {
            self.mlp_accum.0 as f64 / self.mlp_accum.1 as f64
        }
    }
}

/// One node's view of the machine: implements [`SystemPort`] for the
/// node's processor over the shared state.
///
/// The instruction cache is ideal (100% hit rate, paper Section 5.2), and
/// TLBs are not modeled in the multiprocessor study.
#[derive(Debug, Clone)]
pub struct NodePort {
    node: usize,
    shared: Rc<RefCell<MpShared>>,
}

impl NodePort {
    /// Creates node `node`'s port over `shared`.
    pub fn new(node: usize, shared: Rc<RefCell<MpShared>>) -> NodePort {
        NodePort { node, shared }
    }

    /// The node index.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Shared machine state handle.
    pub fn shared(&self) -> &Rc<RefCell<MpShared>> {
        &self.shared
    }
}

impl SystemPort for NodePort {
    fn data(&mut self, lookup_start: u64, addr: u64, kind: Access, _ctx: usize) -> DataOutcome {
        self.shared.borrow_mut().access(self.node, lookup_start, addr, kind)
    }

    fn inst(&mut self, _lookup_start: u64, _pc: u64) -> InstOutcome {
        InstOutcome::Hit // ideal instruction cache
    }

    fn sync(&mut self, _now: u64, ctx: usize, op: SyncRef) -> SyncOutcome {
        self.shared.borrow_mut().sync.sync((self.node, ctx), op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared(nodes: usize) -> Rc<RefCell<MpShared>> {
        Rc::new(RefCell::new(MpShared::new(nodes, nodes as u32, LatencyModel::dash_like(), 1)))
    }

    #[test]
    fn local_miss_then_hit() {
        let s = shared(4);
        let mut p0 = NodePort::new(0, s.clone());
        // 0x00 is homed on node 0.
        match p0.data(10, 0x00, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => {
                let lat = ready_at - 10;
                assert!((23..=40).contains(&lat), "local latency {lat}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(p0.data(100, 0x00, Access::Read, 0), DataOutcome::Hit);
    }

    #[test]
    fn remote_miss_is_slower() {
        let s = shared(4);
        let mut p1 = NodePort::new(1, s);
        match p1.data(10, 0x00, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => {
                let lat = ready_at - 10;
                assert!(lat >= 81, "remote latency {lat}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dirty_remote_intervention() {
        let s = shared(4);
        let mut p0 = NodePort::new(0, s.clone());
        let mut p1 = NodePort::new(1, s.clone());
        p0.data(0, 0x00, Access::Write, 0);
        match p1.data(100, 0x00, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => {
                let lat = ready_at - 100;
                assert!(lat >= 101, "remote-cache latency {lat}");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.borrow().directory().stats().remote_cache, 1);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let s = shared(2);
        let mut p0 = NodePort::new(0, s.clone());
        let mut p1 = NodePort::new(1, s.clone());
        p0.data(0, 0x40, Access::Read, 0);
        p1.data(0, 0x40, Access::Read, 0);
        // Node 1 writes: node 0's copy must go.
        p1.data(200, 0x40, Access::Write, 0);
        match p0.data(400, 0x40, Access::Read, 0) {
            DataOutcome::Stall { .. } => {}
            other => panic!("node 0 should re-miss after invalidation, got {other:?}"),
        }
    }

    #[test]
    fn write_hit_on_owned_line_is_free() {
        let s = shared(2);
        let mut p0 = NodePort::new(0, s);
        p0.data(0, 0x00, Access::Write, 0);
        assert_eq!(p0.data(100, 0x00, Access::Write, 0), DataOutcome::Hit);
        assert_eq!(p0.data(101, 0x00, Access::Read, 0), DataOutcome::Hit);
    }

    #[test]
    fn inst_cache_is_ideal() {
        let s = shared(2);
        let mut p0 = NodePort::new(0, s);
        assert_eq!(p0.inst(0, 0xDEAD_BEE0), InstOutcome::Hit);
    }

    #[test]
    fn shared_write_after_read_upgrades() {
        let s = shared(2);
        let mut p0 = NodePort::new(0, s.clone());
        let mut p1 = NodePort::new(1, s.clone());
        p0.data(0, 0x40, Access::Read, 0);
        p1.data(0, 0x40, Access::Read, 0);
        // Node 0 writes its cached shared copy: an upgrade, not a refill.
        match p0.data(500, 0x40, Access::Write, 0) {
            DataOutcome::Stall { ready_at } => assert!(ready_at > 500),
            DataOutcome::Hit => panic!("upgrade with other sharers cannot be free"),
        }
        assert_eq!(s.borrow().directory().stats().upgrades, 1);
        assert_eq!(s.borrow().directory().stats().invalidations, 1);
    }

    #[test]
    fn incoming_invalidations_occupy_the_victim_port() {
        // Degenerate latency ranges: sampling noise cannot mask the
        // queueing delay under comparison.
        let fixed =
            LatencyModel { hit: 1, local: (30, 30), remote: (100, 100), remote_cache: (130, 130) };
        let fixed_shared = || Rc::new(RefCell::new(MpShared::new(2, 2, fixed, 1)));
        let s = fixed_shared();
        let mut p0 = NodePort::new(0, s.clone());
        let mut p1 = NodePort::new(1, s.clone());
        // Node 0 caches many lines that node 1 then writes: node 0's port
        // absorbs the invalidations, delaying its own subsequent fill.
        for i in 0..24u64 {
            p0.data(i, 0x1000 + i * 32, Access::Read, 0);
        }
        let t = 1000;
        // 24 invalidations x 2-cycle occupancy: node 0's port is busy past
        // the arrival of its own fill (t + 30).
        for i in 0..24u64 {
            p1.data(t, 0x1000 + i * 32, Access::Write, 0);
        }
        // Node 0's next fill queues behind the invalidation burst.
        let busy = match p0.data(t, 0x9000, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => ready_at,
            DataOutcome::Hit => panic!("cold line cannot hit"),
        };
        let s2 = fixed_shared();
        let mut q0 = NodePort::new(0, s2);
        let quiet = match q0.data(t, 0x9000, Access::Read, 0) {
            DataOutcome::Stall { ready_at } => ready_at,
            DataOutcome::Hit => panic!("cold line cannot hit"),
        };
        assert!(
            busy > quiet,
            "the fill should queue behind the invalidation burst ({busy} vs {quiet})"
        );
    }

    #[test]
    fn deterministic_latencies_per_seed() {
        let run = || {
            let s = shared(4);
            let mut p = NodePort::new(1, s);
            (0..20)
                .map(|i| match p.data(i * 1000, 0x1000 + i * 32, Access::Read, 0) {
                    DataOutcome::Stall { ready_at } => ready_at,
                    DataOutcome::Hit => 0,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
