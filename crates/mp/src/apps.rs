use std::collections::VecDeque;

use interleave_core::InstrSource;
use interleave_isa::{Access, Instr, SyncKind};
use interleave_workloads::{spec, AppProfile, SyntheticApp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a parallel application's threads touch shared data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingPattern {
    /// Shared blocks are used in read-modify-write bursts by one thread
    /// at a time (MP3D particles, PTHOR elements): produces dirty
    /// remote-cache transfers.
    Migratory,
    /// Shared data is read by everyone and written rarely (Barnes-Hut
    /// tree, Water molecule positions): replicates in caches, occasional
    /// invalidation bursts.
    ReadMostly,
    /// Each thread writes its own partition and reads its neighbour's
    /// (Ocean grid boundaries): producer–consumer pairs.
    Neighbor,
}

/// A SPLASH-like parallel application model (paper Table 9): a compute
/// profile plus shared-data and synchronization behaviour.
#[derive(Debug, Clone)]
pub struct SplashProfile {
    /// Application name.
    pub name: &'static str,
    /// Per-thread compute characteristics (op mix, private working set).
    pub compute: AppProfile,
    /// Fraction of memory references that go to shared data.
    pub share_frac: f64,
    /// Shared-data access pattern.
    pub pattern: SharingPattern,
    /// Size of the shared region in bytes.
    pub shared_bytes: u64,
    /// Instructions between critical sections (`None` = no locking).
    pub lock_period: Option<u64>,
    /// Critical-section length in instructions.
    pub cs_len: u64,
    /// Number of distinct locks (1 = a serializing global lock, as in
    /// Cholesky's task queue).
    pub n_locks: u32,
    /// Instructions between barrier arrivals (`None` = no barriers).
    pub barrier_period: Option<u64>,
}

impl SplashProfile {
    /// Checks parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions or degenerate sizes.
    pub fn validate(&self) {
        self.compute.validate();
        assert!((0.0..=1.0).contains(&self.share_frac), "{}: share_frac", self.name);
        assert!(self.shared_bytes >= 4096, "{}: shared region too small", self.name);
        if self.lock_period.is_some() {
            assert!(self.n_locks >= 1, "{}: need at least one lock", self.name);
            assert!(self.cs_len >= 1, "{}: critical sections must be non-empty", self.name);
        }
        if let Some(p) = self.barrier_period {
            assert!(p > self.cs_len + 4, "{}: barrier period inside critical section", self.name);
        }
    }
}

const KB: u64 = 1024;

/// MP3D: rarefied hypersonic flow — high communication (migratory
/// particles/cells), barrier per time step, the most memory-bound
/// application of the suite.
pub fn mp3d() -> SplashProfile {
    SplashProfile {
        name: "MP3D",
        compute: spec::mp3d_uni(),
        share_frac: 0.45,
        pattern: SharingPattern::Migratory,
        shared_bytes: 512 * KB,
        lock_period: None,
        cs_len: 0,
        n_locks: 0,
        barrier_period: Some(2_500),
    }
}

/// Water: molecular dynamics — small working set, FP-divide heavy, locks
/// around molecule updates.
pub fn water() -> SplashProfile {
    SplashProfile {
        name: "Water",
        compute: spec::water_uni(),
        share_frac: 0.12,
        pattern: SharingPattern::ReadMostly,
        shared_bytes: 128 * KB,
        lock_period: Some(350),
        cs_len: 15,
        n_locks: 64,
        barrier_period: Some(6_000),
    }
}

/// Barnes-Hut: N-body — read-mostly tree, FP divides, per-step barriers.
pub fn barnes() -> SplashProfile {
    SplashProfile {
        name: "Barnes",
        compute: spec::barnes_uni(),
        share_frac: 0.30,
        pattern: SharingPattern::ReadMostly,
        shared_bytes: 384 * KB,
        lock_period: Some(900),
        cs_len: 10,
        n_locks: 128,
        barrier_period: Some(5_000),
    }
}

/// Ocean: eddy-current grid solver — neighbour exchange at partition
/// boundaries, frequent barriers.
pub fn ocean() -> SplashProfile {
    SplashProfile {
        name: "Ocean",
        compute: spec::tomcatv(),
        share_frac: 0.25,
        pattern: SharingPattern::Neighbor,
        shared_bytes: 512 * KB,
        lock_period: None,
        cs_len: 0,
        n_locks: 0,
        barrier_period: Some(1_200),
    }
}

/// LocusRoute: VLSI routing — migratory cost-grid cells under frequent
/// short critical sections.
pub fn locus() -> SplashProfile {
    SplashProfile {
        name: "Locus",
        compute: spec::locus_uni(),
        share_frac: 0.25,
        pattern: SharingPattern::Migratory,
        shared_bytes: 256 * KB,
        lock_period: Some(220),
        cs_len: 25,
        n_locks: 16,
        barrier_period: None,
    }
}

/// PTHOR: logic simulation — migratory task elements, very frequent
/// locking, high communication.
pub fn pthor() -> SplashProfile {
    SplashProfile {
        name: "PTHOR",
        compute: spec::eqntott(),
        share_frac: 0.35,
        pattern: SharingPattern::Migratory,
        shared_bytes: 384 * KB,
        lock_period: Some(140),
        cs_len: 12,
        n_locks: 8,
        barrier_period: Some(4_000),
    }
}

/// Cholesky: sparse factorization — a single task-queue lock with long
/// critical sections serializes the application (the paper's no-gain
/// case).
pub fn cholesky() -> SplashProfile {
    SplashProfile {
        name: "Cholesky",
        compute: spec::cholsky(),
        share_frac: 0.20,
        pattern: SharingPattern::Migratory,
        shared_bytes: 256 * KB,
        lock_period: Some(450),
        cs_len: 28,
        n_locks: 1,
        barrier_period: None,
    }
}

/// The seven SPLASH applications in the paper's presentation order
/// (Table 10).
pub fn splash_suite() -> Vec<SplashProfile> {
    vec![mp3d(), barnes(), water(), ocean(), locus(), pthor(), cholesky()]
}

/// One thread of a SPLASH-like application: wraps the compute stream of
/// [`SyntheticApp`], redirecting a fraction of its memory references to
/// shared data (per the sharing pattern) and inserting lock/barrier
/// synchronization.
pub struct SplashThread {
    profile: SplashProfile,
    thread: usize,
    n_threads: usize,
    inner: SyntheticApp,
    rng: SmallRng,
    pending: VecDeque<Instr>,
    since_lock: u64,
    since_barrier: u64,
    /// Remaining critical-section instructions and the held lock.
    in_cs: Option<(u64, u32)>,
    barrier_instance: u32,
    /// Current migratory block index and remaining references to it.
    block: u64,
    block_refs_left: u32,
}

const SHARED_BASE: u64 = 0x7000_0000;
/// Size of a migratory block (a particle/task record spanning a few
/// lines).
const BLOCK_BYTES: u64 = 256;

impl SplashThread {
    /// Creates thread `thread` of `n_threads` for `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid or `thread >= n_threads`.
    pub fn new(profile: SplashProfile, thread: usize, n_threads: usize, seed: u64) -> SplashThread {
        profile.validate();
        assert!(thread < n_threads, "thread index out of range");
        let inner = SyntheticApp::new(profile.compute, thread, seed);
        SplashThread {
            rng: SmallRng::seed_from_u64(seed ^ (thread as u64).wrapping_mul(0x9E37_79B9)),
            inner,
            thread,
            n_threads,
            pending: VecDeque::new(),
            since_lock: 0,
            since_barrier: 0,
            in_cs: None,
            barrier_instance: 0,
            block: thread as u64,
            block_refs_left: 0,
            profile,
        }
    }

    fn shared_addr(&mut self, write: bool) -> u64 {
        let p = &self.profile;
        let span = p.shared_bytes;
        let offset = match p.pattern {
            SharingPattern::Migratory => {
                if self.block_refs_left == 0 {
                    // Move to another block from the common pool.
                    self.block = self.rng.gen_range(0..span / BLOCK_BYTES);
                    self.block_refs_left = self.rng.gen_range(4..16);
                }
                self.block_refs_left -= 1;
                self.block * BLOCK_BYTES + self.rng.gen_range(0..BLOCK_BYTES)
            }
            SharingPattern::ReadMostly => self.rng.gen_range(0..span),
            SharingPattern::Neighbor => {
                let part = span / self.n_threads as u64;
                let owner = if write {
                    self.thread as u64
                } else {
                    // Read the neighbour's boundary region.
                    ((self.thread + 1) % self.n_threads) as u64
                };
                owner * part + self.rng.gen_range(0..part.max(BLOCK_BYTES))
            }
        };
        (SHARED_BASE + (offset % span)) & !3
    }

    /// Whether this memory reference should target shared data.
    fn redirect_to_shared(&mut self, write: bool) -> bool {
        let p = &self.profile;
        let frac = match (p.pattern, write) {
            // Read-mostly data takes few writes.
            (SharingPattern::ReadMostly, true) => p.share_frac * 0.1,
            _ => p.share_frac,
        };
        self.rng.gen_bool(frac.clamp(0.0, 1.0))
    }
}

impl InstrSource for SplashThread {
    fn next_instr(&mut self) -> Option<Instr> {
        if let Some(q) = self.pending.pop_front() {
            return Some(q);
        }

        // Synchronization insertion points (never inside a critical
        // section, or lock holders could block barrier partners forever).
        if self.in_cs.is_none() {
            if let Some(period) = self.profile.barrier_period {
                if self.since_barrier >= period {
                    self.since_barrier = 0;
                    let instance = self.barrier_instance;
                    self.barrier_instance = self.barrier_instance.wrapping_add(1);
                    return Some(Instr::sync(0x1000, SyncKind::BarrierArrive, instance));
                }
            }
            if let Some(period) = self.profile.lock_period {
                if self.since_lock >= period {
                    self.since_lock = 0;
                    let id = self.rng.gen_range(0..self.profile.n_locks);
                    self.in_cs = Some((self.profile.cs_len, id));
                    return Some(Instr::sync(0x1004, SyncKind::LockAcquire, id));
                }
            }
        }

        let mut instr = self.inner.next_instr().expect("compute stream is unbounded");
        self.since_lock += 1;
        self.since_barrier += 1;

        // Redirect a fraction of data references to the shared region.
        if let Some(mem) = instr.mem.as_mut() {
            let write = mem.kind == Access::Write;
            if self.redirect_to_shared(write) {
                mem.addr = self.shared_addr(write);
            }
        }

        // Critical-section bookkeeping: queue the release when it ends.
        if let Some((left, id)) = self.in_cs {
            if left <= 1 {
                self.in_cs = None;
                self.pending.push_back(Instr::sync(0x1008, SyncKind::LockRelease, id));
            } else {
                self.in_cs = Some((left - 1, id));
            }
        }

        Some(instr)
    }
}

impl std::fmt::Debug for SplashThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SplashThread")
            .field("app", &self.profile.name)
            .field("thread", &self.thread)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(profile: SplashProfile, thread: usize, n: usize, count: usize) -> Vec<Instr> {
        let mut t = SplashThread::new(profile, thread, n, 11);
        (0..count).map(|_| t.next_instr().unwrap()).collect()
    }

    #[test]
    fn suite_validates() {
        for p in splash_suite() {
            p.validate();
        }
        assert_eq!(splash_suite().len(), 7);
    }

    #[test]
    fn locks_are_balanced() {
        let instrs = take(pthor(), 0, 4, 20_000);
        let acquires = instrs
            .iter()
            .filter(|i| matches!(i.sync, Some(s) if s.kind == SyncKind::LockAcquire))
            .count();
        let releases = instrs
            .iter()
            .filter(|i| matches!(i.sync, Some(s) if s.kind == SyncKind::LockRelease))
            .count();
        assert!(acquires > 50, "expected many critical sections, got {acquires}");
        assert!(
            (acquires as i64 - releases as i64).abs() <= 1,
            "unbalanced locks: {acquires} acquires vs {releases} releases"
        );
    }

    #[test]
    fn barrier_instances_are_sequential() {
        let instrs = take(mp3d(), 2, 8, 30_000);
        let instances: Vec<u32> = instrs
            .iter()
            .filter_map(|i| i.sync.filter(|s| s.kind == SyncKind::BarrierArrive).map(|s| s.id))
            .collect();
        assert!(instances.len() >= 3, "expected several barriers");
        for (k, inst) in instances.iter().enumerate() {
            assert_eq!(*inst as usize, k, "instances must number sequentially");
        }
    }

    #[test]
    fn shared_references_exist_and_stay_in_region() {
        let p = mp3d();
        let span = p.shared_bytes;
        let instrs = take(p, 1, 4, 20_000);
        let shared: Vec<u64> = instrs
            .iter()
            .filter_map(|i| i.mem.map(|m| m.addr))
            .filter(|a| (SHARED_BASE..SHARED_BASE + span).contains(a))
            .collect();
        let mems = instrs.iter().filter(|i| i.mem.is_some()).count();
        let frac = shared.len() as f64 / mems as f64;
        assert!((frac - 0.45).abs() < 0.08, "shared fraction {frac}");
    }

    #[test]
    fn neighbor_pattern_reads_other_partition() {
        let p = ocean();
        let n = 4;
        let part = p.shared_bytes / n as u64;
        let shared_bytes = p.shared_bytes;
        let instrs = take(p, 0, n, 30_000);
        let mut read_neighbor = 0;
        let mut wrote_own = 0;
        for i in &instrs {
            if let Some(m) = i.mem {
                if (SHARED_BASE..SHARED_BASE + shared_bytes).contains(&m.addr) {
                    let owner = (m.addr - SHARED_BASE) / part;
                    match m.kind {
                        Access::Read if owner == 1 => read_neighbor += 1,
                        Access::Write if owner == 0 => wrote_own += 1,
                        _ => {}
                    }
                }
            }
        }
        assert!(read_neighbor > 50, "thread 0 should read partition 1");
        assert!(wrote_own > 10, "thread 0 should write partition 0");
    }

    #[test]
    fn no_sync_inside_critical_sections() {
        let instrs = take(cholesky(), 0, 2, 30_000);
        let mut depth = 0i32;
        for i in &instrs {
            if let Some(s) = i.sync {
                match s.kind {
                    SyncKind::LockAcquire => {
                        assert_eq!(depth, 0, "nested acquire");
                        depth += 1;
                    }
                    SyncKind::LockRelease => {
                        assert_eq!(depth, 1, "release without acquire");
                        depth -= 1;
                    }
                    SyncKind::BarrierArrive => {
                        assert_eq!(depth, 0, "barrier inside critical section");
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = take(water(), 3, 8, 1000);
        let b = take(water(), 3, 8, 1000);
        assert_eq!(a, b);
    }
}
