//! DASH-like directory-coherent multiprocessor substrate (paper
//! Section 5.2) with SPLASH-like synthetic parallel applications.
//!
//! The modeled machine is a set of nodes, each with one (multiple-context)
//! processor, a single-level 64 KB direct-mapped data cache, an ideal
//! instruction cache, and a slice of the distributed shared memory whose
//! coherence is maintained by a full-bit-vector directory protocol
//! (invalidation-based, dirty-remote interventions — the Stanford DASH
//! family). Following the paper's methodology:
//!
//! * the directory protocol is simulated *functionally* to classify every
//!   miss as a local-memory, remote-memory, or remote-cache (dirty
//!   intervention) access, and to generate invalidations;
//! * unloaded miss latencies are *sampled from uniform ranges* per class
//!   (Table 8; the published cells are corrupted — see DESIGN.md for the
//!   reconstruction);
//! * cache contention is modeled (ports busy on fills, interventions and
//!   invalidations), while the network and memories are contentionless.
//!
//! The SPLASH applications are statistical stream models
//! ([`SplashProfile`] / [`SplashThread`]) layering shared-data access
//! patterns (migratory, read-mostly, neighbor exchange) and lock/barrier
//! synchronization over the compute profiles of `interleave-workloads`.
//!
//! [`MpSim`] drives one application over the whole machine and produces
//! the paper's Table 10 speedups and Figure 8/9 execution-time breakdowns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod directory;
mod latency;
mod node;
mod sim;
mod sync;

pub use apps::{splash_suite, SharingPattern, SplashProfile, SplashThread};
pub use directory::{Directory, DirectoryStats, MissClass};
pub use latency::LatencyModel;
pub use sim::{MpResult, MpSim, MpSimBuilder};
pub use sync::{SyncController, SyncShard};
