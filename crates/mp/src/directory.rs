use std::collections::HashMap;

use interleave_obs::validate::Violation;

/// How a data access was serviced, for latency sampling and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissClass {
    /// Satisfied by the local primary cache (and ownership was already
    /// sufficient).
    Hit,
    /// Reply from the node's own memory slice.
    LocalMem,
    /// Reply from another node's memory slice.
    RemoteMem,
    /// Reply from another node's cache (dirty intervention).
    RemoteCache,
    /// Ownership upgrade for a write to a line already cached shared.
    Upgrade,
}

impl MissClass {
    /// The four miss (non-hit) classes, in [`MissClass::index`] order.
    pub const MISSES: [MissClass; 4] =
        [MissClass::LocalMem, MissClass::RemoteMem, MissClass::RemoteCache, MissClass::Upgrade];

    /// Dense index of a miss class (latency-histogram slot).
    ///
    /// # Panics
    ///
    /// Panics on [`MissClass::Hit`], which has no latency to sample.
    pub fn index(self) -> usize {
        match self {
            MissClass::Hit => panic!("hits have no sampled latency"),
            MissClass::LocalMem => 0,
            MissClass::RemoteMem => 1,
            MissClass::RemoteCache => 2,
            MissClass::Upgrade => 3,
        }
    }

    /// Metric-name segment for this miss class.
    pub fn label(self) -> &'static str {
        match self {
            MissClass::Hit => "hit",
            MissClass::LocalMem => "local",
            MissClass::RemoteMem => "remote",
            MissClass::RemoteCache => "remote_cache",
            MissClass::Upgrade => "upgrade",
        }
    }
}

/// Coherence state of one line in the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// Cached read-only by the nodes in the bit mask.
    Shared(u64),
    /// Cached modified by one node.
    Dirty(usize),
}

/// Aggregate protocol counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Misses serviced by local memory.
    pub local: u64,
    /// Misses serviced by remote memory.
    pub remote: u64,
    /// Misses serviced by a remote dirty cache.
    pub remote_cache: u64,
    /// Ownership upgrades.
    pub upgrades: u64,
    /// Invalidation messages sent to sharers.
    pub invalidations: u64,
    /// Dirty lines written back on eviction or intervention.
    pub writebacks: u64,
}

/// Outcome of a directory transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Service class for latency sampling.
    pub class: MissClass,
    /// Nodes whose cached copies must be invalidated.
    pub invalidate: Vec<usize>,
    /// Node whose dirty copy supplies the data (intervention).
    pub intervene: Option<usize>,
}

/// Full-bit-vector invalidation directory (DASH-like), simulated
/// functionally: it tracks who caches what so each access can be
/// classified and the coherence traffic (invalidations, interventions)
/// generated; timing is sampled by the caller per class.
///
/// Lines are home-interleaved across nodes by line address.
///
/// # Examples
///
/// ```
/// use interleave_mp::{Directory, MissClass};
///
/// let mut dir = Directory::new(4, 32);
/// // Node 1 reads a line homed on node 0: remote memory.
/// let t = dir.read(1, 0x0);
/// assert_eq!(t.class, MissClass::RemoteMem);
/// // Node 0 reads the same line: local memory, no traffic.
/// let t = dir.read(0, 0x0);
/// assert_eq!(t.class, MissClass::LocalMem);
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    nodes: usize,
    line: u64,
    states: HashMap<u64, LineState>,
    stats: DirectoryStats,
}

impl Directory {
    /// Creates a directory for `nodes` nodes with `line`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or exceeds 64 (bit-vector width), or if
    /// `line` is not a power of two.
    pub fn new(nodes: usize, line: u64) -> Directory {
        assert!((1..=64).contains(&nodes), "bit-vector directory supports 1..=64 nodes");
        assert!(line.is_power_of_two(), "line size must be a power of two");
        Directory { nodes, line, states: HashMap::new(), stats: DirectoryStats::default() }
    }

    /// The home node of the line containing `addr` (address-interleaved).
    pub fn home(&self, addr: u64) -> usize {
        ((addr / self.line) % self.nodes as u64) as usize
    }

    /// Accumulated protocol statistics.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Resets statistics (after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = DirectoryStats::default();
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.line * self.line
    }

    fn memory_class(&self, node: usize, addr: u64) -> MissClass {
        if self.home(addr) == node {
            MissClass::LocalMem
        } else {
            MissClass::RemoteMem
        }
    }

    fn count(&mut self, class: MissClass) {
        match class {
            MissClass::LocalMem => self.stats.local += 1,
            MissClass::RemoteMem => self.stats.remote += 1,
            MissClass::RemoteCache => self.stats.remote_cache += 1,
            MissClass::Upgrade => self.stats.upgrades += 1,
            MissClass::Hit => {}
        }
    }

    /// Classifies a read miss by `node` without mutating state or
    /// statistics — the shard-local first pass of the parallel driver,
    /// which samples latency from this class immediately and replays the
    /// mutating [`Directory::read`] at the next quantum barrier.
    pub fn classify_read(&self, node: usize, addr: u64) -> MissClass {
        let line = self.line_of(addr);
        match self.states.get(&line).copied() {
            None | Some(LineState::Shared(_)) => self.memory_class(node, addr),
            Some(LineState::Dirty(owner)) if owner == node => MissClass::Hit,
            Some(LineState::Dirty(_)) => MissClass::RemoteCache,
        }
    }

    /// Classifies a write by `node` without mutating state or statistics
    /// (see [`Directory::classify_read`]). `cached` indicates whether the
    /// node already holds the line.
    pub fn classify_write(&self, node: usize, addr: u64, cached: bool) -> MissClass {
        let line = self.line_of(addr);
        match self.states.get(&line).copied() {
            None => self.memory_class(node, addr),
            Some(LineState::Dirty(owner)) if owner == node => MissClass::Hit,
            Some(LineState::Dirty(_)) => MissClass::RemoteCache,
            Some(LineState::Shared(mask)) => {
                let others = (0..self.nodes).any(|m| m != node && mask & (1 << m) != 0);
                if cached {
                    if !others && self.home(addr) == node {
                        MissClass::Hit
                    } else {
                        MissClass::Upgrade
                    }
                } else {
                    self.memory_class(node, addr)
                }
            }
        }
    }

    /// A read miss by `node` for the line containing `addr`.
    pub fn read(&mut self, node: usize, addr: u64) -> Transaction {
        debug_assert!(node < self.nodes);
        let line = self.line_of(addr);
        let bit = 1u64 << node;
        let (state, tx) = match self.states.get(&line).copied() {
            None => {
                let class = self.memory_class(node, addr);
                (LineState::Shared(bit), Transaction { class, invalidate: vec![], intervene: None })
            }
            Some(LineState::Shared(mask)) => {
                let class = self.memory_class(node, addr);
                (
                    LineState::Shared(mask | bit),
                    Transaction { class, invalidate: vec![], intervene: None },
                )
            }
            Some(LineState::Dirty(owner)) if owner == node => {
                // Re-read of our own dirty line (should normally hit).
                (
                    LineState::Dirty(owner),
                    Transaction { class: MissClass::Hit, invalidate: vec![], intervene: None },
                )
            }
            Some(LineState::Dirty(owner)) => {
                // Intervention: owner writes back and keeps a shared copy.
                self.stats.writebacks += 1;
                (
                    LineState::Shared(bit | (1 << owner)),
                    Transaction {
                        class: MissClass::RemoteCache,
                        invalidate: vec![],
                        intervene: Some(owner),
                    },
                )
            }
        };
        self.states.insert(line, state);
        self.count(tx.class);
        tx
    }

    /// A write (store) by `node` for the line containing `addr`.
    ///
    /// `cached` indicates whether the node already holds the line (an
    /// upgrade rather than a fill).
    pub fn write(&mut self, node: usize, addr: u64, cached: bool) -> Transaction {
        debug_assert!(node < self.nodes);
        let line = self.line_of(addr);
        let _bit = 1u64 << node;
        let tx = match self.states.get(&line).copied() {
            None => Transaction {
                class: self.memory_class(node, addr),
                invalidate: vec![],
                intervene: None,
            },
            Some(LineState::Dirty(owner)) if owner == node => {
                Transaction { class: MissClass::Hit, invalidate: vec![], intervene: None }
            }
            Some(LineState::Dirty(owner)) => {
                self.stats.writebacks += 1;
                Transaction {
                    class: MissClass::RemoteCache,
                    invalidate: vec![owner],
                    intervene: Some(owner),
                }
            }
            Some(LineState::Shared(mask)) => {
                let others: Vec<usize> =
                    (0..self.nodes).filter(|&m| m != node && mask & (1 << m) != 0).collect();
                self.stats.invalidations += others.len() as u64;
                let class = if cached {
                    if others.is_empty() && self.home(addr) == node {
                        // Sole sharer with a local home: silent upgrade.
                        MissClass::Hit
                    } else {
                        MissClass::Upgrade
                    }
                } else {
                    self.memory_class(node, addr)
                };
                Transaction { class, invalidate: others, intervene: None }
            }
        };
        self.states.insert(line, LineState::Dirty(node));
        self.count(tx.class);
        tx
    }

    /// Notifies the directory that `node` evicted the line containing
    /// `addr` (`dirty` if it was modified).
    pub fn evict(&mut self, node: usize, addr: u64, dirty: bool) {
        let line = self.line_of(addr);
        let bit = 1u64 << node;
        match self.states.get(&line).copied() {
            Some(LineState::Dirty(owner)) if owner == node => {
                if dirty {
                    self.stats.writebacks += 1;
                }
                self.states.remove(&line);
            }
            Some(LineState::Shared(mask)) => {
                let rest = mask & !bit;
                if rest == 0 {
                    self.states.remove(&line);
                } else {
                    self.states.insert(line, LineState::Shared(rest));
                }
            }
            _ => {}
        }
    }

    /// Current sharer count of the line containing `addr` (for tests).
    pub fn sharers(&self, addr: u64) -> usize {
        match self.states.get(&self.line_of(addr)) {
            None => 0,
            Some(LineState::Dirty(_)) => 1,
            Some(LineState::Shared(mask)) => mask.count_ones() as usize,
        }
    }

    /// Checks the directory's state-machine legality at `cycle`: every
    /// tracked line is aligned; a shared line has a non-empty sharer
    /// vector with no bits beyond the node count (owner/sharer-vector
    /// consistency — a dirty line is `Dirty(owner)` by construction, so
    /// an M-line with sharers cannot even be represented and the check
    /// enforces the representation's side conditions); a dirty line's
    /// owner is a real node. O(tracked lines) — drivers run this at
    /// chunk boundaries, not per tick.
    pub fn check_invariants(&self, cycle: u64) -> Result<(), Violation> {
        for (&line, &state) in &self.states {
            if line % self.line != 0 {
                return Err(Violation::new(
                    "mp.directory",
                    "tracked line address is not line-aligned",
                    cycle,
                    format!("line {line:#x} with {}-byte lines", self.line),
                ));
            }
            match state {
                LineState::Shared(mask) => {
                    if mask == 0 {
                        return Err(Violation::new(
                            "mp.directory",
                            "shared line has an empty sharer vector",
                            cycle,
                            format!("line {line:#x}"),
                        ));
                    }
                    if self.nodes < 64 && mask >> self.nodes != 0 {
                        let ghost = 63 - mask.leading_zeros() as usize;
                        return Err(Violation::new(
                            "mp.directory",
                            "sharer vector names a nonexistent node",
                            cycle,
                            format!("line {line:#x} mask {mask:#x} with {} nodes", self.nodes),
                        )
                        .with_context(ghost));
                    }
                }
                LineState::Dirty(owner) => {
                    if owner >= self.nodes {
                        return Err(Violation::new(
                            "mp.directory",
                            "dirty line has an out-of-range owner",
                            cycle,
                            format!("line {line:#x} owned by node {owner} of {}", self.nodes),
                        )
                        .with_context(owner));
                    }
                }
            }
        }
        Ok(())
    }

    /// Visits every line the directory believes is cached somewhere,
    /// as `(line_address, node, dirty)` per cached copy — the driver's
    /// directory↔cache cross-check.
    pub fn for_each_cached_copy(&self, mut f: impl FnMut(u64, usize, bool)) {
        for (&line, &state) in &self.states {
            match state {
                LineState::Dirty(owner) => f(line, owner, true),
                LineState::Shared(mask) => {
                    for node in 0..self.nodes.min(64) {
                        if mask & (1 << node) != 0 {
                            f(line, node, false);
                        }
                    }
                }
            }
        }
    }

    /// Corrupts the directory by marking `line_addr` dirty-owned by
    /// `owner` without any legality checks. Fault injection for the
    /// validation layer's own regression tests — never called by the
    /// protocol paths.
    #[doc(hidden)]
    pub fn corrupt_line_for_test(&mut self, line_addr: u64, owner: usize) {
        self.states.insert(line_addr, LineState::Dirty(owner));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_sharing_accumulates() {
        let mut dir = Directory::new(4, 32);
        // 0x100 / 32 = line 8, home 8 % 4 = node 0: local for node 0.
        assert_eq!(dir.read(0, 0x100).class, MissClass::LocalMem);
        assert_eq!(dir.sharers(0x100), 1);
        dir.read(3, 0x100);
        assert_eq!(dir.sharers(0x100), 2);
    }

    #[test]
    fn home_interleaving() {
        let dir = Directory::new(4, 32);
        assert_eq!(dir.home(0x00), 0);
        assert_eq!(dir.home(0x20), 1);
        assert_eq!(dir.home(0x40), 2);
        assert_eq!(dir.home(0x60), 3);
        assert_eq!(dir.home(0x80), 0);
    }

    #[test]
    fn local_vs_remote_classification() {
        let mut dir = Directory::new(4, 32);
        assert_eq!(dir.read(0, 0x00).class, MissClass::LocalMem);
        assert_eq!(dir.read(0, 0x20).class, MissClass::RemoteMem);
    }

    #[test]
    fn dirty_intervention_on_read() {
        let mut dir = Directory::new(4, 32);
        dir.write(2, 0x00, false);
        let t = dir.read(1, 0x00);
        assert_eq!(t.class, MissClass::RemoteCache);
        assert_eq!(t.intervene, Some(2));
        // Both now share.
        assert_eq!(dir.sharers(0x00), 2);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut dir = Directory::new(4, 32);
        dir.read(0, 0x00);
        dir.read(1, 0x00);
        dir.read(2, 0x00);
        let t = dir.write(1, 0x00, true);
        assert_eq!(t.class, MissClass::Upgrade);
        let mut inv = t.invalidate.clone();
        inv.sort_unstable();
        assert_eq!(inv, vec![0, 2]);
        assert_eq!(dir.sharers(0x00), 1);
        assert_eq!(dir.stats().invalidations, 2);
    }

    #[test]
    fn sole_local_sharer_upgrades_silently() {
        let mut dir = Directory::new(4, 32);
        dir.read(0, 0x00); // home 0, sole sharer
        let t = dir.write(0, 0x00, true);
        assert_eq!(t.class, MissClass::Hit);
        assert!(t.invalidate.is_empty());
    }

    #[test]
    fn write_to_dirty_remote_intervenes() {
        let mut dir = Directory::new(4, 32);
        dir.write(3, 0x20, false);
        let t = dir.write(1, 0x20, false);
        assert_eq!(t.class, MissClass::RemoteCache);
        assert_eq!(t.intervene, Some(3));
        assert_eq!(t.invalidate, vec![3]);
    }

    #[test]
    fn eviction_clears_state() {
        let mut dir = Directory::new(4, 32);
        dir.read(0, 0x00);
        dir.read(1, 0x00);
        dir.evict(0, 0x00, false);
        assert_eq!(dir.sharers(0x00), 1);
        dir.evict(1, 0x00, false);
        assert_eq!(dir.sharers(0x00), 0);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut dir = Directory::new(4, 32);
        dir.write(0, 0x00, false);
        dir.evict(0, 0x00, true);
        assert_eq!(dir.stats().writebacks, 1);
        assert_eq!(dir.sharers(0x00), 0);
    }

    #[test]
    #[should_panic]
    fn too_many_nodes_rejected() {
        let _ = Directory::new(65, 32);
    }

    #[test]
    fn invariants_hold_through_protocol_traffic() {
        let mut dir = Directory::new(4, 32);
        dir.read(0, 0x00);
        dir.read(1, 0x00);
        dir.write(2, 0x00, false);
        dir.read(3, 0x00);
        dir.evict(2, 0x00, false);
        dir.write(1, 0x40, false);
        dir.evict(1, 0x40, true);
        assert!(dir.check_invariants(100).is_ok());
    }

    #[test]
    fn corrupted_owner_is_caught() {
        let mut dir = Directory::new(4, 32);
        dir.read(0, 0x00);
        dir.corrupt_line_for_test(0x40, 9);
        let v = dir.check_invariants(777).unwrap_err();
        assert_eq!(v.context, Some(9));
        let msg = v.to_string();
        assert!(msg.contains("cycle 777"), "{msg}");
        assert!(msg.contains("owner"), "{msg}");
    }

    #[test]
    fn classify_matches_mutating_transactions() {
        // Drive a directory through mixed traffic; before every mutating
        // call, the read-only classifier must predict the same class.
        let mut dir = Directory::new(4, 32);
        let script: [(usize, u64, bool); 8] = [
            (0, 0x00, false),
            (1, 0x00, false),
            (2, 0x00, true),
            (3, 0x20, false),
            (3, 0x20, true),
            (0, 0x20, true),
            (2, 0x40, false),
            (1, 0x40, false),
        ];
        for (node, addr, write) in script {
            if write {
                let cached = dir.sharers(addr) > 0; // approximation for the test
                let predicted = dir.classify_write(node, addr, cached);
                assert_eq!(
                    predicted,
                    dir.write(node, addr, cached).class,
                    "write {node} {addr:#x}"
                );
            } else {
                let predicted = dir.classify_read(node, addr);
                assert_eq!(predicted, dir.read(node, addr).class, "read {node} {addr:#x}");
            }
        }
    }

    #[test]
    fn classify_does_not_mutate() {
        let mut dir = Directory::new(4, 32);
        dir.read(0, 0x00);
        let stats_before = *dir.stats();
        dir.classify_read(1, 0x00);
        dir.classify_write(1, 0x00, false);
        assert_eq!(*dir.stats(), stats_before);
        assert_eq!(dir.sharers(0x00), 1);
    }

    #[test]
    fn cached_copy_walk_matches_state() {
        let mut dir = Directory::new(4, 32);
        dir.read(0, 0x00);
        dir.read(1, 0x00);
        dir.write(2, 0x20, false);
        let mut copies = vec![];
        dir.for_each_cached_copy(|line, node, dirty| copies.push((line, node, dirty)));
        copies.sort_unstable();
        assert_eq!(copies, vec![(0x00, 0, false), (0x00, 1, false), (0x20, 2, true)]);
    }
}
