use interleave_engine::rand64;
use rand::rngs::SmallRng;
use rand::Rng;

/// Unloaded memory latencies sampled from uniform ranges (paper Table 8).
///
/// The published numeric cells are corrupted in the source text; these
/// DASH-like ranges are the reconstruction documented in DESIGN.md. All
/// values are processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Primary-cache hit (cycles, not a range).
    pub hit: u64,
    /// Reply from local memory: inclusive uniform range.
    pub local: (u64, u64),
    /// Reply from remote memory.
    pub remote: (u64, u64),
    /// Reply from a remote cache (dirty intervention).
    pub remote_cache: (u64, u64),
}

impl LatencyModel {
    /// The reconstructed DASH-like default ranges.
    pub fn dash_like() -> LatencyModel {
        LatencyModel { hit: 1, local: (22, 38), remote: (80, 130), remote_cache: (100, 160) }
    }

    /// Checks range sanity.
    ///
    /// # Panics
    ///
    /// Panics if any range is inverted or zero, or if the classes are not
    /// ordered hit < local < remote.
    pub fn validate(&self) {
        assert!(self.hit >= 1);
        for (name, (lo, hi)) in
            [("local", self.local), ("remote", self.remote), ("remote_cache", self.remote_cache)]
        {
            assert!(lo >= 1 && lo <= hi, "{name} range ({lo}, {hi}) invalid");
        }
        assert!(self.hit < self.local.0, "local memory must be slower than a hit");
        assert!(self.local.1 < self.remote.0, "remote must be slower than local");
    }

    /// Samples a latency for one miss class.
    pub fn sample(&self, range: (u64, u64), rng: &mut SmallRng) -> u64 {
        if range.0 == range.1 {
            range.0
        } else {
            rng.gen_range(range.0..=range.1)
        }
    }

    /// Conservative lookahead of the parallel driver: the minimum number
    /// of cycles any cross-node message can take, i.e. the floor of the
    /// remote-memory and remote-cache reply ranges (Table 8). No message
    /// generated inside a simulation quantum of at most this many cycles
    /// can be due before the quantum's end barrier, so nodes may advance
    /// a full quantum independently without reordering any delivery.
    pub fn lookahead(&self) -> u64 {
        self.remote.0.min(self.remote_cache.0)
    }

    /// Samples a latency for one miss class without shared generator
    /// state: the draw is a pure hash of `(seed, node, draw)` via
    /// [`interleave_engine::rand64`], so concurrent shards sample
    /// identical sequences no matter how the host schedules them — the
    /// property that makes `--mp-jobs` bit-invisible.
    pub fn sample_hashed(&self, range: (u64, u64), seed: u64, node: usize, draw: u64) -> u64 {
        if range.0 == range.1 {
            return range.0;
        }
        let span = range.1 - range.0 + 1;
        range.0 + rand64::bounded(rand64::hashed(seed, node as u64, draw), span)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::dash_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_validates() {
        LatencyModel::dash_like().validate();
    }

    #[test]
    fn samples_stay_in_range() {
        let m = LatencyModel::dash_like();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let l = m.sample(m.local, &mut rng);
            assert!((22..=38).contains(&l));
            let r = m.sample(m.remote, &mut rng);
            assert!((80..=130).contains(&r));
            let c = m.sample(m.remote_cache, &mut rng);
            assert!((100..=160).contains(&c));
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let m = LatencyModel { local: (30, 30), ..LatencyModel::dash_like() };
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(m.sample(m.local, &mut rng), 30);
    }

    #[test]
    #[should_panic]
    fn inverted_range_rejected() {
        let m = LatencyModel { remote: (130, 80), ..LatencyModel::dash_like() };
        m.validate();
    }

    #[test]
    #[should_panic]
    fn unordered_classes_rejected() {
        let m = LatencyModel { local: (80, 200), ..LatencyModel::dash_like() };
        m.validate();
    }

    #[test]
    fn lookahead_is_min_cross_node_floor() {
        assert_eq!(LatencyModel::dash_like().lookahead(), 80);
        let m = LatencyModel { remote_cache: (60, 160), ..LatencyModel::dash_like() };
        assert_eq!(m.lookahead(), 60);
    }

    #[test]
    fn hashed_samples_stay_in_range_and_are_deterministic() {
        let m = LatencyModel::dash_like();
        for draw in 0..1000 {
            for node in 0..4 {
                let l = m.sample_hashed(m.local, 7, node, draw);
                assert!((22..=38).contains(&l));
                assert_eq!(l, m.sample_hashed(m.local, 7, node, draw));
            }
        }
        // Distinct nodes and draws decorrelate.
        let a: Vec<u64> = (0..50).map(|d| m.sample_hashed(m.remote, 7, 0, d)).collect();
        let b: Vec<u64> = (0..50).map(|d| m.sample_hashed(m.remote, 7, 1, d)).collect();
        assert_ne!(a, b);
        assert!(a.iter().collect::<std::collections::HashSet<_>>().len() > 10);
    }

    #[test]
    fn hashed_degenerate_range_is_constant() {
        let m = LatencyModel { local: (30, 30), ..LatencyModel::dash_like() };
        assert_eq!(m.sample_hashed(m.local, 1, 0, 0), 30);
    }
}
