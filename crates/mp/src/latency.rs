use rand::rngs::SmallRng;
use rand::Rng;

/// Unloaded memory latencies sampled from uniform ranges (paper Table 8).
///
/// The published numeric cells are corrupted in the source text; these
/// DASH-like ranges are the reconstruction documented in DESIGN.md. All
/// values are processor cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Primary-cache hit (cycles, not a range).
    pub hit: u64,
    /// Reply from local memory: inclusive uniform range.
    pub local: (u64, u64),
    /// Reply from remote memory.
    pub remote: (u64, u64),
    /// Reply from a remote cache (dirty intervention).
    pub remote_cache: (u64, u64),
}

impl LatencyModel {
    /// The reconstructed DASH-like default ranges.
    pub fn dash_like() -> LatencyModel {
        LatencyModel { hit: 1, local: (22, 38), remote: (80, 130), remote_cache: (100, 160) }
    }

    /// Checks range sanity.
    ///
    /// # Panics
    ///
    /// Panics if any range is inverted or zero, or if the classes are not
    /// ordered hit < local < remote.
    pub fn validate(&self) {
        assert!(self.hit >= 1);
        for (name, (lo, hi)) in
            [("local", self.local), ("remote", self.remote), ("remote_cache", self.remote_cache)]
        {
            assert!(lo >= 1 && lo <= hi, "{name} range ({lo}, {hi}) invalid");
        }
        assert!(self.hit < self.local.0, "local memory must be slower than a hit");
        assert!(self.local.1 < self.remote.0, "remote must be slower than local");
    }

    /// Samples a latency for one miss class.
    pub fn sample(&self, range: (u64, u64), rng: &mut SmallRng) -> u64 {
        if range.0 == range.1 {
            range.0
        } else {
            rng.gen_range(range.0..=range.1)
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::dash_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_validates() {
        LatencyModel::dash_like().validate();
    }

    #[test]
    fn samples_stay_in_range() {
        let m = LatencyModel::dash_like();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let l = m.sample(m.local, &mut rng);
            assert!((22..=38).contains(&l));
            let r = m.sample(m.remote, &mut rng);
            assert!((80..=130).contains(&r));
            let c = m.sample(m.remote_cache, &mut rng);
            assert!((100..=160).contains(&c));
        }
    }

    #[test]
    fn degenerate_range_is_constant() {
        let m = LatencyModel { local: (30, 30), ..LatencyModel::dash_like() };
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(m.sample(m.local, &mut rng), 30);
    }

    #[test]
    #[should_panic]
    fn inverted_range_rejected() {
        let m = LatencyModel { remote: (130, 80), ..LatencyModel::dash_like() };
        m.validate();
    }

    #[test]
    #[should_panic]
    fn unordered_classes_rejected() {
        let m = LatencyModel { local: (80, 200), ..LatencyModel::dash_like() };
        m.validate();
    }
}
