use std::cell::RefCell;
use std::rc::Rc;

use interleave_core::{IdleBound, ProcConfig, Processor, Scheme, WaitReason};
use interleave_obs::Registry;
use interleave_stats::Breakdown;

use crate::{DirectoryStats, LatencyModel, MpShared, NodePort, SplashProfile, SplashThread};

/// Multiprocessor simulation driver (paper Section 5.2).
///
/// Runs one SPLASH-like application decomposed into `nodes ×
/// contexts_per_node` threads over the directory-coherent machine, in
/// lockstep (all node processors advance each cycle, then synchronization
/// wakes are delivered). The run is fixed-work: it ends when every thread
/// has retired its share of `total_work` instructions, so execution time
/// is directly comparable across context counts (the basis of Table 10's
/// speedups).
///
/// # Examples
///
/// ```
/// use interleave_core::Scheme;
/// use interleave_mp::{splash_suite, MpSim};
///
/// let sim = MpSim::builder(splash_suite()[1].clone())
///     .scheme(Scheme::Interleaved)
///     .nodes(4)
///     .contexts(2)
///     .work(8_000) // tiny run for the doctest
///     .warmup(500)
///     .build();
/// let r = sim.run();
/// assert!(r.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MpSim {
    /// The application.
    app: SplashProfile,
    /// Context scheduling scheme.
    scheme: Scheme,
    /// Number of nodes (processors).
    nodes: usize,
    /// Hardware contexts per processor (threads per node).
    contexts_per_node: usize,
    /// Total instructions of application work, split evenly over threads.
    total_work: u64,
    /// Cycles before statistics reset.
    warmup_cycles: u64,
    /// Latency model (Table 8).
    latency: LatencyModel,
    /// Seed for streams and latency sampling.
    seed: u64,
    /// Fast-forward lockstep cycles in which every node processor is idle.
    idle_skip: bool,
    /// Run the invariant checkers: per-tick processor checks plus
    /// machine-wide coherence checks at every 128-cycle chunk boundary.
    validate: bool,
    /// Deliberately corrupt the directory once the lockstep clock reaches
    /// this cycle (fault injection for the validation layer's own
    /// regression tests).
    fault_at: Option<u64>,
}

/// Builder for [`MpSim`]; obtained from [`MpSim::builder`].
///
/// Defaults (before any setter) are a single-context 8-node machine with
/// 400 000 instructions of total work, 20 000 warmup cycles, the
/// DASH-like latencies, and the fixed default seed.
#[derive(Debug, Clone)]
pub struct MpSimBuilder {
    sim: MpSim,
}

impl MpSimBuilder {
    /// Context scheduling scheme (default [`Scheme::Single`]).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.sim.scheme = scheme;
        self
    }

    /// Number of nodes / processors (default 8).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.sim.nodes = nodes;
        self
    }

    /// Hardware contexts per processor (default 1).
    pub fn contexts(mut self, contexts_per_node: usize) -> Self {
        self.sim.contexts_per_node = contexts_per_node;
        self
    }

    /// Total instructions of application work (default 400 000).
    pub fn work(mut self, total_work: u64) -> Self {
        self.sim.total_work = total_work;
        self
    }

    /// Warmup cycles before statistics reset (default 20 000).
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.sim.warmup_cycles = cycles;
        self
    }

    /// Latency model (default [`LatencyModel::dash_like`]).
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.sim.latency = latency;
        self
    }

    /// Seed for streams and latency sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Fast-forward lockstep cycles in which every node processor is idle
    /// (default true). Purely a host-throughput optimisation — results
    /// are bit-identical with it on or off.
    pub fn idle_skip(mut self, enabled: bool) -> Self {
        self.sim.idle_skip = enabled;
        self
    }

    /// Run the structural invariant checkers: per-tick processor checks
    /// plus directory/sync coherence checks at every 128-cycle chunk
    /// boundary, panicking with a report naming the cycle, context, and
    /// replay seed on violation. Defaults to
    /// [`interleave_obs::validate::default_enabled`].
    pub fn validate(mut self, enabled: bool) -> Self {
        self.sim.validate = enabled;
        self
    }

    /// Corrupts the directory once the clock reaches `cycle`. Fault
    /// injection for the validation layer's regression tests only.
    #[doc(hidden)]
    pub fn inject_directory_fault_at(mut self, cycle: u64) -> Self {
        self.sim.fault_at = Some(cycle);
        self
    }

    /// Finalizes the simulation.
    pub fn build(self) -> MpSim {
        self.sim
    }
}

/// Results of one multiprocessor run.
#[derive(Debug, Clone, PartialEq)]
pub struct MpResult {
    /// Measured cycles until every thread finished its share.
    pub cycles: u64,
    /// Execution-time breakdown summed over all node processors.
    pub breakdown: Breakdown,
    /// Directory/protocol statistics.
    pub directory: DirectoryStats,
    /// Threads simulated.
    pub threads: usize,
    /// Average outstanding misses observed at miss time (memory-level
    /// parallelism indicator).
    pub avg_mlp: f64,
    /// Per-node execution-time breakdowns (load-balance inspection).
    pub per_node: Vec<Breakdown>,
    /// Instrumentation registry: per-node processor metrics summed over
    /// all nodes (counters add, histograms merge) plus machine-level
    /// `mp.dir.*`, `mp.latency.*`, and `mp.sync.*` metrics. Event
    /// counters accumulate from cycle zero; `cycles.*` and `mp.dir.*`
    /// mirror the warmup-reset statistics.
    pub metrics: Registry,
}

impl MpSim {
    /// Starts building a simulation of `app` with default work sizes and
    /// the DASH-like latencies (see [`MpSimBuilder`]).
    pub fn builder(app: SplashProfile) -> MpSimBuilder {
        MpSimBuilder {
            sim: MpSim {
                app,
                scheme: Scheme::Single,
                nodes: 8,
                contexts_per_node: 1,
                total_work: 400_000,
                warmup_cycles: 20_000,
                latency: LatencyModel::dash_like(),
                seed: 0x19941004,
                idle_skip: true,
                validate: interleave_obs::validate::default_enabled(),
                fault_at: None,
            },
        }
    }

    /// A simulation with default work sizes and the DASH-like latencies.
    #[deprecated(since = "0.2.0", note = "use `MpSim::builder(app)` instead")]
    pub fn new(
        app: SplashProfile,
        scheme: Scheme,
        nodes: usize,
        contexts_per_node: usize,
    ) -> MpSim {
        MpSim::builder(app).scheme(scheme).nodes(nodes).contexts(contexts_per_node).build()
    }

    /// The application being run.
    pub fn app(&self) -> &SplashProfile {
        &self.app
    }

    /// Context scheduling scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of nodes (processors).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Hardware contexts per processor.
    pub fn contexts_per_node(&self) -> usize {
        self.contexts_per_node
    }

    /// Total instructions of application work.
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// Warmup cycles before statistics reset.
    pub fn warmup_cycles(&self) -> u64 {
        self.warmup_cycles
    }

    /// Seed for streams and latency sampling.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration or if the run exceeds an
    /// internal safety bound (livelock).
    pub fn run(&self) -> MpResult {
        self.app.validate();
        assert!(self.nodes >= 1, "need at least one node");
        let threads = self.nodes * self.contexts_per_node;
        let quota = (self.total_work / threads as u64).max(1);

        let shared = Rc::new(RefCell::new(MpShared::new(
            self.nodes,
            threads as u32,
            self.latency,
            self.seed,
        )));
        let mut cpus: Vec<Processor<NodePort>> = (0..self.nodes)
            .map(|n| {
                let mut cfg = ProcConfig::new(self.scheme, self.contexts_per_node);
                cfg.idle_skip = self.idle_skip;
                cfg.validate = self.validate;
                Processor::new(cfg, NodePort::new(n, shared.clone()))
            })
            .collect();
        for (node, cpu) in cpus.iter_mut().enumerate() {
            for ctx in 0..self.contexts_per_node {
                let thread = node * self.contexts_per_node + ctx;
                cpu.attach(
                    ctx,
                    Box::new(SplashThread::new(self.app.clone(), thread, threads, self.seed)),
                );
            }
        }

        let mut now = 0u64;
        let step = |cpus: &mut Vec<Processor<NodePort>>, now: &mut u64| {
            for cpu in cpus.iter_mut() {
                cpu.tick();
            }
            *now += 1;
            let wakes = shared.borrow_mut().sync.take_wakes();
            for (node, ctx) in wakes {
                if cpus[node].ctx_view(ctx).waiting_on == Some(WaitReason::Sync) {
                    cpus[node].wake_context(ctx);
                }
                // Otherwise the thread is spinning at issue (single-context
                // scheme) and will observe its reservation on retry.
            }
        };

        // Every cycle in which all node processors are idle can be
        // skipped in one jump: synchronization wakes are produced only by
        // processors issuing sync operations during `step`, so an
        // all-idle machine has no pending wakes to deliver cycle-by-cycle
        // and the lockstep clock may advance straight to the earliest
        // idle bound (clamped to the caller's boundary, preserving the
        // warmup reset and quota-check cycles exactly).
        let advance_to = |cpus: &mut Vec<Processor<NodePort>>, now: &mut u64, limit: u64| {
            while *now < limit {
                if self.idle_skip {
                    if let Some(t) = all_idle_target(cpus, *now, limit) {
                        for cpu in cpus.iter_mut() {
                            cpu.skip_idle_to(t);
                        }
                        *now = t;
                        continue;
                    }
                }
                step(cpus, now);
            }
        };

        // Machine-wide coherence checks are O(tracked lines), so they run
        // at chunk boundaries rather than per tick; per-tick processor
        // checks are enabled on each CPU via `cfg.validate` above.
        let check_machine = |now: u64| {
            if self.validate {
                if let Err(v) = shared.borrow().check_invariants(now) {
                    panic!("{v}");
                }
            }
        };

        // Warmup.
        advance_to(&mut cpus, &mut now, self.warmup_cycles);
        check_machine(now);
        for cpu in cpus.iter_mut() {
            cpu.reset_breakdown();
            for ctx in 0..self.contexts_per_node {
                cpu.reset_retired(ctx);
            }
        }
        shared.borrow_mut().reset_stats();

        let start = now;
        let safety = start + self.total_work.saturating_mul(400).max(20_000_000);
        let mut fault_pending = self.fault_at;
        loop {
            let chunk_end = now + 128;
            advance_to(&mut cpus, &mut now, chunk_end);
            if fault_pending.is_some_and(|t| now >= t) {
                fault_pending = None;
                // An illegal owner: no such node exists, so the directory
                // legality check must trip at the next boundary.
                shared.borrow_mut().directory_mut().corrupt_line_for_test(0x40, self.nodes + 5);
            }
            check_machine(now);
            let done = cpus
                .iter()
                .all(|cpu| (0..self.contexts_per_node).all(|ctx| cpu.retired(ctx) >= quota));
            if done {
                break;
            }
            assert!(now < safety, "multiprocessor run exceeded safety bound (livelock?)");
        }

        let breakdown: Breakdown = cpus.iter().map(|c| c.breakdown()).sum();
        let per_node: Vec<Breakdown> = cpus.iter().map(|c| c.breakdown().clone()).collect();
        let directory = *shared.borrow().directory().stats();
        let avg_mlp = shared.borrow().avg_mlp();
        let mut metrics = Registry::new();
        for cpu in &cpus {
            cpu.collect_metrics(&mut metrics);
        }
        shared.borrow().collect_metrics(&mut metrics);
        MpResult { cycles: now - start, breakdown, directory, threads, avg_mlp, per_node, metrics }
    }
}

/// Earliest cycle an all-idle machine may fast-forward to, capped at
/// `limit`, or `None` when some processor can still make progress (or the
/// jump is not worth more than one lockstep step). `External` bounds
/// (untimed sync waits) contribute nothing: with every processor idle no
/// wake can arrive before `limit`.
fn all_idle_target(cpus: &[Processor<NodePort>], now: u64, limit: u64) -> Option<u64> {
    let mut target = limit;
    for cpu in cpus {
        match cpu.idle_bound()? {
            IdleBound::Until(t) => target = target.min(t),
            IdleBound::External => {}
        }
    }
    (target > now + 1).then_some(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use interleave_stats::Category;

    fn quick(app: SplashProfile, scheme: Scheme, nodes: usize, ctxs: usize) -> MpResult {
        MpSim::builder(app)
            .scheme(scheme)
            .nodes(nodes)
            .contexts(ctxs)
            .work(24_000)
            .warmup(2_000)
            .build()
            .run()
    }

    #[test]
    fn builder_defaults_match_old_constructor() {
        #[allow(deprecated)]
        let old = MpSim::new(apps::water(), Scheme::Blocked, 4, 2);
        let new =
            MpSim::builder(apps::water()).scheme(Scheme::Blocked).nodes(4).contexts(2).build();
        assert_eq!(old.scheme, new.scheme);
        assert_eq!(old.nodes, new.nodes);
        assert_eq!(old.contexts_per_node, new.contexts_per_node);
        assert_eq!(old.total_work, new.total_work);
        assert_eq!(old.warmup_cycles, new.warmup_cycles);
        assert_eq!(old.seed, new.seed);
        assert_eq!(old.app.name, new.app.name);
        // And the runs they produce are bit-identical at a tiny scale.
        let shrink = |sim: MpSim| MpSim { total_work: 8_000, warmup_cycles: 500, ..sim };
        assert_eq!(shrink(old).run(), shrink(new).run());
    }

    #[test]
    fn water_completes_and_accounts() {
        let r = quick(apps::water(), Scheme::Interleaved, 4, 2);
        assert_eq!(r.threads, 8);
        assert!(r.cycles > 0);
        assert!(r.breakdown.get(Category::Busy) > 0);
        // All-processor cycles ≈ nodes × wall cycles (within the final
        // chunk granularity).
        let per_cpu = r.breakdown.total() / 4;
        assert!(per_cpu >= r.cycles - 256 && per_cpu <= r.cycles);
    }

    #[test]
    fn communication_classes_observed() {
        let r = quick(apps::mp3d(), Scheme::Blocked, 4, 2);
        assert!(r.directory.remote > 0, "remote memory misses expected");
        assert!(r.directory.remote_cache > 0, "dirty interventions expected");
        assert!(r.directory.invalidations > 0, "invalidations expected");
    }

    #[test]
    fn sync_time_appears_for_lock_heavy_apps() {
        let r = quick(apps::cholesky(), Scheme::Interleaved, 4, 2);
        assert!(
            r.breakdown.get(Category::Sync) > 0,
            "cholesky's task-queue lock should produce sync stall time"
        );
    }

    #[test]
    fn multiple_contexts_speed_up_mp3d() {
        let one = quick(apps::mp3d(), Scheme::Single, 4, 1);
        let four = quick(apps::mp3d(), Scheme::Interleaved, 4, 4);
        assert!(
            four.cycles < one.cycles,
            "4-context interleaved ({}) should beat single ({})",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn per_node_breakdowns_are_balanced() {
        let r = quick(apps::ocean(), Scheme::Interleaved, 4, 2);
        assert_eq!(r.per_node.len(), 4);
        let busies: Vec<u64> = r.per_node.iter().map(|b| b.get(Category::Busy)).collect();
        let min = *busies.iter().min().unwrap();
        let max = *busies.iter().max().unwrap();
        assert!(min > 0);
        assert!(
            max < min * 3,
            "data-parallel work should be roughly balanced across nodes: {busies:?}"
        );
    }

    #[test]
    fn metrics_cover_directory_latency_and_cycles() {
        let r = quick(apps::mp3d(), Scheme::Interleaved, 4, 2);
        assert_eq!(r.metrics.counter_value("mp.dir.remote"), Some(r.directory.remote));
        assert_eq!(r.metrics.counter_value("mp.dir.local"), Some(r.directory.local));
        let lat = r.metrics.histogram_value("mp.latency.remote").expect("remote latencies");
        assert!(lat.count() > 0);
        assert!(lat.min() >= 1, "unloaded latency is at least one cycle");
        // cycles.* counters are the sum over all node processors, like the
        // aggregate breakdown.
        assert_eq!(r.metrics.counter_value("cycles.busy"), Some(r.breakdown.get(Category::Busy)));
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(apps::locus(), Scheme::Interleaved, 2, 2);
        let b = quick(apps::locus(), Scheme::Interleaved, 2, 2);
        assert_eq!(a.cycles, b.cycles);
    }
}
