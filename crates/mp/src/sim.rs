use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use interleave_core::{IdleBound, ProcConfig, Processor, Scheme, WaitReason};
use interleave_engine::{
    lock, read_lock, run_sharded, write_lock, Hooks, QuantumSchedule, Quiescence, Segment, Shard,
};
use interleave_mem::CacheParams;
use interleave_obs::validate::Violation;
use interleave_obs::{profile, Histogram, Registry};
use interleave_stats::Breakdown;

use crate::node::{barrier_exchange, ShardPort, ShardState};
use crate::{Directory, DirectoryStats, LatencyModel, MissClass, SplashProfile, SplashThread};

/// Multiprocessor simulation driver (paper Section 5.2).
///
/// Runs one SPLASH-like application decomposed into `nodes ×
/// contexts_per_node` threads over the directory-coherent machine,
/// instantiating the `interleave-engine` quantum-barrier substrate: time
/// advances in conservative quanta of at most [`LatencyModel::lookahead`]
/// cycles; within a quantum every node's processor, cache, and port
/// advance independently (optionally on parallel host threads, see
/// [`MpSimBuilder::mp_jobs`]), classifying misses against the frozen
/// master directory; at the quantum barrier the logged directory
/// transactions replay in the deterministic order `(cycle, node, seq)`
/// and the resulting coherence and synchronization messages are routed
/// for delivery in later quanta. Because no cross-node message can be
/// due before the end of the quantum that produced it, results are
/// bit-identical for any `mp_jobs` value.
///
/// When the whole machine is provably quiescent — every processor idle,
/// no message due — the schedule widens quanta past the fixed lookahead
/// floor (see [`MpSimBuilder::adaptive`]), skipping barriers whose
/// exchanges would have been no-ops; this too is bit-invisible.
///
/// The run is fixed-work: it ends when every thread has retired its
/// share of `total_work` instructions, so execution time is directly
/// comparable across context counts (the basis of Table 10's speedups).
///
/// # Examples
///
/// ```
/// use interleave_core::Scheme;
/// use interleave_mp::{splash_suite, MpSim};
///
/// let sim = MpSim::builder(splash_suite()[1].clone())
///     .scheme(Scheme::Interleaved)
///     .nodes(4)
///     .contexts(2)
///     .work(8_000) // tiny run for the doctest
///     .warmup(500)
///     .build();
/// let r = sim.run();
/// assert!(r.cycles > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MpSim {
    /// The application.
    app: SplashProfile,
    /// Context scheduling scheme.
    scheme: Scheme,
    /// Number of nodes (processors).
    nodes: usize,
    /// Hardware contexts per processor (threads per node).
    contexts_per_node: usize,
    /// Total instructions of application work, split evenly over threads.
    total_work: u64,
    /// Cycles before statistics reset.
    warmup_cycles: u64,
    /// Latency model (Table 8).
    latency: LatencyModel,
    /// Seed for streams and latency sampling.
    seed: u64,
    /// Fast-forward cycles in which a shard's processor is idle.
    idle_skip: bool,
    /// Widen quanta across machine-wide quiescent stretches.
    adaptive: bool,
    /// Run the invariant checkers: per-tick processor checks plus
    /// machine-wide coherence checks at every 128-cycle chunk boundary.
    validate: bool,
    /// Deliberately corrupt the directory once the clock reaches this
    /// cycle (fault injection for the validation layer's own regression
    /// tests).
    fault_at: Option<u64>,
    /// Host worker threads advancing node shards between quantum
    /// barriers (1 = serial in the driver's own thread).
    mp_jobs: usize,
}

/// Builder for [`MpSim`]; obtained from [`MpSim::builder`].
///
/// Defaults (before any setter) are a single-context 8-node machine with
/// 400 000 instructions of total work, 20 000 warmup cycles, the
/// DASH-like latencies, the fixed default seed, a serial host driver
/// (`mp_jobs = 1`), and idle skipping plus adaptive lookahead enabled.
#[derive(Debug, Clone)]
pub struct MpSimBuilder {
    sim: MpSim,
}

impl MpSimBuilder {
    /// Context scheduling scheme (default [`Scheme::Single`]).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.sim.scheme = scheme;
        self
    }

    /// Number of nodes / processors (default 8).
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.sim.nodes = nodes;
        self
    }

    /// Hardware contexts per processor (default 1).
    pub fn contexts(mut self, contexts_per_node: usize) -> Self {
        self.sim.contexts_per_node = contexts_per_node;
        self
    }

    /// Total instructions of application work (default 400 000).
    pub fn work(mut self, total_work: u64) -> Self {
        self.sim.total_work = total_work;
        self
    }

    /// Warmup cycles before statistics reset (default 20 000).
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.sim.warmup_cycles = cycles;
        self
    }

    /// Latency model (default [`LatencyModel::dash_like`]).
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.sim.latency = latency;
        self
    }

    /// Seed for streams and latency sampling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Fast-forward cycles in which a shard's processor is idle (default
    /// true). Purely a host-throughput optimisation — results are
    /// bit-identical with it on or off.
    pub fn idle_skip(mut self, enabled: bool) -> Self {
        self.sim.idle_skip = enabled;
        self
    }

    /// Widen quanta past the fixed lookahead floor across stretches the
    /// machine is provably quiescent — every processor idle, no message
    /// due — skipping barriers whose exchanges would have replayed and
    /// routed nothing (default true). The widened quantum still ends on
    /// the fixed schedule's barrier grid, so results are bit-identical
    /// with it on or off, at every `mp_jobs` value; purely a
    /// host-throughput optimisation for sync- or latency-bound phases.
    pub fn adaptive(mut self, enabled: bool) -> Self {
        self.sim.adaptive = enabled;
        self
    }

    /// Run the structural invariant checkers: per-tick processor checks
    /// plus directory/sync coherence checks at every 128-cycle chunk
    /// boundary, panicking with a report naming the cycle, context, and
    /// replay seed on violation. Defaults to
    /// [`interleave_obs::validate::default_enabled`].
    pub fn validate(mut self, enabled: bool) -> Self {
        self.sim.validate = enabled;
        self
    }

    /// Host worker threads advancing node shards in parallel between
    /// conservative quantum barriers (default 1 = serial). Clamped to
    /// the node count. Purely a host-throughput knob: results are
    /// bit-identical for every value.
    pub fn mp_jobs(mut self, jobs: usize) -> Self {
        self.sim.mp_jobs = jobs;
        self
    }

    /// Corrupts the directory once the clock reaches `cycle`. Fault
    /// injection for the validation layer's regression tests only.
    #[doc(hidden)]
    pub fn inject_directory_fault_at(mut self, cycle: u64) -> Self {
        self.sim.fault_at = Some(cycle);
        self
    }

    /// Finalizes the simulation.
    pub fn build(self) -> MpSim {
        self.sim
    }
}

/// Results of one multiprocessor run.
#[derive(Debug, Clone, PartialEq)]
pub struct MpResult {
    /// Measured cycles until every thread finished its share.
    pub cycles: u64,
    /// Execution-time breakdown summed over all node processors.
    pub breakdown: Breakdown,
    /// Directory/protocol statistics.
    pub directory: DirectoryStats,
    /// Threads simulated.
    pub threads: usize,
    /// Average outstanding misses observed at miss time (memory-level
    /// parallelism indicator).
    pub avg_mlp: f64,
    /// Per-node execution-time breakdowns (load-balance inspection).
    pub per_node: Vec<Breakdown>,
    /// Instrumentation registry: per-node processor metrics summed over
    /// all nodes (counters add, histograms merge) plus machine-level
    /// `mp.dir.*`, `mp.latency.*`, and `mp.sync.*` metrics. Event
    /// counters accumulate from cycle zero; `cycles.*` and `mp.dir.*`
    /// mirror the warmup-reset statistics.
    pub metrics: Registry,
}

impl MpSim {
    /// Starts building a simulation of `app` with default work sizes and
    /// the DASH-like latencies (see [`MpSimBuilder`]).
    pub fn builder(app: SplashProfile) -> MpSimBuilder {
        MpSimBuilder {
            sim: MpSim {
                app,
                scheme: Scheme::Single,
                nodes: 8,
                contexts_per_node: 1,
                total_work: 400_000,
                warmup_cycles: 20_000,
                latency: LatencyModel::dash_like(),
                seed: 0x19941004,
                idle_skip: true,
                adaptive: true,
                validate: interleave_obs::validate::default_enabled(),
                fault_at: None,
                mp_jobs: 1,
            },
        }
    }

    /// The application being run.
    pub fn app(&self) -> &SplashProfile {
        &self.app
    }

    /// Context scheduling scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Number of nodes (processors).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Hardware contexts per processor.
    pub fn contexts_per_node(&self) -> usize {
        self.contexts_per_node
    }

    /// Total instructions of application work.
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// Warmup cycles before statistics reset.
    pub fn warmup_cycles(&self) -> u64 {
        self.warmup_cycles
    }

    /// Seed for streams and latency sampling.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Host worker threads requested for the parallel driver.
    pub fn mp_jobs(&self) -> usize {
        self.mp_jobs
    }

    /// Whether adaptive lookahead widening is enabled.
    pub fn adaptive(&self) -> bool {
        self.adaptive
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent configuration, on an invariant violation
    /// when validation is enabled, or if the run exceeds an internal
    /// safety bound (livelock).
    pub fn run(&self) -> MpResult {
        self.app.validate();
        assert!(self.nodes >= 1, "need at least one node");
        let threads = self.nodes * self.contexts_per_node;
        let quota = (self.total_work / threads as u64).max(1);
        let hop = self.latency.lookahead();
        let contexts = self.contexts_per_node;

        let line_size = CacheParams::primary_data().line;
        let master = Arc::new(RwLock::new(Directory::new(self.nodes, line_size)));
        let states: Vec<Arc<Mutex<ShardState>>> = (0..self.nodes)
            .map(|n| Arc::new(Mutex::new(ShardState::new(n, contexts, threads as u32, hop))))
            .collect();
        let mut shards: Vec<NodeShard> = (0..self.nodes)
            .map(|n| {
                let mut cfg = ProcConfig::new(self.scheme, contexts);
                cfg.idle_skip = self.idle_skip;
                cfg.validate = self.validate;
                let port = ShardPort::new(
                    n,
                    self.nodes,
                    self.seed,
                    self.latency,
                    states[n].clone(),
                    master.clone(),
                );
                NodeShard {
                    cpu: Processor::new(cfg, port),
                    state: states[n].clone(),
                    contexts,
                    idle_skip: self.idle_skip,
                }
            })
            .collect();
        for (node, shard) in shards.iter_mut().enumerate() {
            for ctx in 0..contexts {
                let thread = node * contexts + ctx;
                shard.cpu.attach(
                    ctx,
                    Box::new(SplashThread::new(self.app.clone(), thread, threads, self.seed)),
                );
            }
        }

        // The barrier schedule is shared verbatim by the engine's serial
        // and threaded executors, so `mp_jobs` cannot influence results;
        // quanta of at most one lookahead (adaptively widened across
        // quiescent stretches, still on the fixed barrier grid), clipped
        // to the warmup boundary and to every 128-cycle validation chunk.
        let schedule = QuantumSchedule {
            hop,
            warmup: self.warmup_cycles,
            chunk: 128,
            safety_slack: self.total_work.saturating_mul(400).max(20_000_000),
            adaptive: self.adaptive,
        };
        let mut hooks = MachineHooks {
            sim: self,
            master: &master,
            states: &states,
            hop,
            eff_seq: 0,
            fault_pending: self.fault_at,
            quota,
        };
        let ((start, end), shards) =
            run_sharded(shards, self.mp_jobs, |exec| schedule.run(exec, &mut hooks));

        let cpus: Vec<Processor<ShardPort>> = shards.into_iter().map(|s| s.cpu).collect();
        let breakdown: Breakdown = cpus.iter().map(|c| c.breakdown()).sum();
        let per_node: Vec<Breakdown> = cpus.iter().map(|c| c.breakdown().clone()).collect();
        let directory = *read_lock(&master).stats();
        let mut metrics = Registry::new();
        for cpu in &cpus {
            cpu.collect_metrics(&mut metrics);
        }
        metrics.counter("mp.dir.local", directory.local);
        metrics.counter("mp.dir.remote", directory.remote);
        metrics.counter("mp.dir.remote_cache", directory.remote_cache);
        metrics.counter("mp.dir.upgrades", directory.upgrades);
        metrics.counter("mp.dir.invalidations", directory.invalidations);
        metrics.counter("mp.dir.writebacks", directory.writebacks);
        let mut merged: [Histogram; 4] = Default::default();
        let mut mlp = (0u64, 0u64);
        let mut sync_stats = (0u64, 0u64);
        for state in &states {
            let st = lock(state);
            for (h, shard) in merged.iter_mut().zip(st.latencies.iter()) {
                h.merge(shard);
            }
            mlp.0 += st.mlp_accum.0;
            mlp.1 += st.mlp_accum.1;
            sync_stats.0 += st.sync.waits();
            sync_stats.1 += st.sync.grants();
        }
        for class in MissClass::MISSES {
            let h = &merged[class.index()];
            if !h.is_empty() {
                metrics.histogram(&format!("mp.latency.{}", class.label()), h);
            }
        }
        metrics.counter("mp.sync.waits", sync_stats.0);
        metrics.counter("mp.sync.grants", sync_stats.1);
        let avg_mlp = if mlp.1 == 0 { 0.0 } else { mlp.0 as f64 / mlp.1 as f64 };

        MpResult { cycles: end - start, breakdown, directory, threads, avg_mlp, per_node, metrics }
    }
}

/// One node as an engine shard: the processor plus a handle to the
/// node's locked [`ShardState`].
struct NodeShard {
    cpu: Processor<ShardPort>,
    state: Arc<Mutex<ShardState>>,
    contexts: usize,
    idle_skip: bool,
}

impl Shard for NodeShard {
    fn run_segment(&mut self, seg: Segment) {
        let _advance = profile::enter("mp.shard_advance");
        if seg.reset {
            self.cpu.reset_breakdown();
            for ctx in 0..self.contexts {
                self.cpu.reset_retired(ctx);
            }
        }
        advance_shard(&mut self.cpu, &self.state, seg.from, seg.to, self.contexts, self.idle_skip);
    }
}

/// The machine-level callbacks the engine schedule drives between
/// segments. All of them run on the driver thread while every worker is
/// parked at a barrier, so the shard locks are uncontended.
struct MachineHooks<'a> {
    sim: &'a MpSim,
    master: &'a RwLock<Directory>,
    states: &'a [Arc<Mutex<ShardState>>],
    hop: u64,
    /// Persistent sequence counter of the effect lanes (lives across
    /// barriers so effect keys never repeat while earlier effects are
    /// still queued).
    eff_seq: u64,
    fault_pending: Option<u64>,
    quota: u64,
}

impl Hooks for MachineHooks<'_> {
    fn exchange(&mut self, _now: u64) {
        barrier_exchange(self.master, self.states, self.hop, &mut self.eff_seq);
    }

    /// Machine-wide coherence checks are O(tracked lines), so they run
    /// at chunk boundaries rather than per tick; per-tick processor
    /// checks are enabled on each CPU via `cfg.validate`.
    fn check(&mut self, now: u64) -> Result<(), String> {
        if !self.sim.validate {
            return Ok(());
        }
        let fail = |v: Violation| v.with_seed(self.sim.seed).to_string();
        let dir = read_lock(self.master);
        dir.check_invariants(now).map_err(fail)?;
        // Cross-check: every copy the master tracks must actually be
        // cached by its node.
        let guards: Vec<MutexGuard<'_, ShardState>> = self.states.iter().map(|s| lock(s)).collect();
        let mut missing = None;
        dir.for_each_cached_copy(|line, node, dirty| {
            if missing.is_none() && (node >= self.sim.nodes || !guards[node].cache.probe(line)) {
                missing = Some((line, node, dirty));
            }
        });
        if let Some((line, node, dirty)) = missing {
            let state = if dirty { "dirty" } else { "shared" };
            return Err(fail(
                Violation::new(
                    "mp.directory",
                    "directory tracks a copy the node does not cache",
                    now,
                    format!("line {line:#x} recorded {state} at node {node}"),
                )
                .with_context(node),
            ));
        }
        for g in &guards {
            g.sync.check_invariants(now).map_err(fail)?;
        }
        Ok(())
    }

    fn begin_measurement(&mut self, _now: u64) {
        write_lock(self.master).reset_stats();
        for state in self.states {
            for h in &mut lock(state).latencies {
                h.reset();
            }
        }
    }

    fn chunk_boundary(&mut self, now: u64) {
        if self.fault_pending.is_some_and(|t| now >= t) {
            self.fault_pending = None;
            // An illegal owner: no such node exists, so the directory
            // legality check must trip at the next boundary.
            write_lock(self.master).corrupt_line_for_test(0x40, self.sim.nodes + 5);
        }
    }

    fn done(&mut self) -> bool {
        self.states.iter().all(|s| lock(s).retired.iter().all(|&r| r >= self.quota))
    }

    /// Folds every shard's published processor idle bound and earliest
    /// queued message into the machine-wide claim the adaptive schedule
    /// acts on. Reads only simulated state published at barriers, so the
    /// answer — and therefore the widened schedule — is identical at
    /// every `mp_jobs` value.
    fn quiescent(&mut self) -> Quiescence {
        let mut q = Quiescence::External;
        for state in self.states {
            let st = lock(state);
            q = q.also_idle(st.cpu_idle).also_due(st.next_due());
            if q == Quiescence::Active {
                break;
            }
        }
        q
    }
}

/// Advances one shard's processor from `from` to exactly `to`, applying
/// queued messages at their due cycles and skipping idle stretches (the
/// per-node reuse of the event-driven uniprocessor machinery: the jump
/// target is clamped to the segment end, the processor's own idle bound,
/// and the earliest queued message).
fn advance_shard(
    cpu: &mut Processor<ShardPort>,
    state: &Mutex<ShardState>,
    from: u64,
    to: u64,
    contexts: usize,
    idle_skip: bool,
) {
    debug_assert_eq!(cpu.now(), from);
    let mut wakes = Vec::new();
    loop {
        let now = cpu.now();
        if now >= to {
            break;
        }
        // One state lock per iteration: apply due messages, then read
        // the next due cycle to bound any idle jump.
        let next_due = {
            let mut st = lock(state);
            st.deliver_due(now, &mut wakes);
            st.next_due()
        };
        for ctx in wakes.drain(..) {
            if cpu.ctx_view(ctx).waiting_on == Some(WaitReason::Sync) {
                cpu.wake_context(ctx);
            }
            // Otherwise the context spins at issue and will observe its
            // token on retry.
        }
        if idle_skip {
            if let Some(bound) = cpu.idle_bound() {
                let mut target = to;
                if let IdleBound::Until(t) = bound {
                    target = target.min(t);
                }
                if let Some(due) = next_due {
                    target = target.min(due);
                }
                if target > now + 1 {
                    cpu.skip_idle_to(target);
                    continue;
                }
            }
        }
        cpu.tick();
    }
    // Publish retired counts and the idle bound for the driver's
    // barrier-time done-check and quiescence fold.
    let mut st = lock(state);
    for ctx in 0..contexts {
        st.retired[ctx] = cpu.retired(ctx);
    }
    st.cpu_idle = cpu.idle_bound();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps;
    use interleave_stats::Category;

    fn quick(app: SplashProfile, scheme: Scheme, nodes: usize, ctxs: usize) -> MpResult {
        MpSim::builder(app)
            .scheme(scheme)
            .nodes(nodes)
            .contexts(ctxs)
            .work(24_000)
            .warmup(2_000)
            .build()
            .run()
    }

    #[test]
    fn builder_defaults_are_stable() {
        // These defaults were pinned by the old `MpSim::new(app, scheme,
        // nodes, contexts)` constructor; the builder must keep them.
        let sim =
            MpSim::builder(apps::water()).scheme(Scheme::Blocked).nodes(4).contexts(2).build();
        assert_eq!(sim.scheme, Scheme::Blocked);
        assert_eq!(sim.nodes, 4);
        assert_eq!(sim.contexts_per_node, 2);
        assert_eq!(sim.total_work, 400_000);
        assert_eq!(sim.warmup_cycles, 20_000);
        assert_eq!(sim.seed, 0x19941004);
        assert_eq!(sim.latency, LatencyModel::dash_like());
        assert_eq!(sim.mp_jobs, 1);
        assert!(sim.idle_skip);
        assert!(sim.adaptive);
        assert!(sim.fault_at.is_none());
    }

    #[test]
    fn water_completes_and_accounts() {
        let r = quick(apps::water(), Scheme::Interleaved, 4, 2);
        assert_eq!(r.threads, 8);
        assert!(r.cycles > 0);
        assert!(r.breakdown.get(Category::Busy) > 0);
        // All-processor cycles ≈ nodes × wall cycles (within the final
        // chunk granularity).
        let per_cpu = r.breakdown.total() / 4;
        assert!(per_cpu >= r.cycles - 256 && per_cpu <= r.cycles);
    }

    #[test]
    fn communication_classes_observed() {
        let r = quick(apps::mp3d(), Scheme::Blocked, 4, 2);
        assert!(r.directory.remote > 0, "remote memory misses expected");
        assert!(r.directory.remote_cache > 0, "dirty interventions expected");
        assert!(r.directory.invalidations > 0, "invalidations expected");
    }

    #[test]
    fn sync_time_appears_for_lock_heavy_apps() {
        let r = quick(apps::cholesky(), Scheme::Interleaved, 4, 2);
        assert!(
            r.breakdown.get(Category::Sync) > 0,
            "cholesky's task-queue lock should produce sync stall time"
        );
    }

    #[test]
    fn multiple_contexts_speed_up_mp3d() {
        let one = quick(apps::mp3d(), Scheme::Single, 4, 1);
        let four = quick(apps::mp3d(), Scheme::Interleaved, 4, 4);
        assert!(
            four.cycles < one.cycles,
            "4-context interleaved ({}) should beat single ({})",
            four.cycles,
            one.cycles
        );
    }

    #[test]
    fn per_node_breakdowns_are_balanced() {
        let r = quick(apps::ocean(), Scheme::Interleaved, 4, 2);
        assert_eq!(r.per_node.len(), 4);
        let busies: Vec<u64> = r.per_node.iter().map(|b| b.get(Category::Busy)).collect();
        let min = *busies.iter().min().unwrap();
        let max = *busies.iter().max().unwrap();
        assert!(min > 0);
        assert!(
            max < min * 3,
            "data-parallel work should be roughly balanced across nodes: {busies:?}"
        );
    }

    #[test]
    fn metrics_cover_directory_latency_and_cycles() {
        let r = quick(apps::mp3d(), Scheme::Interleaved, 4, 2);
        assert_eq!(r.metrics.counter_value("mp.dir.remote"), Some(r.directory.remote));
        assert_eq!(r.metrics.counter_value("mp.dir.local"), Some(r.directory.local));
        let lat = r.metrics.histogram_value("mp.latency.remote").expect("remote latencies");
        assert!(lat.count() > 0);
        assert!(lat.min() >= 1, "unloaded latency is at least one cycle");
        // cycles.* counters are the sum over all node processors, like the
        // aggregate breakdown.
        assert_eq!(r.metrics.counter_value("cycles.busy"), Some(r.breakdown.get(Category::Busy)));
    }

    #[test]
    fn deterministic_runs() {
        let a = quick(apps::locus(), Scheme::Interleaved, 2, 2);
        let b = quick(apps::locus(), Scheme::Interleaved, 2, 2);
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    fn mp_jobs_is_bit_invisible() {
        let run = |jobs: usize| {
            MpSim::builder(apps::water())
                .scheme(Scheme::Interleaved)
                .nodes(4)
                .contexts(2)
                .work(16_000)
                .warmup(1_000)
                .mp_jobs(jobs)
                .build()
                .run()
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
        assert_eq!(serial, run(64)); // clamped to the node count
    }

    #[test]
    fn idle_skip_is_bit_invisible_in_parallel() {
        let run = |skip: bool| {
            MpSim::builder(apps::cholesky())
                .scheme(Scheme::Interleaved)
                .nodes(4)
                .contexts(2)
                .work(8_000)
                .warmup(500)
                .mp_jobs(2)
                .idle_skip(skip)
                .build()
                .run()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn adaptive_lookahead_is_bit_invisible() {
        // Cholesky's lock contention produces the machine-wide quiescent
        // stretches adaptive widening exploits; turning it on (serial or
        // threaded) must not change a single bit of the result.
        let run = |adaptive: bool, jobs: usize| {
            MpSim::builder(apps::cholesky())
                .scheme(Scheme::Interleaved)
                .nodes(4)
                .contexts(2)
                .work(8_000)
                .warmup(500)
                .adaptive(adaptive)
                .mp_jobs(jobs)
                .build()
                .run()
        };
        let fixed = run(false, 1);
        assert_eq!(fixed, run(true, 1));
        assert_eq!(fixed, run(true, 2));
        assert_eq!(fixed, run(true, 4));
    }

    #[test]
    fn adaptive_composes_with_disabled_idle_skip() {
        // Quiescence is folded from published idle bounds even when
        // within-segment idle skipping is off; the two knobs must stay
        // independent and both bit-invisible.
        let run = |adaptive: bool| {
            MpSim::builder(apps::barnes())
                .scheme(Scheme::Blocked)
                .nodes(2)
                .contexts(2)
                .work(6_000)
                .warmup(500)
                .idle_skip(false)
                .adaptive(adaptive)
                .build()
                .run()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn odd_warmup_boundary_composes_with_quanta_and_chunks() {
        // 777 is neither a quantum (80) nor a chunk (128) multiple, so
        // the warmup reset lands inside both; the parallel schedule must
        // clip its segments to the same cycle the serial one does.
        let run = |jobs: usize| {
            MpSim::builder(apps::mp3d())
                .scheme(Scheme::Blocked)
                .nodes(2)
                .contexts(2)
                .work(6_000)
                .warmup(777)
                .mp_jobs(jobs)
                .build()
                .run()
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "out-of-range owner")]
    fn parallel_driver_propagates_validation_panics() {
        MpSim::builder(apps::water())
            .nodes(4)
            .contexts(1)
            .work(8_000)
            .warmup(500)
            .mp_jobs(4)
            .validate(true)
            .inject_directory_fault_at(1_000)
            .build()
            .run();
    }
}
