//! Property-based tests for the multiprocessor substrate: the directory
//! protocol must maintain coherence invariants under arbitrary access
//! interleavings, and the synchronization controller must preserve mutual
//! exclusion and never lose a waiter.

use interleave_core::SyncOutcome;
use interleave_isa::{SyncKind, SyncRef};
use interleave_mp::{Directory, MissClass, SyncController};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

#[derive(Debug, Clone, Copy)]
enum DirOp {
    Read { node: u8, line: u8 },
    Write { node: u8, line: u8 },
    Evict { node: u8, line: u8 },
}

fn dir_op(nodes: u8) -> impl Strategy<Value = DirOp> {
    prop_oneof![
        (0..nodes, any::<u8>()).prop_map(|(node, line)| DirOp::Read { node, line }),
        (0..nodes, any::<u8>()).prop_map(|(node, line)| DirOp::Write { node, line }),
        (0..nodes, any::<u8>()).prop_map(|(node, line)| DirOp::Evict { node, line }),
    ]
}

/// Reference coherence state per line.
#[derive(Debug, Clone, Default)]
struct RefLine {
    sharers: HashSet<u8>,
    dirty_owner: Option<u8>,
}

proptest! {
    /// Directory invariants: at most one dirty owner; sharers and owner
    /// sets evolve exactly as an invalidation protocol requires; miss
    /// classes match the line's prior state.
    #[test]
    fn directory_protocol_invariants(
        ops in proptest::collection::vec(dir_op(4), 1..250),
    ) {
        let nodes = 4u8;
        let mut dir = Directory::new(nodes as usize, 32);
        let mut model: HashMap<u8, RefLine> = HashMap::new();
        // Track which nodes are "caching" each line from the model's
        // point of view (the node-level caches are owned by MpShared in
        // production; here the model plays that role).
        for op in ops {
            match op {
                DirOp::Read { node, line } => {
                    let addr = u64::from(line) * 32;
                    let state = model.entry(line).or_default();
                    let cached_here =
                        state.sharers.contains(&node) || state.dirty_owner == Some(node);
                    if cached_here {
                        // Production code never issues directory reads for
                        // lines it already caches; skip as a hit.
                        continue;
                    }
                    let tx = dir.read(node as usize, addr);
                    match state.dirty_owner {
                        Some(owner) => {
                            prop_assert_eq!(tx.class, MissClass::RemoteCache);
                            prop_assert_eq!(tx.intervene, Some(owner as usize));
                            state.sharers.insert(owner);
                            state.dirty_owner = None;
                        }
                        None => {
                            let expect = if dir.home(addr) == node as usize {
                                MissClass::LocalMem
                            } else {
                                MissClass::RemoteMem
                            };
                            prop_assert_eq!(tx.class, expect);
                            prop_assert!(tx.intervene.is_none());
                        }
                    }
                    state.sharers.insert(node);
                }
                DirOp::Write { node, line } => {
                    let addr = u64::from(line) * 32;
                    let state = model.entry(line).or_default();
                    if state.dirty_owner == Some(node) {
                        continue; // write hit: no directory transaction
                    }
                    let cached = state.sharers.contains(&node);
                    let tx = dir.write(node as usize, addr, cached);
                    // Everyone else must be told to invalidate.
                    let mut expected: HashSet<u8> = state.sharers.clone();
                    if let Some(owner) = state.dirty_owner {
                        expected.insert(owner);
                    }
                    expected.remove(&node);
                    let got: HashSet<u8> = tx.invalidate.iter().map(|&n| n as u8).collect();
                    prop_assert_eq!(&got, &expected, "invalidation set for line {}", line);
                    state.sharers.clear();
                    state.dirty_owner = Some(node);
                    // The directory agrees there is exactly one holder.
                    prop_assert_eq!(dir.sharers(addr), 1);
                }
                DirOp::Evict { node, line } => {
                    let addr = u64::from(line) * 32;
                    let state = model.entry(line).or_default();
                    let dirty = state.dirty_owner == Some(node);
                    if dirty {
                        state.dirty_owner = None;
                    }
                    state.sharers.remove(&node);
                    dir.evict(node as usize, addr, dirty);
                }
            }
            // Global invariant: directory sharer count matches the model.
            for (&line, state) in &model {
                let addr = u64::from(line) * 32;
                let count =
                    state.sharers.len() + usize::from(state.dirty_owner.is_some());
                prop_assert_eq!(dir.sharers(addr), count, "line {} holder count", line);
            }
        }
    }

    /// Lock mutual exclusion and liveness: under arbitrary interleavings
    /// of acquire attempts and releases, at most one thread holds the lock
    /// and every waiter is eventually granted.
    #[test]
    fn locks_are_exclusive_and_fair(schedule in proptest::collection::vec(0usize..4, 4..200)) {
        let mut sync = SyncController::new(4);
        let acq = SyncRef { kind: SyncKind::LockAcquire, id: 9 };
        let rel = SyncRef { kind: SyncKind::LockRelease, id: 9 };
        // Each thread loops: try-acquire until granted, then release.
        let mut holding: Option<usize> = None;
        let mut granted_count = 0u32;
        for t in schedule {
            let who = (t, 0usize);
            match holding {
                Some(h) if h == t => {
                    sync.sync(who, rel);
                    holding = None;
                    // A release grants a waiter (if any) via a wake.
                    for (node, _) in sync.take_wakes() {
                        let woken = (node, 0usize);
                        prop_assert_eq!(
                            sync.sync(woken, acq),
                            SyncOutcome::Proceed,
                            "a woken waiter must be granted"
                        );
                        holding = Some(node);
                        granted_count += 1;
                    }
                }
                Some(_) => {
                    // Lock held by someone else: this thread must wait.
                    prop_assert_eq!(sync.sync(who, acq), SyncOutcome::Wait);
                }
                None => {
                    if sync.sync(who, acq) == SyncOutcome::Proceed {
                        holding = Some(t);
                        granted_count += 1;
                    }
                    // A Wait here means the lock is reserved for a woken
                    // thread that has not re-run yet — impossible in this
                    // schedule because wakes are consumed immediately.
                }
            }
        }
        prop_assert!(granted_count >= 1);
    }

    /// Barrier completeness: with arity N, an instance releases exactly
    /// when the Nth distinct thread arrives, and re-arrivals proceed.
    #[test]
    fn barriers_release_exactly_at_arity(order in Just(()).prop_flat_map(|_| {
        proptest::collection::vec(0usize..6, 6..30)
    })) {
        let arity = 6u32;
        let mut sync = SyncController::new(arity);
        let bar = |i: u32| SyncRef { kind: SyncKind::BarrierArrive, id: i };
        let mut arrived: HashSet<usize> = HashSet::new();
        let mut released = false;
        for t in order {
            if released {
                break;
            }
            let outcome = sync.sync((t, 0), bar(0));
            arrived.insert(t);
            if arrived.len() == arity as usize {
                prop_assert_eq!(outcome, SyncOutcome::Proceed, "last arriver proceeds");
                let woken: HashSet<usize> =
                    sync.take_wakes().into_iter().map(|(n, _)| n).collect();
                prop_assert_eq!(woken.len(), arity as usize - 1);
                released = true;
            } else if arrived.contains(&t) && outcome == SyncOutcome::Proceed {
                // A re-arrival before release must not proceed...
                // unless it is a duplicate of an already-waiting thread:
                // those wait again.
                prop_assert!(false, "barrier released early for thread {t}");
            }
        }
        if released {
            // Everyone re-arriving at the released instance proceeds.
            for t in 0..arity as usize {
                prop_assert_eq!(sync.sync((t, 0), bar(0)), SyncOutcome::Proceed);
            }
        }
    }
}
