use std::fmt;

/// A minimal aligned ASCII table, used by the benchmark harnesses to print
/// the paper's tables and figure series.
///
/// Columns are sized to their widest cell; the first column is
/// left-aligned, all others right-aligned (matching the paper's layout of
/// row labels followed by numbers).
///
/// # Examples
///
/// ```
/// use interleave_stats::Table;
///
/// let mut t = Table::new("Table 7: throughput increase");
/// t.headers(["Scheme", "IC", "DC"]);
/// t.row(["Interleaved", "1.18", "1.41"]);
/// let s = t.to_string();
/// assert!(s.contains("Interleaved"));
/// assert!(s.contains("Table 7"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title line.
    pub fn new(title: impl Into<String>) -> Table {
        Table { title: title.into(), headers: Vec::new(), rows: Vec::new() }
    }

    /// Sets the header row.
    pub fn headers<I, S>(&mut self, headers: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Appends a data row.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (headers first; cells quoted only when
    /// they contain commas or quotes). The title is not included.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            if row.is_empty() {
                continue;
            }
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.headers).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "{}", self.title)?;
        let render = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    write!(f, "{cell:<width$}")?;
                } else {
                    write!(f, "  {cell:>width$}")?;
                }
            }
            writeln!(f)
        };
        if !self.headers.is_empty() {
            render(f, &self.headers)?;
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_headers_rows() {
        let mut t = Table::new("T");
        t.headers(["a", "bbbb"]);
        t.row(["x", "1"]);
        t.row(["yy", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].contains("bbbb"));
        assert!(lines[2].starts_with('-'));
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn columns_align() {
        let mut t = Table::new("T");
        t.headers(["name", "v"]);
        t.row(["a", "100"]);
        t.row(["bb", "9"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        // Numeric column right-aligned: "9" ends at same offset as "100".
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_string(), "empty\n");
    }

    #[test]
    fn csv_export() {
        let mut t = Table::new("T");
        t.headers(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "said \"hi\""]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"said \"\"hi\"\"\"");
    }

    #[test]
    fn csv_of_headerless_table_has_no_blank_line() {
        let mut t = Table::new("T");
        t.row(["a", "b"]);
        assert_eq!(t.to_csv(), "a,b\n");
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new("T");
        t.headers(["a", "b", "c"]);
        t.row(["only-one"]);
        let s = t.to_string();
        assert!(s.contains("only-one"));
    }
}
