//! Cycle attribution, execution-time breakdowns, and report rendering.
//!
//! The paper's evaluation (Figures 6–9, Tables 7 and 10) presents processor
//! time divided into categories: busy, pipeline-dependency stalls (short and
//! long), instruction-memory stalls, data-memory stalls, synchronization,
//! and context-switch overhead. This crate provides:
//!
//! * [`Category`] / [`Breakdown`] — per-cycle attribution counters,
//! * [`Table`] — a minimal aligned ASCII table renderer used by every
//!   benchmark harness to print the paper's tables and figure series,
//! * [`summary`] — geometric means, speedups, and formatting helpers.
//!
//! # Examples
//!
//! ```
//! use interleave_stats::{Breakdown, Category};
//!
//! let mut b = Breakdown::new();
//! b.record(Category::Busy, 70);
//! b.record(Category::DataMem, 30);
//! assert_eq!(b.total(), 100);
//! assert!((b.fraction(Category::Busy) - 0.7).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breakdown;
pub mod summary;
mod table;

pub use breakdown::{Breakdown, Category};
pub use table::Table;
