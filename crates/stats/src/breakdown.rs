use std::fmt;
use std::ops::{Add, AddAssign};

/// Where a processor cycle went.
///
/// One category is charged per processor cycle. The uniprocessor study
/// (Figures 6–7) reports `InstrShort + InstrLong` as a single "instruction
/// stall" bar; the multiprocessor study (Figures 8–9) separates them at the
/// paper's four-cycle boundary (the maximum FP add/sub/mult result hazard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// A useful instruction issued this cycle.
    Busy,
    /// Pipeline-dependency stall of four cycles or fewer.
    InstrShort,
    /// Pipeline-dependency stall of more than four cycles (e.g. waiting on
    /// a divide result).
    InstrLong,
    /// Stalled on instruction memory (I-cache or I-TLB miss).
    InstMem,
    /// Stalled on data memory (D-cache or D-TLB miss), or idle because every
    /// context is waiting on an outstanding data reference.
    DataMem,
    /// Waiting on interprocess synchronization (locks, barriers).
    Sync,
    /// Context-switch overhead: squashed instructions and pipeline-refill
    /// bubbles caused by making a context unavailable.
    Switch,
}

impl Category {
    /// Number of categories.
    pub const COUNT: usize = 7;

    /// All categories, in display order.
    pub const ALL: [Category; Category::COUNT] = [
        Category::Busy,
        Category::InstrShort,
        Category::InstrLong,
        Category::InstMem,
        Category::DataMem,
        Category::Sync,
        Category::Switch,
    ];

    fn slot(self) -> usize {
        match self {
            Category::Busy => 0,
            Category::InstrShort => 1,
            Category::InstrLong => 2,
            Category::InstMem => 3,
            Category::DataMem => 4,
            Category::Sync => 5,
            Category::Switch => 6,
        }
    }

    /// Short label used in table headers.
    pub fn label(self) -> &'static str {
        match self {
            Category::Busy => "busy",
            Category::InstrShort => "instr(short)",
            Category::InstrLong => "instr(long)",
            Category::InstMem => "inst-mem",
            Category::DataMem => "data-mem",
            Category::Sync => "sync",
            Category::Switch => "switch",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-category cycle counters for one simulation run.
///
/// Supports the retroactive re-attribution the context-switch accounting
/// needs: when an already-issued instruction is squashed, its issue cycle is
/// moved from [`Category::Busy`] to [`Category::Switch`] via
/// [`Breakdown::transfer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Breakdown {
    counts: [u64; Category::COUNT],
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Breakdown {
        Breakdown::default()
    }

    /// Adds `n` cycles to `category`.
    pub fn record(&mut self, category: Category, n: u64) {
        self.counts[category.slot()] += n;
    }

    /// Cycles charged to `category`.
    pub fn get(&self, category: Category) -> u64 {
        self.counts[category.slot()]
    }

    /// Moves `n` cycles from one category to another.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` cycles are currently charged to `from`.
    pub fn transfer(&mut self, from: Category, to: Category, n: u64) {
        let src = &mut self.counts[from.slot()];
        assert!(*src >= n, "cannot move {n} cycles out of {from}: only {src} charged");
        *src -= n;
        self.counts[to.slot()] += n;
    }

    /// Moves up to `n` cycles from one category to another, saturating at
    /// what is actually charged to `from` (used when counters were reset
    /// while the charged work was still in flight). Returns the number of
    /// cycles moved.
    pub fn transfer_upto(&mut self, from: Category, to: Category, n: u64) -> u64 {
        let moved = n.min(self.counts[from.slot()]);
        self.counts[from.slot()] -= moved;
        self.counts[to.slot()] += moved;
        moved
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of total cycles charged to `category` (0.0 if empty).
    pub fn fraction(&self, category: Category) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(category) as f64 / total as f64
        }
    }

    /// Fractions for all categories in [`Category::ALL`] order.
    pub fn fractions(&self) -> [f64; Category::COUNT] {
        let mut out = [0.0; Category::COUNT];
        for (slot, category) in Category::ALL.iter().enumerate() {
            out[slot] = self.fraction(*category);
        }
        out
    }

    /// Combined instruction-stall cycles (short + long), as reported by the
    /// uniprocessor figures.
    pub fn instr_stall(&self) -> u64 {
        self.get(Category::InstrShort) + self.get(Category::InstrLong)
    }
}

impl Add for Breakdown {
    type Output = Breakdown;

    fn add(mut self, rhs: Breakdown) -> Breakdown {
        self += rhs;
        self
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts) {
            *a += b;
        }
    }
}

impl<'a> std::iter::Sum<&'a Breakdown> for Breakdown {
    fn sum<I: Iterator<Item = &'a Breakdown>>(iter: I) -> Breakdown {
        let mut acc = Breakdown::new();
        for b in iter {
            acc += b.clone();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut b = Breakdown::new();
        b.record(Category::Busy, 10);
        b.record(Category::Switch, 5);
        assert_eq!(b.total(), 15);
        assert_eq!(b.get(Category::Busy), 10);
    }

    #[test]
    fn transfer_moves_cycles() {
        let mut b = Breakdown::new();
        b.record(Category::Busy, 10);
        b.transfer(Category::Busy, Category::Switch, 4);
        assert_eq!(b.get(Category::Busy), 6);
        assert_eq!(b.get(Category::Switch), 4);
        assert_eq!(b.total(), 10);
    }

    #[test]
    #[should_panic]
    fn transfer_overdraw_panics() {
        let mut b = Breakdown::new();
        b.record(Category::Busy, 1);
        b.transfer(Category::Busy, Category::Switch, 2);
    }

    #[test]
    fn transfer_upto_saturates() {
        let mut b = Breakdown::new();
        b.record(Category::Busy, 2);
        assert_eq!(b.transfer_upto(Category::Busy, Category::Switch, 5), 2);
        assert_eq!(b.get(Category::Busy), 0);
        assert_eq!(b.get(Category::Switch), 2);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut b = Breakdown::new();
        for (i, c) in Category::ALL.iter().enumerate() {
            b.record(*c, (i as u64 + 1) * 3);
        }
        let sum: f64 = b.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(Breakdown::new().fraction(Category::Busy), 0.0);
    }

    #[test]
    fn sum_and_add() {
        let mut a = Breakdown::new();
        a.record(Category::Busy, 3);
        let mut b = Breakdown::new();
        b.record(Category::Busy, 4);
        b.record(Category::Sync, 1);
        let all = [a.clone(), b.clone()];
        let merged: Breakdown = all.iter().sum();
        assert_eq!(merged.get(Category::Busy), 7);
        assert_eq!(merged.get(Category::Sync), 1);
        assert_eq!((a + b).total(), 8);
    }

    #[test]
    fn instr_stall_combines_short_and_long() {
        let mut b = Breakdown::new();
        b.record(Category::InstrShort, 2);
        b.record(Category::InstrLong, 5);
        assert_eq!(b.instr_stall(), 7);
    }

    #[test]
    fn labels_are_unique() {
        for (i, a) in Category::ALL.iter().enumerate() {
            for b in &Category::ALL[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
    }
}
