//! Summary statistics and formatting helpers for the report harnesses.

/// Geometric mean of a slice of positive values.
///
/// The paper summarizes per-workload throughput gains with a geometric mean
/// (Table 7). Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Examples
///
/// ```
/// let m = interleave_stats::summary::geometric_mean(&[1.0, 4.0]).unwrap();
/// assert!((m - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Arithmetic mean; `None` for an empty slice.
pub fn arithmetic_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Speedup of `new` relative to `baseline` in cycles (baseline / new).
///
/// # Panics
///
/// Panics if `new_cycles` is zero.
pub fn speedup(baseline_cycles: u64, new_cycles: u64) -> f64 {
    assert!(new_cycles > 0, "speedup denominator must be non-zero");
    baseline_cycles as f64 / new_cycles as f64
}

/// Formats a throughput ratio like the paper's Table 7 entries (e.g. `1.22`).
pub fn fmt_ratio(ratio: f64) -> String {
    format!("{ratio:.2}")
}

/// Formats a throughput increase as a percentage (e.g. `+22%`).
pub fn fmt_gain_pct(ratio: f64) -> String {
    format!("{:+.0}%", (ratio - 1.0) * 100.0)
}

/// Formats a fraction as a percentage with no decimals (e.g. `63%`).
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.0}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basic() {
        assert!((geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        let single = geometric_mean(&[3.5]).unwrap();
        assert!((single - 3.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn geomean_rejects_nonpositive() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn arithmetic_mean_basic() {
        assert_eq!(arithmetic_mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(arithmetic_mean(&[]), None);
    }

    #[test]
    fn speedup_basic() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
        assert!((speedup(100, 200) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn speedup_zero_denominator() {
        let _ = speedup(10, 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ratio(1.2249), "1.22");
        assert_eq!(fmt_gain_pct(1.5), "+50%");
        assert_eq!(fmt_gain_pct(0.97), "-3%");
        assert_eq!(fmt_pct(0.634), "63%");
    }
}
