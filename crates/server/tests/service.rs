//! End-to-end service tests over real sockets: wire-protocol
//! round-trip vs an in-process `Runner` (IEEE-754-exact), cache
//! dedupe/discrimination at the job level, admission control, the
//! events stream, and malformed-request handling.

use std::sync::Arc;
use std::time::Duration;

use interleave_bench::{artifact_spec, checkpoint, ResultCache, Runner, Scale};
use interleave_obs::json::{self, Value};
use interleave_server::{client, Server, ServerConfig};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ilv_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(cache_dir: Option<std::path::PathBuf>, workers: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_depth: 8,
        workers,
        cache_dir,
        status_dir: None,
    }
}

/// Boots a server on an ephemeral port; returns its authority and the
/// run-thread handle (joined by [`stop`]).
fn start(config: ServerConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn stop(addr: &str, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    client::post(addr, "/shutdown", "").expect("shutdown accepted");
    handle.join().expect("server thread").expect("clean exit");
}

fn submit(addr: &str, body: &str) -> Value {
    let resp = client::post(addr, "/jobs", body).expect("submit");
    assert_eq!(resp.status, 202, "{}", resp.body);
    json::parse(&resp.body).expect("status document parses")
}

fn wait_done(addr: &str, id: u64) -> Value {
    for _ in 0..1200 {
        let resp = client::get(addr, &format!("/jobs/{id}")).expect("poll");
        assert_eq!(resp.status, 200, "{}", resp.body);
        let doc = json::parse(&resp.body).expect("status parses");
        match doc.get("state").and_then(Value::as_str) {
            Some("done") => return doc,
            Some("failed") => panic!("job {id} failed: {}", resp.body),
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    panic!("job {id} did not finish");
}

fn field_u64(doc: &Value, key: &str) -> u64 {
    doc.get(key).and_then(Value::as_u64).unwrap_or_else(|| panic!("missing {key}"))
}

/// Drops the volatile BENCH header lines (`unix_timestamp`, `jobs`,
/// `wall_ms`, `sim_cycles_per_sec`) exactly like
/// `scripts/determinism_gate.sh` before byte comparison.
fn strip_volatile(doc: &str) -> String {
    // Inline per-cell occurrences (`"wall_ms": 12, `) are substituted
    // out; whole-line header keys are dropped.
    fn strip_inline(line: &str, key: &str) -> String {
        let needle = format!("\"{key}\": ");
        let mut out = line.to_string();
        while let Some(start) = out.find(&needle) {
            let tail = &out[start + needle.len()..];
            let Some(comma) = tail.find(", ") else { break };
            out.replace_range(start..start + needle.len() + comma + 2, "");
        }
        out
    }
    doc.lines()
        .filter(|line| {
            !["\"unix_timestamp\":", "\"jobs\":", "\"wall_ms\":", "\"sim_cycles_per_sec\":"]
                .iter()
                .any(|key| line.trim_start().starts_with(key))
        })
        .map(|line| strip_inline(&strip_inline(line, "wall_ms"), "sim_cycles_per_sec"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn wire_round_trip_matches_in_process_runner_and_dedupes() {
    let cache_dir = temp_dir("wire");
    let (addr, handle) = start(config(Some(cache_dir.clone()), 1));

    let first = submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 42}");
    let id = field_u64(&first, "id");
    let done = wait_done(&addr, id);
    assert_eq!(field_u64(&done, "cached_cells"), 0, "fresh run computes every cell");
    let bench = client::get(&addr, &format!("/jobs/{id}/bench")).unwrap();
    let metrics = client::get(&addr, &format!("/jobs/{id}/metrics")).unwrap();
    assert_eq!((bench.status, metrics.status), (200, 200));

    // The served artifacts equal what an in-process Runner produces for
    // the identically resolved spec: METRICS byte-for-byte, BENCH with
    // the volatile header keys stripped.
    let spec = artifact_spec("smoke", Scale::Ci).unwrap().seeds([42]);
    let local = Runner::serial().run(&spec);
    assert_eq!(metrics.body, local.metrics_json(), "METRICS must be byte-identical");
    assert_eq!(strip_volatile(&bench.body), strip_volatile(&local.to_json()));

    // IEEE-754-exact: every served cell restores from the cache equal
    // (by exact PartialEq, f64s included) to the in-process result.
    for (cell, result) in &local.cells {
        let served = checkpoint::load(&cache_dir, &spec, cell).expect("cell was cached");
        assert_eq!(&served, result, "served cell must round-trip bit-for-bit");
    }

    // Resubmitting the same spec hits the cache for every cell and
    // serves byte-identical artifacts.
    let second = submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 42}");
    let second_id = field_u64(&second, "id");
    let second_done = wait_done(&addr, second_id);
    assert_eq!(
        field_u64(&second_done, "cached_cells"),
        field_u64(&second_done, "cells"),
        "every cell of the resubmit is served from the cache"
    );
    let bench2 = client::get(&addr, &format!("/jobs/{second_id}/bench")).unwrap();
    let metrics2 = client::get(&addr, &format!("/jobs/{second_id}/metrics")).unwrap();
    assert_eq!(metrics2.body, metrics.body, "cached METRICS must be byte-identical");
    assert_eq!(strip_volatile(&bench2.body), strip_volatile(&bench.body));

    // /stats sees the dedupe.
    let stats = client::get(&addr, "/stats").unwrap();
    let doc = json::parse(&stats.body).unwrap();
    assert_eq!(field_u64(&doc, "jobs_done"), 2);
    assert!(field_u64(&doc, "cache_hits") >= field_u64(&second_done, "cells"));
    assert!(doc.get("cache_hit_rate").and_then(Value::as_f64).unwrap() > 0.0);
    assert!(doc.get("served_metrics").is_some());

    stop(&addr, handle);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn cache_keys_discriminate_result_affecting_knobs() {
    let cache_dir = temp_dir("keys");
    let (addr, handle) = start(config(Some(cache_dir.clone()), 1));

    let seed_1 = field_u64(&submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 1}"), "id");
    wait_done(&addr, seed_1);
    // A result-affecting knob (the seed) must not collide: nothing is
    // served from the seed-1 entries.
    let seed_2 = field_u64(&submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 2}"), "id");
    let done = wait_done(&addr, seed_2);
    assert_eq!(field_u64(&done, "cached_cells"), 0, "a new seed must not hit the cache");
    // Bit-invisible host knobs must share entries: same seed, different
    // worker counts and lookahead policy, full cache hit.
    let retuned = submit(
        &addr,
        "{\"artifact\": \"smoke\", \"seed\": 1, \"jobs\": 2, \"mp_jobs\": 4, \
         \"adaptive\": false}",
    );
    let retuned_id = field_u64(&retuned, "id");
    let done = wait_done(&addr, retuned_id);
    assert_eq!(
        field_u64(&done, "cached_cells"),
        field_u64(&done, "cells"),
        "bit-invisible host knobs must share cache entries"
    );

    stop(&addr, handle);
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn malformed_requests_get_400_and_server_stays_up() {
    let (addr, handle) = start(config(None, 1));

    // Bad JSON: 400 with a parse-position (byte offset) message.
    let resp = client::post(&addr, "/jobs", "{ not json").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("byte"), "expected a parse position, got {}", resp.body);

    // Valid JSON, invalid spec: 400 naming the problem.
    for (body, needle) in [
        ("{\"artifact\": \"table99\"}", "unknown artifact"),
        ("{\"artifact\": \"smoke\", \"scale\": \"huge\"}", "scale"),
        ("{\"seed\": 4}", "artifact"),
        ("[]", "object"),
    ] {
        let resp = client::post(&addr, "/jobs", body).unwrap();
        assert_eq!(resp.status, 400, "{body} -> {}", resp.body);
        assert!(resp.body.contains(needle), "{body} -> {}", resp.body);
    }

    // Unknown routes / ids / methods.
    assert_eq!(client::get(&addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/jobs/999").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/jobs/zap").unwrap().status, 404);
    assert_eq!(client::post(&addr, "/jobs/1", "").unwrap().status, 405);
    // Artifacts of an unfinished job: 409, not a hang.
    let id = field_u64(&submit(&addr, "{\"artifact\": \"smoke\"}"), "id");
    let resp = client::get(&addr, &format!("/jobs/{id}/nope")).unwrap();
    assert_eq!(resp.status, 404);

    // After all of that abuse the server still serves.
    let health = client::get(&addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\": true"), "{}", health.body);

    stop(&addr, handle);
}

#[test]
fn admission_control_answers_429_with_retry_after() {
    // workers = 0: jobs queue but never drain, so the bound is exact
    // and deterministic.
    let (addr, handle) = start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_depth: 2,
        workers: 0,
        cache_dir: None,
        status_dir: None,
    });

    submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 1}");
    submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 2}");
    let resp = client::post(&addr, "/jobs", "{\"artifact\": \"smoke\", \"seed\": 3}").unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"), "429 must carry Retry-After");
    assert!(resp.body.contains("queue full"), "{}", resp.body);
    // Queued (never-run) jobs still report status.
    let status = client::get(&addr, "/jobs/1").unwrap();
    assert!(status.body.contains("\"state\": \"queued\""), "{}", status.body);
    let stats = client::get(&addr, "/stats").unwrap();
    assert_eq!(field_u64(&json::parse(&stats.body).unwrap(), "queued"), 2);

    stop(&addr, handle);
}

#[test]
fn events_stream_delivers_status_snapshots() {
    let (addr, handle) = start(config(None, 1));
    let id = field_u64(&submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 9}"), "id");

    let mut frames = Vec::new();
    client::stream_lines(&addr, &format!("/jobs/{id}/events"), |line| {
        frames.push(line.to_string());
        true
    })
    .expect("stream to completion");
    assert!(!frames.is_empty(), "at least one snapshot streams");
    for frame in &frames {
        let doc = json::parse(frame).expect("each frame is one complete JSON document");
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("interleave-status-v1"),
            "{frame}"
        );
        assert!(doc.get("done").and_then(Value::as_u64).is_some(), "{frame}");
    }
    let last = json::parse(frames.last().unwrap()).unwrap();
    assert_eq!(last.get("finished").and_then(Value::as_bool), Some(true));

    // Streaming an unknown job is a 404, not a hang.
    let err = client::stream_lines(&addr, "/jobs/999/events", |_| true).unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");

    stop(&addr, handle);
}

#[test]
fn served_job_equals_offline_sweep_through_shared_cache() {
    // The serve path and the offline sweep path share one cache
    // directory: a sweep primed offline is served entirely from cache,
    // proving the two paths resolve identical keys (spec × seed ×
    // version) — the byte-identity argument the shell smoke enforces
    // end to end.
    let cache_dir = temp_dir("shared");
    let spec = artifact_spec("smoke", Scale::Ci).unwrap().seeds([7]);
    let offline = Runner::serial().result_cache(Arc::new(ResultCache::new(&cache_dir))).run(&spec);
    assert_eq!(offline.resumed, 0);

    let (addr, handle) = start(config(Some(cache_dir.clone()), 1));
    let id = field_u64(&submit(&addr, "{\"artifact\": \"smoke\", \"seed\": 7}"), "id");
    let done = wait_done(&addr, id);
    assert_eq!(
        field_u64(&done, "cached_cells"),
        field_u64(&done, "cells"),
        "the offline sweep primed every cell the server needs"
    );
    let metrics = client::get(&addr, &format!("/jobs/{id}/metrics")).unwrap();
    assert_eq!(metrics.body, offline.metrics_json(), "served METRICS == offline METRICS");

    stop(&addr, handle);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
