//! Simulation-as-a-service: the `interleave-sim serve` daemon.
//!
//! A long-running HTTP/1.1 + JSON server on [`std::net::TcpListener`] —
//! hand-rolled on the workspace's own [`interleave_obs::json`], so the
//! workspace stays offline-buildable with zero new dependencies. Jobs
//! are the same experiment specs the CLI resolves: `POST /jobs`
//! enqueues onto a bounded queue with admission control (429 +
//! `Retry-After` when full), a worker pool drains it through
//! [`interleave_bench::Runner`], and results dedupe through the
//! content-addressed [`interleave_bench::ResultCache`] keyed by the
//! resolved-spec checkpoint hash (spec × seed × crate version).
//!
//! Determinism is the service contract: because the cache key hashes
//! only result-affecting configuration and the cached serialization
//! round-trips bit-for-bit, a cached response is byte-identical to a
//! fresh run, which is byte-identical to an offline `sweep` of the same
//! spec — enforced end-to-end by the serve smoke in `scripts/check.sh`
//! and the `serve-e2e` CI job.
//!
//! Endpoints:
//!
//! | Route                  | Meaning                                        |
//! |------------------------|------------------------------------------------|
//! | `POST /jobs`           | submit a spec; 202 + status, or 429 when full  |
//! | `GET /jobs/<id>`       | status/result summary                          |
//! | `GET /jobs/<id>/bench` | the `BENCH_*` document (when done)             |
//! | `GET /jobs/<id>/metrics` | the `METRICS_*` document (when done)         |
//! | `GET /jobs/<id>/events`| newline-delimited live `STATUS_*`-shaped JSON  |
//! | `GET /healthz`         | liveness + queue depth                         |
//! | `GET /stats`           | queue/cache/job counters + served-metrics fold |
//! | `POST /shutdown`       | drain workers and stop accepting               |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod job;

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use interleave_bench::{ResultCache, Runner};
use interleave_obs::json;
use interleave_obs::Registry;

use http::{Request, Response};
use job::{Job, JobPhase, JobRequest};

/// How the daemon is configured; every field has a CLI flag and an
/// `INTERLEAVE_*` environment fallback (see [`ServerConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// `host:port` to bind; port 0 picks an ephemeral port (the bound
    /// address is printed by the CLI for scripts to capture).
    pub addr: String,
    /// Jobs the pending queue admits before `POST /jobs` answers 429.
    pub queue_depth: usize,
    /// Worker threads draining the queue. `0` is a deliberate test
    /// hook: jobs queue but never run, making admission control
    /// deterministic to exercise.
    pub workers: usize,
    /// Content-addressed result-cache directory (`None` = no caching).
    pub cache_dir: Option<PathBuf>,
    /// Per-job `STATUS_*.json` mirror root (`None` = bus-only
    /// telemetry). Job `N` writes under `<dir>/job<N>/`.
    pub status_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:4994".into(),
            queue_depth: 64,
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4),
            cache_dir: None,
            status_dir: None,
        }
    }
}

impl ServerConfig {
    /// The default configuration with `INTERLEAVE_ADDR`,
    /// `INTERLEAVE_QUEUE_DEPTH`, and `INTERLEAVE_CACHE_DIR` applied.
    pub fn from_env() -> ServerConfig {
        let mut config = ServerConfig::default();
        if let Ok(addr) = std::env::var("INTERLEAVE_ADDR") {
            config.addr = addr;
        }
        if let Some(depth) =
            std::env::var("INTERLEAVE_QUEUE_DEPTH").ok().and_then(|v| v.parse::<usize>().ok())
        {
            config.queue_depth = depth.max(1);
        }
        if let Ok(dir) = std::env::var("INTERLEAVE_CACHE_DIR") {
            config.cache_dir = Some(PathBuf::from(dir));
        }
        config
    }
}

/// Shared state behind the accept loop, the worker pool, and every
/// connection thread.
struct ServerState {
    addr: SocketAddr,
    queue_depth: usize,
    workers: usize,
    cache: Option<Arc<ResultCache>>,
    status_dir: Option<PathBuf>,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_changed: Condvar,
    jobs: Mutex<BTreeMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    jobs_running: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    shutdown: AtomicBool,
    /// Commutative fold of every served job's merged cell metrics —
    /// the `Registry` the `/stats` endpoint reports.
    served_metrics: Mutex<Registry>,
}

/// The daemon: a bound listener plus its shared state. Construct with
/// [`Server::bind`], then call [`Server::run`] (which blocks until a
/// `POST /shutdown`).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the listener and prepares the shared state (no threads
    /// start until [`Server::run`]).
    ///
    /// # Errors
    ///
    /// Bind errors (address in use, bad address syntax).
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ServerState {
            addr,
            queue_depth: config.queue_depth.max(1),
            workers: config.workers,
            cache: config.cache_dir.map(|dir| Arc::new(ResultCache::new(dir))),
            status_dir: config.status_dir,
            queue: Mutex::new(VecDeque::new()),
            queue_changed: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(0),
            jobs_running: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            served_metrics: Mutex::new(Registry::new()),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0 to the actual ephemeral
    /// port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until shut down: spawns the worker pool, accepts
    /// connections (one short-lived thread each), and joins the workers
    /// after `POST /shutdown` flips the flag.
    ///
    /// # Errors
    ///
    /// Fatal listener errors; per-connection errors are handled on the
    /// connection thread.
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.state.workers)
            .map(|_| {
                let state = Arc::clone(&self.state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();
        for connection in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match connection {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || handle_connection(&state, stream));
                }
                Err(e) => eprintln!("serve: accept error: {e}"),
            }
        }
        self.state.queue_changed.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// One worker: pops jobs and sweeps them until shutdown. Waits with a
/// timeout so a shutdown raised between publishes is never missed.
fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state
                    .queue_changed
                    .wait_timeout(queue, Duration::from_millis(250))
                    .expect("queue lock")
                    .0;
            }
        };
        run_job(state, &job);
    }
}

/// Executes one job on a [`Runner`] wired to the job's bus and the
/// server's shared result cache.
fn run_job(state: &ServerState, job: &Arc<Job>) {
    job.set_phase(JobPhase::Running);
    state.jobs_running.fetch_add(1, Ordering::Relaxed);
    let mut runner = Runner::new(job.request.jobs.unwrap_or(1).min(job::MAX_JOBS_PER_REQUEST))
        .with_bus(job.bus.clone());
    if let Some(cache) = &state.cache {
        runner = runner.result_cache(Arc::clone(cache));
    }
    if let Some(dir) = &state.status_dir {
        runner = runner.status_dir(dir.join(format!("job{}", job.id)));
    }
    // A panicking cell must fail the job, not the worker thread: the
    // daemon stays up and keeps serving the queue.
    let swept = catch_unwind(AssertUnwindSafe(|| runner.run(&job.spec)));
    state.jobs_running.fetch_sub(1, Ordering::Relaxed);
    match swept {
        Ok(sweep) => {
            let mut served = state.served_metrics.lock().expect("served metrics lock");
            for (_, result) in &sweep.cells {
                served.merge(result.metrics());
            }
            drop(served);
            job.set_phase(JobPhase::Done(Box::new(job::JobOutput {
                bench_json: sweep.to_json(),
                metrics_json: sweep.metrics_json(),
                cells: sweep.cells.len(),
                cached_cells: sweep.resumed,
                wall_ms: u64::try_from(sweep.wall.as_millis()).unwrap_or(u64::MAX),
                sim_cycles: sweep.cells.iter().map(|(_, r)| r.cycles()).sum(),
            })));
            state.jobs_done.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            job.set_phase(JobPhase::Failed("sweep panicked on the worker".into()));
            state.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Reads one request off the connection, routes it, and writes the
/// response. Protocol errors answer 400; the connection always closes
/// afterwards (`Connection: close` framing throughout).
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let request = match http::read_request(&mut reader) {
        Ok(request) => request,
        Err(e) => {
            let _ = Response::error(400, &format!("malformed request: {e}")).write_to(&mut stream);
            return;
        }
    };
    // The events stream writes its own frames and keeps the connection
    // open; everything else is a complete response document.
    if let Some(id) = request
        .path
        .strip_prefix("/jobs/")
        .and_then(|rest| rest.strip_suffix("/events"))
        .and_then(|id| id.parse::<u64>().ok())
    {
        if request.method == "GET" {
            stream_events(state, id, &mut stream);
            return;
        }
    }
    let response = route(state, &request);
    let _ = response.write_to(&mut stream);
}

/// Dispatches one non-streaming request.
fn route(state: &Arc<ServerState>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/jobs") => submit(state, &request.body),
        ("GET", "/healthz") => healthz(state),
        ("GET", "/stats") => stats(state),
        ("POST", "/shutdown") => shutdown(state),
        (method, path) if path.starts_with("/jobs/") => {
            let rest = &path["/jobs/".len()..];
            let (id, tail) = match rest.split_once('/') {
                Some((id, tail)) => (id, Some(tail)),
                None => (rest, None),
            };
            let Ok(id) = id.parse::<u64>() else {
                return Response::error(404, &format!("bad job id `{id}`"));
            };
            if method != "GET" {
                return Response::error(405, "job routes are GET-only");
            }
            let Some(job) = state.jobs.lock().expect("jobs lock").get(&id).cloned() else {
                return Response::error(404, &format!("no job {id}"));
            };
            match tail {
                None => Response::json(200, job.status_json()),
                Some("bench") => artifact(&job, |out| out.bench_json.clone()),
                Some("metrics") => artifact(&job, |out| out.metrics_json.clone()),
                Some(other) => Response::error(404, &format!("no route /jobs/<id>/{other}")),
            }
        }
        ("GET", path) => Response::error(404, &format!("no route {path}")),
        (method, _) => Response::error(405, &format!("method {method} not supported")),
    }
}

/// `POST /jobs`: parse, validate, admission-control, enqueue.
fn submit(state: &Arc<ServerState>, body: &str) -> Response {
    // The parser reports byte offsets, so a malformed body gets a
    // parse-position message (e.g. "expected ',' or '}' at byte 17").
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let job_request = match JobRequest::from_value(&doc) {
        Ok(job_request) => job_request,
        Err(e) => return Response::error(400, &e),
    };
    // Resolve the spec before taking the queue lock (cheap, but no
    // reason to hold the lock for it) by constructing the job eagerly;
    // admission decides whether it gets an id and a slot.
    let mut queue = state.queue.lock().expect("queue lock");
    if queue.len() >= state.queue_depth {
        return Response::error(
            429,
            &format!("queue full ({} pending jobs); retry shortly", queue.len()),
        )
        .with_header("Retry-After", "1");
    }
    let id = state.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    let job = match Job::new(id, job_request) {
        Ok(job) => Arc::new(job),
        Err(e) => return Response::error(400, &e),
    };
    queue.push_back(Arc::clone(&job));
    drop(queue);
    state.jobs.lock().expect("jobs lock").insert(id, Arc::clone(&job));
    state.queue_changed.notify_one();
    Response::json(202, job.status_json())
}

/// `GET /jobs/<id>/bench|metrics`: the artifact document, once done.
fn artifact(job: &Job, pick: impl Fn(&job::JobOutput) -> String) -> Response {
    job.with_phase(|phase| match phase {
        JobPhase::Done(out) => Response::json(200, pick(out)),
        JobPhase::Failed(error) => Response::error(500, error),
        JobPhase::Queued | JobPhase::Running => Response::error(
            409,
            &format!("job {} is {}; artifacts appear once it is done", job.id, phase.name()),
        ),
    })
}

/// `GET /jobs/<id>/events`: stream newline-delimited status snapshots
/// from the job's bus until it finishes (or the client goes away).
fn stream_events(state: &Arc<ServerState>, id: u64, stream: &mut TcpStream) {
    let Some(job) = state.jobs.lock().expect("jobs lock").get(&id).cloned() else {
        let _ = Response::error(404, &format!("no job {id}")).write_to(stream);
        return;
    };
    if write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )
    .and_then(|()| stream.flush())
    .is_err()
    {
        return;
    }
    let mut subscriber = job.bus.subscribe();
    let mut pending = subscriber.latest();
    loop {
        if let Some(snapshot) = pending.take() {
            let finished = snapshot.finished;
            if writeln!(stream, "{}", snapshot.to_json_line())
                .and_then(|()| stream.flush())
                .is_err()
            {
                return;
            }
            if finished {
                return;
            }
        }
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        pending = subscriber.changed(Duration::from_millis(250));
        // A failed job never publishes a `finished` snapshot: end the
        // stream once the phase is terminal and nothing newer is
        // coming.
        if pending.is_none() && job.is_terminal() && !subscriber.has_changed() {
            return;
        }
    }
}

/// `GET /healthz`.
fn healthz(state: &ServerState) -> Response {
    let queued = state.queue.lock().expect("queue lock").len();
    Response::json(
        200,
        format!(
            "{{\"schema\": \"interleave-healthz-v1\", \"ok\": true, \"queued\": {queued}, \
             \"workers\": {}}}\n",
            state.workers
        ),
    )
}

/// `GET /stats`: queue depth, job counters, cache hit rate, and the
/// served-metrics registry fold.
fn stats(state: &ServerState) -> Response {
    let queued = state.queue.lock().expect("queue lock").len();
    let (cache_hits, cache_misses, cache_hit_rate) = match &state.cache {
        Some(cache) => (cache.hits(), cache.misses(), cache.hit_rate()),
        None => (0, 0, 0.0),
    };
    let served = state.served_metrics.lock().expect("served metrics lock").to_json_line();
    Response::json(
        200,
        format!(
            "{{\"schema\": \"interleave-stats-v1\", \"queued\": {queued}, \
             \"queue_depth\": {}, \"workers\": {}, \"jobs_submitted\": {}, \
             \"jobs_running\": {}, \"jobs_done\": {}, \"jobs_failed\": {}, \
             \"cache_enabled\": {}, \"cache_hits\": {cache_hits}, \
             \"cache_misses\": {cache_misses}, \"cache_hit_rate\": {cache_hit_rate:.4}, \
             \"served_metrics\": {served}}}\n",
            state.queue_depth,
            state.workers,
            state.next_id.load(Ordering::SeqCst),
            state.jobs_running.load(Ordering::Relaxed),
            state.jobs_done.load(Ordering::Relaxed),
            state.jobs_failed.load(Ordering::Relaxed),
            state.cache.is_some(),
        ),
    )
}

/// `POST /shutdown`: flip the flag, then self-connect to pop the
/// accept loop out of `accept()` so `run` can join the workers. No
/// orphan listener survives: the loop exits and the socket closes with
/// the process.
fn shutdown(state: &Arc<ServerState>) -> Response {
    state.shutdown.store(true, Ordering::SeqCst);
    state.queue_changed.notify_all();
    let _ = TcpStream::connect(state.addr);
    Response::json(200, "{\"ok\": true, \"shutting_down\": true}\n")
}
