//! Minimal hand-rolled HTTP/1.1 framing.
//!
//! Just enough of the protocol for the serve daemon and its CLI
//! clients: one request per connection (every response carries
//! `Connection: close`), `Content-Length` bodies only (no chunked
//! encoding), and bounded head/body sizes so a misbehaving peer cannot
//! balloon memory. Anything outside that envelope is rejected with a
//! parse error that the connection handler turns into a `400`.

use std::io::{self, BufRead, Write};

/// Maximum bytes accepted for the request line plus headers.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum bytes accepted for a request body (a spec JSON is < 1 KB).
const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request path including any query string, as sent.
    pub path: String,
    /// Headers with names lowercased and values trimmed.
    pub headers: Vec<(String, String)>,
    /// Decoded UTF-8 body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads and parses one request from `reader`.
///
/// # Errors
///
/// I/O errors pass through; protocol violations (malformed request
/// line or header, oversized head/body, non-UTF-8 body) surface as
/// [`io::ErrorKind::InvalidData`] with a human-readable message.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Request> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(invalid("empty request"));
    }
    let mut total = line.len();
    let mut parts = line.trim_end().split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).ok_or_else(|| invalid("missing method"))?;
    let path = parts.next().ok_or_else(|| invalid("missing request path"))?;
    let version = parts.next().ok_or_else(|| invalid("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported protocol version `{version}`")));
    }
    let (method, path) = (method.to_string(), path.to_string());
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(invalid("connection closed inside headers"));
        }
        total += header.len();
        if total > MAX_HEAD {
            return Err(invalid("request head too large"));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(invalid(format!("malformed header line `{trimmed}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => {
            v.parse::<usize>().map_err(|_| invalid(format!("bad Content-Length `{v}`")))?
        }
    };
    if length > MAX_BODY {
        return Err(invalid(format!("body of {length} bytes exceeds the {MAX_BODY} cap")));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;
    Ok(Request { method, path, headers, body })
}

/// One HTTP response: status, extra headers, and a complete body
/// (streaming endpoints write their own frames instead).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    /// A JSON response (`Content-Type: application/json`).
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// A JSON error response with the message under an `"error"` key.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            format!("{{\"error\": {}}}\n", interleave_obs::json::escape(message)),
        )
    }

    /// Appends a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// The response body (tests inspect it).
    pub fn body(&self) -> &str {
        &self.body
    }

    /// Serializes the response (status line, headers, `Content-Length`,
    /// `Connection: close`, body) onto `writer`.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        write!(writer, "HTTP/1.1 {} {}\r\n", self.status, reason(self.status))?;
        for (name, value) in &self.headers {
            write!(writer, "{name}: {value}\r\n")?;
        }
        write!(writer, "Content-Length: {}\r\nConnection: close\r\n\r\n", self.body.len())?;
        writer.write_all(self.body.as_bytes())?;
        writer.flush()
    }
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> io::Result<Request> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_get_and_post() {
        let get = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!((get.method.as_str(), get.path.as_str()), ("GET", "/healthz"));
        assert_eq!(get.header("host"), Some("x"));
        assert_eq!(get.body, "");

        let post = parse("POST /jobs HTTP/1.1\r\nContent-Length: 9\r\n\r\n{\"a\": 1}\n").unwrap();
        assert_eq!(post.method, "POST");
        assert_eq!(post.body, "{\"a\": 1}\n");
    }

    #[test]
    fn rejects_malformed_requests() {
        for (raw, why) in [
            ("", "empty"),
            ("GET\r\n\r\n", "no path"),
            ("GET /x SPDY/9\r\n\r\n", "bad version"),
            ("GET /x HTTP/1.1\r\nnocolon\r\n\r\n", "bad header"),
            ("POST /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n", "bad length"),
            ("POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", "truncated body"),
        ] {
            assert!(parse(raw).is_err(), "{why} should fail");
        }
    }

    #[test]
    fn caps_head_and_body() {
        let huge_header = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(MAX_HEAD));
        assert!(parse(&huge_header).is_err());
        let huge_body = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(parse(&huge_body).is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(200, "{}").with_header("Retry-After", "1").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
        let err = Response::error(429, "queue full");
        assert_eq!(err.body(), "{\"error\": \"queue full\"}\n");
    }
}
