//! Minimal HTTP client over [`std::net::TcpStream`] for the serve
//! daemon's own CLI (`submit`, `poll`, `watch`) and tests.
//!
//! Matches the server's framing: one request per connection, explicit
//! `Content-Length`, and newline-delimited streaming reads for the
//! `/jobs/<id>/events` endpoint.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One complete HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Headers with names lowercased and values trimmed.
    pub headers: Vec<(String, String)>,
    /// Full body.
    pub body: String,
}

impl HttpResponse {
    /// First header value for `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Splits an `http://host:port/path` URL into `(authority, path)`.
/// `None` for anything that is not a plain `http://` URL.
pub fn split_url(url: &str) -> Option<(&str, &str)> {
    let rest = url.strip_prefix("http://")?;
    let slash = rest.find('/').unwrap_or(rest.len());
    let (authority, path) = rest.split_at(slash);
    if authority.is_empty() {
        return None;
    }
    Some((authority, if path.is_empty() { "/" } else { path }))
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    // Generous guard rails so a wedged peer cannot hang a CLI client
    // forever; streaming reads override the read timeout themselves.
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    Ok(stream)
}

fn send_request(
    stream: &mut TcpStream,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<()> {
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

fn read_head(reader: &mut impl BufRead) -> io::Result<(u16, Vec<(String, String)>)> {
    let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    // Status line: `HTTP/1.1 200 OK`.
    let status = line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| invalid(format!("bad status line `{}`", line.trim_end())))?;
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(invalid("connection closed inside response headers".into()));
        }
        let trimmed = header.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(invalid(format!("malformed response header `{trimmed}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((status, headers))
}

/// Performs one request against `addr` (a `host:port` authority) and
/// reads the complete response.
///
/// # Errors
///
/// Connection, I/O, and malformed-response errors.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<HttpResponse> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, addr, method, path, body)?;
    let mut reader = BufReader::new(stream);
    let (status, headers) = read_head(&mut reader)?;
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let mut body = String::new();
    match length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            body = String::from_utf8(buf)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "body is not UTF-8"))?;
        }
        // `Connection: close` framing: the body runs to EOF.
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok(HttpResponse { status, headers, body })
}

/// `GET` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> io::Result<HttpResponse> {
    request(addr, "GET", path, None)
}

/// `POST` convenience wrapper around [`request`].
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: &str, path: &str, body: &str) -> io::Result<HttpResponse> {
    request(addr, "POST", path, Some(body))
}

/// Opens a streaming `GET` (e.g. `/jobs/<id>/events`) and calls
/// `on_line` for every newline-delimited frame until the callback
/// returns `false` or the server closes the stream. Returns the number
/// of frames delivered.
///
/// # Errors
///
/// Connection and I/O errors; a non-200 status surfaces as
/// [`io::ErrorKind::Other`] with the status and body in the message.
pub fn stream_lines(
    addr: &str,
    path: &str,
    mut on_line: impl FnMut(&str) -> bool,
) -> io::Result<usize> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, addr, "GET", path, None)?;
    // Streams idle between cells; wait patiently but not forever.
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    let mut reader = BufReader::new(stream);
    let (status, _) = read_head(&mut reader)?;
    if status != 200 {
        let mut body = String::new();
        let _ = reader.read_to_string(&mut body);
        return Err(io::Error::other(format!("HTTP {status}: {}", body.trim_end())));
    }
    let mut frames = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Ok(frames);
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        frames += 1;
        if !on_line(trimmed) {
            return Ok(frames);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_urls() {
        assert_eq!(
            split_url("http://127.0.0.1:4994/jobs/1/events"),
            Some(("127.0.0.1:4994", "/jobs/1/events"))
        );
        assert_eq!(split_url("http://host:1"), Some(("host:1", "/")));
        assert_eq!(split_url("https://x/y"), None);
        assert_eq!(split_url("http:///y"), None);
        assert_eq!(split_url("STATUS_smoke.json"), None);
    }
}
