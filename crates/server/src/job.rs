//! Job requests and lifecycle state for the serve daemon.
//!
//! A `POST /jobs` body is a [`JobRequest`]: the same artifact name and
//! knobs the `sweep` subcommand resolves, as JSON. It resolves through
//! [`interleave_bench::artifact_spec`] into exactly the grid the CLI
//! would run, so a job served over the wire and an offline sweep of the
//! same spec are the same computation — the foundation of the
//! byte-identity guarantee the determinism gates enforce.

use std::sync::Mutex;

use interleave_bench::{artifact_spec, ExperimentSpec, Scale, Snapshot};
use interleave_obs::bus::Watch;
use interleave_obs::json::{escape, Value};
use interleave_obs::Registry;

/// Host worker threads a single job may claim (`"jobs"` knob cap): a
/// queue full of greedy requests must not oversubscribe the machine,
/// and results are bit-identical at every value anyway.
pub const MAX_JOBS_PER_REQUEST: usize = 8;

/// A parsed `POST /jobs` body: artifact name plus the optional knobs
/// the `sweep` subcommand exposes. Knob names match the CLI flags.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Grid to run (`table7`, `table10`, `smoke`).
    pub artifact: String,
    /// Problem scale (`None` = the server's default, [`Scale::Ci`]).
    pub scale: Option<Scale>,
    /// Explicit stream seed (result-affecting).
    pub seed: Option<u64>,
    /// Host worker threads for this job (bit-invisible; capped at
    /// [`MAX_JOBS_PER_REQUEST`]).
    pub jobs: Option<usize>,
    /// Host threads per multiprocessor cell (bit-invisible).
    pub mp_jobs: Option<usize>,
    /// Adaptive lookahead widening (bit-invisible).
    pub adaptive: Option<bool>,
}

impl JobRequest {
    /// Parses a request from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field: missing/bad
    /// `artifact`, a bad knob value, or an unknown key (strict, so a
    /// typo like `"sede"` fails loudly instead of silently running the
    /// default).
    pub fn from_value(doc: &Value) -> Result<JobRequest, String> {
        let Value::Obj(fields) = doc else {
            return Err("job spec must be a JSON object".into());
        };
        for key in fields.keys() {
            if !["artifact", "scale", "seed", "jobs", "mp_jobs", "adaptive"].contains(&key.as_str())
            {
                return Err(format!("unknown job-spec key `{key}`"));
            }
        }
        let artifact = doc
            .get("artifact")
            .and_then(Value::as_str)
            .ok_or("job spec requires a string `artifact` (table7, table10, or smoke)")?
            .to_string();
        let scale =
            match doc.get("scale") {
                None => None,
                Some(v) => {
                    let name = v.as_str().ok_or("`scale` must be \"ci\" or \"full\"")?;
                    Some(Scale::parse(name).ok_or_else(|| {
                        format!("`scale` must be \"ci\" or \"full\", got \"{name}\"")
                    })?)
                }
            };
        let num = |key: &str| -> Result<Option<u64>, String> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => {
                    v.as_u64().map(Some).ok_or(format!("`{key}` must be a non-negative integer"))
                }
            }
        };
        let adaptive = match doc.get("adaptive") {
            None => None,
            Some(v) => Some(v.as_bool().ok_or("`adaptive` must be true or false")?),
        };
        Ok(JobRequest {
            artifact,
            scale,
            seed: num("seed")?,
            jobs: num("jobs")?.map(|n| n as usize),
            mp_jobs: num("mp_jobs")?.map(|n| n as usize),
            adaptive,
        })
    }

    /// Serializes the request back to its wire shape (used by the
    /// `submit` subcommand).
    pub fn to_json(&self) -> String {
        let mut fields = vec![format!("\"artifact\": {}", escape(&self.artifact))];
        if let Some(scale) = self.scale {
            fields.push(format!("\"scale\": \"{}\"", scale.name()));
        }
        if let Some(seed) = self.seed {
            fields.push(format!("\"seed\": {seed}"));
        }
        if let Some(jobs) = self.jobs {
            fields.push(format!("\"jobs\": {jobs}"));
        }
        if let Some(mp_jobs) = self.mp_jobs {
            fields.push(format!("\"mp_jobs\": {mp_jobs}"));
        }
        if let Some(adaptive) = self.adaptive {
            fields.push(format!("\"adaptive\": {adaptive}"));
        }
        format!("{{{}}}\n", fields.join(", "))
    }

    /// Resolves the request into the experiment grid it describes —
    /// identical to what `sweep --artifact <a> [--seed N ...]` runs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown artifact.
    pub fn to_spec(&self) -> Result<ExperimentSpec, String> {
        let mut spec = artifact_spec(&self.artifact, self.scale.unwrap_or(Scale::Ci))?;
        if let Some(seed) = self.seed {
            spec = spec.seeds([seed]);
        }
        if let Some(mp_jobs) = self.mp_jobs {
            spec = spec.mp_jobs(mp_jobs);
        }
        if let Some(adaptive) = self.adaptive {
            spec = spec.adaptive(adaptive);
        }
        Ok(spec)
    }
}

/// A finished job's artifacts and accounting.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The `BENCH_*` document a `sweep --json` of this spec writes.
    pub bench_json: String,
    /// The `METRICS_*` document (deterministic, byte-stable).
    pub metrics_json: String,
    /// Cells in the grid.
    pub cells: usize,
    /// Cells served from the result cache instead of recomputed.
    pub cached_cells: usize,
    /// Wall-clock milliseconds the sweep took on the worker.
    pub wall_ms: u64,
    /// Simulated cycles summed over the grid.
    pub sim_cycles: u64,
}

/// Lifecycle phase of a job.
#[derive(Debug, Clone)]
pub enum JobPhase {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is sweeping the grid.
    Running,
    /// Finished; artifacts are ready to fetch.
    Done(Box<JobOutput>),
    /// The sweep did not complete.
    Failed(String),
}

impl JobPhase {
    /// The wire name of the phase.
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done(_) => "done",
            JobPhase::Failed(_) => "failed",
        }
    }
}

/// One admitted job: its request, resolved spec, telemetry bus, and
/// lifecycle phase. Shared between the accept loop, the worker pool,
/// and any number of streaming subscribers via `Arc`.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id (sequential, starting at 1).
    pub id: u64,
    /// The request as submitted.
    pub request: JobRequest,
    /// The resolved experiment grid.
    pub spec: ExperimentSpec,
    /// Cells in the grid.
    pub total_cells: usize,
    /// Per-job telemetry bus: created at admission so `events`
    /// subscribers opened before the job runs still see every phase;
    /// handed to the worker's `Runner` via
    /// [`interleave_bench::Runner::with_bus`].
    pub bus: Watch<Snapshot>,
    phase: Mutex<JobPhase>,
}

impl Job {
    /// Admits a request: resolves its spec and publishes the initial
    /// (0-cells-done) snapshot on a fresh bus.
    ///
    /// # Errors
    ///
    /// Returns the spec-resolution message (unknown artifact).
    pub fn new(id: u64, request: JobRequest) -> Result<Job, String> {
        let spec = request.to_spec()?;
        let total_cells = spec.cells().len();
        let bus = Watch::new();
        bus.publish(Snapshot {
            artifact: spec.name().to_string(),
            scale: spec.scale().name(),
            done: 0,
            total: total_cells,
            wall_ms: 0,
            cells_per_sec: 0.0,
            eta_secs: 0.0,
            sim_cycles: 0,
            sim_cycles_per_sec: 0.0,
            finished: false,
            last_cell: String::new(),
            metrics: Registry::new(),
        });
        Ok(Job { id, request, spec, total_cells, bus, phase: Mutex::new(JobPhase::Queued) })
    }

    /// Runs `f` with the current phase (the lock is held only for the
    /// closure).
    pub fn with_phase<R>(&self, f: impl FnOnce(&JobPhase) -> R) -> R {
        f(&self.phase.lock().expect("job phase lock"))
    }

    /// Whether the job has reached `done` or `failed`.
    pub fn is_terminal(&self) -> bool {
        self.with_phase(|p| matches!(p, JobPhase::Done(_) | JobPhase::Failed(_)))
    }

    /// Transitions the phase.
    pub fn set_phase(&self, phase: JobPhase) {
        *self.phase.lock().expect("job phase lock") = phase;
    }

    /// The `GET /jobs/<id>` status document.
    pub fn status_json(&self) -> String {
        let mut fields = vec![
            "\"schema\": \"interleave-job-v1\"".to_string(),
            format!("\"id\": {}", self.id),
            format!("\"artifact\": {}", escape(&self.request.artifact)),
            format!("\"scale\": \"{}\"", self.spec.scale().name()),
            format!("\"cells\": {}", self.total_cells),
        ];
        self.with_phase(|phase| {
            fields.push(format!("\"state\": \"{}\"", phase.name()));
            match phase {
                JobPhase::Done(out) => {
                    fields.push(format!("\"cached_cells\": {}", out.cached_cells));
                    fields.push(format!("\"wall_ms\": {}", out.wall_ms));
                    fields.push(format!("\"sim_cycles\": {}", out.sim_cycles));
                }
                JobPhase::Failed(error) => fields.push(format!("\"error\": {}", escape(error))),
                JobPhase::Queued | JobPhase::Running => {}
            }
        });
        format!("{{{}}}\n", fields.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interleave_obs::json;

    fn request(body: &str) -> Result<JobRequest, String> {
        JobRequest::from_value(&json::parse(body).expect("test body parses"))
    }

    #[test]
    fn parses_full_and_minimal_requests() {
        let minimal = request(r#"{"artifact": "smoke"}"#).unwrap();
        assert_eq!(minimal.artifact, "smoke");
        assert_eq!(minimal.seed, None);
        let full = request(
            r#"{"artifact": "table7", "scale": "ci", "seed": 7, "jobs": 2,
                "mp_jobs": 4, "adaptive": false}"#,
        )
        .unwrap();
        assert_eq!(full.scale, Some(Scale::Ci));
        assert_eq!(full.seed, Some(7));
        assert_eq!(full.jobs, Some(2));
        assert_eq!(full.mp_jobs, Some(4));
        assert_eq!(full.adaptive, Some(false));
        // Wire round-trip: to_json parses back to the same request.
        let reparsed = request(&full.to_json()).unwrap();
        assert_eq!(reparsed, full);
    }

    #[test]
    fn rejects_bad_requests_with_field_names() {
        for (body, needle) in [
            (r#"{"scale": "ci"}"#, "artifact"),
            (r#"{"artifact": 7}"#, "artifact"),
            (r#"{"artifact": "smoke", "scale": "huge"}"#, "scale"),
            (r#"{"artifact": "smoke", "seed": -1}"#, "seed"),
            (r#"{"artifact": "smoke", "adaptive": "maybe"}"#, "adaptive"),
            (r#"{"artifact": "smoke", "sede": 1}"#, "sede"),
            (r#"[1, 2]"#, "object"),
        ] {
            let err = request(body).unwrap_err();
            assert!(err.contains(needle), "`{body}` -> `{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn job_resolves_spec_and_tracks_phase() {
        let job = Job::new(3, request(r#"{"artifact": "smoke", "seed": 5}"#).unwrap()).unwrap();
        assert_eq!(job.spec.name(), "smoke");
        assert!(job.total_cells > 0);
        assert!(!job.is_terminal());
        assert!(job.status_json().contains("\"state\": \"queued\""));
        // The initial snapshot is already on the bus for early
        // subscribers.
        let mut sub = job.bus.subscribe();
        let snap = sub.latest().expect("initial snapshot published");
        assert_eq!((snap.done, snap.total), (0, job.total_cells));
        job.set_phase(JobPhase::Failed("boom".into()));
        assert!(job.is_terminal());
        let status = job.status_json();
        assert!(status.contains("\"state\": \"failed\""), "{status}");
        assert!(status.contains("\"error\": \"boom\""), "{status}");
        // Unknown artifacts fail at admission, not on the worker.
        assert!(Job::new(4, request(r#"{"artifact": "nope"}"#).unwrap()).is_err());
    }
}
