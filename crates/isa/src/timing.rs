use crate::Op;

/// Issue occupancy and result latency for one operation class.
///
/// * `issue` — cycles the functional unit is occupied before the next
///   operation of the same class may enter it (non-pipelined units such as
///   the dividers have `issue == latency`).
/// * `latency` — cycles from entering EX until the result is available for
///   forwarding to a dependent instruction's EX stage. A latency of 1 means
///   a dependent instruction can execute in the very next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiming {
    /// Functional-unit occupancy in cycles.
    pub issue: u32,
    /// Result latency in cycles.
    pub latency: u32,
}

impl OpTiming {
    /// Creates a timing entry.
    ///
    /// # Panics
    ///
    /// Panics if either field is zero — every operation takes at least one
    /// cycle.
    pub fn new(issue: u32, latency: u32) -> OpTiming {
        assert!(issue >= 1 && latency >= 1, "timings must be >= 1 cycle");
        OpTiming { issue, latency }
    }
}

/// Per-operation timing table — the paper's Table 3.
///
/// The published table lists: shift 1/2, load 1/3, FP add/sub/conv/mult 1/5,
/// FP divide 61/61 double (31/31 single). The integer multiply/divide rows
/// are corrupted in the source text; [`TimingModel::r4000_like`] reconstructs
/// them with R4000-era values (multiply 1/4, divide 35/35) as documented in
/// DESIGN.md.
///
/// # Examples
///
/// ```
/// use interleave_isa::{Op, TimingModel};
///
/// let t = TimingModel::r4000_like();
/// assert_eq!(t.timing(Op::FpAdd).latency, 5);
/// assert_eq!(t.timing(Op::FpDivDouble).issue, 61);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingModel {
    entries: [OpTiming; Op::ALL.len()],
}

impl TimingModel {
    /// The paper's Table 3 timings (with the reconstructed integer
    /// multiply/divide rows).
    pub fn r4000_like() -> TimingModel {
        let mut entries = [OpTiming::new(1, 1); Op::ALL.len()];
        let mut set = |op: Op, issue: u32, latency: u32| {
            entries[Self::slot(op)] = OpTiming::new(issue, latency);
        };
        set(Op::IntAlu, 1, 1);
        set(Op::Shift, 1, 2);
        set(Op::IntMul, 1, 4);
        set(Op::IntDiv, 35, 35);
        set(Op::Load, 1, 3);
        set(Op::Store, 1, 1);
        set(Op::Prefetch, 1, 1);
        set(Op::Branch, 1, 1);
        set(Op::FpAdd, 1, 5);
        set(Op::FpMul, 1, 5);
        set(Op::FpConv, 1, 5);
        set(Op::FpDivSingle, 31, 31);
        set(Op::FpDivDouble, 61, 61);
        set(Op::Backoff, 1, 1);
        set(Op::SwitchHint, 1, 1);
        set(Op::Sync, 1, 1);
        set(Op::Nop, 1, 1);
        TimingModel { entries }
    }

    /// Looks up the timing for an operation class.
    pub fn timing(&self, op: Op) -> OpTiming {
        self.entries[Self::slot(op)]
    }

    /// Overrides the timing for one operation class (for ablation studies).
    pub fn set_timing(&mut self, op: Op, timing: OpTiming) {
        self.entries[Self::slot(op)] = timing;
    }

    fn slot(op: Op) -> usize {
        Op::ALL.iter().position(|&o| o == op).expect("Op::ALL is exhaustive")
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::r4000_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_published_rows() {
        let t = TimingModel::r4000_like();
        assert_eq!(t.timing(Op::Shift), OpTiming::new(1, 2));
        assert_eq!(t.timing(Op::Load), OpTiming::new(1, 3));
        assert_eq!(t.timing(Op::FpAdd), OpTiming::new(1, 5));
        assert_eq!(t.timing(Op::FpMul), OpTiming::new(1, 5));
        assert_eq!(t.timing(Op::FpConv), OpTiming::new(1, 5));
        assert_eq!(t.timing(Op::FpDivSingle), OpTiming::new(31, 31));
        assert_eq!(t.timing(Op::FpDivDouble), OpTiming::new(61, 61));
    }

    #[test]
    fn reconstructed_rows() {
        let t = TimingModel::r4000_like();
        assert_eq!(t.timing(Op::IntMul), OpTiming::new(1, 4));
        assert_eq!(t.timing(Op::IntDiv), OpTiming::new(35, 35));
    }

    #[test]
    fn divides_are_non_pipelined() {
        let t = TimingModel::r4000_like();
        for op in Op::ALL {
            if op.is_divide() {
                let timing = t.timing(op);
                assert_eq!(timing.issue, timing.latency, "{op} should be non-pipelined");
            }
        }
    }

    #[test]
    fn fp_add_max_dependent_stall_is_four() {
        // The paper labels pipeline stalls of <= 4 cycles "short" because 4
        // is the maximum stall from an FP add/sub/mult result hazard: a
        // back-to-back dependent pair stalls latency - 1 = 4 cycles.
        let t = TimingModel::r4000_like();
        assert_eq!(t.timing(Op::FpAdd).latency - 1, 4);
    }

    #[test]
    fn override_for_ablation() {
        let mut t = TimingModel::r4000_like();
        t.set_timing(Op::IntDiv, OpTiming::new(10, 10));
        assert_eq!(t.timing(Op::IntDiv), OpTiming::new(10, 10));
        // Others untouched.
        assert_eq!(t.timing(Op::Load), OpTiming::new(1, 3));
    }

    #[test]
    #[should_panic]
    fn zero_timing_rejected() {
        let _ = OpTiming::new(0, 1);
    }

    #[test]
    fn every_op_has_an_entry() {
        let t = TimingModel::default();
        for op in Op::ALL {
            let timing = t.timing(op);
            assert!(timing.issue >= 1 && timing.latency >= 1);
        }
    }
}
