use std::fmt;

/// An architectural register identifier.
///
/// The simulated machine has 32 integer registers (`r0`–`r31`) and 32
/// floating-point registers (`f0`–`f31`). Internally both spaces share a
/// flat index range `0..64` so that scoreboards can use a single array.
///
/// `r0` is hardwired to zero (MIPS convention) and never participates in
/// dependence tracking; see [`Reg::is_zero`].
///
/// # Examples
///
/// ```
/// use interleave_isa::Reg;
///
/// let r4 = Reg::int(4);
/// let f2 = Reg::fp(2);
/// assert!(!r4.is_fp());
/// assert!(f2.is_fp());
/// assert_eq!(r4.index(), 4);
/// assert_eq!(f2.index(), 34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Total number of architectural registers (integer + FP).
    pub const COUNT: usize = 64;

    /// The hardwired-zero integer register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates an integer register `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn int(n: u8) -> Reg {
        assert!(n < 32, "integer register index {n} out of range");
        Reg(n)
    }

    /// Creates a floating-point register `f{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn fp(n: u8) -> Reg {
        assert!(n < 32, "fp register index {n} out of range");
        Reg(32 + n)
    }

    /// Creates a register from its flat index in `0..64`.
    ///
    /// Indices `0..32` are integer registers; `32..64` are FP registers.
    ///
    /// # Panics
    ///
    /// Panics if `index >= Reg::COUNT`.
    pub fn from_index(index: usize) -> Reg {
        assert!(index < Self::COUNT, "register index {index} out of range");
        Reg(index as u8)
    }

    /// Flat index of this register in `0..64`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is a floating-point register.
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Whether this is the hardwired-zero register `r0`.
    ///
    /// Reads of `r0` are always ready and writes to it are discarded, so the
    /// scoreboard skips it entirely.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The register number within its space (`0..32`).
    pub fn number(self) -> u8 {
        self.0 % 32
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.number())
        } else {
            write!(f, "r{}", self.number())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_spaces_are_disjoint() {
        for n in 0..32 {
            assert!(!Reg::int(n).is_fp());
            assert!(Reg::fp(n).is_fp());
            assert_ne!(Reg::int(n).index(), Reg::fp(n).index());
        }
    }

    #[test]
    fn flat_index_roundtrip() {
        for i in 0..Reg::COUNT {
            assert_eq!(Reg::from_index(i).index(), i);
        }
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::int(1).is_zero());
        // f0 is a real register, not hardwired zero.
        assert!(!Reg::fp(0).is_zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Reg::int(7).to_string(), "r7");
        assert_eq!(Reg::fp(7).to_string(), "f7");
    }

    #[test]
    fn number_within_space() {
        assert_eq!(Reg::int(31).number(), 31);
        assert_eq!(Reg::fp(31).number(), 31);
        assert_eq!(Reg::fp(0).number(), 0);
    }

    #[test]
    #[should_panic]
    fn int_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic]
    fn fp_out_of_range_panics() {
        let _ = Reg::fp(32);
    }

    #[test]
    #[should_panic]
    fn from_index_out_of_range_panics() {
        let _ = Reg::from_index(64);
    }
}
